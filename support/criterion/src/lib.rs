//! A workspace-local stand-in for the `criterion` benchmark harness.
//!
//! The build environment cannot reach crates.io, so this vendors the
//! slice of the criterion 0.5 API the `pt-bench` targets use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`black_box`], [`Throughput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — a warm-up pass, then
//! `sample_size` timed batches reported as mean/min time per iteration.
//! `--test` (what `cargo bench -- --test` passes) runs every closure
//! exactly once so CI can smoke the benches without paying for timing
//! runs; a positional argument filters benchmarks by substring, like the
//! real harness.

// Vendored bench harness: timing via Instant is the point.
#![allow(clippy::disallowed_methods)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// An opaque identity function the optimizer must assume is effectful.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-benchmark throughput annotation (reported, not used in math).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The benchmark harness: collects and times registered benchmarks.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20, test_mode: false, filter: None }
    }
}

impl Criterion {
    /// Number of timed batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Apply command-line arguments (`--test`, name filter); called by
    /// [`criterion_group!`]'s generated runner.
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                // Flags the real harness accepts and we can ignore.
                s if s.starts_with('-') => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    fn skipped(&self, name: &str) -> bool {
        self.filter.as_deref().is_some_and(|f| !name.contains(f))
    }

    /// Run (or, in test mode, smoke) one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if self.skipped(name) {
            return self;
        }
        let mut bencher =
            Bencher { test_mode: self.test_mode, sample_size: self.sample_size, report: None };
        f(&mut bencher);
        match bencher.report {
            Some(r) if !self.test_mode => println!(
                "{name:<48} time: [mean {} min {}] ({} samples)",
                fmt_duration(r.mean),
                fmt_duration(r.min),
                self.sample_size,
            ),
            _ => println!("{name:<48} ... ok (test mode)"),
        }
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, prefix: name.to_string() }
    }
}

/// Measurement summary for one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Mean wall-clock time per iteration.
    pub mean: Duration,
    /// Fastest observed batch, per iteration.
    pub min: Duration,
}

/// Times a single benchmark body.
#[derive(Debug)]
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    report: Option<Report>,
}

impl Bencher {
    /// Time `body`, amortizing over enough iterations per batch that
    /// timer resolution is irrelevant.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        if self.test_mode {
            black_box(body());
            return;
        }
        // Warm-up and batch sizing: aim for ~5 ms per batch.
        let start = Instant::now();
        black_box(body());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let per_batch =
            (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 100_000) as usize;
        let mut mean_total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..per_batch {
                black_box(body());
            }
            let batch = t.elapsed() / per_batch as u32;
            mean_total += batch;
            min = min.min(batch);
        }
        self.report = Some(Report { mean: mean_total / self.sample_size as u32, min });
    }

    /// The measurement summary, if a timing run happened.
    pub fn report(&self) -> Option<Report> {
        self.report
    }
}

/// A group of benchmarks sharing a name prefix and throughput label.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks (reported only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.prefix, name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// End the group (no-op; provided for API parity).
    pub fn finish(self) {}
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declare a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0u64;
        c.bench_function("smoke/add", |b| b.iter(|| ran = black_box(ran.wrapping_add(1))));
        assert!(ran > 0);
    }

    #[test]
    fn groups_compose_names() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Bytes(64));
        let mut hits = 0u32;
        g.bench_function("inner", |b| b.iter(|| hits = black_box(hits + 1)));
        g.finish();
        assert!(hits > 0);
    }

    #[test]
    fn format_covers_scales() {
        assert!(fmt_duration(Duration::from_nanos(5)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).ends_with("s"));
    }
}
