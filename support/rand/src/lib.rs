//! A workspace-local, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the `rand` 0.8 API the simulator
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! the [`Rng`] extension methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — not the
//! ChaCha12 of upstream `StdRng`, but every consumer in this workspace
//! only requires determinism-per-seed and decent statistical quality,
//! both of which xoshiro256++ provides (it passes BigCrush). Determinism
//! matters: the whole simulator is specified as a pure function of its
//! seed, and the campaign tests assert bit-identical reruns.

#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution of
/// upstream `rand`, collapsed into one trait).
pub trait StandardSample: Sized {
    /// Draw one uniformly distributed value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / ((1u32 << 24) as f32))
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi]` (both ends inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Draw uniformly from `[0, span]` (inclusive) using rejection sampling,
/// so the result is exactly uniform whatever the span.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == u64::MAX {
        return rng.next_u64();
    }
    let bound = span + 1;
    // Largest multiple of `bound` that fits in u64; values above it are
    // rejected to kill modulo bias.
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone || zone == 0 {
            return v % bound;
        }
    }
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::standard_sample(rng) * (hi - lo)
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + HasMinStep> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_inclusive(rng, self.start, T::step_down(self.end))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Helper for half-open integer ranges: the greatest value below `end`.
pub trait HasMinStep: Sized {
    /// `end - 1` for integers.
    fn step_down(end: Self) -> Self;
}

macro_rules! impl_step_down {
    ($($t:ty),*) => {$(
        impl HasMinStep for $t {
            fn step_down(end: Self) -> Self { end - 1 }
        }
    )*};
}

impl_step_down!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl HasMinStep for f64 {
    fn step_down(end: Self) -> Self {
        end
    }
}

/// Convenience draws layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform value of type `T` (`Standard` distribution).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// A uniform value from `range` (`0..n` or `lo..=hi`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not a probability");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u16 = rng.gen_range(10_000..=60_000);
            assert!((10_000..=60_000).contains(&x));
            let y = rng.gen_range(0..7usize);
            assert!(y < 7);
        }
    }

    #[test]
    fn gen_range_covers_whole_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "gen_bool(0.25) gave {frac}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
