//! A workspace-local, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendors the
//! subset of the proptest API the workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, [`any`],
//! integer-range and tuple strategies, [`Strategy::prop_map`],
//! [`collection::vec`] and [`option::weighted`].
//!
//! Inputs are drawn from a deterministic RNG seeded from the test's
//! module path and name, so failures reproduce exactly on re-run. There
//! is no shrinking: a failing case panics with the generated values
//! visible in the assertion message, which has proven sufficient for the
//! invariants tested here.

#![warn(missing_docs)]

/// Test-execution configuration, mirroring `proptest::test_runner`.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// How many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated inputs per property.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    impl Config {
        /// A config running `cases` inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// The RNG handed to strategies while generating one case.
    #[derive(Debug)]
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// Deterministic construction from a 64-bit seed.
        pub fn from_seed(seed: u64) -> Self {
            TestRng(StdRng::seed_from_u64(seed))
        }
    }
}

/// Value-generation strategies, mirroring `proptest::strategy`.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Something that can generate values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// A strategy generating `f(x)` for `x` from `self`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    #[derive(Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeFrom<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.start..=<$t>::MAX)
                }
            }
        )*};
    }

    impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    // Floats get the two bounded forms only (no `RangeFrom`: an upper
    // bound of `f64::MAX` is never what a property means).
    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            rng.0.gen_range(self.clone())
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            rng.0.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// `any::<T>()` support, mirroring `proptest::arbitrary`.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;
    use rand::{Rng, RngCore};

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.0.gen::<$t>()
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            let mut out = [0u8; N];
            rng.0.fill_bytes(&mut out);
            out
        }
    }

    /// The strategy returned by [`any`](crate::any).
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: arbitrary::Arbitrary>() -> arbitrary::Any<T> {
    arbitrary::Any::default()
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `Vec`s of values from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.0.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `Option` strategies, mirroring `proptest::option`.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy producing `Some` with a fixed probability.
    #[derive(Debug)]
    pub struct WeightedOption<S> {
        some_probability: f64,
        inner: S,
    }

    /// `Some(x)` with probability `some_probability`, else `None`.
    pub fn weighted<S: Strategy>(some_probability: f64, inner: S) -> WeightedOption<S> {
        WeightedOption { some_probability, inner }
    }

    impl<S: Strategy> Strategy for WeightedOption<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.0.gen_bool(self.some_probability) {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

/// A stable 64-bit hash of the test path, used as the per-test base seed.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `Config::cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                let __config: $crate::test_runner::Config = $cfg;
                let __base = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::from_seed(
                        __base ^ (u64::from(__case)).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    );
                    $(let $arg = ($strat).sample(&mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Property assertion; panics (no shrinking) with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Everything a property-test module needs, mirroring
/// `proptest::prelude`.
pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u8..9, y in 10u16..=20, z in 1u64..) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((10..=20).contains(&y));
            prop_assert!(z >= 1);
        }

        #[test]
        fn tuples_and_map_compose(
            pair in (0u8..4, 0u8..4),
            mapped in (0u32..10).prop_map(|v| v * 2),
        ) {
            prop_assert!(pair.0 < 4 && pair.1 < 4);
            prop_assert!(mapped % 2 == 0 && mapped < 20);
        }

        #[test]
        fn vec_and_weighted_option(
            v in crate::collection::vec(crate::option::weighted(0.5, 0u8..5), 0..16),
        ) {
            prop_assert!(v.len() < 16);
            for x in v.into_iter().flatten() {
                prop_assert!(x < 5);
            }
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(super::seed_for("abc"), super::seed_for("abc"));
        assert_ne!(super::seed_for("abc"), super::seed_for("abd"));
    }
}
