//! A workspace-local, dependency-free stand-in for the `crossbeam-deque`
//! crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of the `crossbeam-deque` 0.8 API the
//! campaign runner uses: [`Worker`] (a thread's local queue),
//! [`Stealer`] (a handle other threads steal from), [`Injector`] (a
//! shared global queue) and the [`Steal`] result.
//!
//! The real crate is a lock-free Chase–Lev deque; this stand-in guards a
//! `VecDeque` with a `Mutex`. That is deliberate: the campaign's work
//! units are whole trace pairs (hundreds of microseconds each), so queue
//! operations are nowhere near the contention regime where lock-freedom
//! pays, and a mutex keeps the semantics trivially correct. The API
//! surface was kept compatible on purpose — if the build environment
//! ever gains crates.io access, swap in the real dependency (see
//! ROADMAP.md).

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// The result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty at the time of the attempt.
    Empty,
    /// One task was stolen.
    Success(T),
    /// The attempt lost a race and should be retried. The mutex-based
    /// stand-in never loses races, so this variant is never produced
    /// here — it exists so caller retry loops written against the real
    /// crate compile unchanged.
    Retry,
}

impl<T> Steal<T> {
    /// True when the steal produced nothing because the queue was empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// True when a task was stolen.
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }

    /// True when the attempt should be retried.
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }

    /// The stolen task, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }
}

/// Which end [`Worker::pop`] takes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flavor {
    Fifo,
    Lifo,
}

/// A worker's own queue. The owning thread pushes and pops; other
/// threads steal through [`Stealer`] handles.
#[derive(Debug)]
pub struct Worker<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
    flavor: Flavor,
}

impl<T> Worker<T> {
    /// A FIFO worker queue: `pop` takes the oldest task, matching the
    /// order tasks were pushed — and matching what stealers take.
    pub fn new_fifo() -> Self {
        Worker { inner: Arc::new(Mutex::new(VecDeque::new())), flavor: Flavor::Fifo }
    }

    /// A LIFO worker queue: `pop` takes the most recently pushed task
    /// (better locality for recursive work); stealers still take the
    /// oldest.
    pub fn new_lifo() -> Self {
        Worker { inner: Arc::new(Mutex::new(VecDeque::new())), flavor: Flavor::Lifo }
    }

    /// Push a task onto the queue.
    pub fn push(&self, task: T) {
        self.inner.lock().expect("deque poisoned").push_back(task);
    }

    /// Pop a task from the owner's end (front for FIFO, back for LIFO).
    pub fn pop(&self) -> Option<T> {
        let mut q = self.inner.lock().expect("deque poisoned");
        match self.flavor {
            Flavor::Fifo => q.pop_front(),
            Flavor::Lifo => q.pop_back(),
        }
    }

    /// A handle other threads use to steal from this queue.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer { inner: Arc::clone(&self.inner) }
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("deque poisoned").len()
    }

    /// True when no tasks are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A handle for stealing tasks from another thread's [`Worker`] queue.
/// Steals always take the oldest task.
#[derive(Debug)]
pub struct Stealer<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer { inner: Arc::clone(&self.inner) }
    }
}

impl<T> Stealer<T> {
    /// Attempt to steal the oldest task.
    pub fn steal(&self) -> Steal<T> {
        match self.inner.lock().expect("deque poisoned").pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Number of queued tasks at the time of the call.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("deque poisoned").len()
    }

    /// True when no tasks were queued at the time of the call.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A shared global queue every worker can push to and steal from.
#[derive(Debug, Default)]
pub struct Injector<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    /// An empty injector.
    pub fn new() -> Self {
        Injector { inner: Mutex::new(VecDeque::new()) }
    }

    /// Push a task onto the global queue.
    pub fn push(&self, task: T) {
        self.inner.lock().expect("injector poisoned").push_back(task);
    }

    /// Attempt to steal the oldest task.
    pub fn steal(&self) -> Steal<T> {
        match self.inner.lock().expect("injector poisoned").pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("injector poisoned").len()
    }

    /// True when no tasks are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_pop_and_steal_take_oldest() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(1));
        let s = w.stealer();
        assert_eq!(s.steal(), Steal::Success(2));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), None);
        assert!(s.steal().is_empty());
    }

    #[test]
    fn lifo_pop_takes_newest_but_steal_takes_oldest() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.stealer().steal(), Steal::Success(1));
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
    }

    #[test]
    fn stealing_drains_across_threads() {
        let w = Worker::new_fifo();
        for i in 0..1000 {
            w.push(i);
        }
        let total: u64 = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let s = w.stealer();
                    scope.spawn(move || {
                        let mut sum = 0u64;
                        loop {
                            match s.steal() {
                                Steal::Success(v) => sum += v,
                                Steal::Empty => return sum,
                                Steal::Retry => continue,
                            }
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, 999 * 1000 / 2, "every task stolen exactly once");
    }

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        inj.push("a");
        inj.push("b");
        assert_eq!(inj.len(), 2);
        assert_eq!(inj.steal(), Steal::Success("a"));
        assert_eq!(inj.steal(), Steal::Success("b"));
        assert!(inj.steal().is_empty());
        assert!(inj.is_empty());
    }
}
