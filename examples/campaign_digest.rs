//! Print a canonical digest of a small fixed-seed campaign.
//!
//! Used to check that performance refactors of the simulator hot path
//! leave campaign results bit-identical: run it before and after a
//! change and diff the output. Routing dynamics are disabled so the
//! digest isolates the deterministic forwarding/response path.
//!
//! ```sh
//! cargo run --release --example campaign_digest
//! ```

use paris_traceroute_repro::campaign::{run, CampaignConfig, DynamicsConfig};
use paris_traceroute_repro::topogen::{generate, InternetConfig};

fn main() {
    let net = generate(&InternetConfig::tiny(42));
    let config = CampaignConfig {
        rounds: 3,
        workers: 4,
        seed: 99,
        dynamics: DynamicsConfig::none(),
        ..CampaignConfig::default()
    };
    let result = run(&net, &config);
    println!("{}", paris_traceroute_repro::campaign::report_digest(&result));
}
