//! The full §3/§4 study: generate a synthetic Internet, run a
//! side-by-side classic-vs-Paris campaign, and print the paper-vs-
//! measured report plus the ground-truth validation the paper could not
//! perform — then the §6 future work: a multipath-discovery campaign
//! over the same destinations, with its own ground-truth scoring.
//!
//! ```sh
//! cargo run --release --example anomaly_survey            # default scale
//! cargo run --release --example anomaly_survey -- 2000 40 # dests rounds
//! ```

// Display-only wall-clock progress timers (ptlint-waived inline).
#![allow(clippy::disallowed_methods)]
use pt_campaign::{
    render_multipath_report, render_report, run, run_multipath, validate_causes,
    validate_multipath, CampaignConfig, MultipathConfig,
};
use pt_topogen::{generate, InternetConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let n_destinations: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(600);
    let rounds: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(30);

    println!("generating synthetic internet: {n_destinations} destinations...");
    let net = generate(&InternetConfig { n_destinations, ..InternetConfig::default() });
    println!(
        "  {} nodes, {} links; anomaly sources: {} per-flow LB, {} per-packet LB, {} zero-TTL, {} NAT, {} broken, {} firewalled",
        net.topology.nodes.len(),
        net.topology.links.len(),
        net.dests.iter().filter(|d| d.truth.per_flow_lb).count(),
        net.dests.iter().filter(|d| d.truth.per_packet_lb).count(),
        net.dests.iter().filter(|d| d.truth.zero_ttl).count(),
        net.dests.iter().filter(|d| d.truth.nat).count(),
        net.dests.iter().filter(|d| d.truth.broken).count(),
        net.dests.iter().filter(|d| d.truth.firewalled).count(),
    );

    println!("running {rounds} rounds × {n_destinations} destinations × 2 tools (32 workers)...");
    // ptlint: allow(wall-clock): progress display only; never feeds a digest
    let started = std::time::Instant::now();
    let config = CampaignConfig { rounds, workers: 32, keep_routes: true, ..Default::default() };
    let result = run(&net, &config);
    println!("  done in {:.1}s wall clock\n", started.elapsed().as_secs_f64());

    println!("{}", render_report(&result));

    // §3's AS-level coverage, against the generator's ground-truth map.
    let cov = pt_topogen::coverage(&net.as_map, result.classic.addresses_seen());
    println!(
        "\n## AS coverage (§3)\n\n- ASes traversed: {} of {} (paper: 1,122, ~5% of the Internet)\n- tier-1 ASes traversed: {} of {} (paper: all nine)\n- unmapped response addresses: {} (paper: 19 thousand invalid)",
        cov.ases_observed, cov.ases_total, cov.tier1s_observed, cov.tier1s_total, cov.unmapped_addresses
    );

    // The §6 future work at the same scale: multipath discovery toward
    // every destination, printed next to the anomaly stats above.
    println!("\nrunning multipath discovery over the same {n_destinations} destinations...");
    // ptlint: allow(wall-clock): progress display only; never feeds a digest
    let started = std::time::Instant::now();
    let mp = run_multipath(&net, &MultipathConfig { workers: 32, ..Default::default() });
    println!("  done in {:.1}s wall clock\n", started.elapsed().as_secs_f64());
    println!("{}", render_multipath_report(&mp));
    let score = validate_multipath(&net, &mp);
    println!(
        "- ground truth: {}/{} planted balancers fully recovered \
         (width+delta+class = {:.1}%), {} false balancer(s)",
        score.full_matches,
        score.balancer_dests,
        score.accuracy() * 100.0,
        score.false_balancers
    );

    let v = validate_causes(&net, &result.routes, &result.classic, &result.paris);
    println!("\n## Classifier validation against generator ground truth\n");
    println!("| cause               | truth | flagged | hits | precision | recall |");
    println!("|---------------------|-------|---------|------|-----------|--------|");
    for (name, s) in [
        ("zero-TTL forwarding", v.zero_ttl),
        ("address rewriting", v.rewriting),
        ("unreachability", v.unreachability),
        ("per-flow LB (loops)", v.per_flow),
    ] {
        println!(
            "| {name:<19} | {:>5} | {:>7} | {:>4} | {:>9.2} | {:>6.2} |",
            s.truth_positives,
            s.flagged,
            s.hits,
            s.precision(),
            s.recall()
        );
    }
}
