//! Walk through every figure of the paper, reproducing each anomaly and
//! its diagnosis on the reconstructed topology.
//!
//! ```sh
//! cargo run --example figures
//! ```

use pt_anomaly::{find_cycles, find_loops, DestinationGraph};
use pt_core::{trace, ClassicUdp, ParisUdp, TraceConfig};
use pt_netsim::node::BalancerKind;
use pt_netsim::{scenarios, SimTransport, Simulator};
use pt_wire::FlowPolicy;

fn tx_for(sc: &scenarios::Scenario, seed: u64) -> SimTransport {
    SimTransport::new(Simulator::new(sc.topology.clone(), seed), sc.source)
}

fn show_range(addrs: &[Option<std::net::Ipv4Addr>], from: usize, to: usize) -> String {
    show(&addrs[from.min(addrs.len())..to.min(addrs.len())])
}

fn show(addrs: &[Option<std::net::Ipv4Addr>]) -> String {
    addrs
        .iter()
        .map(|a| a.map(|x| x.to_string()).unwrap_or_else(|| "*".into()))
        .collect::<Vec<_>>()
        .join(" → ")
}

fn fig1() {
    println!("== Fig. 1: missing nodes and false links ==");
    let sc = scenarios::fig1(BalancerKind::PerFlow(FlowPolicy::FiveTuple));
    let mut tx = tx_for(&sc, 1);
    // Classic traceroute with many PIDs: collect what hops 6..=9 show.
    for pid in [7u16, 19, 23] {
        let mut strat = ClassicUdp::new(pid);
        let r = trace(&mut tx, &mut strat, sc.destination, TraceConfig::default());
        println!("  classic (pid {pid:>2}) hops 6..9: {}", show_range(&r.addresses(), 5, 9));
    }
    let mut paris = ParisUdp::new(41_001, 52_001);
    let r = trace(&mut tx, &mut paris, sc.destination, TraceConfig::default());
    println!("  paris            hops 6..9: {}", show_range(&r.addresses(), 5, 9));
    println!(
        "  true paths: L→A→C(silent)→E and L→B(silent)→D→E; classic can pair A at hop 7 with D at hop 8 — a link that does not exist.\n"
    );
}

fn fig3() {
    println!("== Fig. 3: a loop from load balancing over unequal lengths ==");
    let sc = scenarios::fig3(BalancerKind::PerFlow(FlowPolicy::FiveTuple));
    let mut tx = tx_for(&sc, 4);
    // Hunt for a classic trace showing E twice.
    for pid in 0..200u16 {
        let mut strat = ClassicUdp::new(pid);
        let r = trace(&mut tx, &mut strat, sc.destination, TraceConfig::default());
        let loops = find_loops(&r);
        if loops.iter().any(|l| l.addr == sc.a("E")) {
            println!("  classic (pid {pid}) hops 6..10: {}", show_range(&r.addresses(), 5, 10));
            println!("  loop on E — probes straddled the short (L→A→E) and long (L→B→C→E) paths");
            break;
        }
    }
    let mut paris = ParisUdp::new(41_002, 52_002);
    let r = trace(&mut tx, &mut paris, sc.destination, TraceConfig::default());
    println!("  paris          hops 6..10: {} (no loop)\n", show_range(&r.addresses(), 5, 10));
}

fn fig4() {
    println!("== Fig. 4: a loop from zero-TTL forwarding ==");
    let sc = scenarios::fig4();
    let mut tx = tx_for(&sc, 1);
    let mut paris = ParisUdp::new(41_003, 52_003);
    let r = trace(&mut tx, &mut paris, sc.destination, TraceConfig::default());
    println!("  hops 6..10: {}", show_range(&r.addresses(), 5, 10));
    for l in find_loops(&r) {
        println!(
            "  loop on {} at hops {}..{} — cause: {:?} (probe TTLs {:?} then {:?})",
            l.addr,
            l.start + 1,
            l.start + l.len,
            l.cause,
            r.hops[l.start].probes[0].probe_ttl,
            r.hops[l.start + 1].probes[0].probe_ttl,
        );
    }
    println!("  F itself never appears: it forwarded the TTL-0 probe instead of answering.\n");
}

fn fig5() {
    println!("== Fig. 5: a loop from NAT address rewriting ==");
    let sc = scenarios::fig5();
    let mut tx = tx_for(&sc, 1);
    let mut paris = ParisUdp::new(41_004, 52_004);
    let r = trace(&mut tx, &mut paris, sc.destination, TraceConfig::default());
    println!("  hops 6..10: {}", show_range(&r.addresses(), 5, 10));
    print!("  response TTLs at hops 6..9:");
    for i in 5..9 {
        print!(" {}", r.hops[i].probes[0].response_ttl.unwrap());
    }
    println!(" — the paper's 250, 249, 248, 247: one address, four distances.");
    for l in find_loops(&r) {
        println!("  loop on {} — cause: {:?}\n", l.addr, l.cause);
    }
}

fn fig6() {
    println!("== Fig. 6: diamonds ==");
    let sc = scenarios::fig6(BalancerKind::PerFlow(FlowPolicy::FiveTuple));
    let mut tx = tx_for(&sc, 6);
    let name_of = |addr: std::net::Ipv4Addr| -> String {
        ["L", "A", "B", "C", "D", "E", "G"]
            .into_iter()
            .find(|n| sc.a(n) == addr)
            .map(String::from)
            .unwrap_or_else(|| addr.to_string())
    };
    let print_diamonds = |label: &str, graph: &DestinationGraph| {
        println!("  {label}:");
        for d in graph.diamonds() {
            let mids: Vec<String> = d.middles.iter().map(|m| name_of(*m)).collect();
            println!(
                "    ({}, {})  middles {{{}}}",
                name_of(d.head),
                name_of(d.tail),
                mids.join(", ")
            );
        }
    };

    let mut classic_graph = DestinationGraph::new();
    for pid in 0..64u16 {
        let mut strat = ClassicUdp::new(pid);
        let r = trace(&mut tx, &mut strat, sc.destination, TraceConfig::default());
        classic_graph.ingest(&r);
    }
    print_diamonds("diamonds from 64 classic traces", &classic_graph);
    println!(
        "    note (C, G): classic's flow mixing fabricates the triple C→E→G, so even\n    (C, G) looks like a diamond — a false one."
    );

    let mut paris_graph = DestinationGraph::new();
    for i in 0..64u16 {
        let mut strat = ParisUdp::new(42_000 + i, 52_100 + i);
        let r = trace(&mut tx, &mut strat, sc.destination, TraceConfig::default());
        paris_graph.ingest(&r);
    }
    print_diamonds("diamonds from 64 Paris traces (each a coherent path)", &paris_graph);
    println!(
        "    exactly the paper's four: (L,D), (L,E), (A,G), (B,G) — and (C,G) is not\n    among them, because only D truly sits between C and G.\n"
    );
}

fn forwarding_loop() {
    println!("== §4.2: a genuine forwarding loop makes a cycle ==");
    let (sc, x, y) = scenarios::forwarding_loop_chain();
    let mut tx = tx_for(&sc, 3);
    let dst_pfx = pt_netsim::Ipv4Prefix::host(sc.destination);
    let x_to_y = sc.topology.iface_toward(x, y).unwrap();
    let y_to_x = sc.topology.iface_toward(y, x).unwrap();
    {
        let sim = tx.simulator_mut();
        let now = sim.now();
        sim.schedule_route_set(now, x, dst_pfx, Some(pt_netsim::NextHop::Iface(x_to_y)));
        sim.schedule_route_set(now, y, dst_pfx, Some(pt_netsim::NextHop::Iface(y_to_x)));
    }
    let mut paris = ParisUdp::new(41_005, 52_005);
    let r = trace(&mut tx, &mut paris, sc.destination, TraceConfig::default());
    println!("  hops 6..12: {}", show_range(&r.addresses(), 5, 12));
    for c in find_cycles(&r).iter().take(3) {
        println!(
            "  cycle on {} (hops {} and {}) — cause: {:?}",
            c.addr,
            c.first + 1,
            c.second + 1,
            c.cause
        );
    }
    println!();
}

fn main() {
    fig1();
    fig3();
    fig4();
    fig5();
    fig6();
    forwarding_loop();
}
