//! Print a canonical digest of a small fixed-seed multipath campaign.
//!
//! The multipath-mode counterpart of `campaign_digest`: run it before
//! and after a refactor and diff the output to check that MDA campaign
//! results stayed bit-identical.
//!
//! ```sh
//! cargo run --release --example multipath_digest
//! ```

use paris_traceroute_repro::campaign::{multipath_digest, run_multipath, MultipathConfig};
use paris_traceroute_repro::topogen::{generate, InternetConfig};

fn main() {
    let net = generate(&InternetConfig::tiny(42));
    let config = MultipathConfig { rounds: 2, workers: 4, seed: 99, ..Default::default() };
    let result = run_multipath(&net, &config);
    println!("{}", multipath_digest(&result));
}
