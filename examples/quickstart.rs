//! Quickstart: build a small network, trace it with classic and Paris
//! traceroute, and print both routes side by side.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use pt_core::{trace, ClassicUdp, MeasuredRoute, ParisUdp, TraceConfig};
use pt_netsim::node::BalancerKind;
use pt_netsim::{scenarios, SimTransport, Simulator};
use pt_wire::FlowPolicy;

fn print_route(label: &str, route: &MeasuredRoute) {
    println!("{label} → {} ({:?})", route.destination, route.halt);
    for hop in &route.hops {
        let p = &hop.probes[0];
        match p.addr {
            Some(a) => {
                let rtt = p.rtt.map(|r| format!("{:.3} ms", r.as_millis_f64())).unwrap_or_default();
                let flag = p
                    .kind
                    .and_then(|k| k.unreachable_flag())
                    .map(|c| match c {
                        pt_wire::UnreachableCode::Host => " !H",
                        pt_wire::UnreachableCode::Network => " !N",
                        _ => "",
                    })
                    .unwrap_or("");
                println!(
                    "  {:>2}  {:<15} {:>10}  probe-ttl={:?} resp-ttl={:?} ipid={:?}{flag}",
                    hop.ttl,
                    a.to_string(),
                    rtt,
                    p.probe_ttl,
                    p.response_ttl,
                    p.ip_id
                );
            }
            None => println!("  {:>2}  *", hop.ttl),
        }
    }
    println!();
}

fn main() {
    // The paper's Fig. 1 network: a per-flow load balancer at hop 6
    // splitting over two paths with silent routers on each.
    let sc = scenarios::fig1(BalancerKind::PerFlow(FlowPolicy::FiveTuple));
    println!(
        "Fig. 1 topology: L (hop 6) balances over A–C (silent C) and B–D (silent B), remerging at E.\n"
    );

    let mut tx = SimTransport::new(Simulator::new(sc.topology.clone(), 2006), sc.source);

    // Classic traceroute's outcome depends on how each probe's flow
    // hashes; pick a PID whose trace exhibits the false link A→D.
    let classic_route = (0..512u16)
        .map(|pid| {
            let mut classic = ClassicUdp::new(pid);
            trace(&mut tx, &mut classic, sc.destination, TraceConfig::default())
        })
        .find(|r| {
            let a = r.addresses();
            a[6] == Some(sc.a("A")) && a[7] == Some(sc.a("D"))
        })
        .expect("some flow assignment shows the false link");
    print_route("classic traceroute (Destination Port varies per probe)", &classic_route);

    let mut paris = ParisUdp::new(41_000, 53_000);
    let paris_route = trace(&mut tx, &mut paris, sc.destination, TraceConfig::default());
    print_route("paris traceroute   (five-tuple fixed, Checksum identifies probes)", &paris_route);

    // The falsifiable claim of the paper, in two lines:
    let c = classic_route.addresses();
    let p = paris_route.addresses();
    println!("classic hops 7..8: {:?} → can pair A with D (a false link)", &c[6..8]);
    println!(
        "paris   hops 7..8: {:?} → one physical path, stars where routers are silent",
        &p[6..8]
    );
}
