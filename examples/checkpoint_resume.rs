//! Crash-safe campaign demo: run half a campaign, checkpoint, "crash",
//! resume from the snapshot, and show the resumed digest is
//! byte-identical to an uninterrupted run — with a panicking unit
//! quarantined and a runaway unit cut by the watchdog along the way.
//!
//! The CI `resume-smoke` job drives the same flow across two separate
//! processes:
//!
//! ```sh
//! cargo run --release --example checkpoint_resume -- start ckpt.snap
//! cargo run --release --example checkpoint_resume -- resume ckpt.snap
//! cargo run --release --example checkpoint_resume -- plain
//! ```
//!
//! `start` stops after the first checkpoint (simulating a kill) and
//! leaves the snapshot behind; `resume` finishes the campaign from it
//! and prints the digest; `plain` prints the uninterrupted digest for
//! comparison. With no arguments, all three run in-process and the
//! digests are diffed here.

use std::path::PathBuf;

use paris_traceroute_repro::campaign::{
    report_digest, run, run_checkpointed, run_resumed, CampaignConfig, CheckpointConfig,
};
use paris_traceroute_repro::topogen::{generate, InternetConfig};

fn config() -> CampaignConfig {
    let mut config = CampaignConfig { rounds: 2, workers: 4, seed: 99, ..Default::default() };
    // One unit panics mid-trace (quarantined, reported, discarded); one
    // runs into an injected permanent forwarding loop (cut by the
    // per-unit probe budget and marked degraded).
    config.trace.probe_budget = 30;
    config.inject.panic_units.insert(5);
    config.inject.runaway_units.insert(7);
    config
}

fn checkpoint(path: PathBuf, stop_after: Option<usize>) -> CheckpointConfig {
    CheckpointConfig { path, every_units: 40, stop_after_checkpoints: stop_after }
}

fn main() {
    let net = generate(&InternetConfig::tiny(42));
    let config = config();
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("plain") => {
            println!("{}", report_digest(&run(&net, &config)));
        }
        Some("start") => {
            let path = PathBuf::from(args.next().expect("usage: start <snapshot-path>"));
            let early = run_checkpointed(&net, &config, &checkpoint(path.clone(), Some(1)))
                .expect("checkpoint written");
            assert!(early.is_none(), "stopped at the first checkpoint");
            eprintln!("killed after first checkpoint; snapshot at {}", path.display());
        }
        Some("resume") => {
            let path = PathBuf::from(args.next().expect("usage: resume <snapshot-path>"));
            let result = run_resumed(&net, &config, &checkpoint(path, None))
                .expect("snapshot loads")
                .expect("resumed campaign completes");
            println!("{}", report_digest(&result));
        }
        Some(other) => panic!("unknown mode {other:?} (expected plain|start|resume)"),
        None => {
            let mut path = std::env::temp_dir();
            path.push(format!("pt-resume-demo-{}.snap", std::process::id()));
            let uninterrupted = report_digest(&run(&net, &config));
            run_checkpointed(&net, &config, &checkpoint(path.clone(), Some(1))).unwrap();
            let resumed = run_resumed(&net, &config, &checkpoint(path.clone(), None))
                .unwrap()
                .expect("resumed campaign completes");
            let _ = std::fs::remove_file(&path);
            assert_eq!(report_digest(&resumed), uninterrupted);
            println!("{}", report_digest(&resumed));
            eprintln!("kill-and-resume digest matches the uninterrupted run, byte for byte");
        }
    }
}
