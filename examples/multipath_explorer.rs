//! The paper's future work, working: enumerate every interface of every
//! load balancer toward a destination (MDA stopping rule) and classify
//! each balanced hop as per-flow or per-packet.
//!
//! ```sh
//! cargo run --example multipath_explorer
//! ```

use pt_mda::{classify_balancer, enumerate, MdaConfig};
use pt_netsim::node::BalancerKind;
use pt_netsim::{scenarios, SimTransport, Simulator};
use pt_wire::FlowPolicy;

fn explore(label: &str, sc: &scenarios::Scenario, seed: u64) {
    println!("== {label} ==");
    let mut tx = SimTransport::new(Simulator::new(sc.topology.clone(), seed), sc.source);
    let config = MdaConfig::default();
    let map = enumerate(&mut tx, sc.destination, &config);
    for hop in &map.hops {
        let addrs: Vec<String> = hop.interfaces.iter().map(|a| a.to_string()).collect();
        let width = hop.interfaces.len();
        let class = if width >= 2 {
            format!(" — {:?}", classify_balancer(&mut tx, sc.destination, hop.ttl, 12, &config))
        } else {
            String::new()
        };
        println!(
            "  ttl {:>2}: [{}] ({} probes{}{})",
            hop.ttl,
            addrs.join(", "),
            hop.probes_sent,
            if hop.converged { "" } else { ", budget hit" },
            class,
        );
    }
    println!("  total probes: {}\n", map.total_probes);
}

fn main() {
    explore(
        "Fig. 6 topology, per-flow balancers",
        &scenarios::fig6(BalancerKind::PerFlow(FlowPolicy::FiveTuple)),
        11,
    );
    explore("Fig. 6 topology, per-packet balancers", &scenarios::fig6(BalancerKind::PerPacket), 11);
    explore("plain chain (no balancing)", &scenarios::linear(6), 11);
}
