//! The paper's future work, working: discover the multipath DAG toward
//! a destination — every load-balancer interface, the directed links
//! between adjacent hops, the branch-length delta — and classify each
//! balanced hop as per-flow or per-packet, then do it at campaign scale
//! against generator ground truth.
//!
//! ```sh
//! cargo run --example multipath_explorer
//! ```

use pt_campaign::{render_multipath_report, run_multipath, validate_multipath, MultipathConfig};
use pt_mda::{discover, BalancerClass, MdaConfig};
use pt_netsim::node::BalancerKind;
use pt_netsim::{scenarios, SimTransport, Simulator};
use pt_topogen::{generate, InternetConfig};
use pt_wire::FlowPolicy;

fn explore(label: &str, sc: &scenarios::Scenario, seed: u64) {
    println!("== {label} ==");
    let mut tx = SimTransport::new(Simulator::new(sc.topology.clone(), seed), sc.source);
    // Campaign-grade confidence: at the paper's alpha = 0.05 the rule
    // legitimately misses a branch on a few percent of seeds.
    let config = MdaConfig { alpha: 0.01, ..MdaConfig::default() };
    let map = discover(&mut tx, sc.destination, &config);
    for hop in &map.hops {
        let addrs: Vec<String> = hop.interfaces.iter().map(|a| a.to_string()).collect();
        let class = if hop.width() >= 2 { format!(" — {:?}", hop.class) } else { String::new() };
        let stars = if hop.stars > 0 { format!(", {} star(s)", hop.stars) } else { String::new() };
        println!(
            "  ttl {:>2}: [{}] ({} probes{}{}{})",
            hop.ttl,
            addrs.join(", "),
            hop.probes_sent,
            stars,
            if hop.converged { "" } else { ", unconverged" },
            class,
        );
    }
    for link in &map.links {
        println!("  link ttl {:>2}: {} -> {}", link.from_ttl, link.from, link.to);
    }
    println!(
        "  total probes: {}; width {} (observed {}), delta {}, class {:?}\n",
        map.total_probes,
        map.max_width(),
        map.max_observed_width(),
        map.discovered_delta(),
        map.classification(),
    );
}

fn main() {
    explore(
        "Fig. 6 topology, per-flow balancers",
        &scenarios::fig6(BalancerKind::PerFlow(FlowPolicy::FiveTuple)),
        11,
    );
    explore("Fig. 6 topology, per-packet balancers", &scenarios::fig6(BalancerKind::PerPacket), 11);
    explore(
        "Fig. 3 topology (unequal-length diamond, delta = 1)",
        &scenarios::fig3(BalancerKind::PerFlow(FlowPolicy::FiveTuple)),
        11,
    );
    explore("plain chain (no balancing)", &scenarios::linear(6), 11);

    // Campaign scale: MDA toward every destination of a synthetic
    // Internet, validated against what the generator actually planted.
    let net = generate(&InternetConfig::tiny(42));
    let result = run_multipath(&net, &MultipathConfig::default());
    println!("{}", render_multipath_report(&result));
    let score = validate_multipath(&net, &result);
    println!("ground truth: {score:?}");
    println!(
        "full recovery (width+delta+class): {:.1}% of {} planted balancers, \
         {} false balancer(s)",
        score.accuracy() * 100.0,
        score.balancer_dests,
        score.false_balancers
    );
    let misses: Vec<_> = result
        .per_dest
        .iter()
        .filter(|d| {
            let t = &net.dests[d.dest].truth;
            t.balancer().is_some_and(|(w, delta, pp)| {
                d.width != usize::from(w)
                    || d.delta != delta
                    || d.class != if pp { BalancerClass::PerPacket } else { BalancerClass::PerFlow }
            })
        })
        .map(|d| (d.dest, d.width, d.delta, d.class))
        .collect();
    if !misses.is_empty() {
        println!("misses: {misses:?}");
    }
}
