//! Multipath discovery scored against generator ground truth — the
//! validation the paper's §6 future work could never run on the real
//! Internet: every `topogen` destination records exactly which balancer
//! was planted on its branch (`DestTruth`: `lb_width`, `lb_delta`,
//! per-flow vs per-packet), so a multipath campaign's discoveries can
//! be graded destination by destination.
//!
//! The floors pinned here are the PR's acceptance criteria: across
//! several `InternetConfig::tiny` instances, MDA must fully recover
//! (width AND delta AND class) at least 95% of planted balancers, and
//! must flag **zero** balancers on plain destinations.

use paris_traceroute_repro::campaign::{run_multipath, validate_multipath, MultipathConfig};
use paris_traceroute_repro::mda::BalancerClass;
use paris_traceroute_repro::topogen::{generate, InternetConfig};

const SEEDS: [u64; 3] = [42, 7, 2006];

#[test]
fn mda_recovers_planted_balancers_at_95_percent() {
    let mut balancer_dests = 0usize;
    let mut full_matches = 0usize;
    let mut width_correct = 0usize;
    let mut delta_correct = 0usize;
    let mut class_correct = 0usize;
    for seed in SEEDS {
        let net = generate(&InternetConfig::tiny(seed));
        let result =
            run_multipath(&net, &MultipathConfig { workers: 4, seed, ..Default::default() });
        let score = validate_multipath(&net, &result);
        assert!(score.balancer_dests > 0, "seed {seed}: tiny nets must plant balancers");
        // Zero false balancers: a destination without a planted
        // balancer must never show one — per seed, not just overall.
        assert_eq!(
            score.false_balancers, 0,
            "seed {seed}: plain destinations flagged as balanced ({score:?})"
        );
        balancer_dests += score.balancer_dests;
        full_matches += score.full_matches;
        width_correct += score.width_correct;
        delta_correct += score.delta_correct;
        class_correct += score.class_correct;
    }
    let accuracy = full_matches as f64 / balancer_dests as f64;
    assert!(
        accuracy >= 0.95,
        "MDA must fully recover >= 95% of planted balancers: {full_matches}/{balancer_dests} \
         = {:.1}% (width {width_correct}, delta {delta_correct}, class {class_correct})",
        accuracy * 100.0
    );
}

#[test]
fn mda_classification_matches_planted_kind_per_destination() {
    // Classification alone (ignoring width/delta) should be essentially
    // perfect on discovered balancers: a per-flow balancer pins the
    // fixed-flow batch, a per-packet one scatters it.
    let net = generate(&InternetConfig::tiny(42));
    let result =
        run_multipath(&net, &MultipathConfig { workers: 4, seed: 42, ..Default::default() });
    for d in &result.per_dest {
        let truth = &net.dests[d.dest].truth;
        if d.class == BalancerClass::NotBalanced || !truth.has_balancer() {
            continue;
        }
        let expected =
            if truth.per_packet_lb { BalancerClass::PerPacket } else { BalancerClass::PerFlow };
        assert_eq!(
            d.class, expected,
            "dest {} ({}): planted {expected:?}, discovered {:?}",
            d.dest, d.addr, d.class
        );
    }
}
