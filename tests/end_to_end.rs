//! End-to-end integration: wire → simulator → tracer → anomaly analysis,
//! exercised through the umbrella crate's re-exports.

use paris_traceroute_repro::anomaly::{find_cycles, find_loops, DestinationGraph};
use paris_traceroute_repro::core::{trace, ClassicUdp, ParisIcmp, ParisTcp, ParisUdp, TraceConfig};
use paris_traceroute_repro::netsim::node::BalancerKind;
use paris_traceroute_repro::netsim::{scenarios, SimTransport, Simulator};
use paris_traceroute_repro::wire::FlowPolicy;

fn tx_for(sc: &scenarios::Scenario, seed: u64) -> SimTransport {
    SimTransport::new(Simulator::new(sc.topology.clone(), seed), sc.source)
}

#[test]
fn the_headline_claim_fig1() {
    // Classic traceroute infers a false link through the Fig. 1 topology;
    // Paris traceroute never does, across many seeds and flows.
    let sc = scenarios::fig1(BalancerKind::PerFlow(FlowPolicy::FiveTuple));
    let mut tx = tx_for(&sc, 1);
    let mut classic_false = 0;
    for pid in 0..128u16 {
        let mut s = ClassicUdp::new(pid);
        let r = trace(&mut tx, &mut s, sc.destination, TraceConfig::default());
        let a = r.addresses();
        if a[6] == Some(sc.a("A")) && a[7] == Some(sc.a("D")) {
            classic_false += 1;
        }
    }
    assert!(classic_false > 0, "classic must sometimes infer the false link");
    for i in 0..128u16 {
        let mut s = ParisUdp::new(41_000 + i, 52_000 + (i % 100));
        let r = trace(&mut tx, &mut s, sc.destination, TraceConfig::default());
        let a = r.addresses();
        assert!(
            !(a[6] == Some(sc.a("A")) && a[7] == Some(sc.a("D"))),
            "paris inferred the false link at flow {i}"
        );
    }
}

#[test]
fn every_paris_mode_is_loop_free_on_every_figure() {
    // UDP, ICMP and TCP Paris modes across fig1/fig3/fig6 (the per-flow
    // load-balancing figures): no loops, no cycles, ever.
    let figs: Vec<scenarios::Scenario> = vec![
        scenarios::fig1(BalancerKind::PerFlow(FlowPolicy::FiveTuple)),
        scenarios::fig3(BalancerKind::PerFlow(FlowPolicy::FirstFourOctets)),
        scenarios::fig6(BalancerKind::PerFlow(FlowPolicy::FiveTupleTos)),
    ];
    for (fi, sc) in figs.iter().enumerate() {
        let mut tx = tx_for(sc, 5);
        for rep in 0..8u16 {
            let mut strategies: Vec<Box<dyn paris_traceroute_repro::core::ProbeStrategy>> = vec![
                Box::new(ParisUdp::new(41_000 + rep, 52_000)),
                Box::new(ParisIcmp::new(0x1000 + rep)),
                Box::new(ParisTcp::new(55_000 + rep)),
            ];
            for s in &mut strategies {
                let r = trace(&mut tx, s.as_mut(), sc.destination, TraceConfig::default());
                assert!(
                    find_loops(&r).is_empty(),
                    "fig index {fi}, {} rep {rep}: loops {:?}",
                    s.id(),
                    r.addresses()
                );
                assert!(find_cycles(&r).is_empty(), "fig index {fi}, {} rep {rep}", s.id());
            }
        }
    }
}

#[test]
fn classic_loop_rate_matches_the_two_path_math() {
    // Fig. 3's unequal 2-way split: the loop (E, E) needs the hop-8 probe
    // on the short path and the hop-9 probe on the long path → 1/4.
    let sc = scenarios::fig3(BalancerKind::PerFlow(FlowPolicy::FiveTuple));
    let mut tx = tx_for(&sc, 77);
    let n = 400;
    let mut loops = 0;
    for pid in 0..n {
        let mut s = ClassicUdp::new(pid);
        let r = trace(&mut tx, &mut s, sc.destination, TraceConfig::default());
        if find_loops(&r).iter().any(|l| l.addr == sc.a("E")) {
            loops += 1;
        }
    }
    let frac = f64::from(loops) / f64::from(n);
    assert!(
        (frac - 0.25).abs() < 0.08,
        "loop fraction {frac} should be near 0.25 (binomial, n={n})"
    );
}

#[test]
fn diamond_pipeline_classic_vs_paris() {
    let sc = scenarios::fig6(BalancerKind::PerFlow(FlowPolicy::FiveTuple));
    let mut tx = tx_for(&sc, 3);
    let mut classic_g = DestinationGraph::new();
    let mut paris_g = DestinationGraph::new();
    for i in 0..96u16 {
        let mut cs = ClassicUdp::new(i);
        classic_g.ingest(&trace(&mut tx, &mut cs, sc.destination, TraceConfig::default()));
        let mut ps = ParisUdp::new(42_000 + i, 52_100 + i);
        paris_g.ingest(&trace(&mut tx, &mut ps, sc.destination, TraceConfig::default()));
    }
    // Paris graphs contain only true diamonds; classic ⊇ paris.
    let paris_sigs = paris_g.diamond_signatures();
    let classic_sigs = classic_g.diamond_signatures();
    assert!(paris_sigs.is_subset(&classic_sigs));
    assert!(classic_sigs.len() > paris_sigs.len(), "classic fabricates extra diamonds");
    assert!(!paris_g.is_diamond(sc.a("C"), sc.a("G")));
}

#[test]
fn per_packet_balancing_defeats_both_tools() {
    // The paper concedes Paris cannot fix per-packet balancing; verify
    // both tools see loops through a per-packet Fig. 3.
    let sc = scenarios::fig3(BalancerKind::PerPacket);
    let mut tx = tx_for(&sc, 13);
    let mut classic_loops = 0;
    let mut paris_loops = 0;
    for i in 0..64u16 {
        let mut cs = ClassicUdp::new(i);
        let r = trace(&mut tx, &mut cs, sc.destination, TraceConfig::default());
        classic_loops += usize::from(!find_loops(&r).is_empty());
        let mut ps = ParisUdp::new(41_000 + i, 52_000);
        let r = trace(&mut tx, &mut ps, sc.destination, TraceConfig::default());
        paris_loops += usize::from(!find_loops(&r).is_empty());
    }
    assert!(classic_loops > 0);
    assert!(paris_loops > 0, "per-packet balancing must defeat Paris too");
}

#[test]
fn umbrella_reexports_compose() {
    // The re-exported paths work together: wire packet through netsim
    // transport matched by a core strategy.
    use paris_traceroute_repro::core::ProbeStrategy;
    let sc = scenarios::linear(3);
    let mut tx = tx_for(&sc, 1);
    let mut s = ParisUdp::new(40_001, 50_001);
    let probe = s.build_probe(tx.source_addr(), sc.destination, 1, 0);
    let emitted = probe.emit();
    let parsed = paris_traceroute_repro::wire::Packet::parse(&emitted).unwrap();
    // Byte-identical on re-emit (struct equality is too strict: parsing
    // fills in the wire checksum and clears the pinned flag).
    assert_eq!(parsed.emit(), emitted);
    let r = trace(&mut tx, &mut s, sc.destination, TraceConfig::default());
    assert!(r.reached_destination());
}
