//! Counting-allocator regression harness: after warm-up, a full
//! campaign-style work unit — acquire a pooled simulator, run a Paris +
//! classic trace pair (probe construction included), release — performs
//! **zero heap allocations**. This pins what the performance notes used
//! to claim from bench eyeballing:
//!
//! * the timing wheel schedules/pops via recycled slab slots,
//! * in-flight packets live in the `PacketArena`,
//! * probe payloads circulate through `Transport::grab_payload` /
//!   `Transport::release`,
//! * per-trace bookkeeping (hop records, probe registry, per-hop
//!   progress counters) recycles through `TraceScratch`,
//! * inbox lanes and the ICMP scratch buffer keep their capacity across
//!   `Simulator::reset`,
//! * per-window batched probe construction (`ProbeStrategy::
//!   build_probe_batch`) stages specs, registry slots and built packets
//!   in `TraceScratch` vecs whose capacity survives recycling,
//! * the simulator serves each tick's events from a batch drained out
//!   of the wheel in one go (`EventWheel::pop_tick_into`), through a
//!   buffer that stays warm across `Simulator::reset`,
//! * and all of the above hold in both tracer modes: the strictly
//!   sequential `window = 1` discipline and the windowed default, whose
//!   speculative probes, truncated hops and probe batches must recycle
//!   too. (The windowed units below are what drive the batched
//!   construction and tick-batch delivery paths under the counter.)
//!
//! The file contains exactly one `#[test]`: the counting allocator is
//! installed process-wide (`#[global_allocator]` is a program-level
//! choice), and this file existing solely for that hook keeps the
//! harness honest. The counter itself is per-thread — see
//! [`CountingAllocator`] — so neither sibling tests nor libtest's own
//! machinery can smear allocations into the measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use paris_traceroute_repro::core::{trace_with, ClassicUdp, ParisUdp, TraceConfig, TraceScratch};
use paris_traceroute_repro::mda::{discover_with, MdaConfig, MdaScratch};
use paris_traceroute_repro::netsim::{scenarios, SimTransport, SimulatorPool};

/// `System`, but counting every allocation entry point. Deallocations
/// are free and uncounted: the property under test is "no allocator
/// traffic in steady state", and reallocs count as allocations.
///
/// The counter is **per-thread**: the work units under test are
/// single-threaded, and a process-global counter picks up libtest's
/// machinery — its main thread lazily initializes the mpmc channel
/// context for its result `recv` the first time that call actually
/// parks, which is scheduling-dependent and intermittently landed a
/// couple of harness allocations inside the measured window. A
/// const-initialized `Cell<u64>` with no destructor is allocator-safe:
/// first touch neither allocates nor registers a TLS destructor.
struct CountingAllocator;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn count_alloc() {
    // `try_with` never fails for a const-init, non-Drop TLS value; the
    // guard is belt-and-braces for allocations during thread teardown.
    let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

// SAFETY: every method forwards to `System`, which upholds the
// `GlobalAlloc` contract; the thread-local counter never touches the
// memory.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: caller's layout obligations pass straight to `System`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_alloc();
        System.alloc(layout)
    }

    // SAFETY: `ptr` was produced by `System` via the methods above.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: same forwarding; `System` validates the layout pair.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_alloc();
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: direct delegation to `System::alloc_zeroed`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_alloc();
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Allocations made by *this* thread so far.
fn allocations() -> u64 {
    ALLOCATIONS.with(|c| c.get())
}

#[test]
fn steady_state_trace_pair_allocates_nothing() {
    // The same shape as one campaign work unit, over the fig-1 style
    // scenario (a per-flow load-balanced diamond mid-path), so balanced
    // egress, ICMP quoting and terminal responses are all on the path.
    let sc = scenarios::fig1(paris_traceroute_repro::netsim::BalancerKind::PerFlow(
        paris_traceroute_repro::wire::FlowPolicy::FiveTuple,
    ));
    let mut pool = SimulatorPool::new(sc.topology.clone());
    let mut scratch = TraceScratch::new();

    let unit = |pool: &mut SimulatorPool, scratch: &mut TraceScratch, seed: u64| {
        // Alternate between the windowed default and the sequential
        // window so both drive loops are pinned allocation-free.
        let config = if seed.is_multiple_of(2) {
            TraceConfig::paper()
        } else {
            TraceConfig::paper().sequential()
        };
        let sim = pool.acquire(seed);
        let mut tx = SimTransport::new(sim, sc.source);
        let mut paris = ParisUdp::new(41_000 + (seed as u16 & 0xff), 52_000);
        let route = trace_with(&mut tx, &mut paris, sc.destination, config, scratch);
        assert!(route.reached_destination(), "scenario must stay healthy (seed {seed})");
        scratch.recycle(route);
        let mut classic = ClassicUdp::new(seed as u16 & 0x7fff);
        let route = trace_with(&mut tx, &mut classic, sc.destination, config, scratch);
        assert!(route.reached_destination(), "scenario must stay healthy (seed {seed})");
        scratch.recycle(route);
        pool.release(tx.into_simulator());
    };

    // Warm-up: fill the arena, the wheel slab, the payload pool, the
    // scratch pools and every lane/queue capacity.
    for seed in 0..5 {
        unit(&mut pool, &mut scratch, seed);
    }

    let before = allocations();
    for seed in 5..25 {
        unit(&mut pool, &mut scratch, seed);
    }
    let during = allocations() - before;

    assert_eq!(
        during, 0,
        "steady-state trace pairs must be allocation-free, saw {during} allocations \
         over 20 work units (probe construction included)"
    );

    // The same property for warm MDA multipath discovery: a full hop
    // enumeration — flow-varied probe construction, the windowed
    // registry, per-hop commit state, DAG link derivation, the inline
    // classification batch — recycles everything through `MdaScratch`
    // and the simulator pools. Runs inside this single #[test] so the
    // whole steady-state story lives under one measured harness.
    let sc6 = scenarios::fig6(paris_traceroute_repro::netsim::BalancerKind::PerFlow(
        paris_traceroute_repro::wire::FlowPolicy::FiveTuple,
    ));
    let mut mda_pool = SimulatorPool::new(sc6.topology.clone());
    let mut mda_scratch = MdaScratch::new();
    let mda_unit = |pool: &mut SimulatorPool, scratch: &mut MdaScratch, seed: u64| {
        // Alternate windowed and sequential walks so both drive loops
        // are pinned allocation-free. Campaign-grade alpha: at the
        // paper's 0.05 the stopping rule misses a branch on a few
        // percent of (hop, seed) combinations by design, and this test
        // asserts the full diamond on every seed.
        let base = MdaConfig { alpha: 0.01, ..MdaConfig::default() };
        let config = if seed.is_multiple_of(2) { base } else { base.sequential() };
        let sim = pool.acquire(seed);
        let mut tx = SimTransport::new(sim, sc6.source);
        let map = discover_with(&mut tx, sc6.destination, &config, scratch);
        assert!(map.reached, "fig6 must stay healthy (seed {seed})");
        assert_eq!(map.max_width(), 3, "the diamond must be enumerated (seed {seed})");
        scratch.recycle(map);
        pool.release(tx.into_simulator());
    };

    for seed in 0..5 {
        mda_unit(&mut mda_pool, &mut mda_scratch, seed);
    }
    let before = allocations();
    for seed in 5..15 {
        mda_unit(&mut mda_pool, &mut mda_scratch, seed);
    }
    let during = allocations() - before;

    assert_eq!(
        during, 0,
        "steady-state MDA hop enumeration must be allocation-free, saw {during} allocations \
         over 10 discovery walks (flow-varied probe construction included)"
    );
}
