//! Campaign-level determinism: with a fixed seed, a campaign's entire
//! `ComparisonReport` must be bit-identical across runs — including runs
//! that construct fresh simulators, exercising the copy-on-write routing
//! overlay and the borrow-based forwarding hot path end to end. This is
//! the regression gate for simulator performance refactors: any change
//! that perturbs event order, RNG consumption or routing semantics
//! surfaces here as a digest mismatch.

use paris_traceroute_repro::campaign::{
    report_digest, run, CampaignConfig, CampaignResult, DynamicsConfig,
};
use paris_traceroute_repro::topogen::{generate, InternetConfig, SyntheticInternet};

fn net() -> SyntheticInternet {
    generate(&InternetConfig::tiny(42))
}

fn campaign(dynamics: DynamicsConfig) -> CampaignResult {
    let config =
        CampaignConfig { rounds: 3, workers: 4, seed: 99, dynamics, ..CampaignConfig::default() };
    run(&net(), &config)
}

#[test]
fn comparison_report_is_bit_identical_across_runs() {
    let a = campaign(DynamicsConfig::default());
    let b = campaign(DynamicsConfig::default());
    assert_eq!(a.comparison, b.comparison, "comparison must be a pure function of the seed");
    assert_eq!(a.classic_report, b.classic_report);
    assert_eq!(a.paris_report, b.paris_report);
    assert_eq!(report_digest(&a), report_digest(&b), "canonical digests must match byte-for-byte");
}

#[test]
fn comparison_report_is_bit_identical_without_dynamics() {
    // With dynamics off the digest isolates the forwarding/response hot
    // path — exactly what campaign_digest.rs prints for refactor diffs.
    let a = campaign(DynamicsConfig::none());
    let b = campaign(DynamicsConfig::none());
    assert_eq!(a.comparison, b.comparison);
    assert_eq!(report_digest(&a), report_digest(&b));
}

#[test]
fn digest_reflects_every_report_field() {
    let result = campaign(DynamicsConfig::none());
    let digest = report_digest(&result);
    for needle in [
        "classic:",
        "paris:",
        "loop_causes:",
        "cycle_causes:",
        "diamond_per_flow_pct:",
        "loops_only_in_paris_pct:",
        "routes_total",
        "probes_sent",
    ] {
        assert!(digest.contains(needle), "digest missing {needle:?}:\n{digest}");
    }
}
