//! Cross-crate property tests: invariants that must hold for *any*
//! generated network, seed and tool.

use proptest::prelude::*;

use paris_traceroute_repro::anomaly::{find_cycles, find_loops};
use paris_traceroute_repro::core::{trace, ClassicUdp, ParisUdp, TraceConfig};
use paris_traceroute_repro::netsim::{SimTransport, Simulator};
use paris_traceroute_repro::topogen::{generate, InternetConfig};

fn tiny_net_config(seed: u64) -> InternetConfig {
    InternetConfig { seed, n_destinations: 12, n_core: 3, ..InternetConfig::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every trace terminates with a consistent structure, whatever the
    /// network throws at it.
    #[test]
    fn traces_always_terminate_well_formed(seed in 0u64..5000, sim_seed in 0u64..1000) {
        let net = generate(&tiny_net_config(seed));
        let mut tx = SimTransport::new(Simulator::new(net.topology.clone(), sim_seed), net.source);
        for (i, d) in net.dests.iter().enumerate() {
            let mut s = ClassicUdp::new(i as u16);
            let r = trace(&mut tx, &mut s, d.addr, TraceConfig::default());
            prop_assert!(!r.hops.is_empty());
            prop_assert!(r.hops.len() <= 39);
            // Hop TTLs are consecutive from min_ttl.
            for (k, hop) in r.hops.iter().enumerate() {
                prop_assert_eq!(hop.ttl as usize, r.min_ttl as usize + k);
                prop_assert_eq!(hop.probes.len(), 1);
            }
            // Responses carry metadata; stars carry none.
            for p in r.hops.iter().flat_map(|h| &h.probes) {
                if p.addr.is_some() {
                    prop_assert!(p.rtt.is_some());
                    prop_assert!(p.kind.is_some());
                    prop_assert!(p.response_ttl.is_some());
                    prop_assert!(p.ip_id.is_some());
                } else {
                    prop_assert!(p.rtt.is_none());
                    prop_assert!(p.kind.is_none());
                }
            }
        }
    }

    /// Loops and cycles never overlap by definition: a loop position is
    /// never also reported as a cycle pair (adjacent repeats are loops).
    #[test]
    fn loops_and_cycles_are_disjoint(seed in 0u64..5000) {
        let net = generate(&tiny_net_config(seed));
        let mut tx = SimTransport::new(Simulator::new(net.topology.clone(), 7), net.source);
        for (i, d) in net.dests.iter().enumerate() {
            let mut s = ClassicUdp::new(i as u16);
            let r = trace(&mut tx, &mut s, d.addr, TraceConfig::default());
            for c in find_cycles(&r) {
                prop_assert!(c.second > c.first + 1, "cycle {c:?} is adjacent — that is a loop");
            }
            for l in find_loops(&r) {
                prop_assert!(l.len >= 2);
            }
        }
    }

    /// Determinism: identical seeds produce identical measured routes.
    #[test]
    fn identical_seeds_identical_routes(seed in 0u64..3000) {
        let run_once = || {
            let net = generate(&tiny_net_config(seed));
            let mut tx =
                SimTransport::new(Simulator::new(net.topology.clone(), 99), net.source);
            net.dests
                .iter()
                .map(|d| {
                    let mut s = ParisUdp::new(40_000, 50_000);
                    trace(&mut tx, &mut s, d.addr, TraceConfig::default()).addresses()
                })
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run_once(), run_once());
    }

    /// A Paris trace toward a loss-free, anomaly-free network is always
    /// clean: no stars, no repeats, destination reached.
    #[test]
    fn clean_networks_give_clean_routes(seed in 0u64..5000) {
        let config = InternetConfig {
            seed,
            n_destinations: 10,
            n_core: 3,
            per_flow_lb: 0.0,
            per_packet_lb: 0.0,
            zero_ttl: 0.0,
            broken: 0.0,
            nat: 0.0,
            silent_router: 0.0,
            firewalled_dest: 0.0,
            link_loss: 0.0,
            ..InternetConfig::default()
        };
        let net = generate(&config);
        let mut tx = SimTransport::new(Simulator::new(net.topology.clone(), 1), net.source);
        for d in &net.dests {
            let mut s = ParisUdp::new(40_000, 50_000);
            let r = trace(&mut tx, &mut s, d.addr, TraceConfig::default());
            prop_assert!(r.reached_destination());
            prop_assert_eq!(r.stars(), 0);
            prop_assert!(find_loops(&r).is_empty());
            prop_assert!(find_cycles(&r).is_empty());
            // All addresses distinct.
            let addrs: Vec<_> = r.addresses().into_iter().flatten().collect();
            let set: std::collections::HashSet<_> = addrs.iter().collect();
            prop_assert_eq!(set.len(), addrs.len());
        }
    }

    /// The Paris invariant under arbitrary per-flow networks: a Paris
    /// UDP trace never shows a loop unless a non-flow anomaly source
    /// (zero-TTL, NAT, broken router, per-packet LB) is on the branch.
    #[test]
    fn paris_loops_only_with_non_flow_causes(seed in 0u64..4000) {
        let config = InternetConfig {
            seed,
            n_destinations: 12,
            n_core: 3,
            per_flow_lb: 0.8,
            per_packet_lb: 0.0,
            zero_ttl: 0.0,
            broken: 0.0,
            nat: 0.0,
            silent_router: 0.0,
            firewalled_dest: 0.0,
            link_loss: 0.0,
            ..InternetConfig::default()
        };
        let net = generate(&config);
        let mut tx = SimTransport::new(Simulator::new(net.topology.clone(), 3), net.source);
        for (i, d) in net.dests.iter().enumerate() {
            let mut s = ParisUdp::new(40_000 + i as u16, 50_000);
            let r = trace(&mut tx, &mut s, d.addr, TraceConfig::default());
            prop_assert!(
                find_loops(&r).is_empty(),
                "paris loop with only per-flow LB on branch: {:?}",
                r.addresses()
            );
        }
    }
}
