//! Integration tests for the full campaign pipeline: topology generation
//! → sharded side-by-side probing → anomaly accumulation → attribution.

use paris_traceroute_repro::campaign::{run, validate_causes, CampaignConfig, DynamicsConfig};
use paris_traceroute_repro::topogen::{generate, InternetConfig};
use pt_anomaly::stats::{FinalCycleCause, FinalLoopCause};

fn small_net(seed: u64) -> pt_topogen::SyntheticInternet {
    generate(&InternetConfig { seed, n_destinations: 150, ..InternetConfig::default() })
}

#[test]
fn worker_count_does_not_change_totals() {
    // Workers claim (destination, round) units; total routes and
    // destinations are invariant to who claims what.
    let net = small_net(44);
    for workers in [1, 3, 8] {
        let result =
            run(&net, &CampaignConfig { rounds: 2, workers, seed: 9, ..CampaignConfig::default() });
        assert_eq!(result.classic_report.routes_total, 300, "workers = {workers}");
        assert_eq!(result.classic_report.destinations, 150);
        assert_eq!(result.paris_report.routes_total, 300);
    }
}

#[test]
fn paris_dominates_classic_on_every_anomaly_family() {
    let net = small_net(45);
    let result = run(
        &net,
        &CampaignConfig { rounds: 10, workers: 8, seed: 10, ..CampaignConfig::default() },
    );
    let c = &result.classic_report;
    let p = &result.paris_report;
    assert!(c.pct_routes_with_loop >= p.pct_routes_with_loop);
    assert!(c.diamonds_total >= p.diamonds_total);
    // Both tools reach the vast majority of (non-firewalled) destinations.
    assert!(c.pct_routes_reaching_destination > 80.0);
    assert!(p.pct_routes_reaching_destination > 80.0);
}

#[test]
fn attribution_covers_every_classic_loop() {
    // Percentages over classic loop instances must sum to ~100.
    let net = small_net(46);
    let result =
        run(&net, &CampaignConfig { rounds: 8, workers: 8, seed: 11, ..CampaignConfig::default() });
    if result.classic.loop_instance_count() == 0 {
        return; // nothing to attribute at this seed/scale
    }
    let total: f64 = [
        FinalLoopCause::PerFlowLoadBalancing,
        FinalLoopCause::ZeroTtlForwarding,
        FinalLoopCause::Unreachability,
        FinalLoopCause::AddressRewriting,
        FinalLoopCause::PerPacketSuspected,
    ]
    .into_iter()
    .map(|cause| result.comparison.loop_pct(cause))
    .sum();
    assert!((total - 100.0).abs() < 1e-6, "loop attribution sums to {total}");
    let cycle_total: f64 = [
        FinalCycleCause::PerFlowLoadBalancing,
        FinalCycleCause::ForwardingLoop,
        FinalCycleCause::Unreachability,
        FinalCycleCause::Other,
    ]
    .into_iter()
    .map(|cause| result.comparison.cycle_pct(cause))
    .sum();
    if result.classic.cycle_instance_count() > 0 {
        assert!((cycle_total - 100.0).abs() < 1e-6, "cycle attribution sums to {cycle_total}");
    }
}

#[test]
fn dynamics_off_means_no_forwarding_loop_cycles() {
    let net = small_net(47);
    let result = run(
        &net,
        &CampaignConfig {
            rounds: 6,
            workers: 8,
            seed: 12,
            dynamics: DynamicsConfig::none(),
            ..CampaignConfig::default()
        },
    );
    assert_eq!(
        result.comparison.cycle_pct(FinalCycleCause::ForwardingLoop),
        0.0,
        "no routing dynamics → no forwarding loops"
    );
}

#[test]
fn validation_never_reports_more_hits_than_flags() {
    let net = small_net(48);
    let result = run(
        &net,
        &CampaignConfig {
            rounds: 4,
            workers: 4,
            seed: 13,
            keep_routes: true,
            ..CampaignConfig::default()
        },
    );
    let v = validate_causes(&net, &result.routes, &result.classic, &result.paris);
    for score in [v.zero_ttl, v.rewriting, v.unreachability, v.per_flow] {
        assert!(score.hits <= score.flagged);
        assert!(score.hits <= score.truth_positives);
        assert!((0.0..=1.0).contains(&score.precision()));
        assert!((0.0..=1.0).contains(&score.recall()));
    }
}

#[test]
fn keep_routes_records_both_tools_every_round() {
    let net = small_net(49);
    let rounds = 3;
    let result = run(
        &net,
        &CampaignConfig {
            rounds,
            workers: 4,
            seed: 14,
            keep_routes: true,
            ..CampaignConfig::default()
        },
    );
    assert_eq!(result.routes.len(), 150 * rounds * 2);
    let classic =
        result.routes.iter().filter(|(t, _, _)| *t == pt_core::StrategyId::ClassicUdp).count();
    assert_eq!(classic, 150 * rounds);
}
