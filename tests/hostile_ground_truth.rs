//! Hostile-network ground truth: the adaptive walker recovers the
//! destinations the fixed-rate walker gets wrong.
//!
//! The generator plants all four PR-6 faults — token-bucket ICMP rate
//! limiters, MPLS-hidden hop runs, UDP-dropping firewalls, asymmetric
//! return paths — and records them per destination
//! (`DestTruth::any_hostile_fault`). A fixed-rate campaign and an
//! adaptive campaign walk the same networks; the adaptive one must fix
//! at least 90% of the fixed walker's hostile-destination failures
//! without ever inventing a balancer on a plain destination.

use paris_traceroute_repro::campaign::{
    run_multipath, validate_fault_recovery, FaultRecoveryScore, MultipathConfig,
};
use paris_traceroute_repro::topogen::{generate, InternetConfig};

const SEEDS: [u64; 3] = [42, 7, 2006];

fn campaigns_for(seed: u64) -> FaultRecoveryScore {
    let net = generate(&InternetConfig::hostile(seed));
    let fixed = run_multipath(&net, &MultipathConfig { workers: 4, seed, ..Default::default() });
    let adaptive = run_multipath(
        &net,
        &MultipathConfig { workers: 4, seed, adaptive: true, ..Default::default() },
    );
    validate_fault_recovery(&net, &fixed, &adaptive)
}

#[test]
fn adaptive_walker_recovers_what_the_fixed_walker_misses() {
    let mut fixed_wrong = 0usize;
    let mut recovered = 0usize;
    let mut hostile = 0usize;
    for seed in SEEDS {
        let score = campaigns_for(seed);
        eprintln!("seed {seed}: {score:?} (recovery {:.3})", score.recovery_rate());
        assert_eq!(
            score.false_balancers, 0,
            "seed {seed}: adaptive walker invented balancers: {score:?}"
        );
        assert!(score.hostile_dests > 0, "seed {seed}: no hostile faults planted");
        fixed_wrong += score.fixed_wrong;
        recovered += score.recovered;
        hostile += score.hostile_dests;
    }
    // The faults must actually corrupt the fixed-rate walker — a
    // harmless fault layer would make the recovery claim vacuous.
    assert!(
        fixed_wrong * 3 >= hostile,
        "faults barely hurt the fixed walker: {fixed_wrong} wrong of {hostile} hostile"
    );
    let rate = recovered as f64 / fixed_wrong as f64;
    assert!(
        rate >= 0.9,
        "adaptive walker recovered only {recovered}/{fixed_wrong} ({rate:.3}) of the \
         fixed walker's hostile-destination failures"
    );
}

#[test]
fn adaptive_overhead_on_fault_free_networks_is_bounded() {
    // On networks with no hostile faults none of the adaptive
    // machinery should engage beyond its (clamped) deeper retry
    // budget: the walk must cost at most 1.3x the fixed walker's
    // virtual probing time per destination.
    for seed in SEEDS {
        let net = generate(&InternetConfig::tiny(seed));
        let fixed =
            run_multipath(&net, &MultipathConfig { workers: 4, seed, ..Default::default() });
        let adaptive = run_multipath(
            &net,
            &MultipathConfig { workers: 4, seed, adaptive: true, ..Default::default() },
        );
        let ratio = adaptive.mean_virtual_secs / fixed.mean_virtual_secs;
        eprintln!(
            "seed {seed}: fixed {:.3}s adaptive {:.3}s ratio {ratio:.3}",
            fixed.mean_virtual_secs, adaptive.mean_virtual_secs
        );
        assert!(
            ratio <= 1.3,
            "seed {seed}: adaptive overhead {ratio:.3} exceeds the 1.3x gate \
             (fixed {:.3}s, adaptive {:.3}s)",
            fixed.mean_virtual_secs,
            adaptive.mean_virtual_secs
        );
    }
}
