//! Windowed-vs-sequential equivalence: on deterministic lossless
//! scenarios, the windowed tracer (any `window`) must measure *exactly*
//! the route the sequential tracer measures — same addresses, same
//! response kinds, same RTTs and IP IDs, same halt reason — for every
//! one of the six probing strategies. The window is a virtual-time
//! knob, never a measurement knob.
//!
//! Each trace gets a fresh simulator so the comparison is exact down to
//! per-node IP-ID streams (a shared simulator would let one trace's
//! speculative probes advance another trace's counters, which is fine
//! in a campaign but would blur this test's full-equality assertion).

use paris_traceroute_repro::core::{
    trace, ClassicIcmp, ClassicUdp, HaltReason, MeasuredRoute, ParisIcmp, ParisTcp, ParisUdp,
    ProbeStrategy, TcpTraceroute, TraceConfig,
};
use paris_traceroute_repro::netsim::{scenarios, BalancerKind, SimTransport, Simulator};
use paris_traceroute_repro::wire::FlowPolicy;

fn strategies() -> Vec<Box<dyn ProbeStrategy>> {
    vec![
        Box::new(ClassicUdp::new(777)),
        Box::new(ClassicIcmp::new(777)),
        Box::new(ParisUdp::new(41_234, 52_345)),
        Box::new(ParisIcmp::new(0x5aa5)),
        Box::new(ParisTcp::new(55_111)),
        Box::new(TcpTraceroute::new(55_222)),
    ]
}

fn scenario_list() -> Vec<(&'static str, scenarios::Scenario)> {
    vec![
        ("linear", scenarios::linear(7)),
        ("fig1", scenarios::fig1(BalancerKind::PerFlow(FlowPolicy::FiveTuple))),
        ("fig3", scenarios::fig3(BalancerKind::PerFlow(FlowPolicy::FirstFourOctets))),
        ("fig4", scenarios::fig4()),
        ("fig5", scenarios::fig5()),
        ("fig6", scenarios::fig6(BalancerKind::PerFlow(FlowPolicy::FiveTupleTos))),
        ("unreachability", scenarios::unreachability_loop()),
    ]
}

fn run_one(
    sc: &scenarios::Scenario,
    strat: &mut dyn ProbeStrategy,
    window: u8,
) -> (MeasuredRoute, f64) {
    let mut tx = SimTransport::new(Simulator::new(sc.topology.clone(), 11), sc.source);
    let config = TraceConfig { window, ..TraceConfig::default() };
    let route = trace(&mut tx, strat, sc.destination, config);
    (route, tx.now().as_secs_f64())
}

#[test]
fn every_strategy_measures_identical_routes_at_any_window() {
    for (name, sc) in scenario_list() {
        for mut strat in strategies() {
            let id = strat.id();
            let (baseline, _) = run_one(&sc, strat.as_mut(), 1);
            assert_ne!(baseline.hops.len(), 0, "{name}/{id}: empty sequential route");
            for window in [2u8, 3, 8, 39] {
                let (route, _) = run_one(&sc, strat.as_mut(), window);
                assert_eq!(
                    route, baseline,
                    "{name}/{id}: window {window} diverged from the sequential route"
                );
            }
        }
    }
}

#[test]
fn windowed_probing_cuts_virtual_trace_time() {
    // The same routes, measured faster: on the 7-router chain every
    // strategy's windowed trace must finish in well under the
    // sequential virtual time (the RTT ladder pipelines ~x window).
    let sc = scenarios::linear(7);
    for mut strat in strategies() {
        let id = strat.id();
        let (_, sequential_secs) = run_one(&sc, strat.as_mut(), 1);
        let (_, windowed_secs) = run_one(&sc, strat.as_mut(), TraceConfig::default().window);
        assert!(
            windowed_secs * 2.0 <= sequential_secs,
            "{id}: windowed trace took {windowed_secs}s vs sequential {sequential_secs}s"
        );
    }
}

#[test]
fn star_limit_truncation_matches_sequential_on_firewalled_destinations() {
    // A blackholed tail exercises both PR-4 fixes at once: the trace
    // abandons after *exactly* eight star hops, and windowed
    // speculation past the limit is discarded.
    use paris_traceroute_repro::netsim::time::SimDuration;
    use paris_traceroute_repro::netsim::{HostConfig, RouterConfig, TopologyBuilder};

    let mut b = TopologyBuilder::new();
    let s = b.host("S", HostConfig::default());
    let r1 = b.router("r1", RouterConfig::default());
    let r2 = b.router("r2", RouterConfig::default());
    let d = b.host("D", HostConfig::firewalled());
    b.link(s, r1, SimDuration::from_millis(1), 0.0);
    b.link(r1, r2, SimDuration::from_millis(2), 0.0);
    b.link(r2, d, SimDuration::from_millis(1), 0.0);
    b.default_via(s, r1);
    b.default_via(r1, r2);
    b.default_via(r2, d);
    b.default_via(d, r2);
    let s_pfx = b.subnet_of(s);
    b.route_via(r1, s_pfx, s);
    b.route_via(r2, s_pfx, r1);
    let dst = b.addr_of(d);
    let topo = std::sync::Arc::new(b.build());

    let run = |window: u8| {
        let mut tx = SimTransport::new(Simulator::new(topo.clone(), 3), s);
        let mut strat = ParisUdp::new(41_000, 52_000);
        let config = TraceConfig { window, ..TraceConfig::default() };
        let route = trace(&mut tx, &mut strat, dst, config);
        (route, tx.now().as_secs_f64())
    };
    let (baseline, sequential_secs) = run(1);
    assert_eq!(baseline.halt, HaltReason::StarLimit);
    assert_eq!(baseline.hops.len(), 2 + 8, "two routers + exactly eight star hops");
    assert_eq!(baseline.stars(), 8);
    for window in [3u8, 8] {
        let (route, windowed_secs) = run(window);
        assert_eq!(route, baseline, "window {window}");
        assert!(
            windowed_secs * 2.0 <= sequential_secs,
            "window {window}: star timeouts must overlap ({windowed_secs}s vs {sequential_secs}s)"
        );
    }
}
