//! Crash-safety acceptance: kill a checkpointed campaign at *every*
//! checkpoint boundary, resume it from the snapshot, and demand a
//! report digest **byte-identical** to the uninterrupted run's — for
//! worker counts 1, 4 and 8, in both campaign modes, with faults
//! injected so quarantine and watchdog state cross the snapshot too.
//!
//! This works because the campaign is a resumable fold: units derive
//! all randomness from `(seed, destination, round)`, blocks merge
//! order-insensitively, and ordering is imposed only at finalization.
//! The snapshot captures the fold state exactly (floats as bit
//! patterns), so where the work was cut — and who resumes it — cannot
//! leave a trace in the result.

use std::path::PathBuf;

use paris_traceroute_repro::campaign::{
    multipath_digest, report_digest, run, run_checkpointed, run_multipath,
    run_multipath_checkpointed, run_multipath_resumed, run_resumed, CampaignConfig,
    CheckpointConfig, MultipathConfig,
};
use paris_traceroute_repro::topogen::{generate, InternetConfig, SyntheticInternet};

fn net() -> SyntheticInternet {
    generate(&InternetConfig::tiny(42))
}

fn tmp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pt-checkpoint-{}-{name}.snap", std::process::id()));
    p
}

fn campaign_config(workers: usize) -> CampaignConfig {
    let mut config = CampaignConfig { rounds: 2, workers, seed: 99, ..Default::default() };
    // Cross faults through the snapshot: a quarantined unit and a
    // watchdog-degraded runaway must survive kill/resume too.
    config.trace.probe_budget = 30;
    config.inject.panic_units.insert(5);
    config.inject.runaway_units.insert(7);
    config
}

#[test]
fn side_by_side_resume_is_byte_identical_at_every_kill_point() {
    let net = net();
    // 40 dests × 2 rounds = 80 units; 17-unit blocks put checkpoints at
    // awkward, non-divisor boundaries (17, 34, 51, 68, 80).
    const EVERY: u32 = 17;
    const CHECKPOINTS: usize = 5;
    for workers in [1usize, 4, 8] {
        let config = campaign_config(workers);
        let uninterrupted = report_digest(&run(&net, &config));
        for kill_after in 1..CHECKPOINTS {
            let path = tmp_path(&format!("side-w{workers}-k{kill_after}"));
            let ckpt = CheckpointConfig {
                path: path.clone(),
                every_units: EVERY,
                stop_after_checkpoints: Some(kill_after),
            };
            let early = run_checkpointed(&net, &config, &ckpt)
                .expect("checkpointed run writes its snapshot");
            assert!(early.is_none(), "killed after checkpoint {kill_after}");
            // Resume under a *different* worker count than died: the
            // worker knob stays pure even across a process boundary.
            let resumed_workers = [1usize, 4, 8][kill_after % 3];
            let resume_config = CampaignConfig { workers: resumed_workers, ..config.clone() };
            let resume_ckpt = CheckpointConfig { stop_after_checkpoints: None, ..ckpt };
            let result = run_resumed(&net, &resume_config, &resume_ckpt)
                .expect("snapshot loads")
                .expect("resumed run completes");
            assert_eq!(
                report_digest(&result),
                uninterrupted,
                "workers = {workers}, killed after checkpoint {kill_after}, \
                 resumed with {resumed_workers}"
            );
            assert_eq!(result.quarantined.len(), 1);
            let _ = std::fs::remove_file(&path);
        }
    }
}

#[test]
fn multipath_resume_is_byte_identical_at_every_kill_point() {
    let net = net();
    const EVERY: u32 = 23;
    const CHECKPOINTS: usize = 4; // ceil(80 / 23)
    for workers in [1usize, 4, 8] {
        let mut config = MultipathConfig { rounds: 2, workers, seed: 7, ..Default::default() };
        config.mda.probe_budget = 240;
        config.inject.panic_units.insert(3);
        config.inject.runaway_units.insert(9);
        let uninterrupted = multipath_digest(&run_multipath(&net, &config));
        for kill_after in 1..CHECKPOINTS {
            let path = tmp_path(&format!("mda-w{workers}-k{kill_after}"));
            let ckpt = CheckpointConfig {
                path: path.clone(),
                every_units: EVERY,
                stop_after_checkpoints: Some(kill_after),
            };
            let early = run_multipath_checkpointed(&net, &config, &ckpt)
                .expect("checkpointed run writes its snapshot");
            assert!(early.is_none(), "killed after checkpoint {kill_after}");
            let resumed_workers = [8usize, 1, 4][kill_after % 3];
            let resume_config = MultipathConfig { workers: resumed_workers, ..config.clone() };
            let resume_ckpt = CheckpointConfig { stop_after_checkpoints: None, ..ckpt };
            let result = run_multipath_resumed(&net, &resume_config, &resume_ckpt)
                .expect("snapshot loads")
                .expect("resumed run completes");
            assert_eq!(
                multipath_digest(&result),
                uninterrupted,
                "workers = {workers}, killed after checkpoint {kill_after}, \
                 resumed with {resumed_workers}"
            );
            assert_eq!(result.report.degraded_units, 1);
            let _ = std::fs::remove_file(&path);
        }
    }
}

#[test]
fn resuming_a_completed_snapshot_reproduces_the_result_without_rework() {
    let net = net();
    let config = campaign_config(4);
    let path = tmp_path("completed");
    let ckpt =
        CheckpointConfig { path: path.clone(), every_units: 40, stop_after_checkpoints: None };
    let first = run_checkpointed(&net, &config, &ckpt).unwrap().expect("completes");
    // The final snapshot holds the whole fold: resuming it re-runs
    // nothing and finalizes straight to the same digest.
    let again = run_resumed(&net, &config, &ckpt).unwrap().expect("finalizes from disk");
    assert_eq!(report_digest(&again), report_digest(&first));
    let _ = std::fs::remove_file(&path);
}
