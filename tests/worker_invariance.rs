//! The pool refactor's headline guarantee: the worker count is a pure
//! performance knob. Every random draw a `(destination, round)` work
//! unit makes is derived from `(campaign seed, destination, round)` —
//! never from the worker that claimed it — and merging is
//! order-insensitive, so a fixed-seed campaign's canonical digest must
//! be *byte-identical* for any number of workers.

use paris_traceroute_repro::campaign::{
    multipath_digest, report_digest, run, run_multipath, CampaignConfig, CampaignResult,
    DynamicsConfig, MultipathConfig,
};
use paris_traceroute_repro::topogen::{generate, InternetConfig, SyntheticInternet};

fn net() -> SyntheticInternet {
    generate(&InternetConfig::tiny(42))
}

fn campaign(net: &SyntheticInternet, workers: usize, dynamics: DynamicsConfig) -> CampaignResult {
    let config =
        CampaignConfig { rounds: 3, workers, seed: 99, dynamics, ..CampaignConfig::default() };
    run(net, &config)
}

#[test]
fn digest_is_byte_identical_for_workers_1_4_8() {
    let net = net();
    let baseline = campaign(&net, 1, DynamicsConfig::default());
    let baseline_digest = report_digest(&baseline);
    for workers in [4, 8] {
        let result = campaign(&net, workers, DynamicsConfig::default());
        assert_eq!(result.comparison, baseline.comparison, "workers = {workers}");
        assert_eq!(
            report_digest(&result),
            baseline_digest,
            "digest must not depend on worker count (workers = {workers})"
        );
    }
}

#[test]
fn digest_is_byte_identical_for_workers_1_4_8_without_dynamics() {
    // Dynamics off isolates the forwarding/response hot path: if this
    // fails while the dynamic variant passes, the per-unit *simulator*
    // seeds leak worker identity; if both fail, the campaign-level
    // draws (ports, dynamics) do.
    let net = net();
    let baseline = report_digest(&campaign(&net, 1, DynamicsConfig::none()));
    for workers in [4, 8] {
        let digest = report_digest(&campaign(&net, workers, DynamicsConfig::none()));
        assert_eq!(digest, baseline, "workers = {workers}");
    }
}

#[test]
fn multipath_digest_is_byte_identical_for_workers_1_4_8() {
    // The new campaign mode inherits the same guarantee: every MDA
    // unit's draws (flow-family ports, the simulator seed) derive from
    // `(seed, destination, round)`, units are re-sorted into unit
    // order, so the full multipath digest — per-unit discoveries,
    // per-destination merge, aggregates, and the virtual-time float —
    // is byte-identical for any worker count.
    let net = net();
    let campaign = |workers: usize| {
        let config = MultipathConfig { rounds: 2, workers, seed: 99, ..Default::default() };
        run_multipath(&net, &config)
    };
    let baseline = campaign(1);
    let baseline_digest = multipath_digest(&baseline);
    assert!(baseline.report.balanced_dests > 0, "the workload must exercise balancers");
    for workers in [4, 8] {
        let result = campaign(workers);
        assert_eq!(
            multipath_digest(&result),
            baseline_digest,
            "multipath digest must not depend on worker count (workers = {workers})"
        );
        assert_eq!(
            result.mean_virtual_secs.to_bits(),
            baseline.mean_virtual_secs.to_bits(),
            "workers = {workers}"
        );
    }
}

#[test]
fn adaptive_multipath_digest_is_worker_invariant_under_faults() {
    // The PR-6 adaptive machinery (backoff jitter, pacing, protocol
    // fallback) must not leak worker identity either: its jitter seed
    // derives from the unit stream, and every retry/backoff decision is
    // a function of the unit's own probe history — so even on a network
    // with all four hostile faults planted, the adaptive digest is
    // byte-identical across worker counts.
    let net = generate(&InternetConfig::hostile(42));
    let campaign = |workers: usize| {
        let config =
            MultipathConfig { rounds: 2, workers, seed: 99, adaptive: true, ..Default::default() };
        run_multipath(&net, &config)
    };
    let baseline = campaign(1);
    let baseline_digest = multipath_digest(&baseline);
    for workers in [4, 8] {
        let result = campaign(workers);
        assert_eq!(
            multipath_digest(&result),
            baseline_digest,
            "adaptive digest must not depend on worker count (workers = {workers})"
        );
        assert_eq!(
            result.mean_virtual_secs.to_bits(),
            baseline.mean_virtual_secs.to_bits(),
            "workers = {workers}"
        );
    }
}

#[test]
fn mean_virtual_secs_is_worker_count_independent() {
    // Float summation order is pinned by sorting per-unit times into
    // unit order before reducing, so even the f64 is bit-identical.
    let net = net();
    let baseline = campaign(&net, 1, DynamicsConfig::default()).mean_virtual_secs;
    assert!(baseline > 0.0);
    for workers in [4, 8] {
        let got = campaign(&net, workers, DynamicsConfig::default()).mean_virtual_secs;
        assert_eq!(got.to_bits(), baseline.to_bits(), "workers = {workers}");
    }
}
