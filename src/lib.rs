//! Umbrella crate re-exporting the Paris traceroute reproduction workspace.
#![warn(missing_docs)]

pub use pt_anomaly as anomaly;
pub use pt_campaign as campaign;
pub use pt_core as core;
pub use pt_mda as mda;
pub use pt_netsim as netsim;
pub use pt_topogen as topogen;
pub use pt_wire as wire;
