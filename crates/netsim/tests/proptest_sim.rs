//! Property tests for the simulator: conservation, determinism, and
//! TTL-bounded termination on randomly generated topologies.

use proptest::prelude::*;
use pt_netsim::addr::Ipv4Prefix;
use pt_netsim::node::{BalancerKind, HostConfig, RouterConfig};
use pt_netsim::time::SimDuration;
use pt_netsim::{NodeId, SimTransport, Simulator, Topology, TopologyBuilder};
use pt_wire::ipv4::{protocol, Ipv4Header};
use pt_wire::{FlowPolicy, Packet, Transport, UdpDatagram};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// A random linear chain with optional balanced middle and random loss.
fn build_random(
    n_chain: usize,
    balanced: bool,
    per_packet: bool,
    loss_milli: u16,
) -> (Arc<Topology>, NodeId, Ipv4Addr) {
    let loss = f64::from(loss_milli % 200) / 1000.0; // 0..0.2
    let delay = SimDuration::from_millis(1);
    let mut b = TopologyBuilder::new();
    let s = b.host("S", HostConfig::default());
    let mut prev = s;
    let s_pfx = b.subnet_of(s);
    let mut chain = Vec::new();
    for i in 0..n_chain {
        let r = b.router(&format!("r{i}"), RouterConfig::default());
        b.link(prev, r, delay, loss);
        b.route_via(r, s_pfx, prev);
        chain.push(r);
        prev = r;
    }
    b.default_via(s, chain[0]);
    for w in chain.windows(2) {
        b.default_via(w[0], w[1]);
    }
    let tail = if balanced {
        let l = b.router("L", RouterConfig::default().with_fixed_responder());
        let x = b.router("X", RouterConfig::default().with_fixed_responder());
        let y = b.router("Y", RouterConfig::default().with_fixed_responder());
        let m = b.router("M", RouterConfig::default().with_fixed_responder());
        b.link(prev, l, delay, loss);
        b.link(l, x, delay, loss);
        b.link(l, y, delay, loss);
        b.link(x, m, delay, loss);
        b.link(y, m, delay, loss);
        b.default_via(prev, l);
        let kind = if per_packet {
            BalancerKind::PerPacket
        } else {
            BalancerKind::PerFlow(FlowPolicy::FiveTuple)
        };
        b.balanced_route(l, Ipv4Prefix::DEFAULT, kind, &[x, y]);
        b.default_via(x, m);
        b.default_via(y, m);
        b.route_via(l, s_pfx, prev);
        b.route_via(x, s_pfx, l);
        b.route_via(y, s_pfx, l);
        b.route_via(m, s_pfx, x);
        m
    } else {
        prev
    };
    let d = b.host("D", HostConfig::default());
    b.link(tail, d, delay, loss);
    b.default_via(tail, d);
    b.default_via(d, tail);
    let dst = b.addr_of(d);
    (Arc::new(b.build()), s, dst)
}

fn probe(src: Ipv4Addr, dst: Ipv4Addr, ttl: u8, port: u16) -> Packet {
    let ip = Ipv4Header::new(src, dst, protocol::UDP, ttl);
    Packet::new(ip, Transport::Udp(UdpDatagram::new(40_000, port, vec![0; 8])))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The event queue always drains: every injected packet dies by TTL,
    /// delivery, or drop — the simulator cannot run forever.
    #[test]
    fn simulator_always_quiesces(
        n_chain in 1usize..8,
        balanced in any::<bool>(),
        per_packet in any::<bool>(),
        loss in 0u16..1000,
        seed in any::<u64>(),
        ttl in 1u8..64,
    ) {
        let (topo, s, dst) = build_random(n_chain, balanced, per_packet, loss);
        let mut sim = Simulator::new(topo.clone(), seed);
        let src = topo.node(s).primary_addr();
        for i in 0..10u16 {
            sim.inject(s, probe(src, dst, ttl, 33_435 + i));
        }
        sim.run_to_quiescence();
        // Conservation: every probe is accounted for as a delivery, an
        // expiry answered, or a drop of some kind.
        let st = sim.stats();
        prop_assert!(st.delivered + st.time_exceeded_sent + st.dest_unreachable_sent
            + st.dropped_loss + st.dropped_silent + st.dropped_no_route
            + st.dropped_blackhole + st.dropped_host_mute + st.dropped_rate_limited > 0);
    }

    /// Two simulators with the same seed process the same injections to
    /// byte-identical deliveries.
    #[test]
    fn same_seed_same_deliveries(
        n_chain in 1usize..6,
        balanced in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (topo, s, dst) = build_random(n_chain, balanced, false, 100);
        let run = || {
            let mut sim = Simulator::new(topo.clone(), seed);
            let src = topo.node(s).primary_addr();
            for ttl in 1..10u8 {
                sim.inject(s, probe(src, dst, ttl, 33_000 + u16::from(ttl)));
            }
            sim.run_to_quiescence();
            sim.take_inbox(s)
                .into_iter()
                .map(|(t, p)| (t, p.emit()))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    /// Per-flow balancing is a pure function of the packet: identical
    /// packets always take identical paths (observed via the responder).
    #[test]
    fn per_flow_choice_is_stable(seed in any::<u64>(), port in 1024u16..65000) {
        let (topo, s, dst) = build_random(2, true, false, 0);
        let mut sim = Simulator::new(topo.clone(), seed);
        let src = topo.node(s).primary_addr();
        // The balancer sits at hop 3; its next hops at hop 4.
        let mut responders = std::collections::HashSet::new();
        for _ in 0..6 {
            sim.inject(s, probe(src, dst, 4, port));
            sim.run_to_quiescence();
            for (_, p) in sim.take_inbox(s) {
                responders.insert(p.ip.src);
            }
        }
        prop_assert!(responders.len() <= 1, "one flow took {} paths", responders.len());
    }

    /// Responses to distinct probes from one router carry strictly
    /// increasing (wrapping) IP IDs — the counter the paper's alias and
    /// NAT analyses rely on.
    #[test]
    fn ip_id_counter_is_monotonic(seed in any::<u64>()) {
        let (topo, s, dst) = build_random(3, false, false, 0);
        let mut sim = Simulator::new(topo.clone(), seed);
        let src = topo.node(s).primary_addr();
        let mut ids = Vec::new();
        for i in 0..5u16 {
            sim.inject(s, probe(src, dst, 1, 33_435 + i));
            sim.run_to_quiescence();
            for (_, p) in sim.take_inbox(s) {
                ids.push(p.ip.identification);
            }
        }
        prop_assert_eq!(ids.len(), 5);
        for w in ids.windows(2) {
            prop_assert_eq!(w[1], w[0].wrapping_add(1));
        }
    }

    /// A SimTransport deadline is always honoured: the clock never passes
    /// the deadline when nothing arrives.
    #[test]
    fn transport_deadline_is_exact(seed in any::<u64>(), wait_ms in 1u64..5_000) {
        let (topo, s, _dst) = build_random(2, false, false, 0);
        let mut tx = SimTransport::new(Simulator::new(topo, seed), s);
        let deadline = tx.now() + SimDuration::from_millis(wait_ms);
        // Nothing was sent; nothing can arrive.
        prop_assert!(tx.recv_until(deadline).is_none());
        prop_assert_eq!(tx.now(), deadline);
    }
}
