//! Property tests pinning the optimized routing structures to a naive
//! reference: the sorted-entry [`RoutingTable`] and the copy-on-write
//! [`RouteOverlay`] must be lookup-equivalent to a plain linear
//! filter-and-max longest-prefix-match table under arbitrary set/remove
//! sequences, wherever the sequence is split between base and overlay.

use proptest::prelude::*;
use pt_netsim::addr::Ipv4Prefix;
use pt_netsim::routing::{NextHop, RouteOverlay, RoutingTable};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// The naive reference: unordered entries, lookup by filtering every
/// entry and keeping the longest match — exactly the pre-optimization
/// semantics (host routes included; two distinct equal-length prefixes
/// can never both contain one address, so ties cannot arise).
#[derive(Default)]
struct NaiveTable {
    entries: Vec<(Ipv4Prefix, NextHop)>,
}

impl NaiveTable {
    fn set(&mut self, prefix: Ipv4Prefix, nh: NextHop) {
        match self.entries.iter_mut().find(|(p, _)| *p == prefix) {
            Some(slot) => slot.1 = nh,
            None => self.entries.push((prefix, nh)),
        }
    }

    fn remove(&mut self, prefix: Ipv4Prefix) {
        self.entries.retain(|(p, _)| *p != prefix);
    }

    fn lookup(&self, dst: Ipv4Addr) -> Option<&NextHop> {
        self.entries
            .iter()
            .filter(|(p, _)| p.contains(dst))
            .max_by_key(|(p, _)| p.len())
            .map(|(_, nh)| nh)
    }
}

/// One scripted table operation.
#[derive(Debug, Clone)]
struct Op {
    prefix: Ipv4Prefix,
    /// `Some` installs the next hop, `None` removes the prefix.
    action: Option<NextHop>,
}

fn next_hop_from(tag: u8) -> NextHop {
    match tag % 4 {
        0 => NextHop::Blackhole,
        1 => NextHop::Balanced {
            kind: pt_netsim::node::BalancerKind::PerDestination,
            egresses: vec![usize::from(tag % 3), usize::from(tag % 3) + 1],
        },
        _ => NextHop::Iface(usize::from(tag % 7)),
    }
}

fn arb_op() -> impl Strategy<Value = Op> {
    // A small address pool makes prefixes overlap and collide often —
    // the interesting cases for shadowing, tombstones and LPM ties.
    (any::<u8>(), 0u8..=32, 0u8..=255, any::<bool>()).prop_map(|(addr_low, len, tag, remove)| {
        let addr = Ipv4Addr::new(10, addr_low % 4, addr_low % 8, addr_low);
        let prefix = Ipv4Prefix::new(addr, len);
        Op { prefix, action: (!remove).then(|| next_hop_from(tag)) }
    })
}

/// Addresses worth probing: each prefix's own network address, a
/// neighbor inside it, and a few fixed outsiders.
fn probe_addrs(ops: &[Op]) -> Vec<Ipv4Addr> {
    let mut addrs: Vec<Ipv4Addr> =
        ops.iter().flat_map(|op| [op.prefix.network(), op.prefix.nth(1)]).collect();
    addrs.extend([
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 3, 7, 255),
        Ipv4Addr::new(192, 0, 2, 1),
    ]);
    addrs
}

fn apply_naive(table: &mut NaiveTable, op: &Op) {
    match &op.action {
        Some(nh) => table.set(op.prefix, nh.clone()),
        None => table.remove(op.prefix),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The sorted-entry table alone matches the reference.
    #[test]
    fn routing_table_matches_naive_reference(
        ops in proptest::collection::vec(arb_op(), 0..40),
    ) {
        let mut naive = NaiveTable::default();
        let mut table = RoutingTable::new();
        for op in &ops {
            apply_naive(&mut naive, op);
            match &op.action {
                Some(nh) => table.set(op.prefix, nh.clone()),
                None => {
                    table.remove(op.prefix);
                }
            }
        }
        for addr in probe_addrs(&ops) {
            prop_assert_eq!(table.lookup(addr), naive.lookup(addr), "addr {}", addr);
        }
        // The sorted invariant the fast lookup relies on.
        for w in table.entries().windows(2) {
            prop_assert!(w[0].0.len() >= w[1].0.len());
        }
    }

    /// Base-plus-overlay matches the reference for *every* split of the
    /// op sequence into boot-time (base) and dynamic (overlay) halves.
    #[test]
    fn overlay_matches_naive_reference_at_any_split(
        ops in proptest::collection::vec(arb_op(), 0..40),
        split_seed in any::<u16>(),
    ) {
        let split = if ops.is_empty() { 0 } else { usize::from(split_seed) % (ops.len() + 1) };
        let mut naive = NaiveTable::default();
        let mut base = RoutingTable::new();
        for op in &ops[..split] {
            apply_naive(&mut naive, op);
            match &op.action {
                Some(nh) => base.set(op.prefix, nh.clone()),
                None => {
                    base.remove(op.prefix);
                }
            }
        }
        let mut overlay = RouteOverlay::new(Arc::new(base));
        for op in &ops[split..] {
            apply_naive(&mut naive, op);
            match &op.action {
                Some(nh) => overlay.set(op.prefix, nh.clone()),
                None => overlay.remove(op.prefix),
            }
        }
        for addr in probe_addrs(&ops) {
            prop_assert_eq!(
                overlay.lookup(addr),
                naive.lookup(addr),
                "addr {} (split {})",
                addr,
                split
            );
            // lookup_entry must agree with lookup and report a prefix
            // that actually contains the address.
            if let Some((prefix, nh)) = overlay.lookup_entry(addr) {
                prop_assert!(prefix.contains(addr));
                prop_assert_eq!(Some(nh), overlay.lookup(addr));
            }
        }
        // The flattened overlay is the same table the reference built.
        let flat = overlay.flatten();
        for addr in probe_addrs(&ops) {
            prop_assert_eq!(flat.lookup(addr), naive.lookup(addr), "flattened, addr {}", addr);
        }
    }

    /// An overlay never leaks writes into its shared base.
    #[test]
    fn overlay_leaves_base_untouched(
        base_ops in proptest::collection::vec(arb_op(), 0..20),
        overlay_ops in proptest::collection::vec(arb_op(), 1..20),
    ) {
        let mut base = RoutingTable::new();
        for op in &base_ops {
            match &op.action {
                Some(nh) => base.set(op.prefix, nh.clone()),
                None => {
                    base.remove(op.prefix);
                }
            }
        }
        let frozen = Arc::new(base.clone());
        let mut overlay = RouteOverlay::new(Arc::clone(&frozen));
        for op in &overlay_ops {
            match &op.action {
                Some(nh) => overlay.set(op.prefix, nh.clone()),
                None => overlay.remove(op.prefix),
            }
        }
        for addr in probe_addrs(&base_ops) {
            prop_assert_eq!(frozen.lookup(addr), base.lookup(addr));
        }
    }
}
