//! Property tests for [`PacketArena`]: under arbitrary alloc/free
//! sequences, live refs never alias (every live handle reads back
//! exactly the packet stored through it) and freed slots are always
//! recycled before the slab grows.

use proptest::prelude::*;
use pt_netsim::arena::{PacketArena, PacketRef};
use pt_wire::ipv4::{protocol, Ipv4Header};
use pt_wire::{Packet, Transport, UdpDatagram};
use std::net::Ipv4Addr;

/// A packet whose identification/ports encode a unique tag, so aliasing
/// (two refs resolving to one slot) is detectable by read-back.
fn tagged_packet(tag: u32) -> Packet {
    let ip =
        Ipv4Header::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2), protocol::UDP, 9);
    let mut p = Packet::new(
        ip,
        Transport::Udp(UdpDatagram::new((tag >> 16) as u16, 33435, vec![tag as u8; 4])),
    );
    p.ip.identification = tag as u16;
    p
}

fn tag_of(p: &Packet) -> u32 {
    match &p.transport {
        Transport::Udp(u) => (u32::from(u.src_port) << 16) | u32::from(p.ip.identification),
        other => panic!("arena test packets are UDP, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Model-check the slab against a shadow map: every interleaving of
    /// allocs and frees keeps live packets un-aliased, frees really
    /// free, and the slab never grows while a freed slot is available.
    #[test]
    fn alloc_free_sequences_never_alias_and_always_recycle(
        ops in proptest::collection::vec((any::<bool>(), any::<u16>()), 1..120),
    ) {
        let mut arena = PacketArena::new();
        // Shadow model: (ref, tag) for every live allocation.
        let mut live: Vec<(PacketRef, u32)> = Vec::new();
        let mut next_tag: u32 = 1;
        let mut freed_available = 0usize;
        for (is_alloc, pick) in ops {
            if is_alloc || live.is_empty() {
                let tag = next_tag;
                next_tag += 1;
                let before = arena.slot_count();
                let r = arena.alloc(tagged_packet(tag));
                if freed_available > 0 {
                    prop_assert_eq!(
                        arena.slot_count(), before,
                        "alloc must recycle a freed slot before growing the slab"
                    );
                    freed_available -= 1;
                } else {
                    prop_assert_eq!(arena.slot_count(), before + 1);
                }
                prop_assert!(
                    live.iter().all(|(other, _)| *other != r),
                    "fresh ref aliases a live one"
                );
                live.push((r, tag));
            } else {
                let idx = usize::from(pick) % live.len();
                let (r, tag) = live.swap_remove(idx);
                let taken = arena.take(r);
                prop_assert_eq!(tag_of(&taken), tag, "freed ref held someone else's packet");
                freed_available += 1;
            }
            // No interleaving may corrupt any other live packet.
            for (r, tag) in &live {
                prop_assert_eq!(tag_of(arena.get(*r)), *tag, "live packet aliased/corrupted");
            }
            prop_assert_eq!(arena.live(), live.len());
        }
        // Drain everything: the arena must account for every slot.
        for (r, tag) in live.drain(..) {
            prop_assert_eq!(tag_of(&arena.take(r)), tag);
        }
        prop_assert!(arena.is_empty());
    }

    /// The payload pool round-trips buffers without ever handing out a
    /// dirty one.
    #[test]
    fn payload_pool_hands_out_cleared_buffers(
        tags in proptest::collection::vec(any::<u16>(), 1..40),
    ) {
        let mut arena = PacketArena::new();
        for &t in &tags {
            let r = arena.alloc(tagged_packet(u32::from(t)));
            arena.release(r);
            let buf = arena.grab_payload();
            prop_assert!(buf.is_empty(), "pooled buffers must come back cleared");
            arena.recycle_payload(buf);
        }
    }
}
