//! Differential property suite for the timing wheel: arbitrary
//! `schedule`/`pop`/`peek`/`clear` sequences must produce *exactly* the
//! pop order of a reference priority queue, for every bucket width —
//! the property that makes swapping the simulator's `BinaryHeap` for
//! the wheel digest-preserving by construction.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

use pt_netsim::time::{SimDuration, SimTime};
use pt_netsim::wheel::EventWheel;
use pt_netsim::{HostConfig, NodeId, RouterConfig, Simulator, Topology, TopologyBuilder};
use pt_wire::ipv4::{protocol, Ipv4Header};
use pt_wire::{Packet, Transport, UdpDatagram};

/// A reference scheduler with the exact semantics the simulator's old
/// `BinaryHeap<Scheduled>` had: pop the smallest `(time, seq)`.
#[derive(Default)]
struct ReferenceQueue {
    events: BTreeMap<(u64, u64), u32>,
}

impl ReferenceQueue {
    fn schedule(&mut self, time: u64, seq: u64, payload: u32) {
        self.events.insert((time, seq), payload);
    }

    fn pop(&mut self) -> Option<(u64, u64, u32)> {
        let (&(t, s), _) = self.events.iter().next()?;
        let p = self.events.remove(&(t, s)).unwrap();
        Some((t, s, p))
    }

    fn peek(&self) -> Option<(u64, u64)> {
        self.events.keys().next().copied()
    }
}

/// Decode one op from three raw draws. The time mix is deliberately
/// bimodal like the simulator's workload: mostly short hops from the
/// current virtual time, a tail of far-future (overflow-level) events,
/// and the occasional overdue event behind the clock.
fn op_time(clock: u64, mode: u8, raw: u32) -> u64 {
    match mode % 8 {
        // µs-scale hops right around the clock (same or nearby buckets).
        0..=3 => clock + u64::from(raw % 50_000),
        // ms-scale hops: a few buckets to a revolution away.
        4 | 5 => clock + u64::from(raw % 80_000_000),
        // Far future: seconds out, guaranteed overflow at small shifts.
        6 => clock + 1_900_000_000 + u64::from(raw % 400_000_000),
        // Behind the clock (a route-set scheduled "now" after pops).
        _ => clock.saturating_sub(u64::from(raw % 10_000)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn wheel_matches_reference_queue(
        shift in 6u32..30,
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u32>()), 1..120),
    ) {
        let mut wheel = EventWheel::with_shift(shift);
        let mut reference = ReferenceQueue::default();
        let mut seq = 0u64;
        let mut clock = 0u64;
        for (action, mode, raw) in ops {
            match action % 10 {
                // Weighted toward scheduling so queues actually fill.
                0..=4 => {
                    let t = op_time(clock, mode, raw);
                    wheel.schedule(SimTime(t), seq, raw);
                    reference.schedule(t, seq, raw);
                    seq += 1;
                }
                5 | 6 => {
                    let got = wheel.pop();
                    let want = reference.pop();
                    prop_assert_eq!(
                        got.map(|(t, s, p)| (t.nanos(), s, p)),
                        want,
                        "pop diverged at shift {}", shift
                    );
                    if let Some((t, _, _)) = got {
                        clock = clock.max(t.nanos());
                    }
                }
                7 => {
                    prop_assert_eq!(
                        wheel.next_key().map(|(t, s)| (t.nanos(), s)),
                        reference.peek(),
                        "peek diverged at shift {}", shift
                    );
                }
                8 => {
                    // run_until-style burst: drain everything at or
                    // before a nearby horizon.
                    let horizon = clock + u64::from(raw % 5_000_000);
                    while wheel.next_key().is_some_and(|(t, _)| t.nanos() <= horizon) {
                        let got = wheel.pop().map(|(t, s, p)| (t.nanos(), s, p));
                        prop_assert_eq!(got, reference.pop(), "burst diverged");
                        clock = clock.max(got.unwrap().0);
                    }
                    prop_assert!(reference.peek().is_none_or(|(t, _)| t > horizon));
                    clock = clock.max(horizon);
                }
                _ => {
                    // reset: both sides drop everything, clock rewinds.
                    let mut dropped = 0usize;
                    wheel.clear(|_| dropped += 1);
                    prop_assert_eq!(dropped, reference.events.len());
                    reference.events.clear();
                    clock = 0;
                }
            }
            prop_assert_eq!(wheel.len(), reference.events.len());
        }
        // Full drain at the end must agree too.
        loop {
            let got = wheel.pop().map(|(t, s, p)| (t.nanos(), s, p));
            let want = reference.pop();
            prop_assert_eq!(got, want, "final drain diverged at shift {}", shift);
            if got.is_none() {
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Digest invariance: a full simulator run (forwarding, loss RNG, ICMP,
// scheduled route dynamics at overflow distances) must be byte-identical
// for every wheel bucket width.
// ---------------------------------------------------------------------

fn lossy_balanced_chain() -> (Arc<Topology>, NodeId, std::net::Ipv4Addr) {
    let mut b = TopologyBuilder::new();
    let s = b.host("S", HostConfig::default());
    let r1 = b.router("r1", RouterConfig::default());
    let l = b.router("L", RouterConfig::default());
    let x = b.router("X", RouterConfig::default());
    let y = b.router("Y", RouterConfig::default());
    let m = b.router("M", RouterConfig::default());
    let d = b.host("D", HostConfig::default());
    b.link(s, r1, SimDuration::from_micros(700), 0.0);
    b.link(r1, l, SimDuration::from_millis(1), 0.05);
    b.link(l, x, SimDuration::from_millis(2), 0.0);
    b.link(l, y, SimDuration::from_micros(2500), 0.0);
    b.link(x, m, SimDuration::from_millis(1), 0.05);
    b.link(y, m, SimDuration::from_millis(1), 0.0);
    b.link(m, d, SimDuration::from_millis(3), 0.0);
    b.default_via(s, r1);
    b.default_via(r1, l);
    b.balanced_route(
        l,
        pt_netsim::Ipv4Prefix::DEFAULT,
        pt_netsim::BalancerKind::PerFlow(pt_wire::FlowPolicy::FiveTuple),
        &[x, y],
    );
    b.default_via(x, m);
    b.default_via(y, m);
    b.default_via(m, d);
    b.default_via(d, m);
    let s_pfx = b.subnet_of(s);
    b.route_via(m, s_pfx, x);
    b.route_via(x, s_pfx, l);
    b.route_via(y, s_pfx, l);
    b.route_via(l, s_pfx, r1);
    b.route_via(r1, s_pfx, s);
    let dst = b.addr_of(d);
    (Arc::new(b.build()), s, dst)
}

/// Run a dynamics-heavy scenario and fold every observable (delivery
/// times, responding addresses, header fields, final stats) into one
/// digest string.
fn run_digest(shift: Option<u32>) -> String {
    use std::fmt::Write as _;
    let (topo, s, dst) = lossy_balanced_chain();
    let src = topo.node(s).primary_addr();
    let mut sim = Simulator::new(Arc::clone(&topo), 77);
    if let Some(shift) = shift {
        sim.set_wheel_shift(shift);
    }
    let r1 = topo.find("r1").unwrap();
    // Route dynamics two seconds out: far past every near horizon under
    // test, so the overflow/cascade machinery is on the digest path.
    sim.schedule_route_set(
        SimTime::ZERO + SimDuration::from_secs(2),
        r1,
        pt_netsim::Ipv4Prefix::DEFAULT,
        None,
    );
    sim.schedule_route_set(
        SimTime::ZERO + SimDuration::from_millis(2300),
        r1,
        pt_netsim::Ipv4Prefix::DEFAULT,
        Some(pt_netsim::NextHop::Iface(1)),
    );
    let mut digest = String::new();
    let mut inbox = Vec::new();
    for burst in 0..40u64 {
        for ttl in 1..=6u8 {
            let ip = Ipv4Header::new(src, dst, protocol::UDP, ttl);
            let udp = UdpDatagram::new(40_000 + burst as u16, 33_435 + u16::from(ttl), vec![0; 8]);
            sim.inject(s, Packet::new(ip, Transport::Udp(udp)));
        }
        // Interleave partial draining with injection so the wheel's
        // cursor weaves through buckets while events are pending.
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(60 * (burst + 1)));
        sim.take_inbox_into(s, &mut inbox);
        for (at, p) in inbox.drain(..) {
            writeln!(digest, "{} {} {} {}", at.nanos(), p.ip.src, p.ip.ttl, p.ip.identification)
                .unwrap();
        }
    }
    sim.run_to_quiescence();
    sim.take_inbox_into(s, &mut inbox);
    for (at, p) in inbox.drain(..) {
        writeln!(digest, "{} {} {} {}", at.nanos(), p.ip.src, p.ip.ttl, p.ip.identification)
            .unwrap();
    }
    writeln!(digest, "{:?}", sim.stats()).unwrap();
    digest
}

#[test]
fn simulation_digest_is_invariant_across_wheel_bucket_widths() {
    let baseline = run_digest(None);
    assert!(baseline.lines().count() > 50, "scenario must actually deliver packets");
    for shift in [6, 10, 14, 18, 22, 26, 31] {
        assert_eq!(
            run_digest(Some(shift)),
            baseline,
            "bucket width 2^{shift} ns changed observable behavior"
        );
    }
}
