//! Slab storage for in-flight packets.
//!
//! The event queue used to move [`Packet`] by value: every heap
//! sift-up/sift-down copied a ~100-byte enum (with its owned payload
//! `Vec` pointer) around, and every response the simulator originated
//! allocated fresh payload storage. The arena parks each in-flight
//! packet in a slab slot and hands the event queue a 4-byte
//! [`PacketRef`] instead, so the steady-state forwarding path moves
//! indices, mutates TTL/src in place, and — together with the payload
//! buffer pool — performs no per-event heap allocation:
//!
//! * slots are recycled through a free list, so a simulator that keeps a
//!   bounded number of packets in flight stops growing after warm-up;
//! * payload `Vec`s harvested from consumed packets are pooled and
//!   reused by echo replies (and by anyone calling
//!   [`PacketArena::grab_payload`]), closing the allocation loop that
//!   `payload.clone()` used to reopen on every Echo exchange.
//!
//! The arena is deliberately not generation-checked: refs are created
//! and consumed only by the simulator's event loop, which owns every
//! ref exactly once (the property-test suite pins the no-aliasing and
//! slot-recycling invariants).

use pt_wire::{IcmpMessage, Packet, Transport};

/// Handle to a packet parked in a [`PacketArena`] slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketRef(u32);

impl PacketRef {
    /// The slot index this ref points at (diagnostics only).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Payload buffers the pool retains; beyond this, freed buffers are
/// simply dropped (probe payloads are tiny, so the cap only bounds
/// pathological fan-out).
const PAYLOAD_POOL_CAP: usize = 64;

/// A slab of in-flight packets with a free list and a payload-buffer
/// recycling pool. See the module docs for why.
#[derive(Debug, Default)]
pub struct PacketArena {
    slots: Vec<Option<Packet>>,
    free: Vec<u32>,
    payloads: Vec<Vec<u8>>,
}

impl PacketArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Park `packet` in a slot, reusing a freed slot when one exists.
    pub fn alloc(&mut self, packet: Packet) -> PacketRef {
        match self.free.pop() {
            Some(idx) => {
                debug_assert!(
                    self.slots[idx as usize].is_none(),
                    "free list pointed at a live slot"
                );
                self.slots[idx as usize] = Some(packet);
                PacketRef(idx)
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("arena overflow");
                self.slots.push(Some(packet));
                PacketRef(idx)
            }
        }
    }

    /// The packet behind `r`.
    ///
    /// # Panics
    /// Panics if `r` was already taken or released.
    pub fn get(&self, r: PacketRef) -> &Packet {
        self.slots[r.index()].as_ref().expect("stale PacketRef")
    }

    /// Mutable access to the packet behind `r` (TTL decrement, NAT
    /// rewrite — the in-place mutations forwarding performs).
    ///
    /// # Panics
    /// Panics if `r` was already taken or released.
    pub fn get_mut(&mut self, r: PacketRef) -> &mut Packet {
        self.slots[r.index()].as_mut().expect("stale PacketRef")
    }

    /// Move the packet out, freeing the slot.
    ///
    /// # Panics
    /// Panics if `r` was already taken or released.
    pub fn take(&mut self, r: PacketRef) -> Packet {
        let packet = self.slots[r.index()].take().expect("stale PacketRef");
        self.free.push(r.0);
        packet
    }

    /// Free the slot and harvest the packet's payload buffer into the
    /// pool — the path every packet the simulator *consumes* (drops,
    /// expiries, quoted probes) takes.
    pub fn release(&mut self, r: PacketRef) {
        let packet = self.take(r);
        self.recycle_packet(packet);
    }

    /// Harvest an owned packet's payload buffer into the pool and drop
    /// the rest.
    pub fn recycle_packet(&mut self, packet: Packet) {
        let payload = match packet.transport {
            Transport::Udp(u) => u.payload,
            Transport::Tcp(t) => t.payload,
            Transport::Icmp(IcmpMessage::EchoRequest { payload, .. })
            | Transport::Icmp(IcmpMessage::EchoReply { payload, .. }) => payload,
            Transport::Icmp(_) => return,
        };
        self.recycle_payload(payload);
    }

    /// Return a payload buffer to the pool (dropped when the pool is
    /// full or the buffer never allocated).
    pub fn recycle_payload(&mut self, buf: Vec<u8>) {
        if buf.capacity() > 0 && self.payloads.len() < PAYLOAD_POOL_CAP {
            self.payloads.push(buf);
        }
    }

    /// A cleared payload buffer — pooled when available, fresh otherwise.
    pub fn grab_payload(&mut self) -> Vec<u8> {
        match self.payloads.pop() {
            Some(mut buf) => {
                buf.clear();
                buf
            }
            None => Vec::new(),
        }
    }

    /// Number of live (allocated, not yet taken) packets.
    pub fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// True when no packets are live.
    pub fn is_empty(&self) -> bool {
        self.live() == 0
    }

    /// Total slots ever created (live + free). A workload with bounded
    /// in-flight packets stops growing this after warm-up — the
    /// recycling property the tests pin.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_wire::ipv4::{protocol, Ipv4Header};
    use pt_wire::UdpDatagram;
    use std::net::Ipv4Addr;

    fn packet(tag: u16) -> Packet {
        let ip = Ipv4Header::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            protocol::UDP,
            9,
        );
        let mut p = Packet::new(ip, Transport::Udp(UdpDatagram::new(4000, 33435, vec![0; 8])));
        p.ip.identification = tag;
        p
    }

    #[test]
    fn alloc_take_round_trips() {
        let mut arena = PacketArena::new();
        let a = arena.alloc(packet(1));
        let b = arena.alloc(packet(2));
        assert_eq!(arena.live(), 2);
        assert_eq!(arena.get(a).ip.identification, 1);
        assert_eq!(arena.get(b).ip.identification, 2);
        assert_eq!(arena.take(a).ip.identification, 1);
        assert_eq!(arena.live(), 1);
        assert_eq!(arena.take(b).ip.identification, 2);
        assert!(arena.is_empty());
    }

    #[test]
    fn freed_slots_are_reused_before_new_ones() {
        let mut arena = PacketArena::new();
        let refs: Vec<_> = (0..4).map(|i| arena.alloc(packet(i))).collect();
        assert_eq!(arena.slot_count(), 4);
        arena.release(refs[1]);
        arena.release(refs[3]);
        let c = arena.alloc(packet(10));
        let d = arena.alloc(packet(11));
        assert_eq!(arena.slot_count(), 4, "freed slots recycled, slab did not grow");
        assert!(c.index() == 1 || c.index() == 3);
        assert!(d.index() == 1 || d.index() == 3);
        assert_ne!(c, d);
    }

    #[test]
    fn payload_pool_round_trips_buffers() {
        let mut arena = PacketArena::new();
        let r = arena.alloc(packet(1));
        arena.release(r); // harvests the 8-byte UDP payload
        let buf = arena.grab_payload();
        assert!(buf.is_empty(), "pooled buffers come back cleared");
        assert!(buf.capacity() >= 8, "pooled buffer keeps its allocation");
        arena.recycle_payload(buf);
        assert!(arena.grab_payload().capacity() >= 8);
    }

    #[test]
    #[should_panic(expected = "stale PacketRef")]
    fn stale_ref_is_rejected() {
        let mut arena = PacketArena::new();
        let r = arena.alloc(packet(1));
        arena.release(r);
        let _ = arena.get(r);
    }
}
