//! Virtual time for the discrete-event simulator.
//!
//! Nanosecond-resolution `u64` timestamps. The study's timing parameters —
//! 2-second probe timeouts, millisecond link delays, the 27.3 seconds per
//! destination reported in §3 — all fit comfortably.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// An instant of virtual time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The beginning of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since simulation start.
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reports only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Saturates at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The timing-wheel bucket tick of this instant for buckets of
    /// `2^shift` nanoseconds (see [`crate::wheel::EventWheel`]).
    #[inline]
    pub fn wheel_tick(self, shift: u32) -> u64 {
        self.0 >> shift
    }

    /// The first instant of wheel tick `tick` at bucket width
    /// `2^shift` ns — the inverse of [`SimTime::wheel_tick`].
    #[inline]
    pub fn from_tick(tick: u64, shift: u32) -> SimTime {
        SimTime(tick << shift)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Nanoseconds in this duration.
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Milliseconds, as a float (for reports only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds, as a float (for reports only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.nanos(), 5_000_000);
        let t2 = t + SimDuration::from_secs(2);
        assert_eq!((t2 - t).nanos(), 2_000_000_000);
        assert_eq!(t2.since(t), SimDuration::from_secs(2));
    }

    #[test]
    fn saturating_since() {
        let a = SimTime(10);
        let b = SimTime(50);
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_micros(3).nanos(), 3_000);
        assert!((SimDuration::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((SimDuration::from_secs(2).as_millis_f64() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn ordering() {
        assert!(SimTime(1) < SimTime(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }
}
