//! The boundary between the (sans-IO) tracer and the simulated network:
//! a send/receive endpoint attached to one source host, driving virtual
//! time forward only as far as needed.

use pt_wire::Packet;
use std::net::Ipv4Addr;

use crate::sim::Simulator;
use crate::time::SimTime;
use crate::topology::NodeId;

/// A packet endpoint bound to a source host inside a [`Simulator`].
///
/// The tracer in `pt-core` is written against this interface: it sends a
/// probe, then polls for responses with a deadline. Polling advances the
/// simulator's virtual clock — either to the moment a response lands in
/// the host's inbox, or to the deadline if nothing arrives (a star).
#[derive(Debug)]
pub struct SimTransport {
    sim: Simulator,
    source: NodeId,
}

impl SimTransport {
    /// Bind to `source` (a host node) in `sim`.
    pub fn new(sim: Simulator, source: NodeId) -> Self {
        SimTransport { sim, source }
    }

    /// The bound source node.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The source host's primary address — what probes carry as `ip.src`.
    pub fn source_addr(&self) -> Ipv4Addr {
        self.sim.topology().node(self.source).primary_addr()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Send a packet from the source host.
    pub fn send(&mut self, packet: Packet) {
        self.sim.inject(self.source, packet);
    }

    /// Non-blocking poll: the oldest packet already delivered to the
    /// source, without advancing virtual time or processing any event.
    ///
    /// The windowed tracer drains this before computing which of its
    /// several in-flight probe timers to wait on next, so a burst of
    /// responses landing in one `recv_until` window is consumed without
    /// re-deriving deadlines per packet.
    pub fn try_recv(&mut self) -> Option<(SimTime, Packet)> {
        self.sim.pop_delivery(self.source)
    }

    /// Wait for the next packet delivered to the source, up to `deadline`.
    ///
    /// Returns the arrival time and packet, leaving the clock at the
    /// arrival; or `None` with the clock at `deadline` (probe timeout).
    /// With several probes outstanding, callers pass the *earliest* of
    /// their deadlines and repeat — the wheel services every in-flight
    /// probe timer in one pass per wait.
    pub fn recv_until(&mut self, deadline: SimTime) -> Option<(SimTime, Packet)> {
        loop {
            if let Some(delivery) = self.sim.pop_delivery(self.source) {
                return Some(delivery);
            }
            match self.sim.peek_time() {
                Some(t) if t <= deadline => {
                    self.sim.step();
                }
                _ => {
                    self.sim.run_until(deadline);
                    return self.sim.pop_delivery(self.source);
                }
            }
        }
    }

    /// Mutable access to the simulator (scheduling dynamics mid-trace).
    pub fn simulator_mut(&mut self) -> &mut Simulator {
        &mut self.sim
    }

    /// Shared access to the simulator.
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// Unwrap back into the simulator.
    pub fn into_simulator(self) -> Simulator {
        self.sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TopologyBuilder;
    use crate::node::{HostConfig, RouterConfig};
    use crate::time::SimDuration;
    use pt_wire::ipv4::{protocol, Ipv4Header};
    use pt_wire::{Transport, UdpDatagram};
    use std::sync::Arc;

    fn two_hop() -> (SimTransport, Ipv4Addr) {
        let mut b = TopologyBuilder::new();
        let s = b.host("S", HostConfig::default());
        let r = b.router("r", RouterConfig::default());
        let d = b.host("D", HostConfig::default());
        b.link(s, r, SimDuration::from_millis(5), 0.0);
        b.link(r, d, SimDuration::from_millis(5), 0.0);
        b.default_via(s, r);
        b.default_via(r, d);
        b.default_via(d, r);
        let s_pfx = b.subnet_of(s);
        b.route_via(r, s_pfx, s);
        let dst = b.addr_of(d);
        let topo = Arc::new(b.build());
        let sim = Simulator::new(topo, 1);
        (SimTransport::new(sim, s), dst)
    }

    fn probe(src: Ipv4Addr, dst: Ipv4Addr, ttl: u8) -> Packet {
        let ip = Ipv4Header::new(src, dst, protocol::UDP, ttl);
        Packet::new(ip, Transport::Udp(UdpDatagram::new(40000, 33435, vec![0; 4])))
    }

    #[test]
    fn recv_advances_clock_to_arrival() {
        let (mut tx, dst) = two_hop();
        let src = tx.source_addr();
        tx.send(probe(src, dst, 1));
        let deadline = tx.now() + SimDuration::from_secs(2);
        let (at, resp) = tx.recv_until(deadline).expect("response expected");
        assert_eq!(at, tx.now());
        assert_eq!(at.nanos(), SimDuration::from_millis(10).nanos(), "5ms out + 5ms back");
        assert_eq!(resp.ip.ttl, 255, "no intermediate routers on the return path");
    }

    #[test]
    fn timeout_advances_clock_to_deadline() {
        let (mut tx, dst) = two_hop();
        let src = tx.source_addr();
        // TTL 0 probes die at the first router silently? No — TTL 0
        // arriving at r expires with Time Exceeded. Use an unroutable
        // destination instead: d's subnet is routed, so pick an address
        // in no table.
        let _ = (src, dst);
        let bogus = Ipv4Addr::new(203, 0, 113, 99);
        tx.send(probe(src, bogus, 9));
        let deadline = tx.now() + SimDuration::from_secs(2);
        assert!(tx.recv_until(deadline).is_none());
        assert_eq!(tx.now(), deadline, "clock parked at the deadline");
    }

    #[test]
    fn multiple_outstanding_responses_arrive_in_order() {
        let (mut tx, dst) = two_hop();
        let src = tx.source_addr();
        tx.send(probe(src, dst, 1)); // expires at r: 10ms RTT
        tx.send(probe(src, dst, 9)); // reaches d: 20ms RTT
        let deadline = tx.now() + SimDuration::from_secs(2);
        let first = tx.recv_until(deadline).unwrap();
        let second = tx.recv_until(deadline).unwrap();
        assert!(first.0 <= second.0);
    }

    #[test]
    fn try_recv_drains_without_advancing_time() {
        let (mut tx, dst) = two_hop();
        let src = tx.source_addr();
        assert!(tx.try_recv().is_none(), "nothing delivered yet");
        tx.send(probe(src, dst, 1)); // 10ms RTT
        tx.send(probe(src, dst, 9)); // 20ms RTT
        let deadline = tx.now() + SimDuration::from_millis(50);
        let first = tx.recv_until(deadline).unwrap();
        assert_eq!(first.0.nanos(), SimDuration::from_millis(10).nanos());
        // Advance past the second arrival without consuming it.
        tx.simulator_mut().run_until(deadline);
        let now = tx.now();
        let second = tx.try_recv().expect("second response already delivered");
        assert_eq!(second.0.nanos(), SimDuration::from_millis(20).nanos());
        assert_eq!(tx.now(), now, "try_recv must not advance the clock");
        assert!(tx.try_recv().is_none());
    }
}
