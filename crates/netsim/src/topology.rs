//! The static network graph: nodes with addressed interfaces, links with
//! delay and loss, and initial routing tables.
//!
//! A [`Topology`] is immutable once built (see [`crate::builder`]); a
//! simulator owns only small per-node runtime state (a copy-on-write
//! routing delta, IP-ID counter, RNG) layered over it, so several
//! simulators can share one topology across threads and spin up without
//! copying any routing table.

use std::net::Ipv4Addr;
use std::sync::Arc;

use crate::node::NodeKind;
use crate::routing::{AddrMap, RoutingTable};
use crate::time::SimDuration;

/// Identifies a node within a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Identifies a link within a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub usize);

/// One end of a link: a node and an interface index on that node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Endpoint {
    /// The node.
    pub node: NodeId,
    /// Index into the node's interface list.
    pub iface: usize,
}

/// A network interface: an address, attached to at most one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interface {
    /// The interface's IPv4 address (what traceroute discovers).
    pub addr: Ipv4Addr,
    /// The link this interface is plugged into.
    pub link: Option<LinkId>,
}

/// A point-to-point link with per-direction delay and loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// The two attached endpoints.
    pub endpoints: [Endpoint; 2],
    /// Propagation delay `endpoints[0] → endpoints[1]`.
    pub delay: SimDuration,
    /// Propagation delay `endpoints[1] → endpoints[0]`. Equal to
    /// `delay` for the common symmetric link; an asymmetric return
    /// path (planted via [`crate::builder::TopologyBuilder::link_asym`])
    /// skews RTTs without changing hop counts.
    pub delay_back: SimDuration,
    /// Probability in `[0, 1]` that a traversal silently drops the packet.
    pub loss: f64,
}

impl Link {
    /// The endpoint opposite `node` on this link.
    pub fn other_end(&self, node: NodeId) -> Endpoint {
        if self.endpoints[0].node == node {
            self.endpoints[1]
        } else {
            self.endpoints[0]
        }
    }

    /// The traversal delay for a packet leaving `node` over this link.
    pub fn delay_from(&self, node: NodeId) -> SimDuration {
        if self.endpoints[0].node == node {
            self.delay
        } else {
            self.delay_back
        }
    }
}

/// A node: behaviour, interfaces, and its boot-time routing table.
#[derive(Debug, Clone)]
pub struct Node {
    /// Debug name ("L", "core-3", "dst-1742"...).
    pub name: String,
    /// Router or host behaviour.
    pub kind: NodeKind,
    /// Interfaces, indexed by position.
    pub ifaces: Vec<Interface>,
    /// Boot-time routing table, shared immutably with every simulator.
    /// Simulators never copy it: they layer a per-node
    /// [`crate::routing::RouteOverlay`] delta on top, so constructing a
    /// simulator is O(1) per node however many routes the node carries.
    pub routing: Arc<RoutingTable>,
}

impl Node {
    /// Whether `addr` belongs to any of this node's interfaces.
    pub fn owns_addr(&self, addr: Ipv4Addr) -> bool {
        self.ifaces.iter().any(|i| i.addr == addr)
    }

    /// The node's primary (first-interface) address.
    pub fn primary_addr(&self) -> Ipv4Addr {
        self.ifaces.first().map(|i| i.addr).unwrap_or(Ipv4Addr::UNSPECIFIED)
    }
}

/// The immutable network graph.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    /// All nodes; `NodeId` indexes this vector.
    pub nodes: Vec<Node>,
    /// All links; `LinkId` indexes this vector.
    pub links: Vec<Link>,
    /// Address → owning node, for local-delivery checks. Keyed with the
    /// deterministic [`AddrMap`] hasher so iteration never depends on
    /// `RandomState`.
    pub addr_owner: AddrMap<NodeId>,
}

impl Topology {
    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Link accessor.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0]
    }

    /// Which node owns `addr`, if any.
    pub fn owner_of(&self, addr: Ipv4Addr) -> Option<NodeId> {
        self.addr_owner.get(&addr).copied()
    }

    /// Find a node by its debug name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name).map(NodeId)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The interface index on `node` whose link leads to `neighbor`,
    /// if the two are directly connected.
    pub fn iface_toward(&self, node: NodeId, neighbor: NodeId) -> Option<usize> {
        self.node(node).ifaces.iter().enumerate().find_map(|(idx, iface)| {
            let link = iface.link?;
            (self.link(link).other_end(node).node == neighbor).then_some(idx)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TopologyBuilder;
    use crate::node::{HostConfig, RouterConfig};

    #[test]
    fn iface_toward_finds_the_connecting_interface() {
        let mut b = TopologyBuilder::new();
        let a = b.router("a", RouterConfig::default());
        let c = b.router("c", RouterConfig::default());
        let h = b.host("h", HostConfig::default());
        b.link(a, c, SimDuration::from_millis(1), 0.0);
        b.link(c, h, SimDuration::from_millis(1), 0.0);
        let topo = b.build();
        let i = topo.iface_toward(a, c).unwrap();
        let link = topo.node(a).ifaces[i].link.unwrap();
        assert_eq!(topo.link(link).other_end(a).node, c);
        assert!(topo.iface_toward(a, h).is_none(), "a and h are not adjacent");
    }

    #[test]
    fn addr_owner_maps_every_interface() {
        let mut b = TopologyBuilder::new();
        let a = b.router("a", RouterConfig::default());
        let c = b.router("c", RouterConfig::default());
        b.link(a, c, SimDuration::from_millis(1), 0.0);
        let topo = b.build();
        for node in [a, c] {
            for iface in &topo.node(node).ifaces {
                assert_eq!(topo.owner_of(iface.addr), Some(node));
            }
        }
    }

    #[test]
    fn find_by_name() {
        let mut b = TopologyBuilder::new();
        let a = b.router("alpha", RouterConfig::default());
        let topo = b.build();
        assert_eq!(topo.find("alpha"), Some(a));
        assert_eq!(topo.find("beta"), None);
    }
}
