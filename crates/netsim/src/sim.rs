//! The discrete-event engine: packet forwarding, TTL expiry, ICMP
//! generation, load balancing, NAT rewriting and routing dynamics.
//!
//! Event ordering is strictly `(time, sequence)` and all randomness comes
//! from per-node `StdRng`s derived from the global seed, so a run is a
//! pure function of `(topology, seed, injected packets, scheduled route
//! changes)`. The schedule itself is a hierarchical timing wheel
//! ([`crate::wheel::EventWheel`]): O(1) amortized schedule/pop with no
//! per-event allocation, popping in exactly the `(time, sequence)` order
//! a binary heap would.
//!
//! In-flight packets are arena-resident ([`crate::arena::PacketArena`]):
//! events and the forwarding hot path move 4-byte [`PacketRef`] handles,
//! mutate TTL/NAT fields in place, and recycle both slots and payload
//! buffers, so steady-state forwarding performs no per-event heap
//! allocation. Node state is *epoch-lazy*: [`Simulator::reset`] bumps an
//! epoch instead of touching every node, and a node's RNG/IP-ID/routing
//! delta are re-derived from the seed on first use after a reset. That
//! makes reset O(in-flight + delivered), which is what lets the campaign
//! runner afford a pristine simulator per `(destination, round)` work
//! unit ([`SimulatorPool`]).

use std::collections::VecDeque;
use std::net::Ipv4Addr;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pt_wire::icmp::{IcmpMessage, Quotation};
use pt_wire::ipv4::Ipv4Header;
use pt_wire::tcp::{flags as tcp_flags, TcpSegment};
use pt_wire::{Packet, Transport, UnreachableCode};

use crate::addr::Ipv4Prefix;
use crate::arena::{PacketArena, PacketRef};
use crate::node::{BalancerKind, HostConfig, NodeKind, RouterConfig};
use crate::routing::{NextHop, NodeRouting, RouteDelta};
use crate::time::{SimDuration, SimTime};
use crate::topology::{Node, NodeId, Topology};
use crate::wheel::EventWheel;

/// Counters describing everything the simulator did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Packets forwarded router-to-router (per traversal).
    pub forwarded: u64,
    /// ICMP Time Exceeded messages generated.
    pub time_exceeded_sent: u64,
    /// ICMP Destination Unreachable messages generated.
    pub dest_unreachable_sent: u64,
    /// ICMP Echo Replies generated.
    pub echo_replies_sent: u64,
    /// TCP SYN-ACK / RST responses generated.
    pub tcp_responses_sent: u64,
    /// Packets lost on links.
    pub dropped_loss: u64,
    /// Packets a silent router expired without answering.
    pub dropped_silent: u64,
    /// ICMP suppressed by rate limiting.
    pub dropped_rate_limited: u64,
    /// Packets that expired inside an MPLS tunnel (no Time Exceeded).
    pub dropped_mpls_hidden: u64,
    /// UDP transit packets dropped by protocol filters.
    pub dropped_filtered: u64,
    /// Packets dropped for lack of a route.
    pub dropped_no_route: u64,
    /// Packets swallowed by blackhole routes.
    pub dropped_blackhole: u64,
    /// Packets a host refused to answer (firewalled destination).
    pub dropped_host_mute: u64,
    /// Source-address rewrites performed by NAT gateways.
    pub nat_rewrites: u64,
    /// Packets delivered into node inboxes.
    pub delivered: u64,
}

#[derive(Debug)]
enum EventKind {
    /// A packet arrives at `node`. `iface_in` is `None` for packets the
    /// node itself originates (injections and generated responses). The
    /// packet itself stays parked in the arena: the event (and every
    /// heap sift it goes through) carries only the 4-byte handle.
    Arrival { node: NodeId, iface_in: Option<usize>, packet: PacketRef },
    /// Install (`Some`) or remove (`None`) a route at `node` — the
    /// routing-dynamics hook.
    RouteSet { node: NodeId, prefix: Ipv4Prefix, next_hop: Option<NextHop> },
}

#[derive(Debug, Clone)]
struct NodeState {
    /// Copy-on-write routing changes over the topology's shared base
    /// table (borrowed at lookup time, never copied). A pristine delta
    /// is one null word; only routes changed by dynamics occupy memory.
    routing: RouteDelta,
    /// The router's internal 16-bit counter stamped into the IP
    /// Identification of packets it originates.
    ip_id: u16,
    /// Per-node RNG: per-packet balancing and loss draws.
    rng: StdRng,
    /// Stable salt mixed into per-flow/per-destination hashes so distinct
    /// routers do not all pick the same egress index for the same flow.
    salt: u64,
    /// Last time this node generated an ICMP (for rate limiting).
    last_icmp: Option<SimTime>,
    /// Token-bucket rate-limiter fill. `u32::MAX` is the untouched
    /// sentinel (the bucket starts full on first use); the capacity
    /// lives in the router's immutable config, so the slot stays a
    /// pure function of `(seed, idx)`.
    icmp_tokens: u32,
    /// When `icmp_tokens` was last settled (whole-token boundaries
    /// only, so fractional refill credit carries forward exactly).
    icmp_tokens_at: SimTime,
    /// Whether this node is already listed in `Simulator::dirty_inboxes`
    /// for the current epoch (keeps that list O(distinct nodes), not
    /// O(deliveries)).
    inbox_dirty: bool,
    /// Which simulator epoch this slot was derived for. A slot whose
    /// epoch trails the simulator's is *stale*: its contents are
    /// leftovers from before the last [`Simulator::reset`] and must be
    /// re-derived before use ([`Simulator::freshen`]).
    epoch: u64,
}

impl NodeState {
    /// Derive node `idx`'s state for `epoch` from the simulator seed —
    /// a pure function of `(seed, idx)`, so it does not matter *when*
    /// (or in what order) stale slots get re-derived.
    fn fresh(seed: u64, idx: usize, epoch: u64) -> NodeState {
        let node_seed = splitmix64(seed ^ splitmix64(idx as u64 + 1));
        NodeState {
            // O(1) and allocation-free: the base table stays in the
            // topology, the delta starts empty.
            routing: RouteDelta::new(),
            ip_id: (node_seed >> 32) as u16,
            rng: StdRng::seed_from_u64(node_seed),
            salt: splitmix64(node_seed ^ 0xabcd_ef01),
            last_icmp: None,
            icmp_tokens: u32::MAX,
            icmp_tokens_at: SimTime::ZERO,
            inbox_dirty: false,
            epoch,
        }
    }
}

/// One node's cached forwarding decision: the egress interface its last
/// route lookup resolved to, tagged with the destination and the
/// (epoch, route-version) pair it was computed under.
///
/// A probe window delivers a batch of same-destination packets to each
/// node per tick, and every packet of a trace revisits the same nodes
/// round after round — so the table lookup in [`Simulator::forward`]
/// almost always repeats the node's previous one. The memo collapses
/// those repeats to three compares. Only plain [`NextHop::Iface`]
/// results are cached: balanced next hops must take the full path every
/// time so their RNG draws and flow-hash evaluations happen in exactly
/// the order the unmemoized simulator produced (digest identity), and
/// blackholes/no-route are too rare to matter.
///
/// The default entry's epoch 0 never matches (the simulator epoch
/// starts at 1), so a fresh memo is empty without initialization.
#[derive(Debug, Clone, Copy)]
struct FwdMemo {
    dst: u32,
    epoch: u64,
    version: u64,
    egress: u32,
}

const FWD_MEMO_EMPTY: FwdMemo = FwdMemo { dst: 0, epoch: 0, version: 0, egress: 0 };

/// The simulator: owns runtime state over a shared immutable topology.
#[derive(Debug)]
pub struct Simulator {
    topo: Arc<Topology>,
    clock: SimTime,
    next_seq: u64,
    /// Pending events, popped in exact `(time, seq)` order — a timing
    /// wheel, so `schedule`/`step` are O(1) amortized with no per-event
    /// allocation (see [`crate::wheel`]).
    queue: EventWheel<EventKind>,
    /// The current tick's events, drained from the wheel in one batch
    /// ([`EventWheel::pop_tick_into`]) and stored *reversed* so
    /// `Vec::pop` serves them in ascending `(time, seq)` order.
    /// [`Simulator::next_event`] interleaves this batch with the wheel
    /// for events scheduled mid-batch.
    tick_events: Vec<(SimTime, u64, EventKind)>,
    state: Vec<NodeState>,
    /// Delivery lanes, one per node, indexed by `NodeId` — no hashing
    /// anywhere on the delivery or drain path.
    inbox: Vec<VecDeque<(SimTime, Packet)>>,
    /// Nodes whose lane went non-empty since the last reset, so reset
    /// drains O(touched) lanes instead of sweeping every node.
    dirty_inboxes: Vec<NodeId>,
    stats: SimStats,
    /// Recycled buffer for quoting offending packets into ICMP, so the
    /// response path performs no per-packet allocation.
    scratch: Vec<u8>,
    /// Slab holding every in-flight packet; events carry [`PacketRef`]s.
    arena: PacketArena,
    /// Seed all node state derives from (current epoch's).
    seed: u64,
    /// Bumped by [`Simulator::reset`]; node slots lazily re-derive when
    /// their recorded epoch trails this.
    epoch: u64,
    /// Per-node forwarding memo, indexed by `NodeId` (see [`FwdMemo`]).
    /// Never cleared: entries invalidate themselves through their
    /// `(epoch, version)` tags.
    fwd_memo: Vec<FwdMemo>,
    /// Bumped on every applied `RouteSet` event; tags [`FwdMemo`]
    /// entries so any routing delta invalidates the whole memo.
    route_version: u64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Simulator {
    /// Build a simulator over `topology`, deriving all randomness from
    /// `seed`.
    pub fn new(topology: Arc<Topology>, seed: u64) -> Self {
        // Node slots start stale (epoch 0 < 1) and derive themselves
        // from `seed` on first touch, so construction clones one cheap
        // template per node instead of seeding every RNG up front.
        let template = NodeState {
            routing: RouteDelta::new(),
            ip_id: 0,
            rng: StdRng::seed_from_u64(0),
            salt: 0,
            last_icmp: None,
            icmp_tokens: u32::MAX,
            icmp_tokens_at: SimTime::ZERO,
            inbox_dirty: false,
            epoch: 0,
        };
        Simulator {
            state: vec![template; topology.nodes.len()],
            inbox: (0..topology.nodes.len()).map(|_| VecDeque::new()).collect(),
            fwd_memo: vec![FWD_MEMO_EMPTY; topology.nodes.len()],
            topo: topology,
            clock: SimTime::ZERO,
            next_seq: 0,
            queue: EventWheel::new(),
            tick_events: Vec::new(),
            dirty_inboxes: Vec::new(),
            stats: SimStats::default(),
            scratch: Vec::new(),
            arena: PacketArena::new(),
            seed,
            epoch: 1,
            route_version: 0,
        }
    }

    /// Rewind to the state `Simulator::new(topology, seed)` would
    /// produce, while keeping every allocation warm: the event queue's
    /// capacity, the arena's slots and payload-buffer pool, the inbox
    /// deques and the ICMP scratch buffer all survive. Node state is
    /// epoch-lazy, so the cost is O(in-flight + undelivered packets),
    /// *not* O(nodes) — cheap enough to call once per `(destination,
    /// round)` campaign work unit.
    pub fn reset(&mut self, seed: u64) {
        // clear() hands events back in arbitrary order — ordering is
        // irrelevant when everything is being released — and keeps the
        // wheel's slab and batch capacities warm.
        let arena = &mut self.arena;
        for (_, _, kind) in self.tick_events.drain(..) {
            if let EventKind::Arrival { packet, .. } = kind {
                arena.release(packet);
            }
        }
        self.queue.clear(|kind| {
            if let EventKind::Arrival { packet, .. } = kind {
                arena.release(packet);
            }
        });
        for node in self.dirty_inboxes.drain(..) {
            for (_, packet) in self.inbox[node.0].drain(..) {
                self.arena.recycle_packet(packet);
            }
        }
        debug_assert!(self.arena.is_empty(), "in-flight packet leaked across reset");
        self.clock = SimTime::ZERO;
        self.next_seq = 0;
        self.stats = SimStats::default();
        self.seed = seed;
        self.epoch += 1;
    }

    /// Re-derive `node`'s state if it is stale (first touch after a
    /// reset). Every path that reads or writes mutable node state goes
    /// through here first.
    #[inline]
    fn freshen(&mut self, node: NodeId) {
        let st = &mut self.state[node.0];
        if st.epoch != self.epoch {
            *st = NodeState::fresh(self.seed, node.0, self.epoch);
        }
    }

    /// The shared topology.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// Replace the event queue with one using `2^shift`-ns wheel
    /// buckets. Bucket width is a pure performance knob — event order
    /// (and therefore every digest) is identical for any value, which
    /// `proptest_wheel.rs` pins. Only callable while no events are
    /// pending (typically right after construction or a reset).
    pub fn set_wheel_shift(&mut self, shift: u32) {
        assert!(
            self.queue.is_empty() && self.tick_events.is_empty(),
            "cannot resize wheel buckets with events pending"
        );
        self.queue = EventWheel::with_shift(shift);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Activity counters so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    fn schedule(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.schedule(time, seq, kind);
    }

    /// Inject a packet originated by `node` at the current time.
    pub fn inject(&mut self, node: NodeId, packet: Packet) {
        let packet = self.arena.alloc(packet);
        self.schedule(self.clock, EventKind::Arrival { node, iface_in: None, packet });
    }

    /// Hand a packet that already left the simulator (a consumed inbox
    /// delivery) back, so its payload buffer rejoins the recycling pool.
    pub fn recycle(&mut self, packet: Packet) {
        self.arena.recycle_packet(packet);
    }

    /// Number of packets currently in flight (arena-resident).
    pub fn in_flight(&self) -> usize {
        self.arena.live()
    }

    /// Total arena slots ever created. Bounded in-flight traffic stops
    /// growing this after warm-up — the zero-allocation evidence the
    /// benches and tests check.
    pub fn arena_slots(&self) -> usize {
        self.arena.slot_count()
    }

    /// Install (`Some`) or remove (`None`) a route at `node` at time `at`
    /// — the hook for routing changes and transient forwarding loops.
    pub fn schedule_route_set(
        &mut self,
        at: SimTime,
        node: NodeId,
        prefix: Ipv4Prefix,
        next_hop: Option<NextHop>,
    ) {
        self.schedule(at, EventKind::RouteSet { node, prefix, next_hop });
    }

    /// The time of the next pending event, if any — the head of the
    /// current tick batch or of the wheel, whichever sorts first. Takes
    /// `&mut self` because the wheel may advance its cursor to locate
    /// the event (the answer, and event order, are unaffected).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        let batch = self.tick_events.last().map(|&(time, seq, _)| (time, seq));
        match (batch, self.queue.next_key()) {
            (Some(b), Some(w)) => Some(if w < b { w.0 } else { b.0 }),
            (Some(b), None) => Some(b.0),
            (None, w) => w.map(|(time, _)| time),
        }
    }

    /// The next event in global `(time, seq)` order.
    ///
    /// Events are pulled from the wheel a whole tick at a time
    /// ([`EventWheel::pop_tick_into`]) so the sort/drain machinery runs
    /// once per tick instead of once per event — a probe window whose
    /// packets share a link delay lands as one batch. Processing an
    /// event can schedule new ones into the *current* tick (a sub-tick
    /// link delay), and those must interleave with the rest of the
    /// batch, so each serve compares the batch head against the wheel
    /// head and takes the smaller key.
    fn next_event(&mut self) -> Option<(SimTime, u64, EventKind)> {
        if self.tick_events.is_empty() && self.queue.pop_tick_into(&mut self.tick_events) > 0 {
            // Drained ascending; reverse so `Vec::pop` serves in order.
            self.tick_events.reverse();
        }
        let &(time, seq, _) = self.tick_events.last()?;
        if self.queue.next_key().is_some_and(|k| k < (time, seq)) {
            return self.queue.pop();
        }
        self.tick_events.pop()
    }

    /// Process a single event, advancing the clock to it. Returns `false`
    /// when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((time, _seq, kind)) = self.next_event() else { return false };
        debug_assert!(time >= self.clock, "event from the past");
        self.clock = time;
        match kind {
            EventKind::Arrival { node, iface_in, packet } => {
                self.process_arrival(node, iface_in, packet)
            }
            EventKind::RouteSet { node, prefix, next_hop } => {
                self.freshen(node);
                self.route_version += 1;
                match next_hop {
                    Some(nh) => self.state[node.0].routing.set(prefix, nh),
                    None => {
                        let topo = Arc::clone(&self.topo);
                        self.state[node.0].routing.remove(&topo.node(node).routing, prefix);
                    }
                }
            }
        }
        true
    }

    /// Process every event scheduled at or before `t`; the clock finishes
    /// at exactly `t`.
    pub fn run_until(&mut self, t: SimTime) {
        while self.peek_time().is_some_and(|pt| pt <= t) {
            self.step();
        }
        if self.clock < t {
            self.clock = t;
        }
    }

    /// Drain every pending event (packets die by TTL, so this terminates).
    pub fn run_to_quiescence(&mut self) {
        while self.step() {}
    }

    /// Take everything delivered to `node` since the last call.
    ///
    /// Allocates a fresh `Vec` per call — convenient in tests, wrong on
    /// hot paths. Library code should use [`Simulator::take_inbox_into`]
    /// (recycled buffer) or [`Simulator::pop_delivery`] instead.
    ///
    /// Debug builds enforce the epoch discipline: a node whose slot
    /// still trails the simulator epoch has not participated in this
    /// epoch at all, so any deliveries the caller hoped to read were
    /// drained by [`Simulator::reset`]. Panicking beats silently
    /// handing back an empty lane.
    #[doc(hidden)]
    pub fn take_inbox(&mut self, node: NodeId) -> Vec<(SimTime, Packet)> {
        debug_assert_eq!(
            self.state[node.0].epoch, self.epoch,
            "take_inbox({node:?}) on a node untouched since the last reset: \
             pre-reset deliveries were drained (stale-epoch read)"
        );
        let mut out = Vec::new();
        self.take_inbox_into(node, &mut out);
        out
    }

    /// Drain everything delivered to `node` since the last call into
    /// `out`, appending. The lane's deque is drained in place (its
    /// allocation survives), so round loops that pass a recycled buffer
    /// reallocate nothing.
    pub fn take_inbox_into(&mut self, node: NodeId, out: &mut Vec<(SimTime, Packet)>) {
        out.extend(self.inbox[node.0].drain(..));
    }

    /// Pop the oldest delivery to `node`, if any.
    pub fn pop_delivery(&mut self, node: NodeId) -> Option<(SimTime, Packet)> {
        self.inbox[node.0].pop_front()
    }

    /// Number of undelivered packets waiting at `node`.
    pub fn inbox_len(&self, node: NodeId) -> usize {
        self.inbox[node.0].len()
    }

    /// A cleared payload buffer from the arena's recycling pool (fresh
    /// when the pool is empty). Probe builders grab buffers here — via
    /// the tracer-side `Transport::grab_payload` hook — so the payloads
    /// of released responses circulate back into new probes and the
    /// probe→response cycle stops allocating after warm-up.
    pub fn grab_payload(&mut self) -> Vec<u8> {
        self.arena.grab_payload()
    }

    /// Read `node`'s live routing state (tests and dynamics helpers):
    /// the shared base table merged with this simulator's delta. A node
    /// not yet touched since the last reset shows a pristine delta.
    pub fn routing_of(&self, node: NodeId) -> NodeRouting<'_> {
        let st = &self.state[node.0];
        let delta = if st.epoch == self.epoch { &st.routing } else { RouteDelta::pristine_ref() };
        NodeRouting::new(&self.topo.node(node).routing, delta)
    }

    // ------------------------------------------------------------------
    // Packet processing
    // ------------------------------------------------------------------

    fn process_arrival(&mut self, node: NodeId, iface_in: Option<usize>, packet: PacketRef) {
        // One Arc bump pins the topology so node config is *borrowed* for
        // the whole arrival — the hot path clones no NodeKind/config, and
        // the packet itself stays parked in the arena.
        let topo = Arc::clone(&self.topo);
        let n = topo.node(node);
        if n.owns_addr(self.arena.get(packet).ip.dst) {
            self.deliver_local(node, n, packet);
            return;
        }
        match &n.kind {
            NodeKind::Host(_) => {
                if iface_in.is_none() {
                    // Hosts route only their own packets (via gateway).
                    self.forward(&topo, node, iface_in, packet);
                } else {
                    // A host never forwards transit traffic.
                    self.stats.dropped_no_route += 1;
                    self.arena.release(packet);
                }
            }
            NodeKind::Router(cfg) => {
                if iface_in.is_some() {
                    let ttl = self.arena.get(packet).ip.ttl;
                    if ttl == 0 || (ttl == 1 && !cfg.zero_ttl_forwarding) {
                        if cfg.mpls_hidden {
                            // LSP interior: the expired packet vanishes
                            // inside the tunnel — no Time Exceeded.
                            self.stats.dropped_mpls_hidden += 1;
                            self.arena.release(packet);
                            return;
                        }
                        // Expired: quote the packet exactly as received —
                        // probe TTL 1 normally, 0 past a zero-TTL forwarder.
                        self.expire(node, iface_in, cfg, packet);
                        return;
                    }
                    // Normal decrement; the Fig. 4 misconfiguration sends
                    // TTL 1 onward as TTL 0.
                    self.arena.get_mut(packet).ip.ttl -= 1;
                    if cfg.filter_udp
                        && matches!(self.arena.get(packet).transport, Transport::Udp(_))
                    {
                        // Firewall: UDP transit dies here, silently;
                        // TCP and ICMP pass (and probes addressed to
                        // the filter itself answered above).
                        self.stats.dropped_filtered += 1;
                        self.arena.release(packet);
                        return;
                    }
                }
                if let Some(code) = cfg.broken {
                    self.respond_unreachable(node, iface_in, cfg, packet, code);
                    return;
                }
                self.forward(&topo, node, iface_in, packet);
            }
        }
    }

    fn deliver_local(&mut self, node: NodeId, n: &Node, packet: PacketRef) {
        self.stats.delivered += 1;
        let packet = self.arena.take(packet);
        let probed_addr = packet.ip.dst;
        let response = match &n.kind {
            NodeKind::Host(h) => self.host_response(node, h, probed_addr, &packet),
            NodeKind::Router(r) => self.router_local_response(node, r, probed_addr, &packet),
        };
        self.freshen(node);
        let st = &mut self.state[node.0];
        if !st.inbox_dirty {
            st.inbox_dirty = true;
            self.dirty_inboxes.push(node);
        }
        self.inbox[node.0].push_back((self.clock, packet));
        if let Some(resp) = response {
            self.originate(node, resp);
        }
    }

    fn host_response(
        &mut self,
        node: NodeId,
        cfg: &HostConfig,
        probed_addr: Ipv4Addr,
        packet: &Packet,
    ) -> Option<Packet> {
        match &packet.transport {
            Transport::Udp(_) => {
                if !cfg.udp_responds {
                    self.stats.dropped_host_mute += 1;
                    return None;
                }
                self.stats.dest_unreachable_sent += 1;
                Some(self.icmp_response(
                    node,
                    probed_addr,
                    cfg.initial_ttl,
                    packet,
                    IcmpKind::Unreachable(UnreachableCode::Port),
                ))
            }
            Transport::Icmp(IcmpMessage::EchoRequest { identifier, seq, payload }) => {
                if !cfg.pingable {
                    self.stats.dropped_host_mute += 1;
                    return None;
                }
                self.stats.echo_replies_sent += 1;
                // Echo the payload through a pooled buffer: once the
                // pool is warm the reply path allocates nothing.
                let mut echoed = self.arena.grab_payload();
                echoed.extend_from_slice(payload);
                let reply =
                    IcmpMessage::EchoReply { identifier: *identifier, seq: *seq, payload: echoed };
                Some(self.build_response(
                    node,
                    probed_addr,
                    packet.ip.src,
                    cfg.initial_ttl,
                    Transport::Icmp(reply),
                ))
            }
            Transport::Tcp(seg) if seg.control & tcp_flags::SYN != 0 => {
                let open = cfg.open_tcp_ports.contains(&seg.dst_port);
                if !open && !cfg.tcp_responds {
                    self.stats.dropped_host_mute += 1;
                    return None;
                }
                self.stats.tcp_responses_sent += 1;
                let mut resp = TcpSegment::syn_probe(seg.dst_port, seg.src_port, 0);
                resp.ack = seg.seq.wrapping_add(1);
                resp.control = if open {
                    tcp_flags::SYN | tcp_flags::ACK
                } else {
                    tcp_flags::RST | tcp_flags::ACK
                };
                Some(self.build_response(
                    node,
                    probed_addr,
                    packet.ip.src,
                    cfg.initial_ttl,
                    Transport::Tcp(resp),
                ))
            }
            // Echo replies, errors, non-SYN TCP: consumed silently.
            _ => None,
        }
    }

    fn router_local_response(
        &mut self,
        node: NodeId,
        cfg: &RouterConfig,
        probed_addr: Ipv4Addr,
        packet: &Packet,
    ) -> Option<Packet> {
        if cfg.silent {
            self.stats.dropped_silent += 1;
            return None;
        }
        match &packet.transport {
            Transport::Udp(_) => {
                self.stats.dest_unreachable_sent += 1;
                Some(self.icmp_response(
                    node,
                    probed_addr,
                    cfg.icmp_initial_ttl,
                    packet,
                    IcmpKind::Unreachable(UnreachableCode::Port),
                ))
            }
            Transport::Icmp(IcmpMessage::EchoRequest { identifier, seq, payload }) => {
                self.stats.echo_replies_sent += 1;
                // Same pooled-buffer echo as the host path.
                let mut echoed = self.arena.grab_payload();
                echoed.extend_from_slice(payload);
                let reply =
                    IcmpMessage::EchoReply { identifier: *identifier, seq: *seq, payload: echoed };
                Some(self.build_response(
                    node,
                    probed_addr,
                    packet.ip.src,
                    cfg.icmp_initial_ttl,
                    Transport::Icmp(reply),
                ))
            }
            Transport::Tcp(seg) if seg.control & tcp_flags::SYN != 0 => {
                self.stats.tcp_responses_sent += 1;
                let mut resp = TcpSegment::syn_probe(seg.dst_port, seg.src_port, 0);
                resp.ack = seg.seq.wrapping_add(1);
                resp.control = tcp_flags::RST | tcp_flags::ACK;
                Some(self.build_response(
                    node,
                    probed_addr,
                    packet.ip.src,
                    cfg.icmp_initial_ttl,
                    Transport::Tcp(resp),
                ))
            }
            _ => None,
        }
    }

    fn expire(
        &mut self,
        node: NodeId,
        iface_in: Option<usize>,
        cfg: &RouterConfig,
        packet: PacketRef,
    ) {
        if cfg.silent {
            self.stats.dropped_silent += 1;
            self.arena.release(packet);
            return;
        }
        if self.rate_limited(node, cfg) {
            self.stats.dropped_rate_limited += 1;
            self.arena.release(packet);
            return;
        }
        // The probe is consumed here: move it out, quote it, then hand
        // its payload buffer back to the pool.
        let packet = self.arena.take(packet);
        let src_addr = self.responding_addr(node, iface_in);
        self.stats.time_exceeded_sent += 1;
        let resp = self.icmp_response(
            node,
            src_addr,
            cfg.icmp_initial_ttl,
            &packet,
            IcmpKind::TimeExceeded,
        );
        self.arena.recycle_packet(packet);
        self.originate(node, resp);
    }

    fn respond_unreachable(
        &mut self,
        node: NodeId,
        iface_in: Option<usize>,
        cfg: &RouterConfig,
        packet: PacketRef,
        code: UnreachableCode,
    ) {
        if cfg.silent {
            self.stats.dropped_silent += 1;
            self.arena.release(packet);
            return;
        }
        if self.rate_limited(node, cfg) {
            self.stats.dropped_rate_limited += 1;
            self.arena.release(packet);
            return;
        }
        let packet = self.arena.take(packet);
        let src_addr = self.responding_addr(node, iface_in);
        self.stats.dest_unreachable_sent += 1;
        let resp = self.icmp_response(
            node,
            src_addr,
            cfg.icmp_initial_ttl,
            &packet,
            IcmpKind::Unreachable(code),
        );
        self.arena.recycle_packet(packet);
        self.originate(node, resp);
    }

    fn rate_limited(&mut self, node: NodeId, cfg: &RouterConfig) -> bool {
        if cfg.icmp_min_interval.is_none() && cfg.icmp_rate_limit.is_none() {
            return false;
        }
        self.freshen(node);
        let state = &mut self.state[node.0];
        if let Some(min) = cfg.icmp_min_interval {
            if let Some(last) = state.last_icmp {
                if self.clock.since(last) < min {
                    return true;
                }
            }
        }
        if let Some(tb) = cfg.icmp_rate_limit {
            if state.icmp_tokens == u32::MAX {
                // First touch after (re-)derivation: the bucket starts
                // full. The sentinel keeps `NodeState::fresh` a pure
                // function of `(seed, idx)` without knowing `burst`.
                state.icmp_tokens = tb.burst;
                state.icmp_tokens_at = self.clock;
            } else {
                let interval = tb.interval.nanos().max(1);
                let minted = self.clock.since(state.icmp_tokens_at).nanos() / interval;
                if minted > 0 {
                    let fill = u64::from(state.icmp_tokens).saturating_add(minted);
                    if fill >= u64::from(tb.burst) {
                        state.icmp_tokens = tb.burst;
                        // A full bucket stops accruing credit.
                        state.icmp_tokens_at = self.clock;
                    } else {
                        state.icmp_tokens = fill as u32;
                        // Advance by whole tokens only, so fractional
                        // refill credit carries to the next ICMP.
                        state.icmp_tokens_at += SimDuration::from_nanos(minted * interval);
                    }
                }
            }
            if state.icmp_tokens == 0 {
                return true;
            }
            state.icmp_tokens -= 1;
        }
        state.last_icmp = Some(self.clock);
        false
    }

    /// The address a router answers from: by default the interface the
    /// offending packet arrived on (the address classic traceroute
    /// reports), or the primary address for fixed-responder routers.
    fn responding_addr(&self, node: NodeId, iface_in: Option<usize>) -> Ipv4Addr {
        let n = self.topo.node(node);
        let fixed = matches!(
            n.kind.as_router().map(|r| r.responder),
            Some(crate::node::ResponderAddr::Fixed)
        );
        match iface_in {
            Some(i) if !fixed => n.ifaces[i].addr,
            _ => n.primary_addr(),
        }
    }

    fn icmp_response(
        &mut self,
        node: NodeId,
        src: Ipv4Addr,
        initial_ttl: u8,
        offending: &Packet,
        kind: IcmpKind,
    ) -> Packet {
        // Quote the offending packet exactly as received: header with the
        // TTL at reception, plus the first eight transport octets. The
        // scratch buffer is recycled across responses, so quoting does not
        // allocate.
        let mut scratch = std::mem::take(&mut self.scratch);
        offending.emit_transport_into(&mut scratch);
        let quotation = Quotation::from_probe(offending.ip, &scratch);
        self.scratch = scratch;
        let msg = match kind {
            IcmpKind::TimeExceeded => IcmpMessage::TimeExceeded { quotation },
            IcmpKind::Unreachable(code) => IcmpMessage::DestUnreachable { code, quotation },
        };
        self.build_response(node, src, offending.ip.src, initial_ttl, Transport::Icmp(msg))
    }

    fn build_response(
        &mut self,
        node: NodeId,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        initial_ttl: u8,
        transport: Transport,
    ) -> Packet {
        self.freshen(node);
        let state = &mut self.state[node.0];
        let mut ip = Ipv4Header::new(src, dst, transport.protocol(), initial_ttl);
        ip.identification = state.ip_id;
        state.ip_id = state.ip_id.wrapping_add(1);
        Packet::new(ip, transport)
    }

    /// Send `packet` from `node` without TTL processing (the node is the
    /// packet's origin).
    fn originate(&mut self, node: NodeId, packet: Packet) {
        let packet = self.arena.alloc(packet);
        let topo = Arc::clone(&self.topo);
        self.forward(&topo, node, None, packet);
    }

    /// `topo` is the caller's pin of `self.topo` (one Arc bump per
    /// arrival covers the whole event; re-pinning here would put a
    /// second pair of atomic ops on every forwarded hop).
    fn forward(
        &mut self,
        topo: &Topology,
        node: NodeId,
        iface_in: Option<usize>,
        packet: PacketRef,
    ) {
        self.freshen(node);
        // NAT: rewrite the source of anything leaving the stub.
        if let NodeKind::Router(cfg) = &topo.node(node).kind {
            if let Some(nat) = &cfg.nat {
                let p = self.arena.get_mut(packet);
                if p.ip.src != nat.public && nat.is_inside(p.ip.src) {
                    p.ip.src = nat.public;
                    self.stats.nat_rewrites += 1;
                }
            }
        }
        let dst = self.arena.get(packet).ip.dst;
        // Per-node memo short-circuit: a tick batch delivers a window of
        // same-destination packets here back to back, and successive
        // probes of a trace revisit this node every round, so the lookup
        // below almost always repeats the previous one (see [`FwdMemo`]).
        let memo = self.fwd_memo[node.0];
        if memo.epoch == self.epoch
            && memo.version == self.route_version
            && memo.dst == u32::from(dst)
        {
            self.transmit(node, memo.egress as usize, packet);
            return;
        }
        // The next hop stays borrowed from the shared base table (or this
        // simulator's delta) for the whole egress decision; balanced
        // egress sets are indexed in place, never cloned (the RNG draw
        // borrows a disjoint NodeState field, the packet a disjoint
        // Simulator field).
        let base = &topo.node(node).routing;
        let st = &mut self.state[node.0];
        let Some(next_hop) = NodeRouting::new(base, &st.routing).lookup(dst) else {
            self.stats.dropped_no_route += 1;
            self.arena.release(packet);
            return;
        };
        let egress = match next_hop {
            NextHop::Iface(i) => {
                self.fwd_memo[node.0] = FwdMemo {
                    dst: u32::from(dst),
                    epoch: self.epoch,
                    version: self.route_version,
                    egress: *i as u32,
                };
                *i
            }
            NextHop::Blackhole => {
                self.stats.dropped_blackhole += 1;
                self.arena.release(packet);
                return;
            }
            NextHop::Balanced { kind, egresses } => {
                let n = egresses.len();
                let idx = match kind {
                    BalancerKind::PerFlow(policy) => {
                        let key = policy.flow_key(self.arena.get(packet)).0;
                        (splitmix64(key ^ st.salt) % n as u64) as usize
                    }
                    BalancerKind::PerPacket => st.rng.gen_range(0..n),
                    BalancerKind::PerDestination => {
                        let key = u64::from(u32::from(dst));
                        (splitmix64(key ^ st.salt) % n as u64) as usize
                    }
                };
                egresses[idx]
            }
        };
        // Don't bounce a packet straight back out the interface it came
        // in on unless routing genuinely says so (it may, in a transient
        // forwarding loop — allow it; real routers do too).
        let _ = iface_in;
        self.transmit(node, egress, packet);
    }

    fn transmit(&mut self, node: NodeId, iface_idx: usize, packet: PacketRef) {
        let iface = self.topo.node(node).ifaces[iface_idx];
        let Some(link_id) = iface.link else {
            // Loopback/unattached interface: nowhere to go.
            self.stats.dropped_no_route += 1;
            self.arena.release(packet);
            return;
        };
        let link = *self.topo.link(link_id);
        if link.loss > 0.0 {
            // forward() freshened this node before routing the packet
            // here, so the slot cannot be stale.
            debug_assert_eq!(self.state[node.0].epoch, self.epoch);
            if self.state[node.0].rng.gen::<f64>() < link.loss {
                self.stats.dropped_loss += 1;
                self.arena.release(packet);
                return;
            }
        }
        let other = link.other_end(node);
        self.stats.forwarded += 1;
        let at = self.clock + link.delay_from(node);
        self.schedule(
            at,
            EventKind::Arrival { node: other.node, iface_in: Some(other.iface), packet },
        );
    }
}

/// A pool of reusable [`Simulator`]s over one shared topology.
///
/// [`SimulatorPool::acquire`] hands out a simulator reset to the given
/// seed — behaviorally identical to `Simulator::new(topology, seed)`,
/// but with its event queue, arena slots, payload buffers and inbox
/// deques already warm when a previously released simulator was
/// available. Campaign workers keep one pool each, so per-destination
/// trace tasks pay no construction or steady-state allocation cost
/// after their first work unit.
#[derive(Debug)]
pub struct SimulatorPool {
    topo: Arc<Topology>,
    idle: Vec<Simulator>,
}

impl SimulatorPool {
    /// An empty pool over `topology`.
    pub fn new(topology: Arc<Topology>) -> Self {
        SimulatorPool { topo: topology, idle: Vec::new() }
    }

    /// A simulator over the pool's topology, reset to `seed`.
    pub fn acquire(&mut self, seed: u64) -> Simulator {
        match self.idle.pop() {
            Some(mut sim) => {
                sim.reset(seed);
                sim
            }
            None => Simulator::new(Arc::clone(&self.topo), seed),
        }
    }

    /// Return a simulator for later reuse. Must have been built over
    /// the pool's topology.
    pub fn release(&mut self, sim: Simulator) {
        debug_assert!(
            Arc::ptr_eq(sim.topology(), &self.topo),
            "released simulator belongs to a different topology"
        );
        self.idle.push(sim);
    }

    /// Number of idle simulators held.
    pub fn idle_count(&self) -> usize {
        self.idle.len()
    }
}

#[derive(Debug, Clone, Copy)]
enum IcmpKind {
    TimeExceeded,
    Unreachable(UnreachableCode),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TopologyBuilder;
    use crate::node::{HostConfig, RouterConfig};
    use crate::time::SimDuration;
    use pt_wire::ipv4::protocol;
    use pt_wire::UdpDatagram;

    /// S — r1 — r2 — D, 1 ms per link.
    fn chain() -> (Arc<Topology>, NodeId, NodeId, Ipv4Addr) {
        let mut b = TopologyBuilder::new();
        let s = b.host("S", HostConfig::default());
        let r1 = b.router("r1", RouterConfig::default());
        let r2 = b.router("r2", RouterConfig::default());
        let d = b.host("D", HostConfig::default());
        b.link(s, r1, SimDuration::from_millis(1), 0.0);
        b.link(r1, r2, SimDuration::from_millis(1), 0.0);
        b.link(r2, d, SimDuration::from_millis(1), 0.0);
        b.default_via(s, r1);
        b.default_via(r1, r2);
        b.default_via(r2, d);
        b.default_via(d, r2);
        // Return routes toward S.
        let s_pfx = b.subnet_of(s);
        b.route_via(r2, s_pfx, r1);
        b.route_via(r1, s_pfx, s);
        let dst = b.addr_of(d);
        (Arc::new(b.build()), s, d, dst)
    }

    fn udp_probe(src: Ipv4Addr, dst: Ipv4Addr, ttl: u8, dst_port: u16) -> Packet {
        let ip = Ipv4Header::new(src, dst, protocol::UDP, ttl);
        Packet::new(ip, Transport::Udp(UdpDatagram::new(33768, dst_port, vec![0; 8])))
    }

    fn src_addr(topo: &Topology, s: NodeId) -> Ipv4Addr {
        topo.node(s).primary_addr()
    }

    #[test]
    fn ttl_expiry_generates_time_exceeded_with_probe_ttl_one() {
        let (topo, s, _d, dst) = chain();
        let mut sim = Simulator::new(topo.clone(), 1);
        let probe = udp_probe(src_addr(&topo, s), dst, 1, 33435);
        sim.inject(s, probe);
        sim.run_to_quiescence();
        let deliveries = sim.take_inbox(s);
        assert_eq!(deliveries.len(), 1);
        let (_, resp) = &deliveries[0];
        // Response comes from r1's S-facing interface.
        assert_eq!(resp.ip.src, topo.node(topo.find("r1").unwrap()).ifaces[0].addr);
        match &resp.transport {
            Transport::Icmp(IcmpMessage::TimeExceeded { quotation }) => {
                assert_eq!(quotation.ip.ttl, 1, "normal probe TTL is one");
                assert_eq!(quotation.ip.dst, dst);
            }
            other => panic!("expected Time Exceeded, got {other:?}"),
        }
        assert_eq!(sim.stats().time_exceeded_sent, 1);
    }

    #[test]
    fn probe_reaching_destination_draws_port_unreachable() {
        let (topo, s, _d, dst) = chain();
        let mut sim = Simulator::new(topo.clone(), 1);
        let probe = udp_probe(src_addr(&topo, s), dst, 30, 34567);
        sim.inject(s, probe);
        sim.run_to_quiescence();
        let deliveries = sim.take_inbox(s);
        assert_eq!(deliveries.len(), 1);
        match &deliveries[0].1.transport {
            Transport::Icmp(IcmpMessage::DestUnreachable { code, quotation }) => {
                assert_eq!(*code, UnreachableCode::Port);
                assert_eq!(quotation.ip.dst, dst);
            }
            other => panic!("expected Port Unreachable, got {other:?}"),
        }
    }

    #[test]
    fn echo_request_draws_echo_reply() {
        let (topo, s, _d, dst) = chain();
        let mut sim = Simulator::new(topo.clone(), 1);
        let ip = Ipv4Header::new(src_addr(&topo, s), dst, protocol::ICMP, 30);
        let probe = Packet::new(ip, Transport::Icmp(IcmpMessage::echo_probe_classic(77, 3)));
        sim.inject(s, probe);
        sim.run_to_quiescence();
        let deliveries = sim.take_inbox(s);
        assert_eq!(deliveries.len(), 1);
        match &deliveries[0].1.transport {
            Transport::Icmp(IcmpMessage::EchoReply { identifier, seq, .. }) => {
                assert_eq!((*identifier, *seq), (77, 3));
            }
            other => panic!("expected Echo Reply, got {other:?}"),
        }
        assert_eq!(deliveries[0].1.ip.src, dst, "reply comes from the probed address");
    }

    #[test]
    fn response_ttl_reflects_return_path_length() {
        let (topo, s, _d, dst) = chain();
        let mut sim = Simulator::new(topo.clone(), 1);
        // Expire at r2 (hop 2): response crosses r2→r1→S, decremented
        // once at r1. 255 - 1 = 254 on arrival.
        let probe = udp_probe(src_addr(&topo, s), dst, 2, 33435);
        sim.inject(s, probe);
        sim.run_to_quiescence();
        let deliveries = sim.take_inbox(s);
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].1.ip.ttl, 254);
    }

    #[test]
    fn rtt_grows_with_hop_distance() {
        let (topo, s, _d, dst) = chain();
        let mut sim = Simulator::new(topo.clone(), 1);
        let t0 = sim.now();
        sim.inject(s, udp_probe(src_addr(&topo, s), dst, 1, 33435));
        sim.run_to_quiescence();
        let rtt1 = sim.take_inbox(s)[0].0.since(t0);
        let t1 = sim.now();
        sim.inject(s, udp_probe(src_addr(&topo, s), dst, 2, 33436));
        sim.run_to_quiescence();
        let rtt2 = sim.take_inbox(s)[0].0.since(t1);
        assert_eq!(rtt1, SimDuration::from_millis(2), "hop 1: 1ms out + 1ms back");
        assert_eq!(rtt2, SimDuration::from_millis(4), "hop 2: 2ms out + 2ms back");
    }

    #[test]
    fn ip_ids_from_one_router_increment() {
        let (topo, s, _d, dst) = chain();
        let mut sim = Simulator::new(topo.clone(), 1);
        let mut ids = Vec::new();
        for i in 0..3 {
            sim.inject(s, udp_probe(src_addr(&topo, s), dst, 1, 33435 + i));
            sim.run_to_quiescence();
            ids.push(sim.take_inbox(s)[0].1.ip.identification);
        }
        assert_eq!(ids[1], ids[0].wrapping_add(1));
        assert_eq!(ids[2], ids[1].wrapping_add(1));
    }

    #[test]
    fn silent_router_swallows_probes() {
        let mut b = TopologyBuilder::new();
        let s = b.host("S", HostConfig::default());
        let r1 = b.router("r1", RouterConfig::silent());
        let d = b.host("D", HostConfig::default());
        b.link(s, r1, SimDuration::from_millis(1), 0.0);
        b.link(r1, d, SimDuration::from_millis(1), 0.0);
        b.default_via(s, r1);
        b.default_via(r1, d);
        b.default_via(d, r1);
        let s_pfx = b.subnet_of(s);
        b.route_via(r1, s_pfx, s);
        let dst = b.addr_of(d);
        let topo = Arc::new(b.build());
        let mut sim = Simulator::new(topo.clone(), 3);
        sim.inject(s, udp_probe(src_addr(&topo, s), dst, 1, 33435));
        sim.run_to_quiescence();
        assert!(sim.take_inbox(s).is_empty(), "silent router must not answer");
        assert_eq!(sim.stats().dropped_silent, 1);
        // But probes pass through it fine.
        sim.inject(s, udp_probe(src_addr(&topo, s), dst, 5, 33436));
        sim.run_to_quiescence();
        assert_eq!(sim.take_inbox(s).len(), 1, "transit still works");
    }

    #[test]
    fn zero_ttl_forwarder_produces_probe_ttl_zero_at_next_hop() {
        let mut b = TopologyBuilder::new();
        let s = b.host("S", HostConfig::default());
        let f = b.router("F", RouterConfig::zero_ttl_forwarder());
        let a = b.router("A", RouterConfig::default());
        let d = b.host("D", HostConfig::default());
        b.link(s, f, SimDuration::from_millis(1), 0.0);
        b.link(f, a, SimDuration::from_millis(1), 0.0);
        b.link(a, d, SimDuration::from_millis(1), 0.0);
        b.default_via(s, f);
        b.default_via(f, a);
        b.default_via(a, d);
        b.default_via(d, a);
        let s_pfx = b.subnet_of(s);
        b.route_via(a, s_pfx, f);
        b.route_via(f, s_pfx, s);
        let dst = b.addr_of(d);
        let topo = Arc::new(b.build());
        let mut sim = Simulator::new(topo.clone(), 9);
        // TTL 1 should expire at F, but F forwards it as TTL 0; A answers
        // with probe TTL 0.
        sim.inject(s, udp_probe(src_addr(&topo, s), dst, 1, 33435));
        sim.run_to_quiescence();
        let deliveries = sim.take_inbox(s);
        assert_eq!(deliveries.len(), 1);
        let a_id = topo.find("A").unwrap();
        assert_eq!(deliveries[0].1.ip.src, topo.node(a_id).ifaces[0].addr);
        match &deliveries[0].1.transport {
            Transport::Icmp(IcmpMessage::TimeExceeded { quotation }) => {
                assert_eq!(quotation.ip.ttl, 0, "zero-TTL forwarding signature");
            }
            other => panic!("expected Time Exceeded, got {other:?}"),
        }
        // TTL 2 reaches A as TTL 1 and expires normally: probe TTL 1,
        // same responding interface — the Fig. 4 loop.
        sim.inject(s, udp_probe(src_addr(&topo, s), dst, 2, 33436));
        sim.run_to_quiescence();
        let deliveries = sim.take_inbox(s);
        match &deliveries[0].1.transport {
            Transport::Icmp(IcmpMessage::TimeExceeded { quotation }) => {
                assert_eq!(quotation.ip.ttl, 1);
            }
            other => panic!("expected Time Exceeded, got {other:?}"),
        }
    }

    #[test]
    fn broken_router_sends_unreachable_for_forwardable_probes() {
        let mut b = TopologyBuilder::new();
        let s = b.host("S", HostConfig::default());
        let r = b.router("r", RouterConfig::broken_forwarding(UnreachableCode::Host));
        let d = b.host("D", HostConfig::default());
        b.link(s, r, SimDuration::from_millis(1), 0.0);
        b.link(r, d, SimDuration::from_millis(1), 0.0);
        b.default_via(s, r);
        b.default_via(r, d);
        let s_pfx = b.subnet_of(s);
        b.route_via(r, s_pfx, s);
        let dst = b.addr_of(d);
        let topo = Arc::new(b.build());
        let mut sim = Simulator::new(topo.clone(), 5);
        let src = src_addr(&topo, s);
        // TTL 1 expires normally: Time Exceeded.
        sim.inject(s, udp_probe(src, dst, 1, 33435));
        sim.run_to_quiescence();
        let first = sim.take_inbox(s);
        assert!(matches!(&first[0].1.transport, Transport::Icmp(IcmpMessage::TimeExceeded { .. })));
        // TTL 2 would be forwarded, but forwarding is broken: !H, same
        // address — the unreachability loop.
        sim.inject(s, udp_probe(src, dst, 2, 33436));
        sim.run_to_quiescence();
        let second = sim.take_inbox(s);
        match &second[0].1.transport {
            Transport::Icmp(IcmpMessage::DestUnreachable { code, .. }) => {
                assert_eq!(*code, UnreachableCode::Host);
            }
            other => panic!("expected !H, got {other:?}"),
        }
        assert_eq!(first[0].1.ip.src, second[0].1.ip.src, "loop signature");
    }

    #[test]
    fn lossy_link_drops_deterministically_per_seed() {
        let mut b = TopologyBuilder::new();
        let s = b.host("S", HostConfig::default());
        let r = b.router("r", RouterConfig::default());
        let d = b.host("D", HostConfig::default());
        b.link(s, r, SimDuration::from_millis(1), 0.0);
        b.link(r, d, SimDuration::from_millis(1), 0.9);
        b.default_via(s, r);
        b.default_via(r, d);
        b.default_via(d, r);
        let s_pfx = b.subnet_of(s);
        b.route_via(r, s_pfx, s);
        let dst = b.addr_of(d);
        let topo = Arc::new(b.build());
        let run = |seed: u64| {
            let mut sim = Simulator::new(topo.clone(), seed);
            let mut got = 0;
            for i in 0..20 {
                sim.inject(s, udp_probe(src_addr(&topo, s), dst, 5, 34000 + i));
                sim.run_to_quiescence();
                got += sim.take_inbox(s).len();
            }
            (got, sim.stats().dropped_loss)
        };
        let (got_a, lost_a) = run(42);
        let (got_b, lost_b) = run(42);
        assert_eq!((got_a, lost_a), (got_b, lost_b), "same seed, same outcome");
        assert!(lost_a > 0, "90% loss must drop something across 20 probes");
        assert!(got_a < 20);
    }

    #[test]
    fn route_set_event_changes_forwarding_at_the_scheduled_time() {
        let mut b = TopologyBuilder::new();
        let s = b.host("S", HostConfig::default());
        let r = b.router("r", RouterConfig::default());
        let d1 = b.host("D1", HostConfig::default());
        let d2 = b.host("D2", HostConfig::default());
        b.link(s, r, SimDuration::from_millis(1), 0.0);
        b.link(r, d1, SimDuration::from_millis(1), 0.0);
        b.link(r, d2, SimDuration::from_millis(1), 0.0);
        b.default_via(s, r);
        b.default_via(r, d1);
        b.default_via(d1, r);
        b.default_via(d2, r);
        let s_pfx = b.subnet_of(s);
        b.route_via(r, s_pfx, s);
        let dst = b.addr_of(d1);
        let topo = Arc::new(b.build());
        let mut sim = Simulator::new(topo.clone(), 1);
        // After 10ms, r loses its route for everything (default removed).
        sim.schedule_route_set(
            SimTime::ZERO + SimDuration::from_millis(10),
            r,
            Ipv4Prefix::DEFAULT,
            None,
        );
        sim.inject(s, udp_probe(src_addr(&topo, s), dst, 5, 33435));
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(9));
        assert_eq!(sim.take_inbox(s).len(), 1, "before the change, reachable");
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(11));
        sim.inject(s, udp_probe(src_addr(&topo, s), dst, 5, 33436));
        sim.run_to_quiescence();
        // The probe dies at r for lack of a route (s_pfx route remains,
        // but dst no longer matches anything).
        assert!(sim.take_inbox(s).is_empty());
        assert!(sim.stats().dropped_no_route >= 1);
    }

    #[test]
    fn per_flow_balancer_sends_one_flow_one_way() {
        use pt_wire::FlowPolicy;
        let mut b = TopologyBuilder::new();
        let s = b.host("S", HostConfig::default());
        let l = b.router("L", RouterConfig::default());
        let a = b.router("A", RouterConfig::default());
        let c = b.router("C", RouterConfig::default());
        let m = b.router("M", RouterConfig::default());
        let d = b.host("D", HostConfig::default());
        b.link(s, l, SimDuration::from_millis(1), 0.0);
        b.link(l, a, SimDuration::from_millis(1), 0.0);
        b.link(l, c, SimDuration::from_millis(1), 0.0);
        b.link(a, m, SimDuration::from_millis(1), 0.0);
        b.link(c, m, SimDuration::from_millis(1), 0.0);
        b.link(m, d, SimDuration::from_millis(1), 0.0);
        b.default_via(s, l);
        b.balanced_route(
            l,
            Ipv4Prefix::DEFAULT,
            BalancerKind::PerFlow(FlowPolicy::FiveTuple),
            &[a, c],
        );
        b.default_via(a, m);
        b.default_via(c, m);
        b.default_via(m, d);
        b.default_via(d, m);
        let s_pfx = b.subnet_of(s);
        b.route_via(m, s_pfx, a);
        b.route_via(a, s_pfx, l);
        b.route_via(c, s_pfx, l);
        b.route_via(l, s_pfx, s);
        let dst = b.addr_of(d);
        let topo = Arc::new(b.build());
        let mut sim = Simulator::new(topo.clone(), 7);
        let src = src_addr(&topo, s);
        // Same flow (same ports) at TTL 2 always hits the same router.
        let mut addrs_same_flow = std::collections::HashSet::new();
        for _ in 0..8 {
            sim.inject(s, udp_probe(src, dst, 2, 33435));
            sim.run_to_quiescence();
            addrs_same_flow.insert(sim.take_inbox(s)[0].1.ip.src);
        }
        assert_eq!(addrs_same_flow.len(), 1, "one flow, one path");
        // Varying ports across enough probes hits both routers.
        let mut addrs_varying = std::collections::HashSet::new();
        for i in 0..32 {
            sim.inject(s, udp_probe(src, dst, 2, 33435 + i));
            sim.run_to_quiescence();
            addrs_varying.insert(sim.take_inbox(s)[0].1.ip.src);
        }
        assert_eq!(addrs_varying.len(), 2, "varying flows explore both paths");
    }

    #[test]
    fn per_packet_balancer_splits_even_a_single_flow() {
        let mut b = TopologyBuilder::new();
        let s = b.host("S", HostConfig::default());
        let l = b.router("L", RouterConfig::default());
        let a = b.router("A", RouterConfig::default());
        let c = b.router("C", RouterConfig::default());
        let d = b.host("D", HostConfig::default());
        b.link(s, l, SimDuration::from_millis(1), 0.0);
        b.link(l, a, SimDuration::from_millis(1), 0.0);
        b.link(l, c, SimDuration::from_millis(1), 0.0);
        b.link(a, d, SimDuration::from_millis(1), 0.0);
        b.link(c, d, SimDuration::from_millis(1), 0.0);
        b.default_via(s, l);
        b.balanced_route(l, Ipv4Prefix::DEFAULT, BalancerKind::PerPacket, &[a, c]);
        b.default_via(a, d);
        b.default_via(c, d);
        b.default_via(d, a);
        let s_pfx = b.subnet_of(s);
        b.route_via(a, s_pfx, l);
        b.route_via(c, s_pfx, l);
        b.route_via(l, s_pfx, s);
        b.route_via(d, s_pfx, a);
        let dst = b.addr_of(d);
        let topo = Arc::new(b.build());
        let mut sim = Simulator::new(topo.clone(), 11);
        let src = src_addr(&topo, s);
        let mut addrs = std::collections::HashSet::new();
        for _ in 0..32 {
            sim.inject(s, udp_probe(src, dst, 2, 33435)); // identical flow
            sim.run_to_quiescence();
            addrs.insert(sim.take_inbox(s)[0].1.ip.src);
        }
        assert_eq!(addrs.len(), 2, "per-packet balancing ignores the flow");
    }

    #[test]
    fn nat_gateway_rewrites_inside_sources() {
        let mut b = TopologyBuilder::new();
        let s = b.host("S", HostConfig::default());
        let n = b.router("N", RouterConfig::default());
        let inner = b.router("B", RouterConfig::default());
        let d = b.host("D", HostConfig::default());
        b.link(s, n, SimDuration::from_millis(1), 0.0);
        b.link(n, inner, SimDuration::from_millis(1), 0.0);
        b.link(inner, d, SimDuration::from_millis(1), 0.0);
        // N's public face is its S-side interface address.
        let public = b.iface_addr(n, 0);
        let inside = vec![b.subnet_of(inner), b.subnet_of(d)];
        // Patch N's config to be a NAT gateway now that we know the prefixes.
        b.set_router_config(n, RouterConfig::nat_gateway(public, inside));
        b.default_via(s, n);
        b.default_via(n, inner);
        b.default_via(inner, d);
        b.default_via(d, inner);
        let s_pfx = b.subnet_of(s);
        b.route_via(inner, s_pfx, n);
        b.route_via(n, s_pfx, s);
        let dst = b.addr_of(d);
        let topo = Arc::new(b.build());
        let mut sim = Simulator::new(topo.clone(), 2);
        let src = src_addr(&topo, s);
        // Expire at the inner router (hop 2): its Time Exceeded crosses N
        // and gets rewritten to the public address.
        sim.inject(s, udp_probe(src, dst, 2, 33435));
        sim.run_to_quiescence();
        let deliveries = sim.take_inbox(s);
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].1.ip.src, public, "SNAT applied");
        assert!(sim.stats().nat_rewrites >= 1);
        // Hop 1 (N itself) answers from its own address untouched.
        sim.inject(s, udp_probe(src, dst, 1, 33436));
        sim.run_to_quiescence();
        assert_eq!(sim.take_inbox(s)[0].1.ip.src, public);
    }

    #[test]
    fn reset_matches_fresh_construction() {
        // A lossy link plus a per-packet balancer would both do, but loss
        // alone already makes per-node RNG state observable: if reset
        // failed to rewind (or re-derive) anything, drop patterns and
        // stats would diverge from a fresh simulator.
        let mut b = TopologyBuilder::new();
        let s = b.host("S", HostConfig::default());
        let r = b.router("r", RouterConfig::default());
        let d = b.host("D", HostConfig::default());
        b.link(s, r, SimDuration::from_millis(1), 0.0);
        b.link(r, d, SimDuration::from_millis(1), 0.4);
        b.default_via(s, r);
        b.default_via(r, d);
        b.default_via(d, r);
        let s_pfx = b.subnet_of(s);
        b.route_via(r, s_pfx, s);
        let dst = b.addr_of(d);
        let topo = Arc::new(b.build());
        let src = src_addr(&topo, s);
        let run = |sim: &mut Simulator| {
            let mut got = Vec::new();
            for i in 0..12 {
                sim.inject(s, udp_probe(src, dst, 5, 34000 + i));
                sim.run_to_quiescence();
            }
            sim.take_inbox_into(s, &mut got);
            (got, sim.stats())
        };
        let mut fresh = Simulator::new(topo.clone(), 42);
        let expected = run(&mut fresh);
        // Dirty a second simulator under a different seed, then reset it
        // to 42: results must be bit-identical to the fresh build.
        let mut reused = Simulator::new(topo.clone(), 7);
        let _ = run(&mut reused);
        reused.reset(42);
        let got = run(&mut reused);
        assert_eq!(got, expected, "reset(seed) must equal new(topo, seed)");
    }

    #[test]
    fn reset_reverts_routing_dynamics() {
        let (topo, s, _d, dst) = chain();
        let r1 = topo.find("r1").unwrap();
        let mut sim = Simulator::new(topo.clone(), 1);
        sim.schedule_route_set(SimTime::ZERO, r1, Ipv4Prefix::DEFAULT, None);
        sim.run_to_quiescence();
        assert!(sim.routing_of(r1).lookup(dst).is_none(), "default route masked");
        sim.reset(1);
        assert!(sim.routing_of(r1).lookup(dst).is_some(), "reset restores the base table");
        // And the sim still works end to end after the reset.
        sim.inject(s, udp_probe(src_addr(&topo, s), dst, 30, 34567));
        sim.run_to_quiescence();
        assert_eq!(sim.take_inbox(s).len(), 1);
    }

    #[test]
    fn arena_slots_stop_growing_after_warmup() {
        let (topo, s, _d, dst) = chain();
        let mut sim = Simulator::new(topo.clone(), 1);
        let src = src_addr(&topo, s);
        for i in 0..3 {
            sim.inject(s, udp_probe(src, dst, 30, 34000 + i));
            sim.run_to_quiescence();
        }
        assert_eq!(sim.in_flight(), 0, "quiescence leaves nothing in flight");
        let warm = sim.arena_slots();
        for i in 0..40 {
            sim.inject(s, udp_probe(src, dst, 30, 35000 + i));
            sim.run_to_quiescence();
            sim.take_inbox(s);
        }
        assert_eq!(
            sim.arena_slots(),
            warm,
            "steady-state forwarding must recycle slots, not allocate new ones"
        );
    }

    #[test]
    fn icmp_rate_limit_suppresses_back_to_back_probes() {
        let mut b = TopologyBuilder::new();
        let s = b.host("S", HostConfig::default());
        let cfg = RouterConfig {
            icmp_min_interval: Some(SimDuration::from_millis(100)),
            ..RouterConfig::default()
        };
        let r = b.router("r", cfg);
        let d = b.host("D", HostConfig::default());
        b.link(s, r, SimDuration::from_millis(1), 0.0);
        b.link(r, d, SimDuration::from_millis(1), 0.0);
        b.default_via(s, r);
        b.default_via(r, d);
        b.default_via(d, r);
        let s_pfx = b.subnet_of(s);
        b.route_via(r, s_pfx, s);
        let dst = b.addr_of(d);
        let topo = Arc::new(b.build());
        let mut sim = Simulator::new(topo.clone(), 4);
        let src = src_addr(&topo, s);
        sim.inject(s, udp_probe(src, dst, 1, 33435));
        sim.inject(s, udp_probe(src, dst, 1, 33436));
        sim.run_to_quiescence();
        assert_eq!(sim.take_inbox(s).len(), 1, "second ICMP rate-limited");
        assert_eq!(sim.stats().dropped_rate_limited, 1);
    }

    /// S — r — D with a caller-chosen config on r.
    fn chain_with_router(cfg: RouterConfig) -> (Arc<Topology>, NodeId, Ipv4Addr) {
        let mut b = TopologyBuilder::new();
        let s = b.host("S", HostConfig::default());
        let r = b.router("r", cfg);
        let d = b.host("D", HostConfig::default());
        b.link(s, r, SimDuration::from_millis(1), 0.0);
        b.link(r, d, SimDuration::from_millis(1), 0.0);
        b.default_via(s, r);
        b.default_via(r, d);
        b.default_via(d, r);
        let s_pfx = b.subnet_of(s);
        b.route_via(r, s_pfx, s);
        let dst = b.addr_of(d);
        (Arc::new(b.build()), s, dst)
    }

    #[test]
    fn token_bucket_allows_burst_then_throttles_to_rate() {
        use crate::node::IcmpRateLimit;
        let cfg = RouterConfig {
            icmp_rate_limit: Some(IcmpRateLimit {
                interval: SimDuration::from_millis(100),
                burst: 3,
            }),
            ..RouterConfig::default()
        };
        let (topo, s, dst) = chain_with_router(cfg);
        let mut sim = Simulator::new(topo.clone(), 4);
        let src = src_addr(&topo, s);
        // Five back-to-back probes: the first three ride the burst, the
        // rest find an empty bucket.
        for i in 0..5 {
            sim.inject(s, udp_probe(src, dst, 1, 33435 + i));
        }
        sim.run_to_quiescence();
        assert_eq!(sim.take_inbox(s).len(), 3, "burst admits exactly `burst` ICMPs");
        assert_eq!(sim.stats().dropped_rate_limited, 2);
        // After one refill interval a single token is back: a retry at
        // lower rate resolves where the back-to-back probe starred.
        sim.run_until(sim.now() + SimDuration::from_millis(100));
        sim.inject(s, udp_probe(src, dst, 1, 33440));
        sim.inject(s, udp_probe(src, dst, 1, 33441));
        sim.run_to_quiescence();
        assert_eq!(sim.take_inbox(s).len(), 1, "one minted token, one answer");
    }

    #[test]
    fn token_bucket_is_deterministic_across_reset() {
        use crate::node::IcmpRateLimit;
        let cfg = RouterConfig {
            icmp_rate_limit: Some(IcmpRateLimit {
                interval: SimDuration::from_millis(50),
                burst: 2,
            }),
            ..RouterConfig::default()
        };
        let (topo, s, dst) = chain_with_router(cfg);
        let run = |sim: &mut Simulator| {
            let src = src_addr(sim.topology(), s);
            for i in 0..4 {
                sim.inject(s, udp_probe(src, dst, 1, 34000 + i));
            }
            sim.run_to_quiescence();
            (sim.take_inbox(s).len(), sim.stats().dropped_rate_limited)
        };
        let mut fresh = Simulator::new(topo.clone(), 42);
        let expected = run(&mut fresh);
        let mut reused = Simulator::new(topo.clone(), 7);
        let _ = run(&mut reused);
        reused.reset(42);
        assert_eq!(run(&mut reused), expected, "bucket state must re-derive after reset");
    }

    #[test]
    fn mpls_interior_hides_expiry_but_forwards_and_answers_direct_probes() {
        let (topo, s, dst) = chain_with_router(RouterConfig::mpls_interior());
        let mut sim = Simulator::new(topo.clone(), 6);
        let src = src_addr(&topo, s);
        // TTL 1 expires inside the "tunnel": no Time Exceeded, ever.
        sim.inject(s, udp_probe(src, dst, 1, 33435));
        sim.run_to_quiescence();
        assert!(sim.take_inbox(s).is_empty(), "LSP interior sources no ICMP");
        assert_eq!(sim.stats().dropped_mpls_hidden, 1);
        // Transit is label-switched through just fine.
        sim.inject(s, udp_probe(src, dst, 5, 33436));
        sim.run_to_quiescence();
        assert_eq!(sim.take_inbox(s).len(), 1, "transit unaffected");
        // And unlike `silent`, a probe addressed *to* the router answers.
        let r_addr = topo.node(topo.find("r").unwrap()).ifaces[0].addr;
        sim.inject(s, udp_probe(src, r_addr, 5, 33437));
        sim.run_to_quiescence();
        assert_eq!(sim.take_inbox(s).len(), 1, "direct probe still answered");
    }

    #[test]
    fn udp_filter_drops_udp_transit_but_passes_tcp_and_icmp() {
        let (topo, s, dst) = chain_with_router(RouterConfig::udp_filter());
        let mut sim = Simulator::new(topo.clone(), 8);
        let src = src_addr(&topo, s);
        // UDP toward the destination dies at the firewall.
        sim.inject(s, udp_probe(src, dst, 5, 33435));
        sim.run_to_quiescence();
        assert!(sim.take_inbox(s).is_empty(), "UDP transit filtered");
        assert_eq!(sim.stats().dropped_filtered, 1);
        // The firewall itself still answers expiring probes (TTL 1).
        sim.inject(s, udp_probe(src, dst, 1, 33436));
        sim.run_to_quiescence();
        assert_eq!(sim.take_inbox(s).len(), 1, "expiry at the filter answers");
        // ICMP echo passes the filter and draws a reply.
        let ip = Ipv4Header::new(src, dst, protocol::ICMP, 30);
        sim.inject(s, Packet::new(ip, Transport::Icmp(IcmpMessage::echo_probe_classic(5, 1))));
        sim.run_to_quiescence();
        assert_eq!(sim.take_inbox(s).len(), 1, "ICMP passes");
        // TCP SYN passes and draws a SYN-ACK/RST.
        let ip = Ipv4Header::new(src, dst, protocol::TCP, 30);
        let syn = TcpSegment::syn_probe(33000, 80, 7);
        sim.inject(s, Packet::new(ip, Transport::Tcp(syn)));
        sim.run_to_quiescence();
        assert_eq!(sim.take_inbox(s).len(), 1, "TCP passes");
    }

    #[test]
    fn asymmetric_link_delay_skews_the_return_direction() {
        let mut b = TopologyBuilder::new();
        let s = b.host("S", HostConfig::default());
        let r = b.router("r", RouterConfig::default());
        let d = b.host("D", HostConfig::default());
        b.link(s, r, SimDuration::from_millis(1), 0.0);
        // Forward r→D costs 1 ms, return D→r costs 9 ms.
        b.link_asym(r, d, SimDuration::from_millis(1), SimDuration::from_millis(9), 0.0);
        b.default_via(s, r);
        b.default_via(r, d);
        b.default_via(d, r);
        let s_pfx = b.subnet_of(s);
        b.route_via(r, s_pfx, s);
        let dst = b.addr_of(d);
        let topo = Arc::new(b.build());
        let mut sim = Simulator::new(topo.clone(), 2);
        let t0 = sim.now();
        sim.inject(s, udp_probe(src_addr(&topo, s), dst, 30, 34567));
        sim.run_to_quiescence();
        let rtt = sim.take_inbox(s)[0].0.since(t0);
        // 1 + 1 out, 9 + 1 back.
        assert_eq!(rtt, SimDuration::from_millis(12), "reverse path dominates the RTT");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "stale-epoch read")]
    fn take_inbox_panics_on_a_stale_epoch_read() {
        let (topo, s, _d, dst) = chain();
        let mut sim = Simulator::new(topo.clone(), 1);
        sim.inject(s, udp_probe(src_addr(&topo, s), dst, 1, 33435));
        sim.run_to_quiescence();
        // Reset drains the lane; reading it without re-touching the
        // node is exactly the silent-empty bug the assert catches.
        sim.reset(1);
        let _ = sim.take_inbox(s);
    }
}
