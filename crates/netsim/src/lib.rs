//! # pt-netsim — a deterministic packet-level network simulator
//!
//! The substrate that stands in for the Internet of the paper's study.
//! It is a discrete-event simulator over a graph of nodes (routers and
//! hosts) connected by links with delay and loss. Packets are the real
//! wire-format packets from [`pt_wire`]; routers decrement TTL, expire
//! packets with ICMP Time Exceeded (quoting the IP header plus eight
//! transport octets, exactly as RFC 792 prescribes), stamp responses from
//! a per-router 16-bit IP-ID counter, and balance load per-flow,
//! per-packet or per-destination.
//!
//! Everything the paper blames for traceroute anomalies is a node
//! attribute here:
//!
//! * per-flow load balancers hashing real header bytes ([`pt_wire::FlowPolicy`]),
//! * per-packet load balancers drawing from a seeded RNG,
//! * routers that forward TTL-zero packets instead of expiring them,
//! * routers whose forwarding is broken and answer Destination Unreachable,
//! * NAT gateways that rewrite the source of everything leaving a stub,
//! * silent routers and lossy links (stars),
//! * token-bucket ICMP rate limiters (rate *and* burst — the dominant
//!   modern star cause),
//! * MPLS-LSP interiors that decrement TTL without sourcing ICMP,
//! * firewalls that drop UDP transit while passing TCP and ICMP,
//! * asymmetric return paths (per-direction link delays skewing RTTs),
//! * scheduled routing-table changes and transient forwarding loops.
//!
//! The simulator is fully deterministic given a seed: event ordering uses
//! a (time, sequence) key and all randomness flows from `StdRng` instances
//! derived from the topology seed.

#![warn(missing_docs)]

pub mod addr;
pub mod arena;
pub mod builder;
pub mod node;
pub mod routing;
pub mod scenarios;
pub mod sim;
pub mod time;
pub mod topology;
pub mod transport;
pub mod wheel;

pub use addr::Ipv4Prefix;
pub use arena::{PacketArena, PacketRef};
pub use builder::TopologyBuilder;
pub use node::{BalancerKind, HostConfig, IcmpRateLimit, NatConfig, NodeKind, RouterConfig};
pub use routing::{NextHop, NodeRouting, RouteDelta, RouteOverlay, RoutingTable};
pub use sim::{SimStats, Simulator, SimulatorPool};
pub use time::{SimDuration, SimTime};
pub use topology::{LinkId, NodeId, Topology};
pub use transport::SimTransport;
pub use wheel::EventWheel;
