//! Ergonomic construction of topologies: nodes, links, routes.
//!
//! The builder allocates interface addresses automatically (each node gets
//! addresses from its own /24, so interfaces of one router are recognizable
//! in traces) and lets routes be expressed in terms of *neighbor nodes*
//! rather than raw interface indices.

use std::net::Ipv4Addr;

use crate::addr::{AddrAllocator, Ipv4Prefix};
use crate::node::{BalancerKind, HostConfig, NodeKind, RouterConfig};
use crate::routing::{NextHop, RoutingTable};
use crate::time::SimDuration;
use crate::topology::{Endpoint, Interface, Link, LinkId, Node, NodeId, Topology};

/// Builds a [`Topology`] incrementally.
#[derive(Debug)]
pub struct TopologyBuilder {
    nodes: Vec<Node>,
    links: Vec<Link>,
    alloc: AddrAllocator,
    /// Each node's address pools; a new /24 is appended when a node grows
    /// past ~250 interfaces (core routers in large topologies do).
    node_subnets: Vec<Vec<Ipv4Prefix>>,
    /// Per-node routing tables under construction; frozen into shared
    /// `Arc`s by [`TopologyBuilder::build`].
    tables: Vec<RoutingTable>,
}

impl Default for TopologyBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TopologyBuilder {
    /// A fresh builder allocating addresses out of `10.0.0.0/8`.
    pub fn new() -> Self {
        TopologyBuilder {
            nodes: Vec::new(),
            links: Vec::new(),
            alloc: AddrAllocator::new(Ipv4Addr::new(10, 0, 0, 0)),
            node_subnets: Vec::new(),
            tables: Vec::new(),
        }
    }

    fn add_node(&mut self, name: &str, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len());
        let subnet = self.alloc.next_subnet();
        self.node_subnets.push(vec![subnet]);
        self.tables.push(RoutingTable::new());
        self.nodes.push(Node {
            name: name.to_string(),
            kind,
            ifaces: Vec::new(),
            routing: std::sync::Arc::new(RoutingTable::new()),
        });
        id
    }

    /// Add a router.
    pub fn router(&mut self, name: &str, config: RouterConfig) -> NodeId {
        self.add_node(name, NodeKind::Router(config))
    }

    /// Add a host.
    pub fn host(&mut self, name: &str, config: HostConfig) -> NodeId {
        self.add_node(name, NodeKind::Host(config))
    }

    /// The primary subnet from which `node`'s interface addresses are
    /// drawn (overflow subnets exist only for very high-degree nodes).
    pub fn subnet_of(&self, node: NodeId) -> Ipv4Prefix {
        self.node_subnets[node.0][0]
    }

    /// All subnets backing `node`'s interfaces.
    pub fn subnets_of(&self, node: NodeId) -> &[Ipv4Prefix] {
        &self.node_subnets[node.0]
    }

    /// Give `node` an extra interface with a caller-chosen address that is
    /// not attached to any link (e.g. a NAT public address or loopback).
    pub fn loopback(&mut self, node: NodeId, addr: Ipv4Addr) {
        self.nodes[node.0].ifaces.push(Interface { addr, link: None });
    }

    fn fresh_iface(&mut self, node: NodeId) -> (usize, Ipv4Addr) {
        const PER_SUBNET: usize = 250;
        let idx = self.nodes[node.0].ifaces.len();
        let pool = idx / PER_SUBNET;
        let within = (idx % PER_SUBNET) as u32 + 1;
        while self.node_subnets[node.0].len() <= pool {
            let extra = self.alloc.next_subnet();
            self.node_subnets[node.0].push(extra);
        }
        // Interface i of node n gets a stable, readable, unique address
        // from the node's pool(s).
        let addr = self.node_subnets[node.0][pool].nth(within);
        self.nodes[node.0].ifaces.push(Interface { addr, link: None });
        (idx, addr)
    }

    /// Connect two nodes with a symmetric link of the given delay and
    /// loss, allocating one new interface on each. Returns the link id.
    pub fn link(&mut self, a: NodeId, b: NodeId, delay: SimDuration, loss: f64) -> LinkId {
        self.link_asym(a, b, delay, delay, loss)
    }

    /// Connect two nodes with per-direction delays: `delay` applies
    /// `a → b`, `delay_back` applies `b → a`. An asymmetric return
    /// path skews RTTs (the hostile-network knob) without changing
    /// topology or hop counts.
    pub fn link_asym(
        &mut self,
        a: NodeId,
        b: NodeId,
        delay: SimDuration,
        delay_back: SimDuration,
        loss: f64,
    ) -> LinkId {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        let (ia, _) = self.fresh_iface(a);
        let (ib, _) = self.fresh_iface(b);
        let id = LinkId(self.links.len());
        self.links.push(Link {
            endpoints: [Endpoint { node: a, iface: ia }, Endpoint { node: b, iface: ib }],
            delay,
            delay_back,
            loss,
        });
        self.nodes[a.0].ifaces[ia].link = Some(id);
        self.nodes[b.0].ifaces[ib].link = Some(id);
        id
    }

    fn iface_toward(&self, node: NodeId, neighbor: NodeId) -> usize {
        self.nodes[node.0]
            .ifaces
            .iter()
            .position(|iface| {
                iface.link.is_some_and(|l| {
                    let link = &self.links[l.0];
                    link.endpoints.iter().any(|e| e.node == neighbor)
                        && link.endpoints.iter().any(|e| e.node == node)
                })
            })
            .unwrap_or_else(|| {
                panic!(
                    "no link between {} and {}",
                    self.nodes[node.0].name, self.nodes[neighbor.0].name
                )
            })
    }

    /// Route `prefix` at `node` via the directly-connected `neighbor`.
    ///
    /// # Panics
    /// Panics if the nodes are not linked.
    pub fn route_via(&mut self, node: NodeId, prefix: Ipv4Prefix, neighbor: NodeId) {
        let iface = self.iface_toward(node, neighbor);
        self.tables[node.0].set(prefix, NextHop::Iface(iface));
    }

    /// Default-route `node` via `neighbor`.
    pub fn default_via(&mut self, node: NodeId, neighbor: NodeId) {
        self.route_via(node, Ipv4Prefix::DEFAULT, neighbor);
    }

    /// Install a load-balanced route at `node` spreading `prefix` over the
    /// directly-connected `neighbors`.
    pub fn balanced_route(
        &mut self,
        node: NodeId,
        prefix: Ipv4Prefix,
        kind: BalancerKind,
        neighbors: &[NodeId],
    ) {
        assert!(neighbors.len() >= 2, "a balancer needs at least two egresses");
        let egresses: Vec<usize> = neighbors.iter().map(|n| self.iface_toward(node, *n)).collect();
        self.tables[node.0].set(prefix, NextHop::Balanced { kind, egresses });
    }

    /// Blackhole `prefix` at `node`.
    pub fn blackhole(&mut self, node: NodeId, prefix: Ipv4Prefix) {
        self.tables[node.0].set(prefix, NextHop::Blackhole);
    }

    /// Replace a router's behaviour config. Useful when the config needs
    /// values only known after linking (e.g. a NAT public address).
    ///
    /// # Panics
    /// Panics if `node` is a host.
    pub fn set_router_config(&mut self, node: NodeId, config: RouterConfig) {
        match &mut self.nodes[node.0].kind {
            NodeKind::Router(c) => *c = config,
            NodeKind::Host(_) => panic!("{} is a host, not a router", self.nodes[node.0].name),
        }
    }

    /// The address of `node`'s first interface (panics if it has none yet).
    pub fn addr_of(&self, node: NodeId) -> Ipv4Addr {
        self.nodes[node.0].ifaces.first().expect("node has no interfaces yet — link it first").addr
    }

    /// Address of interface `idx` on `node`.
    pub fn iface_addr(&self, node: NodeId, idx: usize) -> Ipv4Addr {
        self.nodes[node.0].ifaces[idx].addr
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Finish, producing the immutable topology. Each node's routing
    /// table is frozen into a shared `Arc` that every simulator over this
    /// topology borrows instead of copying.
    pub fn build(mut self) -> Topology {
        let mut addr_owner = crate::routing::AddrMap::default();
        for (i, node) in self.nodes.iter().enumerate() {
            for iface in &node.ifaces {
                let prev = addr_owner.insert(iface.addr, NodeId(i));
                assert!(prev.is_none(), "duplicate interface address {}", iface.addr);
            }
        }
        for (node, table) in self.nodes.iter_mut().zip(self.tables) {
            node.routing = std::sync::Arc::new(table);
        }
        Topology { nodes: self.nodes, links: self.links, addr_owner }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_wire::FlowPolicy;

    #[test]
    fn linking_allocates_distinct_addresses() {
        let mut b = TopologyBuilder::new();
        let r1 = b.router("r1", RouterConfig::default());
        let r2 = b.router("r2", RouterConfig::default());
        let r3 = b.router("r3", RouterConfig::default());
        b.link(r1, r2, SimDuration::from_millis(1), 0.0);
        b.link(r1, r3, SimDuration::from_millis(1), 0.0);
        let topo = b.build();
        assert_eq!(topo.node(r1).ifaces.len(), 2);
        assert_ne!(topo.node(r1).ifaces[0].addr, topo.node(r1).ifaces[1].addr);
    }

    #[test]
    fn node_interfaces_share_a_subnet() {
        let mut b = TopologyBuilder::new();
        let r1 = b.router("r1", RouterConfig::default());
        let r2 = b.router("r2", RouterConfig::default());
        let r3 = b.router("r3", RouterConfig::default());
        b.link(r1, r2, SimDuration::from_millis(1), 0.0);
        b.link(r1, r3, SimDuration::from_millis(1), 0.0);
        let subnet = b.subnet_of(r1);
        let topo = b.build();
        for iface in &topo.node(r1).ifaces {
            assert!(subnet.contains(iface.addr));
        }
    }

    #[test]
    fn route_via_targets_the_right_interface() {
        let mut b = TopologyBuilder::new();
        let r1 = b.router("r1", RouterConfig::default());
        let r2 = b.router("r2", RouterConfig::default());
        let r3 = b.router("r3", RouterConfig::default());
        b.link(r1, r2, SimDuration::from_millis(1), 0.0);
        b.link(r1, r3, SimDuration::from_millis(1), 0.0);
        b.route_via(r1, Ipv4Prefix::DEFAULT, r3);
        let topo = b.build();
        match topo.node(r1).routing.lookup(Ipv4Addr::new(8, 8, 8, 8)) {
            Some(NextHop::Iface(i)) => {
                assert_eq!(topo.iface_toward(r1, r3), Some(*i));
            }
            other => panic!("unexpected next hop {other:?}"),
        }
    }

    #[test]
    fn balanced_route_collects_all_egresses() {
        let mut b = TopologyBuilder::new();
        let l = b.router("l", RouterConfig::default());
        let a = b.router("a", RouterConfig::default());
        let c = b.router("c", RouterConfig::default());
        b.link(l, a, SimDuration::from_millis(1), 0.0);
        b.link(l, c, SimDuration::from_millis(1), 0.0);
        b.balanced_route(
            l,
            Ipv4Prefix::DEFAULT,
            BalancerKind::PerFlow(FlowPolicy::FiveTuple),
            &[a, c],
        );
        let topo = b.build();
        match topo.node(l).routing.lookup(Ipv4Addr::new(9, 9, 9, 9)) {
            Some(NextHop::Balanced { egresses, .. }) => assert_eq!(egresses.len(), 2),
            other => panic!("unexpected next hop {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "no link between")]
    fn route_via_unlinked_panics() {
        let mut b = TopologyBuilder::new();
        let r1 = b.router("r1", RouterConfig::default());
        let r2 = b.router("r2", RouterConfig::default());
        b.route_via(r1, Ipv4Prefix::DEFAULT, r2);
    }

    #[test]
    #[should_panic(expected = "duplicate interface address")]
    fn duplicate_loopback_addresses_rejected() {
        let mut b = TopologyBuilder::new();
        let r1 = b.router("r1", RouterConfig::default());
        let r2 = b.router("r2", RouterConfig::default());
        let a = Ipv4Addr::new(203, 0, 113, 1);
        b.loopback(r1, a);
        b.loopback(r2, a);
        let _ = b.build();
    }
}
