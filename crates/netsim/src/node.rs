//! Node behaviour configuration: routers (with every misbehaviour the
//! paper documents) and hosts.

use std::net::Ipv4Addr;

use pt_wire::{FlowPolicy, UnreachableCode};

use crate::addr::Ipv4Prefix;

/// How a load-balanced next hop spreads packets over its egress set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalancerKind {
    /// Hash the fields selected by the policy; equal keys, equal path.
    PerFlow(FlowPolicy),
    /// Uniform random egress per packet, from the router's seeded RNG.
    PerPacket,
    /// Hash the destination address only — indistinguishable from classic
    /// routing to a measurement tool, per the paper.
    PerDestination,
}

/// NAT / firewall-gateway source rewriting (§4.1, "Address rewriting").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NatConfig {
    /// The single public address stamped onto everything leaving the stub.
    pub public: Ipv4Addr,
    /// Packets whose source lies inside any of these prefixes get
    /// rewritten when the gateway forwards them.
    pub inside: Vec<Ipv4Prefix>,
}

impl NatConfig {
    /// Whether `addr` belongs to the NAT'd stub.
    pub fn is_inside(&self, addr: Ipv4Addr) -> bool {
        self.inside.iter().any(|p| p.contains(addr))
    }
}

/// Token-bucket ICMP rate limiting — the dominant modern cause of
/// mid-route stars. The bucket holds up to `burst` tokens, refills one
/// token every `interval`, and each originated ICMP spends one token;
/// an empty bucket suppresses the ICMP. Unlike the legacy
/// `icmp_min_interval` knob (a degenerate `burst == 1` bucket), a burst
/// lets the first few back-to-back probes through before the limiter
/// bites — exactly the "resolves on retry at a lower rate" signature
/// adaptive tracers exploit.
///
/// All arithmetic is integer nanoseconds, so the limiter is a pure
/// function of probe arrival times and stays deterministic under the
/// fixed-seed discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IcmpRateLimit {
    /// Time to mint one token (1 / rate).
    pub interval: crate::time::SimDuration,
    /// Bucket capacity: ICMPs the router will source back-to-back.
    pub burst: u32,
}

/// Which source address a router stamps on the ICMP it originates.
///
/// Real deployments mix both: answering from the interface the offending
/// packet arrived on is the textbook behaviour, but many routers answer
/// from a fixed (loopback) address. The paper's figures assume the latter
/// when they show one `E0` answering via two different upstream paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResponderAddr {
    /// Answer from the interface the packet arrived on.
    #[default]
    IncomingIface,
    /// Answer from the router's first (primary/loopback) address.
    Fixed,
}

/// Router behaviour knobs. Defaults model a healthy router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterConfig {
    /// Initial TTL of ICMP messages this router originates. Most routers
    /// use 255; the paper's response-TTL heuristics rely on it being
    /// constant per router.
    pub icmp_initial_ttl: u8,
    /// The Fig. 4 misconfiguration: forward packets whose TTL has reached
    /// zero instead of discarding them.
    pub zero_ttl_forwarding: bool,
    /// When set, the router cannot forward: probes that would be forwarded
    /// (TTL permitting) draw a Destination Unreachable with this code
    /// instead (§4.1, "Unreachability message").
    pub broken: Option<UnreachableCode>,
    /// Never send any ICMP (missing nodes; mid-route stars).
    pub silent: bool,
    /// Rewrite the source address of packets leaving a NAT'd stub.
    pub nat: Option<NatConfig>,
    /// ICMP rate limiting: suppress an ICMP if one was generated within
    /// this interval (mid-route stars on real routers).
    pub icmp_min_interval: Option<crate::time::SimDuration>,
    /// Token-bucket ICMP rate limiting (rate *and* burst). Composes
    /// with `icmp_min_interval`: an ICMP must pass both to leave.
    pub icmp_rate_limit: Option<IcmpRateLimit>,
    /// MPLS-tunnel interior: label-switch transit traffic (decrement
    /// TTL and forward as usual) but never source Time Exceeded —
    /// expired packets vanish inside the LSP. Direct probes to the
    /// router's own addresses still answer, unlike `silent`.
    pub mpls_hidden: bool,
    /// Firewall filter: silently drop UDP *transit* packets while
    /// letting TCP and ICMP through (the classic reason traceroute -U
    /// dies mid-path where TCP/ICMP variants get through).
    pub filter_udp: bool,
    /// Source-address selection for originated ICMP.
    pub responder: ResponderAddr,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            icmp_initial_ttl: 255,
            zero_ttl_forwarding: false,
            broken: None,
            silent: false,
            nat: None,
            icmp_min_interval: None,
            icmp_rate_limit: None,
            mpls_hidden: false,
            filter_udp: false,
            responder: ResponderAddr::IncomingIface,
        }
    }
}

impl RouterConfig {
    /// A healthy default router.
    pub fn healthy() -> Self {
        Self::default()
    }

    /// A router that forwards TTL-zero packets (Fig. 4's `F`).
    pub fn zero_ttl_forwarder() -> Self {
        RouterConfig { zero_ttl_forwarding: true, ..Self::default() }
    }

    /// A router that cannot forward and answers `!H`/`!N`.
    pub fn broken_forwarding(code: UnreachableCode) -> Self {
        RouterConfig { broken: Some(code), ..Self::default() }
    }

    /// A router that never answers (probes through it still forward).
    pub fn silent() -> Self {
        RouterConfig { silent: true, ..Self::default() }
    }

    /// A NAT gateway (Fig. 5's `N`).
    pub fn nat_gateway(public: Ipv4Addr, inside: Vec<Ipv4Prefix>) -> Self {
        RouterConfig { nat: Some(NatConfig { public, inside }), ..Self::default() }
    }

    /// This router, answering from its primary address instead of the
    /// incoming interface.
    pub fn with_fixed_responder(mut self) -> Self {
        self.responder = ResponderAddr::Fixed;
        self
    }

    /// A router that rate-limits originated ICMP with a token bucket.
    pub fn rate_limited(interval: crate::time::SimDuration, burst: u32) -> Self {
        RouterConfig { icmp_rate_limit: Some(IcmpRateLimit { interval, burst }), ..Self::default() }
    }

    /// An MPLS-LSP interior router: forwards (and decrements TTL) but
    /// never sources Time Exceeded.
    pub fn mpls_interior() -> Self {
        RouterConfig { mpls_hidden: true, ..Self::default() }
    }

    /// A firewall that silently drops UDP transit while passing
    /// TCP and ICMP.
    pub fn udp_filter() -> Self {
        RouterConfig { filter_udp: true, ..Self::default() }
    }
}

/// Host behaviour knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostConfig {
    /// Replies to ICMP Echo Requests. The study only targets pingable
    /// destinations, to avoid inflating anomaly counts (§3).
    pub pingable: bool,
    /// Sends ICMP Port Unreachable for UDP to a closed port — the normal
    /// end-of-trace signal. A firewalled host stays mute (trailing stars).
    pub udp_responds: bool,
    /// TCP ports that answer SYN with SYN-ACK; everything else gets RST
    /// when `tcp_responds`.
    pub open_tcp_ports: Vec<u16>,
    /// Whether closed TCP ports send RST at all.
    pub tcp_responds: bool,
    /// Initial TTL for packets this host originates.
    pub initial_ttl: u8,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            pingable: true,
            udp_responds: true,
            open_tcp_ports: vec![80],
            tcp_responds: true,
            initial_ttl: 64,
        }
    }
}

impl HostConfig {
    /// A destination that answers everything (the common case in the
    /// study's pingable destination list).
    pub fn responsive() -> Self {
        Self::default()
    }

    /// A host behind a strict firewall: pingable (it made the destination
    /// list) but mute to UDP and TCP probes — produces trailing stars.
    pub fn firewalled() -> Self {
        HostConfig {
            pingable: true,
            udp_responds: false,
            open_tcp_ports: Vec::new(),
            tcp_responds: false,
            initial_ttl: 64,
        }
    }
}

/// What a node is.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// A packet-forwarding router.
    Router(RouterConfig),
    /// An end host (traceroute source or destination).
    Host(HostConfig),
}

impl NodeKind {
    /// The router config, if this is a router.
    pub fn as_router(&self) -> Option<&RouterConfig> {
        match self {
            NodeKind::Router(r) => Some(r),
            NodeKind::Host(_) => None,
        }
    }

    /// The host config, if this is a host.
    pub fn as_host(&self) -> Option<&HostConfig> {
        match self {
            NodeKind::Host(h) => Some(h),
            NodeKind::Router(_) => None,
        }
    }

    /// Initial TTL for ICMP this node originates.
    pub fn icmp_initial_ttl(&self) -> u8 {
        match self {
            NodeKind::Router(r) => r.icmp_initial_ttl,
            NodeKind::Host(h) => h.initial_ttl,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_router_is_healthy() {
        let r = RouterConfig::default();
        assert_eq!(r.icmp_initial_ttl, 255);
        assert!(!r.zero_ttl_forwarding);
        assert!(r.broken.is_none());
        assert!(!r.silent);
        assert!(r.nat.is_none());
    }

    #[test]
    fn constructors_set_their_flag() {
        assert!(RouterConfig::zero_ttl_forwarder().zero_ttl_forwarding);
        assert_eq!(
            RouterConfig::broken_forwarding(UnreachableCode::Host).broken,
            Some(UnreachableCode::Host)
        );
        assert!(RouterConfig::silent().silent);
        let nat = RouterConfig::nat_gateway(
            Ipv4Addr::new(198, 51, 100, 1),
            vec![Ipv4Prefix::new(Ipv4Addr::new(10, 99, 0, 0), 16)],
        );
        let cfg = nat.nat.as_ref().unwrap();
        assert!(cfg.is_inside(Ipv4Addr::new(10, 99, 3, 4)));
        assert!(!cfg.is_inside(Ipv4Addr::new(10, 98, 3, 4)));
    }

    #[test]
    fn fault_constructors_set_their_knob() {
        use crate::time::SimDuration;
        let rl = RouterConfig::rate_limited(SimDuration::from_millis(10), 3);
        assert_eq!(
            rl.icmp_rate_limit,
            Some(IcmpRateLimit { interval: SimDuration::from_millis(10), burst: 3 })
        );
        assert!(RouterConfig::mpls_interior().mpls_hidden);
        assert!(!RouterConfig::mpls_interior().silent, "MPLS hiding is not plain silence");
        assert!(RouterConfig::udp_filter().filter_udp);
    }

    #[test]
    fn firewalled_host_is_pingable_but_mute() {
        let h = HostConfig::firewalled();
        assert!(h.pingable);
        assert!(!h.udp_responds);
        assert!(!h.tcp_responds);
        assert!(h.open_tcp_ports.is_empty());
    }

    #[test]
    fn kind_accessors() {
        let r = NodeKind::Router(RouterConfig::default());
        let h = NodeKind::Host(HostConfig::default());
        assert!(r.as_router().is_some());
        assert!(r.as_host().is_none());
        assert!(h.as_host().is_some());
        assert_eq!(r.icmp_initial_ttl(), 255);
        assert_eq!(h.icmp_initial_ttl(), 64);
    }
}
