//! A hierarchical timing wheel (calendar queue) for the simulator's
//! event schedule.
//!
//! The event workload is bimodal: the overwhelming majority of events
//! are packet hops a few microseconds-to-milliseconds out, while a thin
//! tail (scheduled routing dynamics, probe-timeout horizons) sits
//! hundreds of milliseconds to seconds in the future. A `BinaryHeap`
//! charges every one of those events two O(log n) sifts — and each sift
//! moves the whole fat event struct. The wheel instead parks events in
//! slab slots (the same allocation discipline as
//! [`crate::arena::PacketArena`]) and threads 4-byte indices through
//! intrusive bucket lists:
//!
//! * a **near wheel** of [`NEAR_BUCKETS`] fixed-width buckets (width
//!   `2^shift` nanoseconds) covers the dense head of the distribution —
//!   `schedule` is an index computation plus a list push, O(1);
//! * an **overflow list** holds events beyond the near horizon; it
//!   cascades into the near wheel as the clock advances (each event
//!   cascades at most once per level, and the overflow population is
//!   tiny by construction, so the amortized cost stays O(1));
//! * popping drains one bucket at a time into a small sorted `ready`
//!   batch, so events come out in **exactly** the `(time, seq)` order
//!   the `BinaryHeap` produced — the fixed-seed campaign digest is
//!   byte-identical by design, not by luck (pinned by the differential
//!   property suite in `tests/proptest_wheel.rs`).
//!
//! After warm-up, `schedule`/`pop` recycle slab slots and the `ready`
//! batch's capacity, so the steady state performs no heap allocation.

use crate::time::SimTime;

/// Number of buckets in the near wheel. 256 buckets × the default
/// bucket width covers every link-delay event the topologies generate.
pub const NEAR_BUCKETS: usize = 256;

/// Default bucket width exponent: `2^18` ns ≈ 262 µs per bucket, for a
/// near horizon of ≈ 67 ms — comfortably past the millisecond link
/// delays that dominate, while 100 ms+ routing dynamics overflow.
pub const DEFAULT_SHIFT: u32 = 18;

const MASK: u64 = NEAR_BUCKETS as u64 - 1;
const NIL: u32 = u32::MAX;
const WORDS: usize = NEAR_BUCKETS / 64;

#[derive(Debug)]
struct Slot<T> {
    time: SimTime,
    seq: u64,
    /// Intrusive link: next entry in the same bucket / overflow chain,
    /// or the next free slot when the slot is vacant.
    next: u32,
    /// `None` marks a vacant slot (on the free list).
    payload: Option<T>,
}

/// A timing wheel keyed by `(SimTime, seq)`, popping in exactly
/// ascending key order. See the module docs for the design.
#[derive(Debug)]
pub struct EventWheel<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    /// Bucket heads of the near wheel. Invariant: every entry's tick
    /// lies in the current window `[cursor, cursor + NEAR_BUCKETS)`, so
    /// a bucket index identifies its tick uniquely.
    near: [u32; NEAR_BUCKETS],
    /// One bit per near bucket, so the scan for the next event skips
    /// empty buckets a word at a time.
    occupied: [u64; WORDS],
    /// Head of the far-future chain (ticks at or past the window end).
    overflow: u32,
    /// Minimum tick present in the overflow chain (`u64::MAX` when
    /// empty); cascade triggers compare against this, never walk.
    overflow_min: u64,
    /// The current tick's events, sorted *descending* by `(time, seq)`
    /// so popping the smallest is `Vec::pop`. Late arrivals for the
    /// current tick are inserted in place to preserve exact order.
    ready: Vec<u32>,
    /// Tick the wheel has advanced to (the tick `ready` was drained
    /// from). Never decreases.
    cursor: u64,
    len: usize,
    shift: u32,
}

impl<T> Default for EventWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventWheel<T> {
    /// An empty wheel with the default bucket width.
    pub fn new() -> Self {
        Self::with_shift(DEFAULT_SHIFT)
    }

    /// An empty wheel with `2^shift`-nanosecond buckets. The shift is a
    /// pure performance knob: pop order is identical for every value
    /// (the digest-invariance test pins this).
    pub fn with_shift(shift: u32) -> Self {
        assert!(shift < 64, "bucket width exponent out of range");
        EventWheel {
            slots: Vec::new(),
            free: Vec::new(),
            near: [NIL; NEAR_BUCKETS],
            occupied: [0; WORDS],
            overflow: NIL,
            overflow_min: u64::MAX,
            ready: Vec::new(),
            cursor: 0,
            len: 0,
            shift,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slab slots ever created (live + free). A workload with
    /// bounded concurrent events stops growing this after warm-up —
    /// the recycling property the tests pin.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn tick_of(&self, time: SimTime) -> u64 {
        time.wheel_tick(self.shift)
    }

    #[inline]
    fn key(&self, idx: u32) -> (SimTime, u64) {
        let s = &self.slots[idx as usize];
        (s.time, s.seq)
    }

    fn alloc(&mut self, time: SimTime, seq: u64, payload: T) -> u32 {
        match self.free.pop() {
            Some(idx) => {
                let slot = &mut self.slots[idx as usize];
                debug_assert!(slot.payload.is_none(), "free list pointed at a live slot");
                slot.time = time;
                slot.seq = seq;
                slot.next = NIL;
                slot.payload = Some(payload);
                idx
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("event wheel overflow");
                self.slots.push(Slot { time, seq, next: NIL, payload: Some(payload) });
                idx
            }
        }
    }

    #[inline]
    fn push_bucket(&mut self, bucket: usize, idx: u32) {
        self.slots[idx as usize].next = self.near[bucket];
        self.near[bucket] = idx;
        self.occupied[bucket / 64] |= 1 << (bucket % 64);
    }

    /// Schedule `payload` at `(time, seq)`. Keys must be unique (the
    /// simulator's monotonic sequence number guarantees it); a key in
    /// the past is allowed and pops before everything later, exactly as
    /// a heap would order it.
    pub fn schedule(&mut self, time: SimTime, seq: u64, payload: T) {
        let idx = self.alloc(time, seq, payload);
        let tick = self.tick_of(time);
        self.len += 1;
        if tick <= self.cursor {
            if self.ready.is_empty() {
                // The next-event scan starts at the cursor's bucket, so
                // overdue events parked there are found first.
                self.push_bucket((self.cursor & MASK) as usize, idx);
            } else {
                // The current tick is mid-drain: splice into the sorted
                // batch so the global pop order stays exact.
                let key = self.key(idx);
                let pos = self.ready.partition_point(|&i| self.key(i) > key);
                self.ready.insert(pos, idx);
            }
        } else if tick < self.cursor + NEAR_BUCKETS as u64 {
            self.push_bucket((tick & MASK) as usize, idx);
        } else {
            self.slots[idx as usize].next = self.overflow;
            self.overflow = idx;
            self.overflow_min = self.overflow_min.min(tick);
        }
    }

    /// Move every overflow entry that now falls inside the near window
    /// into its bucket, and recompute the overflow minimum.
    fn cascade(&mut self) {
        let window_end = self.cursor + NEAR_BUCKETS as u64;
        let mut head = self.overflow;
        self.overflow = NIL;
        self.overflow_min = u64::MAX;
        while head != NIL {
            let next = self.slots[head as usize].next;
            let tick = self.tick_of(self.slots[head as usize].time);
            debug_assert!(tick >= self.cursor, "overflow entry behind the cursor");
            if tick < window_end {
                self.push_bucket((tick & MASK) as usize, head);
            } else {
                self.slots[head as usize].next = self.overflow;
                self.overflow = head;
                self.overflow_min = self.overflow_min.min(tick);
            }
            head = next;
        }
    }

    /// First occupied near bucket in window order starting at the
    /// cursor's bucket (inclusive), or `None` when the wheel is empty.
    /// Window order *is* tick order because every near entry lies in
    /// `[cursor, cursor + NEAR_BUCKETS)`.
    fn next_occupied(&self) -> Option<usize> {
        let start = (self.cursor & MASK) as usize;
        let mut word_idx = start / 64;
        // Mask off bits below the start position in the first word.
        let mut word = self.occupied[word_idx] & (!0u64 << (start % 64));
        for _ in 0..=WORDS {
            if word != 0 {
                return Some(word_idx * 64 + word.trailing_zeros() as usize);
            }
            word_idx = (word_idx + 1) % WORDS;
            word = self.occupied[word_idx];
            // The wrap revisits the start word with its low bits
            // unmasked, which is exactly the tail of the window.
        }
        None
    }

    /// Advance until `ready` holds the next tick's events (no-op when
    /// `ready` is already non-empty or the wheel is empty).
    fn advance(&mut self) {
        while self.ready.is_empty() && self.len > 0 {
            if self.overflow_min < self.cursor + NEAR_BUCKETS as u64 {
                self.cascade();
            }
            let Some(bucket) = self.next_occupied() else {
                // Near wheel empty: jump the window to the earliest
                // far-future event and pull its cohort in.
                debug_assert!(self.overflow != NIL, "len > 0 but no events anywhere");
                self.cursor = self.overflow_min;
                self.cascade();
                continue;
            };
            // Tick implied by circular distance from the cursor bucket.
            let delta = (bucket as u64).wrapping_sub(self.cursor) & MASK;
            self.cursor += delta;
            // Drain the whole bucket: every entry shares this tick.
            let mut head = self.near[bucket];
            self.near[bucket] = NIL;
            self.occupied[bucket / 64] &= !(1 << (bucket % 64));
            while head != NIL {
                self.ready.push(head);
                head = self.slots[head as usize].next;
            }
            // Descending sort: popping the minimum is Vec::pop. Keys
            // are unique, so unstable sorting is deterministic.
            let slots = &self.slots;
            self.ready.sort_unstable_by(|&a, &b| {
                let ka = (slots[a as usize].time, slots[a as usize].seq);
                let kb = (slots[b as usize].time, slots[b as usize].seq);
                kb.cmp(&ka)
            });
        }
    }

    /// The `(time, seq)` of the next event, without popping it.
    pub fn next_key(&mut self) -> Option<(SimTime, u64)> {
        self.advance();
        self.ready.last().map(|&i| self.key(i))
    }

    /// Pop the event with the smallest `(time, seq)`.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        self.advance();
        let idx = self.ready.pop()?;
        self.len -= 1;
        let slot = &mut self.slots[idx as usize];
        let payload = slot.payload.take().expect("ready entry had no payload");
        let (time, seq) = (slot.time, slot.seq);
        self.free.push(idx);
        Some((time, seq, payload))
    }

    /// Drain the current tick's entire ready batch into `out`, appended
    /// in ascending `(time, seq)` order, returning how many events were
    /// delivered. Equivalent to calling [`EventWheel::pop`] exactly that
    /// many times, but the bucket drain, sort, and slab bookkeeping are
    /// paid once per tick instead of once per event — the batch-delivery
    /// path the simulator's run loop feeds through `forward`.
    ///
    /// Events scheduled *after* the drain may still sort before the
    /// tail of `out` (a zero-delay hop landing in the current tick), so
    /// a caller interleaving processing with scheduling must compare
    /// [`EventWheel::next_key`] against its remaining batch entries to
    /// preserve global order — exactly what `Simulator::step` does.
    pub fn pop_tick_into(&mut self, out: &mut Vec<(SimTime, u64, T)>) -> usize {
        self.advance();
        let drained = self.ready.len();
        while let Some(idx) = self.ready.pop() {
            self.len -= 1;
            let slot = &mut self.slots[idx as usize];
            let payload = slot.payload.take().expect("ready entry had no payload");
            out.push((slot.time, slot.seq, payload));
            self.free.push(idx);
        }
        drained
    }

    /// Remove every pending event, handing each payload to `visit` in
    /// arbitrary order, and rewind the wheel to tick zero. Slab and
    /// batch capacities survive — the warm-reuse path `Simulator::reset`
    /// depends on.
    pub fn clear(&mut self, mut visit: impl FnMut(T)) {
        if self.len > 0 {
            self.free.clear();
            for (i, slot) in self.slots.iter_mut().enumerate() {
                if let Some(payload) = slot.payload.take() {
                    visit(payload);
                }
                self.free.push(i as u32);
            }
            self.near = [NIL; NEAR_BUCKETS];
            self.occupied = [0; WORDS];
            self.overflow = NIL;
            self.overflow_min = u64::MAX;
            self.ready.clear();
            self.len = 0;
        }
        debug_assert!(self.near.iter().all(|&h| h == NIL));
        debug_assert_eq!(self.free.len(), self.slots.len());
        self.cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(wheel: &mut EventWheel<u32>) -> Vec<(u64, u64, u32)> {
        let mut out = Vec::new();
        while let Some((t, s, p)) = wheel.pop() {
            out.push((t.nanos(), s, p));
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = EventWheel::new();
        w.schedule(SimTime(50), 2, 0);
        w.schedule(SimTime(10), 1, 1);
        w.schedule(SimTime(10), 0, 2);
        w.schedule(SimTime(2_000_000_000), 3, 3); // far future → overflow
        assert_eq!(drain(&mut w), vec![(10, 0, 2), (10, 1, 1), (50, 2, 0), (2_000_000_000, 3, 3)]);
        assert!(w.is_empty());
    }

    #[test]
    fn same_bucket_distinct_times_sort() {
        // Bucket width 2^18 ns: 1ns and 1000ns share a bucket.
        let mut w = EventWheel::new();
        w.schedule(SimTime(1000), 0, 0);
        w.schedule(SimTime(1), 1, 1);
        assert_eq!(drain(&mut w), vec![(1, 1, 1), (1000, 0, 0)]);
    }

    #[test]
    fn schedule_into_current_tick_mid_drain() {
        let mut w = EventWheel::new();
        w.schedule(SimTime(100), 0, 0);
        w.schedule(SimTime(300), 1, 1);
        let first = w.pop().unwrap();
        assert_eq!(first.1, 0);
        // 200 lands between the two pending keys, same tick as 300.
        w.schedule(SimTime(200), 2, 2);
        assert_eq!(w.pop().unwrap().2, 2);
        assert_eq!(w.pop().unwrap().2, 1);
    }

    #[test]
    fn past_event_pops_first() {
        let mut w = EventWheel::new();
        // Advance the cursor deep into the timeline.
        w.schedule(SimTime::from_tick(40, DEFAULT_SHIFT), 0, 0);
        assert_eq!(w.pop().unwrap().2, 0);
        w.schedule(SimTime::from_tick(41, DEFAULT_SHIFT), 1, 1);
        w.schedule(SimTime(5), 2, 2); // in the past relative to the cursor
        assert_eq!(w.pop().unwrap().2, 2, "overdue event must pop before future ones");
        assert_eq!(w.pop().unwrap().2, 1);
    }

    #[test]
    fn overflow_cascades_before_nearer_events_pop() {
        let shift = DEFAULT_SHIFT;
        let mut w = EventWheel::with_shift(shift);
        // A: beyond the horizon from tick 0 → overflow.
        let a = SimTime::from_tick(300, shift);
        w.schedule(a, 0, 0);
        // B: close by. Popping B moves the window so A becomes near.
        w.schedule(SimTime::from_tick(50, shift), 1, 1);
        assert_eq!(w.pop().unwrap().2, 1);
        // C: now inside the window but *after* A.
        let c = SimTime::from_tick(305, shift);
        w.schedule(c, 2, 2);
        assert_eq!(w.pop().unwrap().2, 0, "overflowed A precedes near C");
        assert_eq!(w.pop().unwrap().2, 2);
    }

    #[test]
    fn slots_recycle_after_warmup() {
        let mut w = EventWheel::new();
        for i in 0..8u64 {
            w.schedule(SimTime(i * 10), i, i as u32);
        }
        let warm = w.slot_count();
        for round in 0..50u64 {
            while w.pop().is_some() {}
            for i in 0..8u64 {
                let seq = 8 + round * 8 + i;
                w.schedule(SimTime(seq * 10), seq, i as u32);
            }
        }
        assert_eq!(w.slot_count(), warm, "steady-state scheduling must not grow the slab");
    }

    #[test]
    fn clear_visits_everything_and_rewinds() {
        let mut w = EventWheel::new();
        w.schedule(SimTime(10), 0, 10);
        w.schedule(SimTime(5_000_000_000), 1, 11); // overflow
        w.schedule(SimTime(20), 2, 12);
        let _ = w.pop(); // leave a partially drained state
        let mut seen = Vec::new();
        w.clear(|p| seen.push(p));
        seen.sort_unstable();
        assert_eq!(seen, vec![11, 12]);
        assert!(w.is_empty());
        // Reusable from tick zero afterwards.
        w.schedule(SimTime(1), 3, 13);
        assert_eq!(w.pop().unwrap().2, 13);
    }

    #[test]
    fn next_key_is_stable_and_nonconsuming() {
        let mut w = EventWheel::new();
        assert_eq!(w.next_key(), None);
        w.schedule(SimTime(42), 7, 0);
        assert_eq!(w.next_key(), Some((SimTime(42), 7)));
        assert_eq!(w.next_key(), Some((SimTime(42), 7)));
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop().unwrap().0, SimTime(42));
    }

    #[test]
    fn every_shift_produces_identical_order() {
        let events: Vec<(u64, u64)> = (0..200u64)
            .map(|i| {
                // A deterministic scatter mixing µs hops and 2s spikes.
                let t = if i % 17 == 0 { 2_000_000_000 + i * 31 } else { (i * 977) % 5_000_000 };
                (t, i)
            })
            .collect();
        let reference: Vec<(u64, u64)> = {
            let mut sorted = events.clone();
            sorted.sort_unstable();
            sorted
        };
        for shift in [0, 4, 12, 18, 26, 40] {
            let mut w = EventWheel::with_shift(shift);
            for &(t, seq) in &events {
                w.schedule(SimTime(t), seq, ());
            }
            let got: Vec<(u64, u64)> =
                std::iter::from_fn(|| w.pop().map(|(t, s, ())| (t.nanos(), s))).collect();
            assert_eq!(got, reference, "shift {shift}");
        }
    }
}
