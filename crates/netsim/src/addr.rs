//! IPv4 prefixes and address allocation for the simulated internet.

use std::net::Ipv4Addr;

/// A CIDR prefix, used by routing tables and NAT inside-detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ipv4Prefix {
    base: u32,
    len: u8,
}

impl Ipv4Prefix {
    /// Construct from an address and prefix length, canonicalizing the base
    /// (host bits are cleared).
    ///
    /// # Panics
    /// Panics if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length out of range");
        let base = u32::from(addr) & Self::mask(len);
        Ipv4Prefix { base, len }
    }

    /// The all-encompassing default route prefix, `0.0.0.0/0`.
    pub const DEFAULT: Ipv4Prefix = Ipv4Prefix { base: 0, len: 0 };

    /// A host route, `addr/32`.
    pub fn host(addr: Ipv4Addr) -> Self {
        Ipv4Prefix::new(addr, 32)
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(len))
        }
    }

    /// Prefix length in bits.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True only for the zero-length default prefix.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The network base address.
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.base)
    }

    /// Whether `addr` falls inside this prefix.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        (u32::from(addr) & Self::mask(self.len)) == self.base
    }

    /// The `i`-th address within the prefix (no broadcast/network-address
    /// conventions — this is a simulator, every address is usable).
    pub fn nth(&self, i: u32) -> Ipv4Addr {
        Ipv4Addr::from(self.base.wrapping_add(i))
    }
}

impl core::fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

/// Hands out unique addresses for simulated nodes, carving /24s out of a
/// base /8 so that sibling interfaces share a subnet when asked.
#[derive(Debug)]
pub struct AddrAllocator {
    next_subnet: u32,
    next_host: u32,
    base: u32,
}

impl AddrAllocator {
    /// Allocator over `base/8` (e.g. `10.0.0.0`).
    pub fn new(base: Ipv4Addr) -> Self {
        AddrAllocator { next_subnet: 0, next_host: 1, base: u32::from(base) & 0xff00_0000 }
    }

    /// Begin a fresh /24 subnet; subsequent [`AddrAllocator::next`] calls
    /// allocate inside it.
    pub fn next_subnet(&mut self) -> Ipv4Prefix {
        self.next_subnet += 1;
        self.next_host = 1;
        Ipv4Prefix::new(Ipv4Addr::from(self.base + (self.next_subnet << 8)), 24)
    }

    /// The next unique address in the current subnet, spilling into a new
    /// subnet after 254 hosts.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Ipv4Addr {
        if self.next_host >= 255 {
            self.next_subnet();
        }
        let addr = Ipv4Addr::from(self.base + (self.next_subnet << 8) + self.next_host);
        self.next_host += 1;
        addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_contains() {
        let p = Ipv4Prefix::new(Ipv4Addr::new(192, 0, 2, 77), 24);
        assert_eq!(p.network(), Ipv4Addr::new(192, 0, 2, 0));
        assert!(p.contains(Ipv4Addr::new(192, 0, 2, 1)));
        assert!(p.contains(Ipv4Addr::new(192, 0, 2, 255)));
        assert!(!p.contains(Ipv4Addr::new(192, 0, 3, 1)));
    }

    #[test]
    fn default_prefix_contains_everything() {
        assert!(Ipv4Prefix::DEFAULT.contains(Ipv4Addr::new(1, 2, 3, 4)));
        assert!(Ipv4Prefix::DEFAULT.contains(Ipv4Addr::new(255, 255, 255, 255)));
    }

    #[test]
    fn host_prefix_contains_only_itself() {
        let a = Ipv4Addr::new(10, 1, 2, 3);
        let p = Ipv4Prefix::host(a);
        assert!(p.contains(a));
        assert!(!p.contains(Ipv4Addr::new(10, 1, 2, 4)));
    }

    #[test]
    fn allocator_hands_out_unique_addresses() {
        let mut alloc = AddrAllocator::new(Ipv4Addr::new(10, 0, 0, 0));
        alloc.next_subnet();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(alloc.next()), "duplicate address");
        }
    }

    #[test]
    fn allocator_subnets_are_disjoint() {
        let mut alloc = AddrAllocator::new(Ipv4Addr::new(10, 0, 0, 0));
        let s1 = alloc.next_subnet();
        let a1 = alloc.next();
        let s2 = alloc.next_subnet();
        let a2 = alloc.next();
        assert!(s1.contains(a1));
        assert!(s2.contains(a2));
        assert!(!s1.contains(a2));
        assert!(!s2.contains(a1));
    }

    #[test]
    fn nth_walks_the_prefix() {
        let p = Ipv4Prefix::new(Ipv4Addr::new(10, 9, 8, 0), 24);
        assert_eq!(p.nth(0), Ipv4Addr::new(10, 9, 8, 0));
        assert_eq!(p.nth(7), Ipv4Addr::new(10, 9, 8, 7));
    }
}
