//! Forwarding state: longest-prefix-match routing tables whose next hops
//! may be single interfaces or load-balanced interface sets.

use std::net::Ipv4Addr;

use crate::addr::Ipv4Prefix;
use crate::node::BalancerKind;

/// Where a routing table sends a matching packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NextHop {
    /// A single egress interface (index into the node's interface list).
    Iface(usize),
    /// An equal-cost set of egress interfaces, disambiguated by the
    /// balancer policy. This is the paper's load balancer `L`.
    Balanced {
        /// How packets are spread (per-flow, per-packet, per-destination).
        kind: BalancerKind,
        /// Candidate egress interfaces, in a stable order.
        egresses: Vec<usize>,
    },
    /// Discard matching packets without any ICMP (a silent blackhole /
    /// firewall rule).
    Blackhole,
}

impl NextHop {
    /// The egress interfaces this next hop may use.
    pub fn egresses(&self) -> &[usize] {
        match self {
            NextHop::Iface(i) => core::slice::from_ref(i),
            NextHop::Balanced { egresses, .. } => egresses,
            NextHop::Blackhole => &[],
        }
    }
}

/// A routing table: `(prefix, next hop)` entries resolved by
/// longest-prefix match, ties broken by insertion order (first wins).
///
/// Host (`/32`) routes live in a hash map — synthetic-Internet core
/// routers carry one per destination, and linear scans there would
/// dominate campaign run time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoutingTable {
    entries: Vec<(Ipv4Prefix, NextHop)>,
    host_routes: std::collections::HashMap<Ipv4Addr, NextHop>,
}

impl RoutingTable {
    /// An empty table (every lookup misses).
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or replace the route for exactly `prefix`.
    pub fn set(&mut self, prefix: Ipv4Prefix, next_hop: NextHop) {
        if prefix.len() == 32 {
            self.host_routes.insert(prefix.network(), next_hop);
            return;
        }
        if let Some(slot) = self.entries.iter_mut().find(|(p, _)| *p == prefix) {
            slot.1 = next_hop;
        } else {
            self.entries.push((prefix, next_hop));
        }
    }

    /// Remove the route for exactly `prefix`, returning it if present.
    pub fn remove(&mut self, prefix: Ipv4Prefix) -> Option<NextHop> {
        if prefix.len() == 32 {
            return self.host_routes.remove(&prefix.network());
        }
        let idx = self.entries.iter().position(|(p, _)| *p == prefix)?;
        Some(self.entries.remove(idx).1)
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, dst: Ipv4Addr) -> Option<&NextHop> {
        // A /32 match beats anything else by definition.
        if let Some(nh) = self.host_routes.get(&dst) {
            return Some(nh);
        }
        self.entries
            .iter()
            .filter(|(p, _)| p.contains(dst))
            .max_by_key(|(p, _)| p.len())
            .map(|(_, nh)| nh)
    }

    /// Non-host entries, for inspection.
    pub fn entries(&self) -> &[(Ipv4Prefix, NextHop)] {
        &self.entries
    }

    /// Number of entries (host routes included).
    pub fn len(&self) -> usize {
        self.entries.len() + self.host_routes.len()
    }

    /// True when the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.host_routes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: [u8; 4], len: u8) -> Ipv4Prefix {
        Ipv4Prefix::new(Ipv4Addr::from(s), len)
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = RoutingTable::new();
        t.set(Ipv4Prefix::DEFAULT, NextHop::Iface(0));
        t.set(p([10, 0, 0, 0], 8), NextHop::Iface(1));
        t.set(p([10, 1, 0, 0], 16), NextHop::Iface(2));
        assert_eq!(t.lookup(Ipv4Addr::new(10, 1, 2, 3)), Some(&NextHop::Iface(2)));
        assert_eq!(t.lookup(Ipv4Addr::new(10, 2, 2, 3)), Some(&NextHop::Iface(1)));
        assert_eq!(t.lookup(Ipv4Addr::new(192, 0, 2, 1)), Some(&NextHop::Iface(0)));
    }

    #[test]
    fn missing_route_without_default() {
        let mut t = RoutingTable::new();
        t.set(p([10, 0, 0, 0], 8), NextHop::Iface(0));
        assert_eq!(t.lookup(Ipv4Addr::new(192, 0, 2, 1)), None);
    }

    #[test]
    fn set_replaces_same_prefix() {
        let mut t = RoutingTable::new();
        t.set(Ipv4Prefix::DEFAULT, NextHop::Iface(0));
        t.set(Ipv4Prefix::DEFAULT, NextHop::Iface(3));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(Ipv4Addr::new(8, 8, 8, 8)), Some(&NextHop::Iface(3)));
    }

    #[test]
    fn remove_route() {
        let mut t = RoutingTable::new();
        t.set(Ipv4Prefix::DEFAULT, NextHop::Iface(0));
        assert!(t.remove(Ipv4Prefix::DEFAULT).is_some());
        assert!(t.lookup(Ipv4Addr::new(8, 8, 8, 8)).is_none());
        assert!(t.remove(Ipv4Prefix::DEFAULT).is_none());
    }

    #[test]
    fn balanced_next_hop_exposes_egresses() {
        let nh = NextHop::Balanced {
            kind: BalancerKind::PerPacket,
            egresses: vec![1, 2, 3],
        };
        assert_eq!(nh.egresses(), &[1, 2, 3]);
        assert_eq!(NextHop::Iface(7).egresses(), &[7]);
        assert!(NextHop::Blackhole.egresses().is_empty());
    }
}

#[cfg(test)]
mod host_route_tests {
    use super::*;

    #[test]
    fn host_route_beats_shorter_prefixes() {
        let mut t = RoutingTable::new();
        t.set(Ipv4Prefix::DEFAULT, NextHop::Iface(0));
        let a = Ipv4Addr::new(10, 1, 2, 3);
        t.set(Ipv4Prefix::host(a), NextHop::Iface(5));
        assert_eq!(t.lookup(a), Some(&NextHop::Iface(5)));
        assert_eq!(t.lookup(Ipv4Addr::new(10, 1, 2, 4)), Some(&NextHop::Iface(0)));
        assert_eq!(t.len(), 2);
        assert!(t.remove(Ipv4Prefix::host(a)).is_some());
        assert_eq!(t.lookup(a), Some(&NextHop::Iface(0)));
    }

    #[test]
    fn many_host_routes_resolve() {
        let mut t = RoutingTable::new();
        for i in 0..2000u32 {
            t.set(Ipv4Prefix::host(Ipv4Addr::from(0x0a00_0000 + i)), NextHop::Iface(i as usize % 7));
        }
        assert_eq!(t.len(), 2000);
        assert_eq!(t.lookup(Ipv4Addr::from(0x0a00_0000 + 1234)), Some(&NextHop::Iface(1234 % 7)));
    }
}
