//! Forwarding state: longest-prefix-match routing tables whose next hops
//! may be single interfaces or load-balanced interface sets, plus the
//! copy-on-write overlay simulators layer over a shared base table.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::net::Ipv4Addr;
use std::sync::Arc;

use crate::addr::Ipv4Prefix;
use crate::node::BalancerKind;

/// A multiply-mix hasher for the `Ipv4Addr`-keyed route maps.
///
/// Host-route lookups run once per forwarded packet — the single
/// hottest map access in the simulator — and the default `HashMap`
/// hasher (SipHash-1-3) costs more than the rest of the lookup
/// combined for a 4-byte key. This hasher is a Fibonacci
/// multiply-xor: two multiplies, fully deterministic across runs and
/// platforms (no `RandomState`), which also keeps run results a pure
/// function of the seed. HashDoS resistance is irrelevant here: keys
/// come from the topology generator, not an adversary.
#[derive(Debug, Clone, Copy, Default)]
pub struct AddrHasher(u64);

impl Hasher for AddrHasher {
    #[inline]
    fn finish(&self) -> u64 {
        let mut x = self.0;
        x ^= x >> 32;
        x = x.wrapping_mul(0xd6e8_feb8_6659_fd93);
        x ^= x >> 32;
        x
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.0 = (self.0 ^ u64::from(i)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.0 = (self.0 ^ i).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.write_u32(u32::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.write_u32(u32::from(i));
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// `HashMap` state for [`AddrHasher`]-hashed route maps.
pub type AddrHashBuilder = BuildHasherDefault<AddrHasher>;

/// An address-keyed map hashed with the deterministic [`AddrHasher`].
pub type AddrMap<V> = HashMap<Ipv4Addr, V, AddrHashBuilder>;

/// Where a routing table sends a matching packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NextHop {
    /// A single egress interface (index into the node's interface list).
    Iface(usize),
    /// An equal-cost set of egress interfaces, disambiguated by the
    /// balancer policy. This is the paper's load balancer `L`.
    Balanced {
        /// How packets are spread (per-flow, per-packet, per-destination).
        kind: BalancerKind,
        /// Candidate egress interfaces, in a stable order.
        egresses: Vec<usize>,
    },
    /// Discard matching packets without any ICMP (a silent blackhole /
    /// firewall rule).
    Blackhole,
}

impl NextHop {
    /// The egress interfaces this next hop may use.
    pub fn egresses(&self) -> &[usize] {
        match self {
            NextHop::Iface(i) => core::slice::from_ref(i),
            NextHop::Balanced { egresses, .. } => egresses,
            NextHop::Blackhole => &[],
        }
    }
}

/// A routing table: `(prefix, next hop)` entries resolved by
/// longest-prefix match.
///
/// Host (`/32`) routes live in a hash map — synthetic-Internet core
/// routers carry one per destination, and linear scans there would
/// dominate campaign run time. The remaining entries are kept sorted by
/// descending prefix length, so a lookup returns at the *first* entry
/// that contains the address instead of filtering the whole table (two
/// distinct prefixes of equal length can never both contain one address,
/// so the first containing entry is always the unique longest match).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoutingTable {
    /// Non-host entries, sorted by descending prefix length.
    entries: Vec<(Ipv4Prefix, NextHop)>,
    host_routes: AddrMap<NextHop>,
}

impl RoutingTable {
    /// An empty table (every lookup misses).
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or replace the route for exactly `prefix`.
    pub fn set(&mut self, prefix: Ipv4Prefix, next_hop: NextHop) {
        if prefix.len() == 32 {
            self.host_routes.insert(prefix.network(), next_hop);
            return;
        }
        if let Some(slot) = self.entries.iter_mut().find(|(p, _)| *p == prefix) {
            slot.1 = next_hop;
        } else {
            let at = self.entries.partition_point(|(p, _)| p.len() >= prefix.len());
            self.entries.insert(at, (prefix, next_hop));
        }
    }

    /// Remove the route for exactly `prefix`, returning it if present.
    pub fn remove(&mut self, prefix: Ipv4Prefix) -> Option<NextHop> {
        if prefix.len() == 32 {
            return self.host_routes.remove(&prefix.network());
        }
        let idx = self.entries.iter().position(|(p, _)| *p == prefix)?;
        Some(self.entries.remove(idx).1)
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, dst: Ipv4Addr) -> Option<&NextHop> {
        self.lookup_entry(dst).map(|(_, nh)| nh)
    }

    /// Longest-prefix-match lookup, also reporting which prefix matched
    /// (needed to restore a route under the *same* prefix later).
    pub fn lookup_entry(&self, dst: Ipv4Addr) -> Option<(Ipv4Prefix, &NextHop)> {
        // A /32 match beats anything else by definition.
        if let Some(nh) = self.host_routes.get(&dst) {
            return Some((Ipv4Prefix::host(dst), nh));
        }
        // Sorted by descending length: the first containing entry wins.
        self.entries.iter().find(|(p, _)| p.contains(dst)).map(|(p, nh)| (*p, nh))
    }

    /// The route installed for exactly `prefix`, if any (no LPM).
    pub fn exact(&self, prefix: Ipv4Prefix) -> Option<&NextHop> {
        if prefix.len() == 32 {
            return self.host_routes.get(&prefix.network());
        }
        self.entries.iter().find(|(p, _)| *p == prefix).map(|(_, nh)| nh)
    }

    /// The host route for `dst`, if one is installed.
    pub fn host_route(&self, dst: Ipv4Addr) -> Option<&NextHop> {
        self.host_routes.get(&dst)
    }

    /// Non-host entries, sorted by descending prefix length.
    pub fn entries(&self) -> &[(Ipv4Prefix, NextHop)] {
        &self.entries
    }

    /// Number of entries (host routes included).
    pub fn len(&self) -> usize {
        self.entries.len() + self.host_routes.len()
    }

    /// True when the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.host_routes.is_empty()
    }
}

/// A node's copy-on-write routing changes, layered over a base
/// [`RoutingTable`] it does not own.
///
/// Simulators used to deep-copy every node's table at construction —
/// O(nodes × destinations) on the synthetic Internet, where each core
/// router carries one host route per destination. The delta makes
/// construction O(nodes) and allocation-free: a pristine delta is a
/// single null pointer, and only routes actually changed by routing
/// dynamics ([`crate::sim::Simulator::schedule_route_set`]) occupy
/// per-simulator memory. A `None` value is a tombstone masking a base
/// route.
#[derive(Debug, Clone, Default)]
pub struct RouteDelta {
    /// Boxed so a pristine delta (the overwhelmingly common case — one
    /// word, no allocation) keeps per-node state small and construction
    /// cheap.
    changes: Option<Box<DeltaChanges>>,
}

#[derive(Debug, Clone, Default)]
struct DeltaChanges {
    /// Non-host delta entries, sorted by descending prefix length.
    entries: Vec<(Ipv4Prefix, Option<NextHop>)>,
    /// Host-route delta entries.
    hosts: AddrMap<Option<NextHop>>,
}

impl RouteDelta {
    /// A delta with no changes.
    pub fn new() -> Self {
        Self::default()
    }

    /// A shared pristine delta, for borrow-only views over state that
    /// has no changes to show (the simulator's epoch-lazy node slots
    /// that have not been touched since a reset).
    pub fn pristine_ref() -> &'static RouteDelta {
        static PRISTINE: RouteDelta = RouteDelta { changes: None };
        &PRISTINE
    }

    /// True when no route differs from the base.
    pub fn is_pristine(&self) -> bool {
        self.changes.as_ref().is_none_or(|c| c.entries.is_empty() && c.hosts.is_empty())
    }

    /// Number of changed routes (diagnostics).
    pub fn len(&self) -> usize {
        self.changes.as_ref().map_or(0, |c| c.entries.len() + c.hosts.len())
    }

    /// True when the delta records no changes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Install or replace the route for exactly `prefix`.
    pub fn set(&mut self, prefix: Ipv4Prefix, next_hop: NextHop) {
        let c = self.changes.get_or_insert_default();
        if prefix.len() == 32 {
            c.hosts.insert(prefix.network(), Some(next_hop));
            return;
        }
        if let Some(slot) = c.entries.iter_mut().find(|(p, _)| *p == prefix) {
            slot.1 = Some(next_hop);
        } else {
            let at = c.entries.partition_point(|(p, _)| p.len() >= prefix.len());
            c.entries.insert(at, (prefix, Some(next_hop)));
        }
    }

    /// Remove the route for exactly `prefix` (a no-op if absent). When
    /// `base` carries the prefix a tombstone masks it; otherwise the
    /// delta entry is dropped so the delta stays minimal under the
    /// set-then-remove pattern routing dynamics produce.
    pub fn remove(&mut self, base: &RoutingTable, prefix: Ipv4Prefix) {
        let masks_base = base.exact(prefix).is_some();
        let Some(c) = self.changes.as_deref_mut() else {
            if masks_base {
                let c = self.changes.get_or_insert_default();
                if prefix.len() == 32 {
                    c.hosts.insert(prefix.network(), None);
                } else {
                    c.entries.push((prefix, None));
                }
            }
            return;
        };
        if prefix.len() == 32 {
            let addr = prefix.network();
            if masks_base {
                c.hosts.insert(addr, None);
            } else {
                c.hosts.remove(&addr);
            }
            return;
        }
        match c.entries.iter().position(|(p, _)| *p == prefix) {
            Some(idx) if !masks_base => {
                c.entries.remove(idx);
            }
            Some(idx) => c.entries[idx].1 = None,
            None if masks_base => {
                let at = c.entries.partition_point(|(p, _)| p.len() >= prefix.len());
                c.entries.insert(at, (prefix, None));
            }
            None => {}
        }
    }
}

/// The merged, read-only view of a base table plus one node's delta —
/// what the simulator's forwarding path consults. Borrow-only: building
/// one costs two pointer copies.
#[derive(Debug, Clone, Copy)]
pub struct NodeRouting<'a> {
    base: &'a RoutingTable,
    delta: &'a RouteDelta,
}

impl<'a> NodeRouting<'a> {
    /// View `delta` over `base`.
    pub fn new(base: &'a RoutingTable, delta: &'a RouteDelta) -> Self {
        NodeRouting { base, delta }
    }

    /// The underlying base table.
    pub fn base(&self) -> &'a RoutingTable {
        self.base
    }

    /// Longest-prefix-match lookup over the merged view.
    pub fn lookup(&self, dst: Ipv4Addr) -> Option<&'a NextHop> {
        // Fast path: pristine delta means the base answer is the answer.
        match self.delta.changes.as_deref() {
            None => self.base.lookup(dst),
            Some(_) => self.lookup_entry(dst).map(|(_, nh)| nh),
        }
    }

    /// Longest-prefix-match lookup over the merged view, also reporting
    /// which prefix matched.
    pub fn lookup_entry(&self, dst: Ipv4Addr) -> Option<(Ipv4Prefix, &'a NextHop)> {
        let Some(c) = self.delta.changes.as_deref() else {
            return self.base.lookup_entry(dst);
        };
        // Host routes: a delta entry (set *or* tombstone) overrides the
        // base; a tombstone falls through to the prefix entries.
        match c.hosts.get(&dst) {
            Some(Some(nh)) => return Some((Ipv4Prefix::host(dst), nh)),
            Some(None) => {}
            None => {
                if let Some(nh) = self.base.host_route(dst) {
                    return Some((Ipv4Prefix::host(dst), nh));
                }
            }
        }
        // Best live delta entry (skipping tombstones; they only mask the
        // base, shorter delta prefixes below them may still match).
        let from_delta = c
            .entries
            .iter()
            .filter(|(p, _)| p.contains(dst))
            .find_map(|(p, nh)| nh.as_ref().map(|nh| (*p, nh)));
        // Best base entry not overridden or tombstoned by the delta.
        let from_base = self
            .base
            .entries()
            .iter()
            .find(|(p, _)| p.contains(dst) && !c.entries.iter().any(|(q, _)| q == p))
            .map(|(p, nh)| (*p, nh));
        match (from_delta, from_base) {
            (Some(d), Some(b)) => Some(if d.0.len() >= b.0.len() { d } else { b }),
            (d, b) => d.or(b),
        }
    }

    /// Materialize the merged view as a plain table (tests, diagnostics —
    /// never on the forwarding path).
    pub fn flatten(&self) -> RoutingTable {
        let mut out = self.base.clone();
        if let Some(c) = self.delta.changes.as_deref() {
            for (prefix, change) in &c.entries {
                match change {
                    Some(nh) => out.set(*prefix, nh.clone()),
                    None => {
                        out.remove(*prefix);
                    }
                }
            }
            for (addr, change) in &c.hosts {
                let prefix = Ipv4Prefix::host(*addr);
                match change {
                    Some(nh) => out.set(prefix, nh.clone()),
                    None => {
                        out.remove(prefix);
                    }
                }
            }
        }
        out
    }
}

/// An owning base-plus-delta pair: [`RouteDelta`] behind a shared
/// [`RoutingTable`], for callers outside the simulator (the simulator
/// itself stores bare deltas and borrows bases from its topology, so
/// constructing it performs no per-node `Arc` traffic at all).
#[derive(Debug, Clone)]
pub struct RouteOverlay {
    base: Arc<RoutingTable>,
    delta: RouteDelta,
}

impl RouteOverlay {
    /// An overlay over `base` with no changes yet.
    pub fn new(base: Arc<RoutingTable>) -> Self {
        RouteOverlay { base, delta: RouteDelta::new() }
    }

    /// The shared base table.
    pub fn base(&self) -> &Arc<RoutingTable> {
        &self.base
    }

    /// The merged read-only view.
    pub fn view(&self) -> NodeRouting<'_> {
        NodeRouting::new(&self.base, &self.delta)
    }

    /// True when no route differs from the base.
    pub fn is_pristine(&self) -> bool {
        self.delta.is_pristine()
    }

    /// Number of routes in the delta (diagnostics).
    pub fn delta_len(&self) -> usize {
        self.delta.len()
    }

    /// Install or replace the route for exactly `prefix`.
    pub fn set(&mut self, prefix: Ipv4Prefix, next_hop: NextHop) {
        self.delta.set(prefix, next_hop);
    }

    /// Remove the route for exactly `prefix` (a no-op if absent).
    pub fn remove(&mut self, prefix: Ipv4Prefix) {
        self.delta.remove(&self.base, prefix);
    }

    /// Longest-prefix-match lookup over the merged view.
    pub fn lookup(&self, dst: Ipv4Addr) -> Option<&NextHop> {
        self.view().lookup(dst)
    }

    /// Longest-prefix-match lookup over the merged view, also reporting
    /// which prefix matched.
    pub fn lookup_entry(&self, dst: Ipv4Addr) -> Option<(Ipv4Prefix, &NextHop)> {
        self.view().lookup_entry(dst)
    }

    /// Materialize the merged view as a plain table.
    pub fn flatten(&self) -> RoutingTable {
        self.view().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: [u8; 4], len: u8) -> Ipv4Prefix {
        Ipv4Prefix::new(Ipv4Addr::from(s), len)
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = RoutingTable::new();
        t.set(Ipv4Prefix::DEFAULT, NextHop::Iface(0));
        t.set(p([10, 0, 0, 0], 8), NextHop::Iface(1));
        t.set(p([10, 1, 0, 0], 16), NextHop::Iface(2));
        assert_eq!(t.lookup(Ipv4Addr::new(10, 1, 2, 3)), Some(&NextHop::Iface(2)));
        assert_eq!(t.lookup(Ipv4Addr::new(10, 2, 2, 3)), Some(&NextHop::Iface(1)));
        assert_eq!(t.lookup(Ipv4Addr::new(192, 0, 2, 1)), Some(&NextHop::Iface(0)));
    }

    #[test]
    fn entries_stay_sorted_by_descending_length() {
        let mut t = RoutingTable::new();
        t.set(Ipv4Prefix::DEFAULT, NextHop::Iface(0));
        t.set(p([10, 1, 0, 0], 16), NextHop::Iface(2));
        t.set(p([10, 0, 0, 0], 8), NextHop::Iface(1));
        t.set(p([10, 1, 2, 0], 24), NextHop::Iface(3));
        let lens: Vec<u8> = t.entries().iter().map(|(p, _)| p.len()).collect();
        assert_eq!(lens, vec![24, 16, 8, 0]);
    }

    #[test]
    fn missing_route_without_default() {
        let mut t = RoutingTable::new();
        t.set(p([10, 0, 0, 0], 8), NextHop::Iface(0));
        assert_eq!(t.lookup(Ipv4Addr::new(192, 0, 2, 1)), None);
    }

    #[test]
    fn set_replaces_same_prefix() {
        let mut t = RoutingTable::new();
        t.set(Ipv4Prefix::DEFAULT, NextHop::Iface(0));
        t.set(Ipv4Prefix::DEFAULT, NextHop::Iface(3));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(Ipv4Addr::new(8, 8, 8, 8)), Some(&NextHop::Iface(3)));
    }

    #[test]
    fn remove_route() {
        let mut t = RoutingTable::new();
        t.set(Ipv4Prefix::DEFAULT, NextHop::Iface(0));
        assert!(t.remove(Ipv4Prefix::DEFAULT).is_some());
        assert!(t.lookup(Ipv4Addr::new(8, 8, 8, 8)).is_none());
        assert!(t.remove(Ipv4Prefix::DEFAULT).is_none());
    }

    #[test]
    fn lookup_entry_reports_the_matching_prefix() {
        let mut t = RoutingTable::new();
        t.set(Ipv4Prefix::DEFAULT, NextHop::Iface(0));
        t.set(p([10, 1, 0, 0], 16), NextHop::Iface(2));
        let a = Ipv4Addr::new(10, 1, 9, 9);
        assert_eq!(t.lookup_entry(a), Some((p([10, 1, 0, 0], 16), &NextHop::Iface(2))));
        let host = Ipv4Addr::new(10, 3, 0, 1);
        t.set(Ipv4Prefix::host(host), NextHop::Iface(7));
        assert_eq!(t.lookup_entry(host), Some((Ipv4Prefix::host(host), &NextHop::Iface(7))));
    }

    #[test]
    fn balanced_next_hop_exposes_egresses() {
        let nh = NextHop::Balanced { kind: BalancerKind::PerPacket, egresses: vec![1, 2, 3] };
        assert_eq!(nh.egresses(), &[1, 2, 3]);
        assert_eq!(NextHop::Iface(7).egresses(), &[7]);
        assert!(NextHop::Blackhole.egresses().is_empty());
    }
}

#[cfg(test)]
mod host_route_tests {
    use super::*;

    #[test]
    fn host_route_beats_shorter_prefixes() {
        let mut t = RoutingTable::new();
        t.set(Ipv4Prefix::DEFAULT, NextHop::Iface(0));
        let a = Ipv4Addr::new(10, 1, 2, 3);
        t.set(Ipv4Prefix::host(a), NextHop::Iface(5));
        assert_eq!(t.lookup(a), Some(&NextHop::Iface(5)));
        assert_eq!(t.lookup(Ipv4Addr::new(10, 1, 2, 4)), Some(&NextHop::Iface(0)));
        assert_eq!(t.len(), 2);
        assert!(t.remove(Ipv4Prefix::host(a)).is_some());
        assert_eq!(t.lookup(a), Some(&NextHop::Iface(0)));
    }

    #[test]
    fn many_host_routes_resolve() {
        let mut t = RoutingTable::new();
        for i in 0..2000u32 {
            t.set(
                Ipv4Prefix::host(Ipv4Addr::from(0x0a00_0000 + i)),
                NextHop::Iface(i as usize % 7),
            );
        }
        assert_eq!(t.len(), 2000);
        assert_eq!(t.lookup(Ipv4Addr::from(0x0a00_0000 + 1234)), Some(&NextHop::Iface(1234 % 7)));
    }
}

#[cfg(test)]
mod overlay_tests {
    use super::*;

    fn p(s: [u8; 4], len: u8) -> Ipv4Prefix {
        Ipv4Prefix::new(Ipv4Addr::from(s), len)
    }

    fn base() -> Arc<RoutingTable> {
        let mut t = RoutingTable::new();
        t.set(Ipv4Prefix::DEFAULT, NextHop::Iface(0));
        t.set(p([10, 0, 0, 0], 8), NextHop::Iface(1));
        t.set(Ipv4Prefix::host(Ipv4Addr::new(10, 9, 9, 9)), NextHop::Iface(9));
        Arc::new(t)
    }

    #[test]
    fn pristine_overlay_mirrors_base() {
        let o = RouteOverlay::new(base());
        assert!(o.is_pristine());
        assert_eq!(o.lookup(Ipv4Addr::new(10, 2, 3, 4)), Some(&NextHop::Iface(1)));
        assert_eq!(o.lookup(Ipv4Addr::new(10, 9, 9, 9)), Some(&NextHop::Iface(9)));
        assert_eq!(o.lookup(Ipv4Addr::new(192, 0, 2, 1)), Some(&NextHop::Iface(0)));
    }

    #[test]
    fn delta_set_shadows_base() {
        let mut o = RouteOverlay::new(base());
        o.set(p([10, 0, 0, 0], 8), NextHop::Iface(4));
        assert_eq!(o.lookup(Ipv4Addr::new(10, 2, 3, 4)), Some(&NextHop::Iface(4)));
        // More specific delta entry beats a shorter base entry.
        o.set(p([10, 2, 0, 0], 16), NextHop::Iface(5));
        assert_eq!(o.lookup(Ipv4Addr::new(10, 2, 3, 4)), Some(&NextHop::Iface(5)));
        assert_eq!(o.lookup(Ipv4Addr::new(10, 3, 3, 4)), Some(&NextHop::Iface(4)));
    }

    #[test]
    fn tombstone_masks_base_and_falls_through() {
        let mut o = RouteOverlay::new(base());
        o.remove(p([10, 0, 0, 0], 8));
        // The /8 is gone; the default still matches.
        assert_eq!(o.lookup(Ipv4Addr::new(10, 2, 3, 4)), Some(&NextHop::Iface(0)));
        // Removing a base host route re-exposes shorter prefixes.
        o.remove(Ipv4Prefix::host(Ipv4Addr::new(10, 9, 9, 9)));
        assert_eq!(o.lookup(Ipv4Addr::new(10, 9, 9, 9)), Some(&NextHop::Iface(0)));
    }

    #[test]
    fn set_then_remove_of_novel_route_leaves_no_delta() {
        let mut o = RouteOverlay::new(base());
        let dest = Ipv4Addr::new(172, 16, 0, 1);
        o.set(Ipv4Prefix::host(dest), NextHop::Iface(3));
        assert_eq!(o.lookup(dest), Some(&NextHop::Iface(3)));
        o.remove(Ipv4Prefix::host(dest));
        assert_eq!(o.lookup(dest), Some(&NextHop::Iface(0)));
        assert!(o.is_pristine(), "novel set+remove must not grow the delta");
    }

    #[test]
    fn lookup_entry_reports_prefix_across_layers() {
        let mut o = RouteOverlay::new(base());
        let a = Ipv4Addr::new(10, 2, 3, 4);
        assert_eq!(o.lookup_entry(a).unwrap().0, p([10, 0, 0, 0], 8));
        o.set(p([10, 2, 0, 0], 16), NextHop::Iface(5));
        assert_eq!(o.lookup_entry(a).unwrap().0, p([10, 2, 0, 0], 16));
        assert_eq!(o.lookup_entry(Ipv4Addr::new(10, 9, 9, 9)).unwrap().0.len(), 32);
    }

    #[test]
    fn flatten_matches_overlay_lookups() {
        let mut o = RouteOverlay::new(base());
        o.set(p([10, 2, 0, 0], 16), NextHop::Iface(5));
        o.remove(p([10, 0, 0, 0], 8));
        o.set(Ipv4Prefix::host(Ipv4Addr::new(192, 0, 2, 7)), NextHop::Blackhole);
        let flat = o.flatten();
        for addr in [
            Ipv4Addr::new(10, 2, 3, 4),
            Ipv4Addr::new(10, 3, 3, 4),
            Ipv4Addr::new(10, 9, 9, 9),
            Ipv4Addr::new(192, 0, 2, 7),
            Ipv4Addr::new(192, 0, 2, 8),
        ] {
            assert_eq!(o.lookup(addr), flat.lookup(addr), "addr {addr}");
        }
    }

    #[test]
    fn overlay_does_not_touch_base() {
        let shared = base();
        let mut o = RouteOverlay::new(Arc::clone(&shared));
        o.set(Ipv4Prefix::DEFAULT, NextHop::Blackhole);
        o.remove(p([10, 0, 0, 0], 8));
        assert_eq!(shared.lookup(Ipv4Addr::new(10, 2, 3, 4)), Some(&NextHop::Iface(1)));
        assert_eq!(shared.lookup(Ipv4Addr::new(192, 0, 2, 1)), Some(&NextHop::Iface(0)));
    }
}
