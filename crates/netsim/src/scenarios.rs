//! The paper's figure topologies, reconstructed node for node.
//!
//! Every scenario places the interesting routers at the same hop numbers
//! as the paper (the load balancer `L` and NAT `N` at hop 6) by prefixing
//! five healthy routers, and returns handles for asserting which
//! interface answered at which hop.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

use pt_wire::UnreachableCode;

use crate::addr::Ipv4Prefix;
use crate::builder::TopologyBuilder;
use crate::node::{BalancerKind, HostConfig, RouterConfig};
use crate::time::SimDuration;
use crate::topology::{NodeId, Topology};

/// A built scenario: topology plus the handles tests need.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The network.
    pub topology: Arc<Topology>,
    /// The traceroute source host.
    pub source: NodeId,
    /// The traceroute destination address.
    pub destination: Ipv4Addr,
    /// Address of each named router's *S-facing* interface — the address
    /// traceroute discovers for it.
    pub addr: BTreeMap<&'static str, Ipv4Addr>,
}

impl Scenario {
    /// The discovered-address handle for router `name`.
    ///
    /// # Panics
    /// Panics if the scenario has no router by that name.
    pub fn a(&self, name: &str) -> Ipv4Addr {
        *self.addr.get(name).unwrap_or_else(|| panic!("no router named {name}"))
    }
}

const LINK: SimDuration = SimDuration::from_millis(1);

/// Shared scaffolding: S plus a chain of healthy routers `r1..r{n}`,
/// fully routed in both directions. Returns the builder, source, the last
/// chain router, and S's prefix for reverse routes.
struct Spine {
    b: TopologyBuilder,
    source: NodeId,
    last: NodeId,
    s_prefix: Ipv4Prefix,
}

fn spine(hops_before: usize) -> Spine {
    let mut b = TopologyBuilder::new();
    let source = b.host("S", HostConfig::default());
    let mut chain = Vec::new();
    let mut prev = source;
    for i in 1..=hops_before {
        let r = b.router(&format!("r{i}"), RouterConfig::default());
        b.link(prev, r, LINK, 0.0);
        chain.push(r);
        prev = r;
    }
    let s_prefix = b.subnet_of(source);
    // Forward default routes S → r1 → ... ; reverse routes for S's prefix.
    b.default_via(source, chain[0]);
    for w in chain.windows(2) {
        b.default_via(w[0], w[1]);
        b.route_via(w[1], s_prefix, w[0]);
    }
    b.route_via(chain[0], s_prefix, source);
    Spine { b, source, last: prev, s_prefix }
}

fn finish(
    b: TopologyBuilder,
    source: NodeId,
    destination: Ipv4Addr,
    named: &[(&'static str, NodeId)],
) -> Scenario {
    // The S-facing interface of every router in these scenarios is its
    // first interface (links are created parent-first).
    let addr: BTreeMap<&'static str, Ipv4Addr> =
        named.iter().map(|(name, id)| (*name, b.iface_addr(*id, 0))).collect();
    Scenario { topology: Arc::new(b.build()), source, destination, addr }
}

/// **Fig. 1** — missing nodes and false links.
///
/// ```text
///            ┌─ A ── C ─┐            (B and C silent)
/// S ─r1..r5─ L          E ── D
///            └─ B ── D* ┘     (D* is the responding router "D")
/// hop:        6    7    8    9
/// ```
/// `L` balances over the two parallel paths with `kind`. Classic
/// traceroute infers the false link `A0 → D0` and misses `B0`/`C0`.
pub fn fig1(kind: BalancerKind) -> Scenario {
    let mut s = spine(5);
    let l = s.b.router("L", RouterConfig::default().with_fixed_responder());
    let a = s.b.router("A", RouterConfig::default().with_fixed_responder());
    let bb = s.b.router("B", RouterConfig::silent());
    let c = s.b.router("C", RouterConfig::silent());
    let dd = s.b.router("D", RouterConfig::default().with_fixed_responder());
    let e = s.b.router("E", RouterConfig::default().with_fixed_responder());
    let dest = s.b.host("dest", HostConfig::default());
    s.b.link(s.last, l, LINK, 0.0);
    s.b.link(l, a, LINK, 0.0);
    s.b.link(l, bb, LINK, 0.0);
    s.b.link(a, c, LINK, 0.0);
    s.b.link(bb, dd, LINK, 0.0);
    s.b.link(c, e, LINK, 0.0);
    s.b.link(dd, e, LINK, 0.0);
    s.b.link(e, dest, LINK, 0.0);
    s.b.default_via(s.last, l);
    s.b.balanced_route(l, Ipv4Prefix::DEFAULT, kind, &[a, bb]);
    s.b.default_via(a, c);
    s.b.default_via(bb, dd);
    s.b.default_via(c, e);
    s.b.default_via(dd, e);
    s.b.default_via(e, dest);
    s.b.default_via(dest, e);
    // Reverse routes for S.
    s.b.route_via(l, s.s_prefix, s.last);
    s.b.route_via(a, s.s_prefix, l);
    s.b.route_via(bb, s.s_prefix, l);
    s.b.route_via(c, s.s_prefix, a);
    s.b.route_via(dd, s.s_prefix, bb);
    s.b.route_via(e, s.s_prefix, c);
    let destination = s.b.addr_of(dest);
    finish(
        s.b,
        s.source,
        destination,
        &[("L", l), ("A", a), ("B", bb), ("C", c), ("D", dd), ("E", e)],
    )
}

/// **Fig. 3** — a loop caused by load balancing over unequal-length paths.
///
/// ```text
///            ┌─ A ────────┐
/// S ─r1..r5─ L            E ── D
///            └─ B ── C ───┘
/// hop:        6   7   8   8/9
/// ```
/// Probes hashed to the short path see `E` at hop 8; probes hashed to the
/// long path see `E` at hop 9 — classic traceroute can report `E, E`.
pub fn fig3(kind: BalancerKind) -> Scenario {
    let mut s = spine(5);
    let l = s.b.router("L", RouterConfig::default().with_fixed_responder());
    let a = s.b.router("A", RouterConfig::default().with_fixed_responder());
    let bb = s.b.router("B", RouterConfig::default().with_fixed_responder());
    let c = s.b.router("C", RouterConfig::default().with_fixed_responder());
    let e = s.b.router("E", RouterConfig::default().with_fixed_responder());
    let dest = s.b.host("dest", HostConfig::default());
    s.b.link(s.last, l, LINK, 0.0);
    s.b.link(l, a, LINK, 0.0);
    s.b.link(l, bb, LINK, 0.0);
    s.b.link(a, e, LINK, 0.0);
    s.b.link(bb, c, LINK, 0.0);
    s.b.link(c, e, LINK, 0.0);
    s.b.link(e, dest, LINK, 0.0);
    s.b.default_via(s.last, l);
    s.b.balanced_route(l, Ipv4Prefix::DEFAULT, kind, &[a, bb]);
    s.b.default_via(a, e);
    s.b.default_via(bb, c);
    s.b.default_via(c, e);
    s.b.default_via(e, dest);
    s.b.default_via(dest, e);
    s.b.route_via(l, s.s_prefix, s.last);
    s.b.route_via(a, s.s_prefix, l);
    s.b.route_via(bb, s.s_prefix, l);
    s.b.route_via(c, s.s_prefix, bb);
    s.b.route_via(e, s.s_prefix, a);
    let destination = s.b.addr_of(dest);
    finish(s.b, s.source, destination, &[("L", l), ("A", a), ("B", bb), ("C", c), ("E", e)])
}

/// **Fig. 4** — a loop caused by zero-TTL forwarding.
///
/// ```text
/// S ─r1..r5─ L ── F ── A ── B ── D      (F forwards TTL-0 packets)
/// hop:        6    7    8    9
/// ```
/// The probe that should expire at `F` is forwarded and expires at `A`
/// with probe TTL 0; the next probe expires at `A` normally. Traceroute
/// reports `A, A` and never discovers `F`.
pub fn fig4() -> Scenario {
    let mut s = spine(5);
    let l = s.b.router("L", RouterConfig::default());
    let f = s.b.router("F", RouterConfig::zero_ttl_forwarder());
    let a = s.b.router("A", RouterConfig::default());
    let bb = s.b.router("B", RouterConfig::default());
    let dest = s.b.host("dest", HostConfig::default());
    s.b.link(s.last, l, LINK, 0.0);
    s.b.link(l, f, LINK, 0.0);
    s.b.link(f, a, LINK, 0.0);
    s.b.link(a, bb, LINK, 0.0);
    s.b.link(bb, dest, LINK, 0.0);
    s.b.default_via(s.last, l);
    s.b.default_via(l, f);
    s.b.default_via(f, a);
    s.b.default_via(a, bb);
    s.b.default_via(bb, dest);
    s.b.default_via(dest, bb);
    s.b.route_via(l, s.s_prefix, s.last);
    s.b.route_via(f, s.s_prefix, l);
    s.b.route_via(a, s.s_prefix, f);
    s.b.route_via(bb, s.s_prefix, a);
    let destination = s.b.addr_of(dest);
    finish(s.b, s.source, destination, &[("L", l), ("F", f), ("A", a), ("B", bb)])
}

/// **Fig. 5** — a loop caused by NAT address rewriting.
///
/// ```text
/// S ─r1..r5─ N ── A ── B ── C ── D     (A, B, C, D inside the NAT)
/// hop:        6    7    8    9
/// ```
/// Responses from `A`, `B`, `C` are rewritten to `N0`; only the response
/// TTL (250, 249, 248, 247 at the paper's hop numbering) and the IP-ID
/// streams betray distinct routers.
pub fn fig5() -> Scenario {
    let mut s = spine(5);
    let n = s.b.router("N", RouterConfig::default());
    let a = s.b.router("A", RouterConfig::default());
    let bb = s.b.router("B", RouterConfig::default());
    let c = s.b.router("C", RouterConfig::default());
    let dest = s.b.host("dest", HostConfig::default());
    s.b.link(s.last, n, LINK, 0.0);
    s.b.link(n, a, LINK, 0.0);
    s.b.link(a, bb, LINK, 0.0);
    s.b.link(bb, c, LINK, 0.0);
    s.b.link(c, dest, LINK, 0.0);
    // N's public face is its S-side interface; everything in the stub
    // (A, B, C, dest) is inside.
    let public = s.b.iface_addr(n, 0);
    let inside = vec![
        s.b.subnet_of(a),
        s.b.subnet_of(bb),
        s.b.subnet_of(c),
        s.b.subnet_of(dest),
        s.b.subnet_of(n), // N's inner interface also hides
    ];
    let mut nat_cfg = RouterConfig::nat_gateway(public, inside);
    // Keep N answering from its public face.
    nat_cfg.icmp_initial_ttl = 255;
    s.b.set_router_config(n, nat_cfg);
    s.b.default_via(s.last, n);
    s.b.default_via(n, a);
    s.b.default_via(a, bb);
    s.b.default_via(bb, c);
    s.b.default_via(c, dest);
    s.b.default_via(dest, c);
    s.b.route_via(n, s.s_prefix, s.last);
    s.b.route_via(a, s.s_prefix, n);
    s.b.route_via(bb, s.s_prefix, a);
    s.b.route_via(c, s.s_prefix, bb);
    let destination = s.b.addr_of(dest);
    finish(s.b, s.source, destination, &[("N", n), ("A", a), ("B", bb), ("C", c)])
}

/// **Fig. 6** — several diamonds from a three-way load balancer.
///
/// ```text
///            ┌─ A ─┐─ D ─┐
/// S ─r1..r5─ L─ B ─┤     G ── dest
///            └─ C ─┘─ E ─┘      (C reaches D only)
/// hop:        6   7    8    9
/// ```
/// Edges: `A→{D,E}`, `B→{D,E}`, `C→D`, `D→G`, `E→G`. Over many routes the
/// per-destination graphs contain the diamond signatures
/// `(L0,D0), (L0,E0), (A0,G0), (B0,G0)` — but not `(C0,G0)`.
pub fn fig6(kind: BalancerKind) -> Scenario {
    let mut s = spine(5);
    let l = s.b.router("L", RouterConfig::default().with_fixed_responder());
    let a = s.b.router("A", RouterConfig::default().with_fixed_responder());
    let bb = s.b.router("B", RouterConfig::default().with_fixed_responder());
    let c = s.b.router("C", RouterConfig::default().with_fixed_responder());
    let dd = s.b.router("D", RouterConfig::default().with_fixed_responder());
    let e = s.b.router("E", RouterConfig::default().with_fixed_responder());
    let g = s.b.router("G", RouterConfig::default().with_fixed_responder());
    let dest = s.b.host("dest", HostConfig::default());
    s.b.link(s.last, l, LINK, 0.0);
    s.b.link(l, a, LINK, 0.0);
    s.b.link(l, bb, LINK, 0.0);
    s.b.link(l, c, LINK, 0.0);
    s.b.link(a, dd, LINK, 0.0);
    s.b.link(a, e, LINK, 0.0);
    s.b.link(bb, dd, LINK, 0.0);
    s.b.link(bb, e, LINK, 0.0);
    s.b.link(c, dd, LINK, 0.0);
    s.b.link(dd, g, LINK, 0.0);
    s.b.link(e, g, LINK, 0.0);
    s.b.link(g, dest, LINK, 0.0);
    s.b.default_via(s.last, l);
    s.b.balanced_route(l, Ipv4Prefix::DEFAULT, kind, &[a, bb, c]);
    s.b.balanced_route(a, Ipv4Prefix::DEFAULT, kind, &[dd, e]);
    s.b.balanced_route(bb, Ipv4Prefix::DEFAULT, kind, &[dd, e]);
    s.b.default_via(c, dd);
    s.b.default_via(dd, g);
    s.b.default_via(e, g);
    s.b.default_via(g, dest);
    s.b.default_via(dest, g);
    s.b.route_via(l, s.s_prefix, s.last);
    s.b.route_via(a, s.s_prefix, l);
    s.b.route_via(bb, s.s_prefix, l);
    s.b.route_via(c, s.s_prefix, l);
    s.b.route_via(dd, s.s_prefix, a);
    s.b.route_via(e, s.s_prefix, a);
    s.b.route_via(g, s.s_prefix, dd);
    let destination = s.b.addr_of(dest);
    finish(
        s.b,
        s.source,
        destination,
        &[("L", l), ("A", a), ("B", bb), ("C", c), ("D", dd), ("E", e), ("G", g)],
    )
}

/// **§4.1 "Unreachability message"** — a loop at the end of a route: the
/// hop-6 router `U` expires the first probe normally but cannot forward
/// the next one and answers `!H`.
pub fn unreachability_loop() -> Scenario {
    let mut s = spine(5);
    let u = s.b.router("U", RouterConfig::broken_forwarding(UnreachableCode::Host));
    let dest = s.b.host("dest", HostConfig::default());
    s.b.link(s.last, u, LINK, 0.0);
    s.b.link(u, dest, LINK, 0.0);
    s.b.default_via(s.last, u);
    s.b.default_via(u, dest);
    s.b.default_via(dest, u);
    s.b.route_via(u, s.s_prefix, s.last);
    let destination = s.b.addr_of(dest);
    finish(s.b, s.source, destination, &[("U", u)])
}

/// A plain healthy chain of `n_routers` routers ending at a host —
/// the control case where classic and Paris agree perfectly.
pub fn linear(n_routers: usize) -> Scenario {
    let mut s = spine(n_routers);
    let dest = s.b.host("dest", HostConfig::default());
    s.b.link(s.last, dest, LINK, 0.0);
    s.b.default_via(s.last, dest);
    s.b.default_via(dest, s.last);
    let destination = s.b.addr_of(dest);
    let named: Vec<(&'static str, NodeId)> = Vec::new();
    let mut sc = finish(s.b, s.source, destination, &named);
    // Record chain router addresses under synthetic handles is not
    // possible with &'static str names; callers use the topology instead.
    sc.addr = BTreeMap::new();
    sc
}

/// A chain with a transient forwarding loop: between `loop_start` and
/// `loop_end` (virtual time), routers `x` (hop 6) and `y` (hop 7) point
/// at each other for the destination prefix — the §4.2 "packets caught in
/// a forwarding loop during routing convergence" cause for cycles.
///
/// The caller gets the scenario plus the two node ids to schedule the
/// route flips with [`crate::sim::Simulator::schedule_route_set`].
pub fn forwarding_loop_chain() -> (Scenario, NodeId, NodeId) {
    let mut s = spine(5);
    let x = s.b.router("X", RouterConfig::default().with_fixed_responder());
    let y = s.b.router("Y", RouterConfig::default().with_fixed_responder());
    let z = s.b.router("Z", RouterConfig::default().with_fixed_responder());
    let dest = s.b.host("dest", HostConfig::default());
    s.b.link(s.last, x, LINK, 0.0);
    s.b.link(x, y, LINK, 0.0);
    s.b.link(y, z, LINK, 0.0);
    s.b.link(z, dest, LINK, 0.0);
    s.b.default_via(s.last, x);
    s.b.default_via(x, y);
    s.b.default_via(y, z);
    s.b.default_via(z, dest);
    s.b.default_via(dest, z);
    s.b.route_via(x, s.s_prefix, s.last);
    s.b.route_via(y, s.s_prefix, x);
    s.b.route_via(z, s.s_prefix, y);
    let destination = s.b.addr_of(dest);
    let sc = finish(s.b, s.source, destination, &[("X", x), ("Y", y), ("Z", z)]);
    (sc, x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use pt_wire::ipv4::{protocol, Ipv4Header};
    use pt_wire::FlowPolicy;
    use pt_wire::{IcmpMessage, Packet, Transport, UdpDatagram};

    fn probe(sc: &Scenario, ttl: u8, dst_port: u16) -> Packet {
        let src = sc.topology.node(sc.source).primary_addr();
        let ip = Ipv4Header::new(src, sc.destination, protocol::UDP, ttl);
        Packet::new(ip, Transport::Udp(UdpDatagram::new(40123, dst_port, vec![0; 8])))
    }

    fn responder(sc: &Scenario, sim: &mut Simulator, ttl: u8, dst_port: u16) -> Option<Ipv4Addr> {
        sim.inject(sc.source, probe(sc, ttl, dst_port));
        sim.run_to_quiescence();
        sim.take_inbox(sc.source).pop().map(|(_, p)| p.ip.src)
    }

    #[test]
    fn fig1_constant_flow_sees_one_consistent_path() {
        let sc = fig1(BalancerKind::PerFlow(FlowPolicy::FiveTuple));
        let mut sim = Simulator::new(sc.topology.clone(), 21);
        // Constant flow identifier: whatever path the flow hashes to, the
        // sequence of hops 6..9 is one of the two true paths.
        let hops: Vec<Option<Ipv4Addr>> =
            (6..=9).map(|ttl| responder(&sc, &mut sim, ttl, 33435)).collect();
        assert_eq!(hops[0], Some(sc.a("L")));
        let top = [Some(sc.a("A")), None, Some(sc.a("E"))];
        let bottom = [None, Some(sc.a("D")), Some(sc.a("E"))];
        let tail = [hops[1], hops[2], hops[3]];
        assert!(tail == top || tail == bottom, "flow must stay on one physical path, got {tail:?}");
    }

    #[test]
    fn fig1_varying_flow_can_infer_the_false_link() {
        let sc = fig1(BalancerKind::PerFlow(FlowPolicy::FiveTuple));
        let mut sim = Simulator::new(sc.topology.clone(), 21);
        // Classic traceroute behaviour: a different destination port per
        // probe. Collect what each hop shows across many port choices.
        let mut hop7 = std::collections::HashSet::new();
        let mut hop8 = std::collections::HashSet::new();
        for i in 0..24 {
            if let Some(a) = responder(&sc, &mut sim, 7, 33435 + i) {
                hop7.insert(a);
            }
            if let Some(a) = responder(&sc, &mut sim, 8, 34435 + i) {
                hop8.insert(a);
            }
        }
        // A answers at hop 7 (B is silent); D answers at hop 8 (C is
        // silent): adjacency suggests the false link A0→D0.
        assert_eq!(hop7, std::collections::HashSet::from([sc.a("A")]));
        assert_eq!(hop8, std::collections::HashSet::from([sc.a("D")]));
    }

    #[test]
    fn fig3_unequal_lengths_show_e_twice_for_straddling_flows() {
        let sc = fig3(BalancerKind::PerFlow(FlowPolicy::FiveTuple));
        let mut sim = Simulator::new(sc.topology.clone(), 5);
        // Find a port whose flow goes short (E at hop 8) and one that
        // goes long (E at hop 9): a classic trace that changes flow
        // between TTL 8 and 9 sees E twice in a row.
        let mut short_port = None;
        let mut long_port = None;
        for i in 0..64 {
            let port = 33435 + i;
            let at8 = responder(&sc, &mut sim, 8, port);
            if at8 == Some(sc.a("E")) && short_port.is_none() {
                short_port = Some(port);
            }
            if at8 == Some(sc.a("C")) && long_port.is_none() {
                long_port = Some(port);
            }
        }
        let (sp, lp) =
            (short_port.expect("some flow goes short"), long_port.expect("some flow goes long"));
        // The straddling trace: TTL 8 with the short flow shows E; TTL 9
        // with the long flow shows E again → loop (E, E).
        assert_eq!(responder(&sc, &mut sim, 8, sp), Some(sc.a("E")));
        assert_eq!(responder(&sc, &mut sim, 9, lp), Some(sc.a("E")));
    }

    #[test]
    fn fig4_zero_ttl_forwarding_duplicates_a() {
        let sc = fig4();
        let mut sim = Simulator::new(sc.topology.clone(), 3);
        assert_eq!(responder(&sc, &mut sim, 7, 33435), Some(sc.a("A")), "F's hop shows A");
        assert_eq!(responder(&sc, &mut sim, 8, 33436), Some(sc.a("A")), "A's own hop");
        assert_eq!(responder(&sc, &mut sim, 9, 33437), Some(sc.a("B")));
    }

    #[test]
    fn fig5_nat_rewrites_three_hops_to_n0_with_decreasing_response_ttl() {
        let sc = fig5();
        let mut sim = Simulator::new(sc.topology.clone(), 8);
        let mut addrs = Vec::new();
        let mut resp_ttls = Vec::new();
        for ttl in 6..=9 {
            sim.inject(sc.source, probe(&sc, ttl, 33435));
            sim.run_to_quiescence();
            let (_, p) = sim.take_inbox(sc.source).pop().unwrap();
            addrs.push(p.ip.src);
            resp_ttls.push(p.ip.ttl);
        }
        assert!(addrs.iter().all(|a| *a == sc.a("N")), "all four hops show N0: {addrs:?}");
        assert_eq!(resp_ttls, vec![250, 249, 248, 247], "paper's exact response TTLs");
    }

    #[test]
    fn fig6_probes_reach_dest_and_diamond_interfaces_exist() {
        let sc = fig6(BalancerKind::PerFlow(FlowPolicy::FiveTuple));
        let mut sim = Simulator::new(sc.topology.clone(), 13);
        let mut hop7 = std::collections::HashSet::new();
        let mut hop8 = std::collections::HashSet::new();
        for i in 0..96 {
            if let Some(a) = responder(&sc, &mut sim, 7, 33435 + i) {
                hop7.insert(a);
            }
            if let Some(a) = responder(&sc, &mut sim, 8, 34435 + i) {
                hop8.insert(a);
            }
        }
        assert_eq!(
            hop7,
            std::collections::HashSet::from([sc.a("A"), sc.a("B"), sc.a("C")]),
            "all three hop-7 interfaces discoverable"
        );
        assert_eq!(
            hop8,
            std::collections::HashSet::from([sc.a("D"), sc.a("E")]),
            "both hop-8 interfaces discoverable"
        );
    }

    #[test]
    fn unreachability_loop_shows_same_address_then_host_unreachable() {
        let sc = unreachability_loop();
        let mut sim = Simulator::new(sc.topology.clone(), 2);
        sim.inject(sc.source, probe(&sc, 6, 33435));
        sim.run_to_quiescence();
        let (_, first) = sim.take_inbox(sc.source).pop().unwrap();
        sim.inject(sc.source, probe(&sc, 7, 33436));
        sim.run_to_quiescence();
        let (_, second) = sim.take_inbox(sc.source).pop().unwrap();
        assert_eq!(first.ip.src, sc.a("U"));
        assert_eq!(second.ip.src, sc.a("U"), "the loop");
        assert!(matches!(first.transport, Transport::Icmp(IcmpMessage::TimeExceeded { .. })));
        assert!(matches!(
            second.transport,
            Transport::Icmp(IcmpMessage::DestUnreachable {
                code: pt_wire::UnreachableCode::Host,
                ..
            })
        ));
    }

    #[test]
    fn forwarding_loop_cycles_packets_until_ttl_death() {
        let (sc, x, y) = forwarding_loop_chain();
        let mut sim = Simulator::new(sc.topology.clone(), 6);
        // Make X and Y point at each other for the destination.
        let dst_pfx = Ipv4Prefix::host(sc.destination);
        let x_to_y = sc.topology.iface_toward(x, y).unwrap();
        let y_to_x = sc.topology.iface_toward(y, x).unwrap();
        sim.schedule_route_set(
            crate::time::SimTime::ZERO,
            x,
            dst_pfx,
            Some(crate::routing::NextHop::Iface(x_to_y)),
        );
        sim.schedule_route_set(
            crate::time::SimTime::ZERO,
            y,
            dst_pfx,
            Some(crate::routing::NextHop::Iface(y_to_x)),
        );
        // A high-TTL probe bounces X↔Y: hops 6,7,8,9... alternate X,Y,X,Y.
        let h6 = {
            sim.inject(sc.source, probe(&sc, 6, 33435));
            sim.run_to_quiescence();
            sim.take_inbox(sc.source).pop().unwrap().1.ip.src
        };
        let h8 = {
            sim.inject(sc.source, probe(&sc, 8, 33436));
            sim.run_to_quiescence();
            sim.take_inbox(sc.source).pop().unwrap().1.ip.src
        };
        let h7 = {
            sim.inject(sc.source, probe(&sc, 7, 33437));
            sim.run_to_quiescence();
            sim.take_inbox(sc.source).pop().unwrap().1.ip.src
        };
        assert_eq!(h6, sc.a("X"));
        assert_eq!(h7, sc.a("Y"));
        assert_eq!(h8, sc.a("X"), "the cycle: X reappears at hop 8");
    }

    #[test]
    fn linear_chain_is_anomaly_free() {
        let sc = linear(7);
        let mut sim = Simulator::new(sc.topology.clone(), 1);
        let mut seen = Vec::new();
        for ttl in 1..=8 {
            let a = responder(&sc, &mut sim, ttl, 33435 + u16::from(ttl));
            seen.push(a.expect("every hop answers"));
        }
        let unique: std::collections::HashSet<_> = seen.iter().collect();
        assert_eq!(unique.len(), seen.len(), "no repeats on a healthy chain");
        assert_eq!(seen[7], sc.destination, "hop 8 is the destination");
    }
}
