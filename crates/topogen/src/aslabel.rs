//! AS-level labeling of the synthetic Internet (§3 of the paper).
//!
//! The study mapped the 90 M response source addresses to AS numbers
//! using Mao et al.'s technique and reported coverage: 1,122 ASes, all
//! nine tier-1 ISPs, 64 of the top regional ASes. Our substitution is a
//! ground-truth prefix→AS map built at generation time: the access
//! network is the source AS, each core router is one tier-1 AS, and each
//! destination branch is a stub AS homed on its owner core.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use pt_netsim::addr::Ipv4Prefix;

/// An autonomous-system number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Asn(pub u32);

/// The role an AS plays in the synthetic hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsTier {
    /// The measurement source's own network (Renater/LIP6 in the study).
    Source,
    /// A core transit network (the tier-1s).
    Tier1,
    /// A destination stub network.
    Stub,
}

/// A longest-prefix-match table from address space to AS numbers.
#[derive(Debug, Clone, Default)]
pub struct AsMap {
    entries: Vec<(Ipv4Prefix, Asn)>,
    tiers: BTreeMap<Asn, AsTier>,
}

impl AsMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `prefix` as belonging to `asn` with the given tier.
    pub fn insert(&mut self, prefix: Ipv4Prefix, asn: Asn, tier: AsTier) {
        self.entries.push((prefix, asn));
        self.tiers.insert(asn, tier);
    }

    /// Longest-prefix-match lookup of an address's AS.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<Asn> {
        self.entries
            .iter()
            .filter(|(p, _)| p.contains(addr))
            .max_by_key(|(p, _)| p.len())
            .map(|(_, asn)| *asn)
    }

    /// The tier of a registered AS.
    pub fn tier(&self, asn: Asn) -> Option<AsTier> {
        self.tiers.get(&asn).copied()
    }

    /// Number of registered ASes.
    pub fn as_count(&self) -> usize {
        self.tiers.len()
    }

    /// All registered tier-1 ASes.
    pub fn tier1s(&self) -> Vec<Asn> {
        let mut v: Vec<Asn> =
            self.tiers.iter().filter(|(_, t)| **t == AsTier::Tier1).map(|(a, _)| *a).collect();
        v.sort();
        v
    }
}

/// §3-style coverage statistics for a set of observed addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsCoverage {
    /// Distinct ASes observed.
    pub ases_observed: usize,
    /// Distinct ASes registered in the map.
    pub ases_total: usize,
    /// Tier-1 ASes traversed.
    pub tier1s_observed: usize,
    /// Tier-1 ASes in the map (nine in the study).
    pub tier1s_total: usize,
    /// Addresses that mapped to no AS ("invalid" in the paper).
    pub unmapped_addresses: usize,
}

/// Compute §3 coverage from observed response source addresses.
pub fn coverage<'a>(map: &AsMap, addrs: impl IntoIterator<Item = &'a Ipv4Addr>) -> AsCoverage {
    let mut seen = std::collections::BTreeSet::new();
    let mut unmapped = 0usize;
    for addr in addrs {
        match map.lookup(*addr) {
            Some(asn) => {
                seen.insert(asn);
            }
            None => unmapped += 1,
        }
    }
    let tier1s_observed = seen.iter().filter(|a| map.tier(**a) == Some(AsTier::Tier1)).count();
    AsCoverage {
        ases_observed: seen.len(),
        ases_total: map.as_count(),
        tier1s_observed,
        tier1s_total: map.tier1s().len(),
        unmapped_addresses: unmapped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfx(a: [u8; 4], len: u8) -> Ipv4Prefix {
        Ipv4Prefix::new(Ipv4Addr::from(a), len)
    }

    #[test]
    fn lookup_uses_longest_prefix() {
        let mut m = AsMap::new();
        m.insert(pfx([10, 0, 0, 0], 8), Asn(1), AsTier::Tier1);
        m.insert(pfx([10, 5, 0, 0], 16), Asn(2), AsTier::Stub);
        assert_eq!(m.lookup(Ipv4Addr::new(10, 5, 1, 1)), Some(Asn(2)));
        assert_eq!(m.lookup(Ipv4Addr::new(10, 6, 1, 1)), Some(Asn(1)));
        assert_eq!(m.lookup(Ipv4Addr::new(11, 0, 0, 1)), None);
    }

    #[test]
    fn coverage_counts_ases_tiers_and_unmapped() {
        let mut m = AsMap::new();
        m.insert(pfx([10, 1, 0, 0], 16), Asn(100), AsTier::Tier1);
        m.insert(pfx([10, 2, 0, 0], 16), Asn(101), AsTier::Tier1);
        m.insert(pfx([10, 3, 0, 0], 16), Asn(200), AsTier::Stub);
        let addrs = [
            Ipv4Addr::new(10, 1, 0, 1),
            Ipv4Addr::new(10, 1, 0, 2), // same AS twice
            Ipv4Addr::new(10, 3, 9, 9),
            Ipv4Addr::new(192, 0, 2, 1), // unmapped
        ];
        let c = coverage(&m, addrs.iter());
        assert_eq!(c.ases_observed, 2);
        assert_eq!(c.ases_total, 3);
        assert_eq!(c.tier1s_observed, 1);
        assert_eq!(c.tier1s_total, 2);
        assert_eq!(c.unmapped_addresses, 1);
    }

    #[test]
    fn tier1s_sorted() {
        let mut m = AsMap::new();
        m.insert(pfx([10, 2, 0, 0], 16), Asn(9), AsTier::Tier1);
        m.insert(pfx([10, 1, 0, 0], 16), Asn(3), AsTier::Tier1);
        assert_eq!(m.tier1s(), vec![Asn(3), Asn(9)]);
    }
}
