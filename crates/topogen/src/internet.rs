//! The synthetic-Internet generator.
//!
//! ```text
//! S ── a1 ── a2 ── core[0] ═╦═ core[1..n]   (full mesh)
//!                           ╚═ ...
//! core[owner(d)] ── branch(d) ── dest d     (one branch per destination)
//! ```
//!
//! A branch is a chain of transit routers into which the generator
//! splices, with configured probabilities: a load-balanced diamond
//! (per-flow or per-packet; equal-length branches make diamonds,
//! length-difference 1 makes loops, ≥ 2 makes cycles), a zero-TTL
//! forwarder, a broken-forwarding router, a NAT'd stub, and silent
//! routers. All randomness derives from [`InternetConfig::seed`].

use std::net::Ipv4Addr;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pt_netsim::addr::Ipv4Prefix;
use pt_netsim::node::{BalancerKind, HostConfig, RouterConfig};
use pt_netsim::time::SimDuration;
use pt_netsim::topology::{NodeId, Topology};
use pt_netsim::TopologyBuilder;
use pt_wire::{FlowPolicy, UnreachableCode};

use crate::aslabel::{AsMap, AsTier, Asn};

/// Knobs for the synthetic Internet. Defaults are calibrated so a classic
/// traceroute campaign reproduces the *shape* of the paper's §4 numbers.
#[derive(Debug, Clone)]
pub struct InternetConfig {
    /// Master seed; everything else is derived.
    pub seed: u64,
    /// Number of destinations (the study used 5,000).
    pub n_destinations: usize,
    /// Core (tier-1-like) routers, fully meshed. At least 2.
    pub n_core: usize,
    /// Transit routers per branch before feature insertion: uniform in
    /// `branch_len_min..=branch_len_max`.
    pub branch_len_min: usize,
    /// Upper bound of the plain chain length.
    pub branch_len_max: usize,
    /// Probability a destination's branch contains a load balancer that
    /// hashes flows (the dominant anomaly source).
    pub per_flow_lb: f64,
    /// Probability of a per-packet (random) balancer instead.
    pub per_packet_lb: f64,
    /// Given a balancer, probability its parallel paths have equal
    /// length (diamonds only).
    pub lb_equal_weight: f64,
    /// Given a balancer, probability of a length difference of exactly 1
    /// (loops). The remainder gets a difference of 2 (cycles).
    pub lb_delta1_weight: f64,
    /// Probability the balancer spreads over 3 paths instead of 2.
    pub lb_three_way: f64,
    /// Probability a branch contains a zero-TTL forwarder (Fig. 4).
    pub zero_ttl: f64,
    /// Probability the branch ends in a broken-forwarding router (`!H`).
    pub broken: f64,
    /// Probability the destination sits in a NAT'd stub (Fig. 5).
    pub nat: f64,
    /// Probability each individual chain router is silent.
    pub silent_router: f64,
    /// Probability the destination is firewalled (no UDP/TCP answers).
    pub firewalled_dest: f64,
    /// Per-traversal packet loss on branch links (mid-route stars).
    pub link_loss: f64,
    /// One-way link delay.
    pub link_delay: SimDuration,
    /// Flow-hash policy installed on per-flow balancers.
    pub flow_policy: FlowPolicy,
    /// Probability each chain router rate-limits the ICMP it sources
    /// (token bucket; the dominant modern star cause). New hostile
    /// knobs consume RNG draws only when non-zero, so fault-free
    /// configs generate byte-identical networks to older seeds.
    pub rate_limited_router: f64,
    /// Planted limiter: time to mint one token (1 / rate).
    pub rate_limit_interval: SimDuration,
    /// Planted limiter: bucket capacity (back-to-back ICMP budget).
    pub rate_limit_burst: u32,
    /// Probability a branch routes through an MPLS tunnel whose
    /// interior routers decrement TTL without sourcing Time Exceeded.
    pub mpls_tunnel: f64,
    /// Interior (hidden) routers per planted tunnel.
    pub mpls_run_len: usize,
    /// Probability a branch carries a firewall that silently drops UDP
    /// transit while passing TCP and ICMP.
    pub udp_filter: f64,
    /// Probability a branch's links get a skewed (slower) return path.
    pub asym_return: f64,
    /// Extra return-direction delay on planted asymmetric branches.
    pub asym_extra_delay: SimDuration,
}

impl Default for InternetConfig {
    fn default() -> Self {
        InternetConfig {
            seed: 2006,
            n_destinations: 500,
            n_core: 6,
            branch_len_min: 2,
            branch_len_max: 5,
            per_flow_lb: 0.65,
            per_packet_lb: 0.03,
            lb_equal_weight: 0.62,
            lb_delta1_weight: 0.24,
            lb_three_way: 0.25,
            zero_ttl: 0.0025,
            broken: 0.0012,
            nat: 0.0015,
            silent_router: 0.02,
            firewalled_dest: 0.05,
            link_loss: 0.0005,
            link_delay: SimDuration::from_millis(1),
            flow_policy: FlowPolicy::FiveTuple,
            rate_limited_router: 0.0,
            rate_limit_interval: SimDuration::from_secs(5),
            rate_limit_burst: 1,
            mpls_tunnel: 0.0,
            mpls_run_len: 3,
            udp_filter: 0.0,
            asym_return: 0.0,
            asym_extra_delay: SimDuration::from_millis(5),
        }
    }
}

impl InternetConfig {
    /// A small instance for unit tests.
    pub fn tiny(seed: u64) -> Self {
        InternetConfig { seed, n_destinations: 40, n_core: 3, ..Self::default() }
    }

    /// A tiny instance with all four hostile-network knobs on: ICMP
    /// token-bucket rate limiters, MPLS hop hiding, UDP firewalls and
    /// asymmetric return paths — the adaptive-tracer proving ground.
    pub fn hostile(seed: u64) -> Self {
        InternetConfig {
            rate_limited_router: 0.22,
            mpls_tunnel: 0.15,
            udp_filter: 0.15,
            asym_return: 0.25,
            ..Self::tiny(seed)
        }
    }
}

/// Ground truth about one destination's branch.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DestTruth {
    /// A per-flow load balancer sits on the path.
    pub per_flow_lb: bool,
    /// A per-packet load balancer sits on the path.
    pub per_packet_lb: bool,
    /// Length difference between the balancer's branches (0 = equal).
    pub lb_delta: u8,
    /// Number of parallel paths at the balancer (0 = none).
    pub lb_width: u8,
    /// A zero-TTL forwarder sits on the path.
    pub zero_ttl: bool,
    /// The branch ends in a broken-forwarding router.
    pub broken: bool,
    /// The destination sits behind a NAT gateway.
    pub nat: bool,
    /// Number of silent routers on the path.
    pub silent_routers: u8,
    /// The destination ignores UDP/TCP probes.
    pub firewalled: bool,
    /// Number of token-bucket ICMP rate limiters on the path.
    pub rate_limited_routers: u8,
    /// Number of MPLS-hidden (no Time Exceeded) hops on the path.
    pub mpls_hops: u8,
    /// A firewall on the path silently drops UDP transit.
    pub udp_filtered: bool,
    /// The branch's return path carries extra (asymmetric) delay.
    pub asym_return: bool,
}

impl DestTruth {
    /// Whether classic traceroute should see *any* anomaly source here.
    pub fn any_anomaly_source(&self) -> bool {
        (self.per_flow_lb || self.per_packet_lb) || self.zero_ttl || self.broken || self.nat
    }

    /// Whether any load balancer (per-flow or per-packet) sits on this
    /// branch — the population multipath discovery must enumerate.
    pub fn has_balancer(&self) -> bool {
        self.per_flow_lb || self.per_packet_lb
    }

    /// The planted balancer's `(width, branch-length delta, is
    /// per-packet)`, or `None` on plain branches — the ground truth a
    /// multipath campaign is validated against.
    pub fn balancer(&self) -> Option<(u8, u8, bool)> {
        self.has_balancer().then_some((self.lb_width, self.lb_delta, self.per_packet_lb))
    }

    /// Whether any of the PR-6 hostile faults (rate limiter, MPLS
    /// hiding, UDP filter, asymmetric return) was planted here — the
    /// population the adaptive walker must recover.
    pub fn any_hostile_fault(&self) -> bool {
        self.rate_limited_routers > 0 || self.mpls_hops > 0 || self.udp_filtered || self.asym_return
    }
}

/// One destination: its address, host node, ground truth, and the branch
/// routers in path order (for scheduling routing dynamics).
#[derive(Debug, Clone)]
pub struct DestInfo {
    /// The probed address.
    pub addr: Ipv4Addr,
    /// The destination host node.
    pub host: NodeId,
    /// What the generator put on this branch.
    pub truth: DestTruth,
    /// Branch routers in path order (chain part only — usable for
    /// forwarding-loop scheduling between adjacent pairs).
    pub chain: Vec<NodeId>,
}

/// The generated network plus its metadata.
#[derive(Debug, Clone)]
pub struct SyntheticInternet {
    /// The immutable network graph.
    pub topology: Arc<Topology>,
    /// The traceroute source host.
    pub source: NodeId,
    /// Per-destination records, in generation order.
    pub dests: Vec<DestInfo>,
    /// Ground-truth prefix→AS map (§3's AS-level coverage substitute).
    pub as_map: AsMap,
    /// The configuration that produced this network.
    pub config: InternetConfig,
}

impl SyntheticInternet {
    /// All destination addresses (the study's "destination list").
    pub fn destination_list(&self) -> Vec<Ipv4Addr> {
        self.dests.iter().map(|d| d.addr).collect()
    }
}

/// Generate a synthetic Internet from `config`.
///
/// # Panics
/// Panics if `n_core < 2` or `n_destinations == 0`.
pub fn generate(config: &InternetConfig) -> SyntheticInternet {
    assert!(config.n_core >= 2, "need at least two core routers");
    assert!(config.n_destinations > 0, "need at least one destination");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = TopologyBuilder::new();
    let mut as_map = AsMap::new();
    let delay = config.link_delay;

    // --- Access network: S — a1 — a2 (the hops min_ttl=2 skips). ---
    let source = b.host("S", HostConfig::default());
    let a1 = b.router("a1", RouterConfig::default().with_fixed_responder());
    let a2 = b.router("a2", RouterConfig::default().with_fixed_responder());
    b.link(source, a1, delay, 0.0);
    b.link(a1, a2, delay, 0.0);
    let s_prefix = b.subnet_of(source);
    b.default_via(source, a1);
    b.default_via(a1, a2);
    b.route_via(a1, s_prefix, source);
    for node in [source, a1, a2] {
        for pfx in b.subnets_of(node) {
            as_map.insert(*pfx, Asn(1), AsTier::Source);
        }
    }

    // --- Core mesh. ---
    let core: Vec<NodeId> = (0..config.n_core)
        .map(|i| b.router(&format!("core{i}"), RouterConfig::default().with_fixed_responder()))
        .collect();
    b.link(a2, core[0], delay, 0.0);
    for i in 0..core.len() {
        for j in i + 1..core.len() {
            b.link(core[i], core[j], delay, 0.0);
        }
    }
    b.default_via(a2, core[0]);
    b.route_via(a2, s_prefix, a1);
    b.route_via(core[0], s_prefix, a2);
    for &c in &core[1..] {
        b.route_via(c, s_prefix, core[0]);
    }
    // One tier-1 AS per core router (the study crossed all nine tier-1s).
    for (i, &c) in core.iter().enumerate() {
        for pfx in b.subnets_of(c) {
            as_map.insert(*pfx, Asn(100 + i as u32), AsTier::Tier1);
        }
    }

    // --- Branches. ---
    let mut dests = Vec::with_capacity(config.n_destinations);
    for di in 0..config.n_destinations {
        let owner = core[rng.gen_range(0..core.len())];
        let first_node = b.node_count();
        let (info, head) = build_branch(&mut b, &mut rng, config, di, owner, s_prefix, delay);
        // Every node the branch created belongs to this stub AS.
        let stub_asn = Asn(1000 + di as u32);
        for node_idx in first_node..b.node_count() {
            for pfx in b.subnets_of(pt_netsim::topology::NodeId(node_idx)) {
                as_map.insert(*pfx, stub_asn, AsTier::Stub);
            }
        }
        // Core routing: every core router reaches this destination via the
        // owner; the owner hands off to the branch head.
        let dest_route = Ipv4Prefix::host(info.addr);
        for &c in &core {
            if c == owner {
                b.route_via(c, dest_route, head);
            } else {
                b.route_via(c, dest_route, owner);
            }
        }
        dests.push(info);
    }

    SyntheticInternet {
        topology: Arc::new(b.build()),
        source,
        dests,
        as_map,
        config: config.clone(),
    }
}

/// Build one destination branch hanging off `owner`. Returns the
/// destination info and the branch head node (the owner's next hop).
#[allow(clippy::too_many_arguments)]
fn build_branch(
    b: &mut TopologyBuilder,
    rng: &mut StdRng,
    config: &InternetConfig,
    di: usize,
    owner: NodeId,
    s_prefix: Ipv4Prefix,
    delay: SimDuration,
) -> (DestInfo, NodeId) {
    let mut truth = DestTruth::default();
    let mut chain: Vec<NodeId> = Vec::new();
    let loss = config.link_loss;

    // Per-branch asymmetric return path: every link on the branch gets
    // extra reverse-direction delay, skewing RTTs without touching hop
    // counts. Drawn only when the knob is on, so fault-free configs
    // spend no RNG state and generate byte-identical networks.
    if config.asym_return > 0.0 && rng.gen_bool(config.asym_return) {
        truth.asym_return = true;
    }
    let back = if truth.asym_return {
        SimDuration::from_nanos(delay.nanos() + config.asym_extra_delay.nanos())
    } else {
        delay
    };

    // A branch router, possibly silent, possibly ICMP-rate-limited
    // (the latter drawn here so `truth` keeps count).
    fn plant_router(
        b: &mut TopologyBuilder,
        rng: &mut StdRng,
        config: &InternetConfig,
        truth: &mut DestTruth,
        name: String,
        silent: bool,
    ) -> NodeId {
        let cfg = if silent {
            RouterConfig::silent()
        } else if config.rate_limited_router > 0.0 && rng.gen_bool(config.rate_limited_router) {
            truth.rate_limited_routers += 1;
            RouterConfig::rate_limited(config.rate_limit_interval, config.rate_limit_burst)
                .with_fixed_responder()
        } else {
            RouterConfig::default().with_fixed_responder()
        };
        b.router(&name, cfg)
    }

    // Plain chain part.
    let chain_len = rng.gen_range(config.branch_len_min..=config.branch_len_max);
    let mut prev = owner;
    for i in 0..chain_len {
        let silent = rng.gen_bool(config.silent_router);
        if silent {
            truth.silent_routers += 1;
        }
        let r = plant_router(b, rng, config, &mut truth, format!("d{di}-t{i}"), silent);
        b.link_asym(prev, r, delay, back, loss);
        b.route_via(r, s_prefix, prev);
        if prev != owner {
            b.default_via(prev, r);
        }
        chain.push(r);
        prev = r;
    }
    let head = chain[0];

    // Optional MPLS tunnel: a run of interior routers that decrement
    // TTL without sourcing Time Exceeded. Spliced *before* the diamond
    // so a walker that abandons inside the tunnel never sees what lies
    // beyond — the recovery the adaptive walker must make.
    if config.mpls_tunnel > 0.0 && rng.gen_bool(config.mpls_tunnel) {
        truth.mpls_hops = config.mpls_run_len as u8;
        for s in 0..config.mpls_run_len {
            let r = b.router(&format!("d{di}-m{s}"), RouterConfig::mpls_interior());
            b.link_asym(prev, r, delay, back, loss);
            b.route_via(r, s_prefix, prev);
            if prev != owner {
                b.default_via(prev, r);
            }
            chain.push(r);
            prev = r;
        }
    }

    // Optional UDP-dropping firewall, also ahead of the diamond: a
    // UDP-only walker dies here with trailing stars; TCP/ICMP pass.
    if config.udp_filter > 0.0 && rng.gen_bool(config.udp_filter) {
        truth.udp_filtered = true;
        let f = b.router(&format!("d{di}-W"), RouterConfig::udp_filter().with_fixed_responder());
        b.link_asym(prev, f, delay, back, loss);
        b.route_via(f, s_prefix, prev);
        if prev != owner {
            b.default_via(prev, f);
        }
        chain.push(f);
        prev = f;
    }

    // Optional load-balanced diamond.
    let lb_roll: f64 = rng.gen();
    let lb_kind = if lb_roll < config.per_flow_lb {
        truth.per_flow_lb = true;
        Some(BalancerKind::PerFlow(config.flow_policy))
    } else if lb_roll < config.per_flow_lb + config.per_packet_lb {
        truth.per_packet_lb = true;
        Some(BalancerKind::PerPacket)
    } else {
        None
    };
    if let Some(kind) = lb_kind {
        let shape: f64 = rng.gen();
        let delta: usize = if shape < config.lb_equal_weight {
            0
        } else if shape < config.lb_equal_weight + config.lb_delta1_weight {
            1
        } else {
            2
        };
        truth.lb_delta = delta as u8;
        let width = if rng.gen_bool(config.lb_three_way) { 3 } else { 2 };
        truth.lb_width = width as u8;
        // L balances over `width` parallel paths; the first path has one
        // router, the others one or (first alternate) 1 + delta.
        let l = plant_router(b, rng, config, &mut truth, format!("d{di}-L"), false);
        b.link_asym(prev, l, delay, back, loss);
        b.route_via(l, s_prefix, prev);
        if prev != owner {
            b.default_via(prev, l);
        }
        chain.push(l);
        let merge = plant_router(b, rng, config, &mut truth, format!("d{di}-M"), false);
        let mut heads = Vec::new();
        for w in 0..width {
            let len = if w == 1 { 1 + delta } else { 1 };
            let mut p = l;
            for s in 0..len {
                let r = plant_router(b, rng, config, &mut truth, format!("d{di}-b{w}x{s}"), false);
                b.link_asym(p, r, delay, back, loss);
                b.route_via(r, s_prefix, p);
                if p != l {
                    b.default_via(p, r);
                }
                if p == l {
                    heads.push(r);
                }
                p = r;
            }
            b.link_asym(p, merge, delay, back, loss);
            b.default_via(p, merge);
            if w == 0 {
                b.route_via(merge, s_prefix, p);
            }
        }
        b.balanced_route(l, Ipv4Prefix::DEFAULT, kind, &heads);
        chain.push(merge);
        prev = merge;
    }

    // Optional zero-TTL forwarder followed by a normal router (so the
    // "loop" address exists downstream).
    if rng.gen_bool(config.zero_ttl) {
        truth.zero_ttl = true;
        let f = b.router(&format!("d{di}-F"), RouterConfig::zero_ttl_forwarder());
        b.link_asym(prev, f, delay, back, loss);
        b.route_via(f, s_prefix, prev);
        if prev != owner {
            b.default_via(prev, f);
        }
        chain.push(f);
        prev = f;
        let after = plant_router(b, rng, config, &mut truth, format!("d{di}-Fa"), false);
        b.link_asym(prev, after, delay, back, loss);
        b.route_via(after, s_prefix, prev);
        b.default_via(prev, after);
        chain.push(after);
        prev = after;
    }

    // Optional broken-forwarding router: the trace never passes it.
    if rng.gen_bool(config.broken) {
        truth.broken = true;
        let u =
            b.router(&format!("d{di}-U"), RouterConfig::broken_forwarding(UnreachableCode::Host));
        b.link_asym(prev, u, delay, back, loss);
        b.route_via(u, s_prefix, prev);
        if prev != owner {
            b.default_via(prev, u);
        }
        chain.push(u);
        prev = u;
    }

    // Destination, possibly behind a NAT stub.
    let host_cfg = if rng.gen_bool(config.firewalled_dest) {
        truth.firewalled = true;
        HostConfig::firewalled()
    } else {
        HostConfig::responsive()
    };
    let dest = b.host(&format!("dest{di}"), host_cfg);
    if rng.gen_bool(config.nat) {
        truth.nat = true;
        let n = b.router(&format!("d{di}-N"), RouterConfig::default());
        b.link_asym(prev, n, delay, back, loss);
        b.route_via(n, s_prefix, prev);
        if prev != owner {
            b.default_via(prev, n);
        }
        chain.push(n);
        let inner_count = rng.gen_range(1..=3);
        let mut inner_prefixes = vec![b.subnet_of(dest)];
        let mut p = n;
        for s in 0..inner_count {
            let r = plant_router(b, rng, config, &mut truth, format!("d{di}-n{s}"), false);
            inner_prefixes.push(b.subnet_of(r));
            b.link_asym(p, r, delay, back, loss);
            b.route_via(r, s_prefix, p);
            b.default_via(p, r);
            p = r;
        }
        b.link_asym(p, dest, delay, back, loss);
        b.default_via(p, dest);
        b.default_via(dest, p);
        // N's public face is its upstream interface.
        let public = b.iface_addr(n, 0);
        let mut cfg = RouterConfig::nat_gateway(public, inner_prefixes);
        cfg.responder = pt_netsim::node::ResponderAddr::Fixed;
        b.set_router_config(n, cfg);
    } else {
        b.link_asym(prev, dest, delay, back, loss);
        b.default_via(prev, dest);
        b.default_via(dest, prev);
    }

    let addr = b.addr_of(dest);
    (DestInfo { addr, host: dest, truth, chain }, head)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&InternetConfig::tiny(7));
        let b = generate(&InternetConfig::tiny(7));
        assert_eq!(a.topology.len(), b.topology.len());
        assert_eq!(a.destination_list(), b.destination_list());
        let ta: Vec<_> = a.dests.iter().map(|d| d.truth).collect();
        let tb: Vec<_> = b.dests.iter().map(|d| d.truth).collect();
        assert_eq!(ta, tb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&InternetConfig::tiny(7));
        let b = generate(&InternetConfig::tiny(8));
        let ta: Vec<_> = a.dests.iter().map(|d| d.truth).collect();
        let tb: Vec<_> = b.dests.iter().map(|d| d.truth).collect();
        assert_ne!(ta, tb, "seeds must matter");
    }

    #[test]
    fn every_destination_has_a_unique_address() {
        let net = generate(&InternetConfig::tiny(3));
        let list = net.destination_list();
        let set: std::collections::HashSet<_> = list.iter().collect();
        assert_eq!(set.len(), list.len());
        assert_eq!(list.len(), 40);
    }

    #[test]
    fn truth_prevalence_tracks_config() {
        let config = InternetConfig {
            n_destinations: 2000,
            per_flow_lb: 0.5,
            per_packet_lb: 0.0,
            zero_ttl: 0.0,
            broken: 0.0,
            nat: 0.0,
            firewalled_dest: 0.0,
            silent_router: 0.0,
            ..InternetConfig::default()
        };
        let net = generate(&config);
        let with_lb = net.dests.iter().filter(|d| d.truth.per_flow_lb).count();
        let frac = with_lb as f64 / 2000.0;
        assert!((frac - 0.5).abs() < 0.05, "per-flow prevalence {frac} far from 0.5");
        assert!(net.dests.iter().all(|d| !d.truth.nat && !d.truth.broken && !d.truth.zero_ttl));
    }

    #[test]
    fn hostile_knobs_plant_all_four_faults_and_defaults_stay_clean() {
        let clean = generate(&InternetConfig::tiny(42));
        assert!(
            clean.dests.iter().all(|d| !d.truth.any_hostile_fault()),
            "fault-free configs must plant no hostile faults"
        );
        let hostile = generate(&InternetConfig::hostile(42));
        let rate = hostile.dests.iter().filter(|d| d.truth.rate_limited_routers > 0).count();
        let mpls = hostile.dests.iter().filter(|d| d.truth.mpls_hops > 0).count();
        let filt = hostile.dests.iter().filter(|d| d.truth.udp_filtered).count();
        let asym = hostile.dests.iter().filter(|d| d.truth.asym_return).count();
        assert!(rate > 0, "no rate limiters planted");
        assert!(mpls > 0, "no MPLS tunnels planted");
        assert!(filt > 0, "no UDP filters planted");
        assert!(asym > 0, "no asymmetric returns planted");
        // Determinism holds with the hostile knobs on.
        let again = generate(&InternetConfig::hostile(42));
        let ta: Vec<_> = hostile.dests.iter().map(|d| d.truth).collect();
        let tb: Vec<_> = again.dests.iter().map(|d| d.truth).collect();
        assert_eq!(ta, tb);
    }

    #[test]
    fn hostile_branches_still_terminate_traces() {
        // Every fault on at once: traces must still halt (terminal,
        // star limit, or max TTL) — the simulator must never hang.
        let config = InternetConfig {
            seed: 23,
            rate_limited_router: 0.5,
            mpls_tunnel: 0.5,
            udp_filter: 0.5,
            asym_return: 0.5,
            ..InternetConfig::tiny(23)
        };
        let net = generate(&config);
        let mut tx = pt_netsim::SimTransport::new(
            pt_netsim::Simulator::new(net.topology.clone(), 5),
            net.source,
        );
        for (i, d) in net.dests.iter().enumerate() {
            let mut strat = pt_core::ParisUdp::new(41000 + i as u16, 50000);
            let route =
                pt_core::trace(&mut tx, &mut strat, d.addr, pt_core::TraceConfig::default());
            assert!(!route.hops.is_empty(), "destination {i}");
        }
    }

    #[test]
    fn probes_reach_every_plain_destination() {
        // With all anomalies off, every destination must be cleanly
        // traceable — validating branch wiring and routing end to end.
        let config = InternetConfig {
            seed: 11,
            n_destinations: 30,
            per_flow_lb: 0.0,
            per_packet_lb: 0.0,
            zero_ttl: 0.0,
            broken: 0.0,
            nat: 0.0,
            firewalled_dest: 0.0,
            silent_router: 0.0,
            link_loss: 0.0,
            ..InternetConfig::default()
        };
        let net = generate(&config);
        let mut tx = pt_netsim::SimTransport::new(
            pt_netsim::Simulator::new(net.topology.clone(), 5),
            net.source,
        );
        for (i, d) in net.dests.iter().enumerate() {
            let mut strat = pt_core::ParisUdp::new(40000 + i as u16, 50000);
            let route =
                pt_core::trace(&mut tx, &mut strat, d.addr, pt_core::TraceConfig::default());
            assert!(
                route.reached_destination(),
                "destination {i} ({}) unreachable: {:?}",
                d.addr,
                route.addresses()
            );
        }
    }

    #[test]
    fn anomalous_branches_still_terminate_traces() {
        // With every anomaly cranked up, traces must still halt (terminal,
        // star limit, or max TTL) — no infinite loops in the simulator.
        let config = InternetConfig {
            seed: 13,
            n_destinations: 60,
            per_flow_lb: 0.5,
            per_packet_lb: 0.2,
            zero_ttl: 0.2,
            broken: 0.2,
            nat: 0.2,
            firewalled_dest: 0.3,
            silent_router: 0.1,
            ..InternetConfig::default()
        };
        let net = generate(&config);
        let mut tx = pt_netsim::SimTransport::new(
            pt_netsim::Simulator::new(net.topology.clone(), 5),
            net.source,
        );
        for (i, d) in net.dests.iter().enumerate() {
            let mut strat = pt_core::ClassicUdp::new(i as u16);
            let route =
                pt_core::trace(&mut tx, &mut strat, d.addr, pt_core::TraceConfig::default());
            assert!(!route.hops.is_empty(), "destination {i}");
        }
    }

    #[test]
    fn as_map_labels_every_interface() {
        use crate::aslabel::AsTier;
        let net = generate(&InternetConfig::tiny(19));
        // Every interface address in the topology maps to some AS, and
        // the tiers come out right: source for S-side, tier-1 for cores,
        // stub for destinations.
        for node in &net.topology.nodes {
            for iface in &node.ifaces {
                let asn = net.as_map.lookup(iface.addr);
                assert!(asn.is_some(), "unmapped interface {} on {}", iface.addr, node.name);
            }
        }
        let s_addr = net.topology.node(net.source).primary_addr();
        let s_asn = net.as_map.lookup(s_addr).unwrap();
        assert_eq!(net.as_map.tier(s_asn), Some(AsTier::Source));
        for d in &net.dests {
            let asn = net.as_map.lookup(d.addr).unwrap();
            assert_eq!(net.as_map.tier(asn), Some(AsTier::Stub), "dest {}", d.addr);
        }
        // One tier-1 per core router.
        assert_eq!(net.as_map.tier1s().len(), net.config.n_core);
        // Distinct stubs have distinct AS numbers.
        let stub_asns: std::collections::HashSet<_> =
            net.dests.iter().map(|d| net.as_map.lookup(d.addr).unwrap()).collect();
        assert_eq!(stub_asns.len(), net.dests.len());
    }

    #[test]
    fn nat_branches_rewrite_sources() {
        let config = InternetConfig {
            seed: 17,
            n_destinations: 30,
            per_flow_lb: 0.0,
            per_packet_lb: 0.0,
            zero_ttl: 0.0,
            broken: 0.0,
            nat: 1.0,
            firewalled_dest: 0.0,
            silent_router: 0.0,
            link_loss: 0.0,
            ..InternetConfig::default()
        };
        let net = generate(&config);
        assert!(net.dests.iter().all(|d| d.truth.nat));
        let mut tx = pt_netsim::SimTransport::new(
            pt_netsim::Simulator::new(net.topology.clone(), 5),
            net.source,
        );
        // Each NAT'd destination yields a trailing loop on the gateway's
        // public address.
        let mut loops = 0;
        for (i, d) in net.dests.iter().enumerate() {
            let mut strat = pt_core::ParisUdp::new(40000 + i as u16, 50000);
            let route =
                pt_core::trace(&mut tx, &mut strat, d.addr, pt_core::TraceConfig::default());
            let addrs = route.addresses();
            let repeated = addrs.windows(2).any(|w| w[0].is_some() && w[0] == w[1]);
            if repeated {
                loops += 1;
            }
        }
        assert_eq!(loops, 30, "every NAT stub must produce an address-rewriting loop");
    }
}
