//! # pt-topogen — synthetic-Internet generation
//!
//! Stands in for the real Internet of the paper's study (§3): a source
//! behind a two-router access network (the university network the study
//! skips with `min_ttl = 2`), a small full-mesh core (the tier-1s), and
//! one branch per destination carrying a configurable mix of the
//! behaviours the paper blames for anomalies — per-flow and per-packet
//! load balancers over equal- and unequal-length parallel paths, zero-TTL
//! forwarders, broken-forwarding routers, NAT'd stubs, silent routers,
//! firewalled destinations and lossy links.
//!
//! Every generated artifact is recorded in a per-destination
//! [`DestTruth`], so experiments can validate the anomaly classifiers
//! against ground truth — something the paper's authors could only
//! approximate on the real Internet.

#![warn(missing_docs)]

pub mod aslabel;
pub mod internet;

pub use aslabel::{coverage, AsCoverage, AsMap, AsTier, Asn};
pub use internet::{generate, DestInfo, DestTruth, InternetConfig, SyntheticInternet};
