//! Property tests for the loss-adjusted MDA stopping rule.
//!
//! The PR-6 loss model must be a pure widening of the published rule:
//! a lost probe adds exactly one probe to the send budget (it observed
//! nothing), and with no loss the budget must reduce to the published
//! table. These properties pin the "lost probes widen, never narrow,
//! the hypothesis" contract over the whole parameter space, not just
//! the handful of points the unit tests check.

use proptest::prelude::*;

use pt_mda::{probes_to_rule_out, probes_to_rule_out_lossy};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Zero loss is the published rule, exactly.
    #[test]
    fn zero_loss_reduces_to_the_base_rule(k in 1usize..=12, alpha in 0.001f64..0.5) {
        prop_assert_eq!(probes_to_rule_out_lossy(k, alpha, 0), probes_to_rule_out(k, alpha));
    }

    /// The budget is monotone (strictly increasing, by exactly one per
    /// lost probe) in the observed loss: loss can only widen the
    /// hypothesis, never narrow it.
    #[test]
    fn monotone_in_loss(k in 1usize..=12, alpha in 0.001f64..0.5, lost in 0usize..64) {
        let n = probes_to_rule_out_lossy(k, alpha, lost);
        let n_more = probes_to_rule_out_lossy(k, alpha, lost + 1);
        prop_assert!(n_more > n, "loss must widen: k={k} lost={lost}: {n} -> {n_more}");
        prop_assert_eq!(n_more, n + 1, "each lost probe costs exactly one extra send");
    }

    /// Loss never changes the rule's shape in k: at any fixed loss the
    /// budget still grows with the number of observed interfaces.
    #[test]
    fn still_monotone_in_k_under_loss(k in 1usize..=11, alpha in 0.001f64..0.5, lost in 0usize..64) {
        prop_assert!(
            probes_to_rule_out_lossy(k + 1, alpha, lost) > probes_to_rule_out_lossy(k, alpha, lost)
        );
    }
}

/// The anchor the properties hang off: at `alpha = 0.05` and zero loss
/// the budget is the MDA paper's published table.
#[test]
fn lossless_budget_is_the_published_table() {
    let table = [6usize, 11, 16, 21, 27, 33, 38, 44];
    for (i, expected) in table.iter().enumerate() {
        assert_eq!(probes_to_rule_out_lossy(i + 1, 0.05, 0), *expected, "k = {}", i + 1);
    }
}
