//! The MDA stopping rule.
//!
//! After observing `k` distinct interfaces at a hop, how many probes
//! (each carrying a fresh, uniformly hashed flow identifier) must *all*
//! land on the seen set before a `k + 1`-th interface is ruled out at
//! confidence `1 - alpha`?
//!
//! The published rule (the MDA follow-up to this paper's §6 future
//! work) computes the exact probability that `n` uniform draws over
//! `k + 1` interfaces miss at least one of them, by inclusion–exclusion
//! over the missed subset, and picks the smallest `n` that pushes that
//! probability under `alpha`. At `alpha = 0.05` this yields the paper's
//! table: 6, 11, 16, 21, 27, 33, 38, 44 for `k = 1..=8` (the simpler
//! single-interface bound `(k/(k+1))^n <= alpha` would understate the
//! requirement by one or two probes per hop and miss real interfaces).

/// Probability that `n` uniform random draws over `m` interfaces leave
/// at least one interface unhit — the miss probability the stopping
/// rule bounds. Exact inclusion–exclusion over the set of missed
/// interfaces.
fn miss_probability(m: usize, n: usize) -> f64 {
    debug_assert!(m >= 2);
    let mf = m as f64;
    let mut p = 0.0;
    let mut binom = 1.0; // C(m, j), updated incrementally
    for j in 1..m {
        binom *= (m - j + 1) as f64 / j as f64;
        let term = binom * ((mf - j as f64) / mf).powi(n as i32);
        if j % 2 == 1 {
            p += term;
        } else {
            p -= term;
        }
    }
    p
}

/// Stopping rule: after observing `k` distinct interfaces at a hop, the
/// total number of uniformly hashed probes that rules out a `k + 1`-th
/// interface with probability at least `1 - alpha`.
///
/// Monotonically increasing in `k`, decreasing in `alpha`; matches the
/// MDA paper's published table (6, 11, 16, 21, 27, 33, 38, 44 for
/// `k = 1..=8` at `alpha = 0.05`).
///
/// # Panics
/// Panics unless `k >= 1` and `alpha` is in `(0, 1)`.
pub fn probes_to_rule_out(k: usize, alpha: f64) -> usize {
    assert!(k >= 1, "need at least one observed interface");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
    let m = k + 1;
    let mut n = 1;
    while miss_probability(m, n) > alpha {
        n += 1;
    }
    n
}

/// Loss-adjusted stopping rule: the number of probes to *send* when
/// `lost` of them are already known to have drawn no answer.
///
/// A lost probe observes nothing — it neither hit a seen interface nor
/// revealed a new one — so it contributes zero evidence toward ruling
/// out a `k + 1`-th interface. Exactly `n` *answered* probes are still
/// required, where `n = probes_to_rule_out(k, alpha)`; the send budget
/// therefore widens by precisely the observed loss:
/// `P(miss | s sent, lost lost) = miss_probability(k + 1, s - lost)`,
/// which drops under `alpha` first at `s = n + lost`. The hypothesis
/// can only widen, never narrow, under loss.
///
/// # Panics
/// Same domain as [`probes_to_rule_out`]: `k >= 1`, `alpha` in `(0, 1)`.
pub fn probes_to_rule_out_lossy(k: usize, alpha: f64, lost: usize) -> usize {
    probes_to_rule_out(k, alpha).saturating_add(lost)
}

/// A memo of [`probes_to_rule_out`] values for one `alpha`, so the
/// engine's per-probe commit step never recomputes the
/// inclusion–exclusion sum. Grows lazily; [`RuleTable::reset`] prefills
/// the common widths so steady-state walks stay allocation-free.
#[derive(Debug, Default)]
pub(crate) struct RuleTable {
    alpha: f64,
    by_k: Vec<usize>, // by_k[k] = probes_to_rule_out(k, alpha); by_k[0] unused
}

impl RuleTable {
    /// Number of `k` values prefilled on reset — wider than any balancer
    /// the generator plants, so lazy growth never fires in steady state.
    const PREFILL: usize = 16;

    pub(crate) fn reset(&mut self, alpha: f64) {
        if self.alpha == alpha && self.by_k.len() > Self::PREFILL {
            return;
        }
        self.alpha = alpha;
        self.by_k.clear();
        self.by_k.push(0);
        for k in 1..=Self::PREFILL {
            self.by_k.push(probes_to_rule_out(k, alpha));
        }
    }

    pub(crate) fn get(&mut self, k: usize) -> usize {
        debug_assert!(k >= 1);
        while self.by_k.len() <= k {
            self.by_k.push(probes_to_rule_out(self.by_k.len(), self.alpha));
        }
        self.by_k[k]
    }

    /// The loss-adjusted send budget ([`probes_to_rule_out_lossy`]):
    /// memoized base requirement plus the hop's observed loss. Same
    /// allocation behaviour as [`RuleTable::get`].
    pub(crate) fn get_lossy(&mut self, k: usize, lost: usize) -> usize {
        self.get(k).saturating_add(lost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_published_mda_table() {
        // The MDA paper's stopping points at 95% confidence.
        let table = [6, 11, 16, 21, 27, 33, 38, 44];
        for (k, expected) in table.iter().enumerate() {
            assert_eq!(probes_to_rule_out(k + 1, 0.05), *expected, "k = {} at alpha = 0.05", k + 1);
        }
    }

    #[test]
    fn monotonically_increasing_in_k() {
        for alpha in [0.10, 0.05, 0.01, 0.001] {
            let mut prev = 0;
            for k in 1..=16 {
                let n = probes_to_rule_out(k, alpha);
                assert!(n > prev, "rule must grow with k: k={k} alpha={alpha} {prev} -> {n}");
                prev = n;
            }
        }
    }

    #[test]
    fn decreasing_in_alpha() {
        // Tighter confidence (smaller alpha) demands more probes.
        for k in 1..=8 {
            let alphas = [0.2, 0.1, 0.05, 0.01, 0.001];
            for pair in alphas.windows(2) {
                let loose = probes_to_rule_out(k, pair[0]);
                let tight = probes_to_rule_out(k, pair[1]);
                assert!(
                    tight >= loose,
                    "k={k}: alpha {} -> {} probes, alpha {} -> {} probes",
                    pair[0],
                    loose,
                    pair[1],
                    tight
                );
            }
            assert!(probes_to_rule_out(k, 0.001) > probes_to_rule_out(k, 0.2));
        }
    }

    #[test]
    fn rule_satisfies_its_own_bound() {
        // n(k) pushes the exact miss probability under alpha, and n(k)-1
        // does not — i.e. the returned value is minimal.
        for k in 1..=10 {
            for alpha in [0.1, 0.05, 0.01] {
                let n = probes_to_rule_out(k, alpha);
                assert!(miss_probability(k + 1, n) <= alpha);
                if n > 1 {
                    assert!(
                        miss_probability(k + 1, n - 1) > alpha,
                        "k={k} alpha={alpha} not minimal"
                    );
                }
            }
        }
    }

    #[test]
    fn table_memo_agrees_with_direct_computation() {
        let mut t = RuleTable::default();
        t.reset(0.05);
        for k in 1..=24 {
            assert_eq!(t.get(k), probes_to_rule_out(k, 0.05));
        }
        t.reset(0.01);
        assert_eq!(t.get(1), probes_to_rule_out(1, 0.01));
    }
}
