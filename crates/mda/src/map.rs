//! The multipath discovery result: per-hop interface sets, the directed
//! interface-level DAG recovered from shared flow identifiers, and the
//! derived balancer metrics (width, branch-length delta,
//! per-flow/per-packet classification).

use std::net::Ipv4Addr;

/// How a balanced hop spreads traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BalancerClass {
    /// Fewer than two interfaces answered at the hop — nothing to
    /// classify.
    NotBalanced,
    /// One flow id always lands on one interface.
    PerFlow,
    /// Even a fixed flow id scatters across interfaces.
    PerPacket,
    /// The fixed-flow re-probe batch did not get enough answers to tell.
    Undetermined,
}

/// One hop's enumeration result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HopInterfaces {
    /// The TTL probed.
    pub ttl: u8,
    /// All interfaces discovered at this hop, sorted.
    pub interfaces: Vec<Ipv4Addr>,
    /// The committed flow evidence: `(flow id, responder)` for every
    /// flow the stopping rule consumed that got an answer, in flow
    /// order. Links between adjacent hops are derived from flows that
    /// appear in both.
    pub flows: Vec<(u16, Ipv4Addr)>,
    /// Probes spent on this hop (including retries, the fixed-flow
    /// classification batch, and any speculative probes a wider window
    /// launched past the stopping point).
    pub probes_sent: usize,
    /// Committed flows that never answered, even after retries. A
    /// silent router inside a balanced hop shows up here — and blocks
    /// [`HopInterfaces::converged`] — instead of being silently dropped
    /// and under-counting the hop's width.
    pub stars: usize,
    /// Whether the stopping rule was satisfied on a loss-free prefix:
    /// `true` means every committed flow answered and the rule ruled
    /// out a further interface at confidence `1 - alpha`. `false`
    /// means the width is a lower bound only (stars observed, flow
    /// budget exhausted, or an all-star hop).
    pub converged: bool,
    /// The hop's balancer classification (from the inline fixed-flow
    /// re-probe batch; [`BalancerClass::NotBalanced`] below width 2).
    pub class: BalancerClass,
}

impl HopInterfaces {
    /// Number of distinct interfaces observed at this hop.
    pub fn width(&self) -> usize {
        self.interfaces.len()
    }

    /// No interface answered at this hop at all.
    pub fn all_stars(&self) -> bool {
        self.interfaces.is_empty()
    }
}

/// A directed interface-level link: the flow that saw `from` at
/// `from_ttl` saw `to` at `from_ttl + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct DagLink {
    /// TTL of the upstream interface.
    pub from_ttl: u8,
    /// Upstream interface.
    pub from: Ipv4Addr,
    /// Downstream interface (at `from_ttl + 1`).
    pub to: Ipv4Addr,
}

/// The multipath map toward one destination: hop sets plus the directed
/// DAG between adjacent hops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultipathMap {
    /// The destination traced.
    pub destination: Ipv4Addr,
    /// Per-hop records, starting at TTL 1.
    pub hops: Vec<HopInterfaces>,
    /// Directed links between interfaces at adjacent hops, discovered
    /// by reusing flow identifiers across TTLs; sorted and deduplicated.
    /// Under a per-packet balancer a flow id does not pin a path, so
    /// links there describe *observed* packet trajectories, not a
    /// stable per-flow routing (the hop's
    /// [`BalancerClass::PerPacket`] flags this).
    pub links: Vec<DagLink>,
    /// Total probes spent on the walk (speculation included).
    pub total_probes: usize,
    /// A committed probe was answered by the destination itself.
    pub reached: bool,
    /// A watchdog budget (probe count or virtual time) closed the
    /// launch gate while enumeration still wanted probes: the map is a
    /// valid but incomplete prefix of the full DAG, and widths are
    /// lower bounds everywhere, converged or not.
    pub degraded: bool,
}

impl MultipathMap {
    /// Hops where more than one interface answered — load-balanced hops.
    pub fn balanced_hops(&self) -> impl Iterator<Item = &HopInterfaces> {
        self.hops.iter().filter(|h| h.width() >= 2)
    }

    /// The maximum *confident* width: the widest hop whose stopping
    /// rule converged on a loss-free prefix. A hop that saw stars or
    /// ran out of budget never converged, so its (lower-bound) width is
    /// deliberately excluded — ask [`MultipathMap::max_observed_width`]
    /// for the optimistic figure.
    pub fn max_width(&self) -> usize {
        self.hops.iter().filter(|h| h.converged).map(HopInterfaces::width).max().unwrap_or(0)
    }

    /// The maximum width observed at any hop, converged or not.
    pub fn max_observed_width(&self) -> usize {
        self.hops.iter().map(HopInterfaces::width).max().unwrap_or(0)
    }

    /// Aggregate balancer classification for the destination: per-packet
    /// dominates (one per-packet hop makes flow evidence unreliable),
    /// then per-flow, then undetermined; `NotBalanced` when no hop shows
    /// two interfaces.
    pub fn classification(&self) -> BalancerClass {
        let mut class = BalancerClass::NotBalanced;
        for hop in self.balanced_hops() {
            match hop.class {
                BalancerClass::PerPacket => return BalancerClass::PerPacket,
                BalancerClass::PerFlow => class = BalancerClass::PerFlow,
                BalancerClass::Undetermined => {
                    if class == BalancerClass::NotBalanced {
                        class = BalancerClass::Undetermined;
                    }
                }
                BalancerClass::NotBalanced => {}
            }
        }
        class
    }

    /// Downstream interfaces linked from `(from_ttl, from)`.
    pub fn successors(&self, from_ttl: u8, from: Ipv4Addr) -> impl Iterator<Item = Ipv4Addr> + '_ {
        self.links.iter().filter(move |l| l.from_ttl == from_ttl && l.from == from).map(|l| l.to)
    }

    /// The discovered branch-length delta: parallel branches of unequal
    /// length make the convergence interface (the diamond's merge
    /// point) appear at several TTLs — at `t` for flows hashed to the
    /// short branch and `t + delta` for the long one. The spread of the
    /// widest-spread such interface recovers `delta`; equal-length
    /// diamonds (and unbalanced paths) report 0.
    ///
    /// Loop artifacts are excluded: an interface one *single* flow saw
    /// at two TTLs (NAT address rewriting, zero-TTL forwarding, genuine
    /// forwarding loops) repeats *within* a path rather than across
    /// branches, so it says nothing about branch asymmetry. Under a
    /// per-packet balancer flows do not pin paths — there the raw
    /// spread is used (per-packet walks have no per-flow loop
    /// signature to confuse it with).
    pub fn discovered_delta(&self) -> u8 {
        let strict = self.classification() != BalancerClass::PerPacket;
        let mut best = 0u8;
        for (i, hop) in self.hops.iter().enumerate() {
            for &addr in &hop.interfaces {
                // Process each address at its first appearance only.
                if self.hops[..i].iter().any(|h| h.interfaces.contains(&addr)) {
                    continue;
                }
                let Some(last) = self.hops.iter().rposition(|h| h.interfaces.contains(&addr))
                else {
                    continue;
                };
                if last == i {
                    continue;
                }
                let spread = self.hops[last].ttl.saturating_sub(hop.ttl);
                if spread <= best {
                    continue;
                }
                if strict && self.addr_repeats_within_a_flow(addr) {
                    continue;
                }
                best = spread;
            }
        }
        best
    }

    /// Whether any single flow observed `addr` at two different hops —
    /// the per-flow signature of a loop (rewriting, zero-TTL
    /// forwarding), as opposed to cross-branch convergence.
    fn addr_repeats_within_a_flow(&self, addr: Ipv4Addr) -> bool {
        for (i, hop) in self.hops.iter().enumerate() {
            for &(flow, a) in &hop.flows {
                if a == addr
                    && self.hops[i + 1..].iter().any(|later| later.flows.contains(&(flow, addr)))
                {
                    return true;
                }
            }
        }
        false
    }

    /// A canonical rendering of the *discovered topology*: hop sets
    /// (with star/convergence/classification state), flow evidence,
    /// links and reachability — everything except probe counts and
    /// timing, which legitimately vary with the probing window. Two
    /// walks discovered the identical DAG iff their digests are
    /// byte-identical; the windowed-vs-sequential equivalence tests
    /// diff this string.
    pub fn dag_digest(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "destination: {} reached: {} degraded: {}",
            self.destination, self.reached, self.degraded
        );
        for hop in &self.hops {
            let _ = write!(
                out,
                "ttl {:>2}: [{}] stars={} converged={} class={:?} flows=[",
                hop.ttl,
                join(hop.interfaces.iter()),
                hop.stars,
                hop.converged,
                hop.class,
            );
            for (i, (flow, addr)) in hop.flows.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                let _ = write!(out, "{flow}:{addr}");
            }
            out.push_str("]\n");
        }
        for l in &self.links {
            let _ = writeln!(out, "link ttl {:>2}: {} -> {}", l.from_ttl, l.from, l.to);
        }
        let _ = writeln!(
            out,
            "width: {} observed: {} delta: {} class: {:?}",
            self.max_width(),
            self.max_observed_width(),
            self.discovered_delta(),
            self.classification()
        );
        out
    }
}

fn join<'a>(addrs: impl Iterator<Item = &'a Ipv4Addr>) -> String {
    let mut s = String::new();
    for (i, a) in addrs.enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&a.to_string());
    }
    s
}
