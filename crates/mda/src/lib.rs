//! # pt-mda — windowed multipath discovery
//!
//! The paper's §6 future work: "algorithms to automatically find all
//! interfaces of a given load balancer, and to differentiate per-flow
//! from per-packet load balancers" — realized a year later as the
//! Multipath Detection Algorithm (MDA). This crate implements it as a
//! campaign-grade engine over the same [`pt_core::Transport`] the
//! tracer uses:
//!
//! * [`discover`] / [`discover_with`] walk the TTL ladder varying the
//!   *flow identifier* (UDP source port) per probe until the exact
//!   published stopping rule ([`probes_to_rule_out`]) says every
//!   interface at a hop has been seen with high probability — keeping
//!   up to [`MdaConfig::window`] probes outstanding, reusing flow ids
//!   across TTLs to recover the directed interface-level **DAG**
//!   ([`MultipathMap::links`]), resolving unequal-length diamonds via
//!   the merge interface's TTL spread
//!   ([`MultipathMap::discovered_delta`]), and classifying every
//!   balanced hop per-flow vs per-packet inline with a fixed-flow
//!   re-probe batch;
//! * non-responses are first-class: a silent interface inside a
//!   balanced hop surfaces as per-hop stars and non-convergence
//!   ([`HopInterfaces::stars`]) instead of silently shrinking the
//!   hop's width;
//! * [`classify_balancer`] re-probes one hop with a fixed flow
//!   identifier standalone, for callers that already hold a map.

#![warn(missing_docs)]

mod engine;
mod map;
mod rule;

pub use engine::{classify_balancer, discover, discover_with, MdaConfig, MdaProtocol, MdaScratch};
pub use map::{BalancerClass, DagLink, HopInterfaces, MultipathMap};
pub use rule::{probes_to_rule_out, probes_to_rule_out_lossy};

#[cfg(test)]
mod tests {
    use super::*;
    use pt_netsim::node::BalancerKind;
    use pt_netsim::time::SimDuration;
    use pt_netsim::{scenarios, SimTransport, Simulator};
    use pt_wire::FlowPolicy;

    fn transport(sc: &scenarios::Scenario, seed: u64) -> SimTransport {
        SimTransport::new(Simulator::new(sc.topology.clone(), seed), sc.source)
    }

    #[test]
    fn enumerates_fig6_widths_and_links() {
        let sc = scenarios::fig6(BalancerKind::PerFlow(FlowPolicy::FiveTuple));
        let mut tx = transport(&sc, 5);
        let map = discover(&mut tx, sc.destination, &MdaConfig::default());
        // Hop 7: A, B, C; hop 8: D, E (the diamond's two layers).
        assert_eq!(map.hops[6].interfaces, vec![sc.a("A"), sc.a("B"), sc.a("C")]);
        assert_eq!(map.hops[7].interfaces, vec![sc.a("D"), sc.a("E")]);
        assert_eq!(map.max_width(), 3);
        assert_eq!(map.balanced_hops().count(), 2);
        assert!(map.hops.iter().all(|h| h.converged), "stopping rule satisfied everywhere");
        assert!(map.hops.iter().all(|h| h.stars == 0), "healthy scenario has no loss");
        assert!(map.reached);
        // The DAG, not just hop sets: C feeds only D; G is fed by both.
        let c_succ: Vec<_> = map.successors(7, sc.a("C")).collect();
        assert_eq!(c_succ, vec![sc.a("D")], "C reaches D only");
        let g_pred: Vec<_> =
            map.links.iter().filter(|l| l.to == sc.a("G")).map(|l| l.from).collect();
        assert!(g_pred.contains(&sc.a("D")) && g_pred.contains(&sc.a("E")), "{g_pred:?}");
        // Equal-length branches: no convergence spread.
        assert_eq!(map.discovered_delta(), 0);
        // Both balanced hops classified per-flow inline.
        for hop in map.balanced_hops() {
            assert_eq!(hop.class, BalancerClass::PerFlow, "ttl {}", hop.ttl);
        }
        assert_eq!(map.classification(), BalancerClass::PerFlow);
    }

    #[test]
    fn fig6_per_packet_is_classified_inline() {
        let sc = scenarios::fig6(BalancerKind::PerPacket);
        let mut tx = transport(&sc, 5);
        let map = discover(&mut tx, sc.destination, &MdaConfig::default());
        assert_eq!(map.classification(), BalancerClass::PerPacket);
        assert!(map.max_observed_width() >= 2);
    }

    #[test]
    fn fig1_silent_balancer_member_blocks_convergence() {
        // Fig. 1's hop 7 balances over A (responding) and B (silent):
        // only A is discoverable, and the old behavior — confidently
        // reporting width 1 after the rule fired on A alone — is the
        // "drops non-responses on the floor" bug. Stars must be
        // recorded and the hop must *not* converge.
        let sc = scenarios::fig1(BalancerKind::PerFlow(FlowPolicy::FiveTuple));
        let mut tx = transport(&sc, 31);
        let map = discover(&mut tx, sc.destination, &MdaConfig::default());
        let hop7 = &map.hops[6];
        assert_eq!(hop7.interfaces, vec![sc.a("A")]);
        assert!(hop7.stars > 0, "flows hashed to silent B must be visible as stars");
        assert!(!hop7.converged, "a hop with stars never converges");
        // Same at hop 8: D responds, C (feeding E) is silent upstream →
        // flows on the A-side path star at hop 8.
        let hop8 = &map.hops[7];
        assert_eq!(hop8.interfaces, vec![sc.a("D")]);
        assert!(!hop8.converged);
        // max_width only trusts converged hops.
        let widest_converged = map.max_width();
        assert!(
            map.hops.iter().filter(|h| !h.converged).all(|h| h.width() <= 1),
            "unconverged widths are lower bounds"
        );
        assert_eq!(widest_converged, 1, "nothing wider than 1 was *confidently* enumerated");
    }

    #[test]
    fn fig3_unequal_diamond_recovers_delta_one() {
        // Fig. 3: L balances over A (short) and B→C (long); E merges.
        // Flows hashed short see E at hop 8, long at hop 9 — the
        // convergence spread recovers delta = 1.
        let sc = scenarios::fig3(BalancerKind::PerFlow(FlowPolicy::FiveTuple));
        let mut tx = transport(&sc, 9);
        let map = discover(&mut tx, sc.destination, &MdaConfig::default());
        assert_eq!(map.hops[6].interfaces, vec![sc.a("A"), sc.a("B")]);
        assert_eq!(map.discovered_delta(), 1, "unequal branch lengths");
        assert_eq!(map.classification(), BalancerClass::PerFlow);
        assert!(map.reached);
    }

    #[test]
    fn linear_chain_is_unbalanced_and_cheap() {
        let sc = scenarios::linear(5);
        let mut tx = transport(&sc, 2);
        let config = MdaConfig::default();
        let map = discover(&mut tx, sc.destination, &config);
        assert_eq!(map.max_width(), 1);
        assert_eq!(map.balanced_hops().count(), 0);
        assert_eq!(map.classification(), BalancerClass::NotBalanced);
        assert_eq!(map.discovered_delta(), 0);
        // Every hop: 1 interface, ruled out a second with the k = 1
        // stopping point.
        let per_hop = probes_to_rule_out(1, config.alpha);
        for h in &map.hops {
            assert!(h.probes_sent <= per_hop, "hop {} used {}", h.ttl, h.probes_sent);
            assert!(h.converged);
        }
        // The chain DAG is a path: one link out of every non-last hop.
        for pair in map.hops.windows(2) {
            assert_eq!(map.successors(pair[0].ttl, pair[0].interfaces[0]).count(), 1);
        }
    }

    #[test]
    fn windowed_walk_discovers_the_sequential_dag() {
        // On deterministic scenarios the probing window is a pure
        // virtual-time knob: the discovered DAG must be byte-identical
        // at every width.
        let scenarios: Vec<(&str, scenarios::Scenario)> = vec![
            ("fig6", scenarios::fig6(BalancerKind::PerFlow(FlowPolicy::FiveTuple))),
            ("fig3", scenarios::fig3(BalancerKind::PerFlow(FlowPolicy::FiveTuple))),
            ("fig1", scenarios::fig1(BalancerKind::PerFlow(FlowPolicy::FiveTuple))),
            ("linear", scenarios::linear(6)),
        ];
        for (name, sc) in &scenarios {
            let walk = |window: u8| {
                let mut tx = transport(sc, 77);
                let config = MdaConfig { window, ..MdaConfig::default() };
                discover(&mut tx, sc.destination, &config).dag_digest()
            };
            let sequential = walk(1);
            for window in [2, 4, 8, 32] {
                assert_eq!(
                    walk(window),
                    sequential,
                    "{name}: window {window} changed the discovered DAG"
                );
            }
        }
    }

    #[test]
    fn windowed_walk_cuts_virtual_time() {
        let sc = scenarios::fig6(BalancerKind::PerFlow(FlowPolicy::FiveTuple));
        let time = |window: u8| {
            let mut tx = transport(&sc, 3);
            let config = MdaConfig { window, ..MdaConfig::default() };
            let map = discover(&mut tx, sc.destination, &config);
            assert!(map.reached);
            tx.now().as_secs_f64()
        };
        let sequential = time(1);
        let windowed = time(MdaConfig::default().window);
        assert!(
            windowed * 1.5 <= sequential,
            "window must cut virtual probing time >= 1.5x: {sequential:.3}s -> {windowed:.3}s"
        );
    }

    #[test]
    fn scratch_reuse_discovers_the_same_map() {
        let sc = scenarios::fig6(BalancerKind::PerFlow(FlowPolicy::FiveTuple));
        let config = MdaConfig::default();
        let mut scratch = MdaScratch::new();
        let mut digests = Vec::new();
        for _ in 0..3 {
            let mut tx = transport(&sc, 5);
            let map = discover_with(&mut tx, sc.destination, &config, &mut scratch);
            digests.push(map.dag_digest());
            scratch.recycle(map);
        }
        assert_eq!(digests[0], digests[1]);
        assert_eq!(digests[1], digests[2]);
    }

    #[test]
    fn classifies_per_flow_vs_per_packet_standalone() {
        let per_flow = scenarios::fig6(BalancerKind::PerFlow(FlowPolicy::FiveTuple));
        let mut tx = transport(&per_flow, 3);
        assert_eq!(
            classify_balancer(&mut tx, per_flow.destination, 7, 12, &MdaConfig::default()),
            BalancerClass::PerFlow
        );
        let per_packet = scenarios::fig6(BalancerKind::PerPacket);
        let mut tx = transport(&per_packet, 3);
        assert_eq!(
            classify_balancer(&mut tx, per_packet.destination, 7, 12, &MdaConfig::default()),
            BalancerClass::PerPacket
        );
    }

    #[test]
    fn undetermined_when_hop_never_answers() {
        // A firewalled destination swallows every probe that reaches it:
        // probing at/past its hop yields no responses at all.
        let mut b = pt_netsim::TopologyBuilder::new();
        let s = b.host("S", pt_netsim::HostConfig::default());
        let r = b.router("r", pt_netsim::node::RouterConfig::default());
        let d = b.host("D", pt_netsim::HostConfig::firewalled());
        b.link(s, r, SimDuration::from_millis(1), 0.0);
        b.link(r, d, SimDuration::from_millis(1), 0.0);
        b.default_via(s, r);
        b.default_via(r, d);
        b.default_via(d, r);
        let s_pfx = b.subnet_of(s);
        b.route_via(r, s_pfx, s);
        let dst = b.addr_of(d);
        let topo = std::sync::Arc::new(b.build());
        let mut tx = SimTransport::new(Simulator::new(topo, 1), s);
        let cfg = MdaConfig { timeout: SimDuration::from_millis(50), ..MdaConfig::default() };
        let class = classify_balancer(&mut tx, dst, 5, 4, &cfg);
        assert_eq!(class, BalancerClass::Undetermined);
    }

    #[test]
    fn probe_budget_degrades_a_walk_deterministically() {
        let sc = scenarios::fig6(BalancerKind::PerFlow(FlowPolicy::FiveTuple));
        let walk = |budget: usize| {
            let mut tx = transport(&sc, 5);
            let config = MdaConfig { probe_budget: budget, ..MdaConfig::default() };
            discover(&mut tx, sc.destination, &config)
        };
        let full = walk(0);
        assert!(!full.degraded, "an unbudgeted walk is never degraded");

        // A budget below the walk's appetite cuts enumeration short:
        // the map is flagged, its probe spend respects the ceiling, and
        // a rerun produces the identical degraded prefix.
        let cut = walk(10);
        assert!(cut.degraded, "the gate closed with enumeration still hungry");
        assert!(cut.total_probes <= 10, "{}", cut.total_probes);
        assert!(cut.hops.len() < full.hops.len());
        assert_eq!(cut.dag_digest(), walk(10).dag_digest());

        // A budget at or above the walk's appetite never trips.
        let roomy = walk(full.total_probes);
        assert!(!roomy.degraded);
        assert_eq!(roomy.dag_digest(), full.dag_digest());
    }

    #[test]
    fn time_budget_degrades_a_walk() {
        let sc = scenarios::fig6(BalancerKind::PerFlow(FlowPolicy::FiveTuple));
        let mut tx = transport(&sc, 5);
        let config = MdaConfig {
            time_budget: SimDuration::from_millis(40),
            ..MdaConfig::default().sequential()
        };
        let map = discover(&mut tx, sc.destination, &config);
        assert!(map.degraded, "a 40 ms ceiling cannot cover the whole sequential walk");
        let full = discover(&mut transport(&sc, 5), sc.destination, &MdaConfig::default());
        assert!(map.hops.len() <= full.hops.len());
    }

    #[test]
    fn firewalled_destination_abandons_at_the_star_limit() {
        let mut b = pt_netsim::TopologyBuilder::new();
        let s = b.host("S", pt_netsim::HostConfig::default());
        let r = b.router("r", pt_netsim::node::RouterConfig::default());
        let d = b.host("D", pt_netsim::HostConfig::firewalled());
        b.link(s, r, SimDuration::from_millis(1), 0.0);
        b.link(r, d, SimDuration::from_millis(1), 0.0);
        b.default_via(s, r);
        b.default_via(r, d);
        b.default_via(d, r);
        let s_pfx = b.subnet_of(s);
        b.route_via(r, s_pfx, s);
        let dst = b.addr_of(d);
        let topo = std::sync::Arc::new(b.build());
        for window in [1u8, 8] {
            let mut tx = SimTransport::new(Simulator::new(topo.clone(), 1), s);
            let cfg =
                MdaConfig { timeout: SimDuration::from_millis(50), window, ..MdaConfig::default() };
            let map = discover(&mut tx, dst, &cfg);
            assert!(!map.reached, "window {window}");
            // One answered hop (r) + exactly max_consecutive_stars
            // all-star hops, then abandonment.
            assert_eq!(
                map.hops.len(),
                1 + usize::from(cfg.max_consecutive_stars),
                "window {window}"
            );
            assert!(map.hops[1..].iter().all(|h| h.all_stars() && !h.converged));
        }
    }
}
