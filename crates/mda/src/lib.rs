//! # pt-mda — multipath detection
//!
//! The paper's §6 future work: "algorithms to automatically find all
//! interfaces of a given load balancer, and to differentiate per-flow
//! from per-packet load balancers" — realized a year later as the
//! Multipath Detection Algorithm (MDA). This crate implements both
//! halves over the same [`pt_core::Transport`] the tracer uses:
//!
//! * [`enumerate`] walks hop by hop, varying the *flow identifier*
//!   (source port — a genuine five-tuple field) across probes at one TTL
//!   until a statistical stopping rule says all interfaces at that hop
//!   have been seen with high probability;
//! * [`classify_balancer`] re-probes one hop with a *fixed* flow
//!   identifier: a per-flow balancer pins the responder, a per-packet
//!   balancer scatters it.

#![warn(missing_docs)]

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use pt_core::{ParisUdp, ProbeStrategy, Transport};
use pt_netsim::time::SimDuration;

/// Stopping rule: after observing `k` distinct interfaces at a hop, how
/// many probes (total, across distinct flows) rule out a `k+1`-th
/// interface at confidence `1 - alpha` under uniform flow hashing?
///
/// If `k + 1` interfaces existed, each new flow would land on the seen
/// set with probability `k / (k + 1)`; `n` consecutive such landings has
/// probability `(k/(k+1))^n`, so we need `n ≥ ln(alpha) / ln(k/(k+1))`.
pub fn probes_to_rule_out(k: usize, alpha: f64) -> usize {
    assert!(k >= 1, "need at least one observed interface");
    assert!((0.0..1.0).contains(&alpha) && alpha > 0.0, "alpha in (0,1)");
    let ratio = k as f64 / (k as f64 + 1.0);
    (alpha.ln() / ratio.ln()).ceil() as usize
}

/// One hop's enumeration result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HopInterfaces {
    /// The TTL probed.
    pub ttl: u8,
    /// All interfaces discovered at this hop.
    pub interfaces: BTreeSet<Ipv4Addr>,
    /// Probes spent on this hop.
    pub probes_sent: usize,
    /// Whether the stopping rule was satisfied (false = hit the flow
    /// budget first).
    pub converged: bool,
}

/// The multipath map toward one destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultipathMap {
    /// The destination traced.
    pub destination: Ipv4Addr,
    /// Per-hop interface sets, starting at TTL 1.
    pub hops: Vec<HopInterfaces>,
    /// Total probes spent.
    pub total_probes: usize,
}

impl MultipathMap {
    /// Hops where more than one interface answered — load-balanced hops.
    pub fn balanced_hops(&self) -> impl Iterator<Item = &HopInterfaces> {
        self.hops.iter().filter(|h| h.interfaces.len() >= 2)
    }

    /// The maximum width observed at any hop.
    pub fn max_width(&self) -> usize {
        self.hops.iter().map(|h| h.interfaces.len()).max().unwrap_or(0)
    }
}

/// MDA parameters.
#[derive(Debug, Clone, Copy)]
pub struct MdaConfig {
    /// Miss probability bound per hop.
    pub alpha: f64,
    /// Hard cap on flows tried per hop.
    pub max_flows_per_hop: usize,
    /// Maximum TTL to walk.
    pub max_ttl: u8,
    /// Per-probe timeout.
    pub timeout: SimDuration,
    /// Give up after this many consecutive all-star hops.
    pub max_consecutive_stars: u8,
}

impl Default for MdaConfig {
    fn default() -> Self {
        MdaConfig {
            alpha: 0.05,
            max_flows_per_hop: 64,
            max_ttl: 39,
            timeout: SimDuration::from_secs(2),
            max_consecutive_stars: 3,
        }
    }
}

/// Probe one TTL with one flow id; return the responding address and
/// whether it was a terminal response.
fn probe_once<T: Transport>(
    tx: &mut T,
    dst: Ipv4Addr,
    ttl: u8,
    flow: u16,
    tag: u64,
    timeout: SimDuration,
) -> (Option<Ipv4Addr>, bool) {
    // Each flow id is its own Paris trace context: fixed five-tuple
    // (40000+flow, 52009), checksum-tagged probes. The tag rides in the
    // 16-bit checksum, so only its low 16 bits survive the round trip.
    let tag = tag & 0xffff;
    let mut strat = ParisUdp::new(40_000u16.wrapping_add(flow), 52_009);
    let payload = tx.grab_payload();
    let probe = strat.build_probe_with(tx.source_addr(), dst, ttl, tag, payload);
    tx.send(probe);
    let deadline = tx.now() + timeout;
    while let Some((_, resp)) = tx.recv_until(deadline) {
        if strat.match_response(dst, &resp) == Some(tag) {
            let terminal = resp.ip.src == dst
                || matches!(
                    &resp.transport,
                    pt_wire::Transport::Icmp(pt_wire::IcmpMessage::DestUnreachable { .. })
                );
            return (Some(resp.ip.src), terminal);
        }
    }
    (None, false)
}

/// Enumerate the interfaces at every hop toward `destination` by varying
/// the flow identifier, with the MDA stopping rule.
pub fn enumerate<T: Transport>(
    tx: &mut T,
    destination: Ipv4Addr,
    config: &MdaConfig,
) -> MultipathMap {
    let mut hops = Vec::new();
    let mut total_probes = 0usize;
    let mut consecutive_stars = 0u8;
    let mut tag = 0u64;
    'ttl: for ttl in 1..=config.max_ttl {
        let mut seen: BTreeSet<Ipv4Addr> = BTreeSet::new();
        let mut probes_sent = 0usize;
        let mut since_new = 0usize;
        let mut converged = false;
        let mut reached_terminal = false;
        for flow in 0..config.max_flows_per_hop as u16 {
            let (addr, terminal) = probe_once(tx, destination, ttl, flow, tag, config.timeout);
            tag += 1;
            probes_sent += 1;
            total_probes += 1;
            if let Some(a) = addr {
                if seen.insert(a) {
                    since_new = 0;
                } else {
                    since_new += 1;
                }
                reached_terminal |= terminal;
            } else {
                since_new += 1;
            }
            if !seen.is_empty() && since_new >= probes_to_rule_out(seen.len(), config.alpha) {
                converged = true;
                break;
            }
        }
        let empty = seen.is_empty();
        hops.push(HopInterfaces { ttl, interfaces: seen, probes_sent, converged });
        if reached_terminal {
            break 'ttl;
        }
        if empty {
            consecutive_stars += 1;
            if consecutive_stars > config.max_consecutive_stars {
                break;
            }
        } else {
            consecutive_stars = 0;
        }
    }
    MultipathMap { destination, hops, total_probes }
}

/// How a balanced hop spreads traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalancerClass {
    /// One flow id always lands on one interface.
    PerFlow,
    /// Even a fixed flow id scatters across interfaces.
    PerPacket,
    /// The hop did not answer enough probes to tell.
    Undetermined,
}

/// Distinguish per-flow from per-packet balancing upstream of `ttl`:
/// send `repeats` probes with an identical flow identifier and watch the
/// responder set.
pub fn classify_balancer<T: Transport>(
    tx: &mut T,
    destination: Ipv4Addr,
    ttl: u8,
    repeats: usize,
    config: &MdaConfig,
) -> BalancerClass {
    let mut seen: BTreeSet<Ipv4Addr> = BTreeSet::new();
    let mut answered = 0usize;
    for i in 0..repeats {
        // Fixed flow (flow id 0), distinct tags per probe. Tags must fit
        // the 16-bit checksum identifier, so keep them small.
        let (addr, _) = probe_once(tx, destination, ttl, 0, i as u64, config.timeout);
        if let Some(a) = addr {
            answered += 1;
            seen.insert(a);
        }
    }
    if answered < 2 {
        BalancerClass::Undetermined
    } else if seen.len() > 1 {
        BalancerClass::PerPacket
    } else {
        BalancerClass::PerFlow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_netsim::node::BalancerKind;
    use pt_netsim::{scenarios, SimTransport, Simulator};
    use pt_wire::FlowPolicy;

    fn transport(sc: &scenarios::Scenario, seed: u64) -> SimTransport {
        SimTransport::new(Simulator::new(sc.topology.clone(), seed), sc.source)
    }

    #[test]
    fn stopping_rule_matches_the_known_shape() {
        // The rule must grow with k and shrink with alpha.
        let a = probes_to_rule_out(1, 0.05);
        let b = probes_to_rule_out(2, 0.05);
        let c = probes_to_rule_out(5, 0.05);
        assert!(a < b && b < c, "{a} {b} {c}");
        assert_eq!(a, 5, "ln(.05)/ln(.5) = 4.32 → 5");
        assert!(probes_to_rule_out(1, 0.01) > a);
    }

    #[test]
    fn enumerates_both_interfaces_of_fig1() {
        let sc = scenarios::fig1(BalancerKind::PerFlow(FlowPolicy::FiveTuple));
        let mut tx = transport(&sc, 31);
        let map = enumerate(&mut tx, sc.destination, &MdaConfig::default());
        // Hop 7 has A (responding) and B (silent): only A discoverable.
        let hop7 = &map.hops[6];
        assert_eq!(hop7.interfaces, BTreeSet::from([sc.a("A")]));
        // Hop 8 similarly shows only D.
        let hop8 = &map.hops[7];
        assert_eq!(hop8.interfaces, BTreeSet::from([sc.a("D")]));
        assert!(map.total_probes > map.hops.len(), "balanced hops need extra probes");
    }

    #[test]
    fn enumerates_fig6_widths() {
        let sc = scenarios::fig6(BalancerKind::PerFlow(FlowPolicy::FiveTuple));
        let mut tx = transport(&sc, 5);
        let map = enumerate(&mut tx, sc.destination, &MdaConfig::default());
        // Hop 7: A, B, C; hop 8: D, E.
        assert_eq!(map.hops[6].interfaces, BTreeSet::from([sc.a("A"), sc.a("B"), sc.a("C")]),);
        assert_eq!(map.hops[7].interfaces, BTreeSet::from([sc.a("D"), sc.a("E")]));
        assert_eq!(map.max_width(), 3);
        assert_eq!(map.balanced_hops().count(), 2);
        assert!(map.hops.iter().all(|h| h.converged), "stopping rule satisfied everywhere");
    }

    #[test]
    fn linear_chain_needs_few_probes() {
        let sc = scenarios::linear(5);
        let mut tx = transport(&sc, 2);
        let config = MdaConfig::default();
        let map = enumerate(&mut tx, sc.destination, &config);
        assert_eq!(map.max_width(), 1);
        // Every hop: 1 interface, ruled out a second with k=1 probes.
        let per_hop = probes_to_rule_out(1, config.alpha) + 1;
        for h in &map.hops {
            assert!(h.probes_sent <= per_hop, "hop {} used {}", h.ttl, h.probes_sent);
        }
    }

    #[test]
    fn classifies_per_flow_vs_per_packet() {
        let per_flow = scenarios::fig6(BalancerKind::PerFlow(FlowPolicy::FiveTuple));
        let mut tx = transport(&per_flow, 3);
        assert_eq!(
            classify_balancer(&mut tx, per_flow.destination, 7, 12, &MdaConfig::default()),
            BalancerClass::PerFlow
        );
        let per_packet = scenarios::fig6(BalancerKind::PerPacket);
        let mut tx = transport(&per_packet, 3);
        assert_eq!(
            classify_balancer(&mut tx, per_packet.destination, 7, 12, &MdaConfig::default()),
            BalancerClass::PerPacket
        );
    }

    #[test]
    fn undetermined_when_hop_never_answers() {
        // A firewalled destination swallows every probe that reaches it:
        // probing at/past its hop yields no responses at all.
        let mut b = pt_netsim::TopologyBuilder::new();
        let s = b.host("S", pt_netsim::HostConfig::default());
        let r = b.router("r", pt_netsim::node::RouterConfig::default());
        let d = b.host("D", pt_netsim::HostConfig::firewalled());
        b.link(s, r, SimDuration::from_millis(1), 0.0);
        b.link(r, d, SimDuration::from_millis(1), 0.0);
        b.default_via(s, r);
        b.default_via(r, d);
        b.default_via(d, r);
        let s_pfx = b.subnet_of(s);
        b.route_via(r, s_pfx, s);
        let dst = b.addr_of(d);
        let topo = std::sync::Arc::new(b.build());
        let mut tx = SimTransport::new(Simulator::new(topo, 1), s);
        let cfg = MdaConfig { timeout: SimDuration::from_millis(50), ..MdaConfig::default() };
        let class = classify_balancer(&mut tx, dst, 5, 4, &cfg);
        assert_eq!(class, BalancerClass::Undetermined);
    }
}
