//! The windowed multipath-discovery engine.
//!
//! [`discover_with`] walks TTL by TTL toward a destination, varying the
//! *flow identifier* (UDP source port — a genuine five-tuple field)
//! across probes at each TTL until the MDA stopping rule
//! ([`crate::probes_to_rule_out`]) says every interface at that hop has
//! been seen with high probability. Flow identifiers are **reused
//! across TTLs**: the interface flow `f` revealed at hop `h` and the
//! one it revealed at `h + 1` are endpoints of a directed link, so the
//! walk recovers the interface-level DAG — including unequal-length
//! diamonds, whose merge interface surfaces at several TTLs (the
//! [`crate::MultipathMap::discovered_delta`] convergence signal) —
//! rather than flat per-hop sets.
//!
//! # Windowing
//!
//! Up to [`MdaConfig::window`] probes stay in flight at once, the same
//! registry/`try_recv` discipline `pt_core::trace_with` uses: probes
//! launch in a deterministic `(TTL, flow, retry)` priority order,
//! retire by the probe id recovered from each response (never "the
//! probe most recently sent"), and every stopping decision is taken
//! over a hop's *committed prefix* — its flow results folded strictly
//! in flow order. Results a wider window speculatively gathered past
//! the point where the stopping rule fires are discarded, as are hops
//! speculated past the terminal hop or the consecutive-star limit, so
//! on deterministic networks a windowed walk discovers the
//! byte-identical DAG a sequential (`window = 1`) walk discovers —
//! only faster in virtual time.
//!
//! # Classification
//!
//! The moment a hop's enumeration finishes with two or more
//! interfaces — converged or not; a starred balanced hop still holds a
//! real balancer worth classifying — the engine launches a fixed-flow
//! re-probe batch at that TTL *inline* (it rides the same window as
//! ongoing enumeration of deeper hops): a per-flow balancer pins the
//! responder, a per-packet balancer scatters it ([`BalancerClass`]).
//!
//! # Non-responses
//!
//! A flow whose probe times out is retried up to
//! [`MdaConfig::flow_retries`] times before being committed as a
//! *star*. Stars are first-class: they are counted per hop, they do
//! not feed the stopping rule's "nothing new" streak (a non-answer is
//! not evidence that the seen set is complete), and any star in the
//! committed prefix marks the hop as *not converged* — a silent router
//! inside a balanced hop is visible as non-convergence instead of
//! silently under-counting the hop's width.

use std::net::Ipv4Addr;

use pt_core::{prefix_u16, quotation_for, Transport};
use pt_netsim::time::{SimDuration, SimTime};
use pt_wire::ipv4::{protocol, Ipv4Header};
use pt_wire::{IcmpMessage, Packet, Transport as Wire, UdpDatagram};

use crate::map::{BalancerClass, DagLink, HopInterfaces, MultipathMap};
use crate::rule::RuleTable;

/// MDA parameters.
#[derive(Debug, Clone, Copy)]
pub struct MdaConfig {
    /// Miss probability bound per hop (the stopping rule's confidence
    /// is `1 - alpha`).
    pub alpha: f64,
    /// Hard cap on flows tried per hop.
    pub max_flows_per_hop: usize,
    /// Maximum TTL to walk.
    pub max_ttl: u8,
    /// Per-probe timeout.
    pub timeout: SimDuration,
    /// Give up after this many consecutive all-star hops.
    pub max_consecutive_stars: u8,
    /// Probes kept in flight at once. `1` reproduces the strictly
    /// sequential send→wait→timeout walk; wider windows overlap probes
    /// within and across hops and cut virtual probing time while
    /// discovering the identical DAG on deterministic networks.
    pub window: u8,
    /// Times a silent flow is re-probed before it is committed as a
    /// star (loss robustness; a genuinely silent interface still stars
    /// after every retry).
    pub flow_retries: u8,
    /// Size of the fixed-flow re-probe batch that classifies a
    /// converged balanced hop as per-flow vs per-packet.
    pub classify_repeats: u8,
    /// Source port of flow 0; flow `f` probes from `base_src_port + f`.
    pub base_src_port: u16,
    /// Fixed destination port (the five-tuple's other half).
    pub dst_port: u16,
}

impl Default for MdaConfig {
    fn default() -> Self {
        MdaConfig {
            alpha: 0.05,
            max_flows_per_hop: 64,
            max_ttl: 39,
            timeout: SimDuration::from_secs(2),
            max_consecutive_stars: 3,
            window: 8,
            flow_retries: 2,
            classify_repeats: 8,
            base_src_port: 40_000,
            dst_port: 33_435,
        }
    }
}

impl MdaConfig {
    /// This configuration with `window = 1`: the strictly sequential
    /// walk (one probe in flight, hop by hop).
    pub fn sequential(self) -> Self {
        MdaConfig { window: 1, ..self }
    }
}

/// Probe ids live in the 15 low bits of the pinned checksum; one walk
/// never issues more than this many probes (enforced as a launch gate),
/// so an id is never live twice and responses cannot mis-attribute.
const ID_SPACE: u16 = 0x7fff;

/// The per-probe identifier rides in the pinned UDP checksum; the high
/// bit marks "one of ours" and keeps the pinned value nonzero.
fn tag_of(id: u16) -> u16 {
    0x8000 | (id & ID_SPACE)
}

fn build_probe(
    config: &MdaConfig,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    ttl: u8,
    flow: u16,
    id: u16,
    payload: Vec<u8>,
) -> Packet {
    let mut ip = Ipv4Header::new(src, dst, protocol::UDP, ttl);
    ip.total_length = (pt_wire::ipv4::HEADER_LEN + pt_wire::udp::HEADER_LEN + 2) as u16;
    let udp = UdpDatagram::with_pinned_checksum_in(
        config.base_src_port.wrapping_add(flow),
        config.dst_port,
        tag_of(id),
        2,
        &ip,
        payload,
    );
    Packet::new(ip, Wire::Udp(udp))
}

/// Recover the probe id a response answers, if it answers one of this
/// walk's probes at all. Works for both mid-path ICMP errors and the
/// terminal Port Unreachable, which all quote the probe's UDP header.
fn match_response(config: &MdaConfig, dst: Ipv4Addr, response: &Packet) -> Option<u16> {
    let q = quotation_for(dst, response)?;
    if q.ip.protocol != protocol::UDP {
        return None;
    }
    if prefix_u16(&q.transport_prefix, 2) != config.dst_port {
        return None;
    }
    let sp = prefix_u16(&q.transport_prefix, 0);
    let flow = sp.wrapping_sub(config.base_src_port);
    if usize::from(flow) >= config.max_flows_per_hop {
        return None;
    }
    let ck = prefix_u16(&q.transport_prefix, 6);
    (ck & 0x8000 != 0).then_some(ck & ID_SPACE)
}

fn is_terminal(dst: Ipv4Addr, response: &Packet) -> bool {
    response.ip.src == dst
        || matches!(&response.transport, Wire::Icmp(IcmpMessage::DestUnreachable { .. }))
}

/// One flow's probing state at one hop.
#[derive(Debug, Clone, Copy)]
enum Slot {
    /// A probe for this flow is in flight; `retries_left` more probes
    /// may follow if it times out.
    InFlight { retries_left: u8 },
    /// The last probe timed out but retries remain; the launcher will
    /// re-probe this flow before opening new ones.
    AwaitingRetry { retries_left: u8 },
    /// The flow got an answer.
    Answered { addr: Ipv4Addr, terminal: bool },
    /// The flow never answered, retries included.
    Star,
}

/// Per-hop walk state. Lives in [`MdaScratch`] and is reused (inner
/// vectors keep their capacity) across walks.
#[derive(Debug, Default)]
struct HopState {
    ttl: u8,
    slots: Vec<Slot>,
    /// Leading slots folded into the rule state, strictly in flow order.
    committed: usize,
    /// Distinct committed interfaces, in first-seen order.
    interfaces: Vec<Ipv4Addr>,
    /// Committed `(flow, responder)` evidence.
    flows: Vec<(u16, Ipv4Addr)>,
    stars: usize,
    answered: usize,
    terminals: usize,
    probes_sent: usize,
    enum_done: bool,
    converged: bool,
    classify_target: usize,
    class_launched: usize,
    class_resolved: usize,
    class_answered: usize,
    class_addrs: Vec<Ipv4Addr>,
}

impl HopState {
    fn reset(&mut self, ttl: u8) {
        self.ttl = ttl;
        self.slots.clear();
        self.committed = 0;
        self.interfaces.clear();
        self.flows.clear();
        self.stars = 0;
        self.answered = 0;
        self.terminals = 0;
        self.probes_sent = 0;
        self.enum_done = false;
        self.converged = false;
        self.classify_target = 0;
        self.class_launched = 0;
        self.class_resolved = 0;
        self.class_answered = 0;
        self.class_addrs.clear();
    }

    /// Flows this hop's enumeration wants launched in total, given the
    /// committed evidence so far: enough that — if every pending probe
    /// lands on the seen set — the stopping rule fires exactly at the
    /// last one. Grows when new interfaces (or stars, which carry no
    /// evidence) commit; never shrinks below what was already launched.
    fn target(&self, rule: &mut RuleTable, config: &MdaConfig) -> usize {
        if self.enum_done {
            return self.slots.len();
        }
        let k = self.interfaces.len();
        let t = if k == 0 {
            // No interface yet: an all-silent hop is abandoned after as
            // many flows as would rule out a *second* interface had one
            // answered — the rule's own scale, not the full flow budget.
            rule.get(1)
        } else {
            // The rule bounds *answered* probes at the hop (the MDA
            // table's n_k is a total, discovery probes included);
            // committed stars inflate the flow count but carry no
            // evidence, so each one pushes the target out by one.
            self.committed + (rule.get(k) - self.answered)
        };
        t.min(config.max_flows_per_hop)
    }

    /// Fold resolved leading slots into the rule state and take the
    /// stopping decision. Called whenever a slot resolves.
    fn commit(&mut self, rule: &mut RuleTable, config: &MdaConfig) {
        while !self.enum_done && self.committed < self.slots.len() {
            match self.slots[self.committed] {
                Slot::Answered { addr, terminal } => {
                    self.flows.push((self.committed as u16, addr));
                    if !self.interfaces.contains(&addr) {
                        self.interfaces.push(addr);
                    }
                    self.answered += 1;
                    if terminal {
                        self.terminals += 1;
                    }
                }
                Slot::Star => self.stars += 1,
                Slot::InFlight { .. } | Slot::AwaitingRetry { .. } => break,
            }
            self.committed += 1;
            let k = self.interfaces.len();
            if k >= 1 && self.answered >= rule.get(k) {
                self.enum_done = true;
                self.converged = self.stars == 0;
            } else if k == 0 && self.committed >= rule.get(1) {
                self.enum_done = true; // all-star hop: give up early
            } else if self.committed >= config.max_flows_per_hop {
                self.enum_done = true; // flow budget exhausted
            }
        }
        if self.enum_done && self.classify_target == 0 && self.interfaces.len() >= 2 {
            self.classify_target = usize::from(config.classify_repeats);
        }
    }

    /// Every committed answer was terminal (and there was at least
    /// one): this hop is the end of the walk.
    fn terminal_complete(&self) -> bool {
        self.answered > 0 && self.terminals == self.answered
    }

    /// Enumeration and the inline classification batch are both done;
    /// the hop can be finalized in TTL order. Speculative enumeration
    /// probes past the committed prefix may still be in flight — their
    /// answers are discarded, so they need not be waited for.
    fn finalized(&self) -> bool {
        self.enum_done
            && self.class_launched == self.classify_target
            && self.class_resolved == self.classify_target
    }

    fn class(&self) -> BalancerClass {
        if self.interfaces.len() < 2 {
            BalancerClass::NotBalanced
        } else if self.class_answered < 2 {
            BalancerClass::Undetermined
        } else if self.class_addrs.len() > 1 {
            BalancerClass::PerPacket
        } else {
            BalancerClass::PerFlow
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum ProbeKind {
    Enumerate { flow: u16 },
    Classify,
}

#[derive(Debug, Clone, Copy)]
struct RegEntry {
    id: u16,
    hop: usize,
    kind: ProbeKind,
    deadline: SimTime,
}

/// What the launch scan decided to send next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Launch {
    Retry { hop: usize, flow: u16 },
    NewFlow { hop: usize },
    Classify { hop: usize },
    OpenHop,
}

const RECORD_POOL_CAP: usize = 64;

/// Reusable per-walk bookkeeping: the outstanding-probe registry, the
/// per-hop walk states, the stopping-rule memo, and pools of result
/// vectors harvested from finished maps. A caller that keeps one
/// `MdaScratch` across walks — recycling each consumed
/// [`MultipathMap`] back into it — runs [`discover_with`] with zero
/// steady-state heap allocation.
#[derive(Debug, Default)]
pub struct MdaScratch {
    registry: Vec<RegEntry>,
    states: Vec<HopState>,
    rule: RuleTable,
    record_pool: Vec<HopInterfaces>,
    hops_pool: Vec<Vec<HopInterfaces>>,
    links_pool: Vec<Vec<DagLink>>,
}

impl MdaScratch {
    /// Empty scratch; warms up over the first walk.
    pub fn new() -> Self {
        Self::default()
    }

    /// Harvest a finished map's vectors for reuse by later walks. Call
    /// this instead of dropping maps you have finished reading.
    pub fn recycle(&mut self, map: MultipathMap) {
        let mut hops = map.hops;
        for hop in hops.drain(..) {
            if self.record_pool.len() < RECORD_POOL_CAP {
                self.record_pool.push(hop);
            }
        }
        if self.hops_pool.len() < 4 {
            self.hops_pool.push(hops);
        }
        if self.links_pool.len() < 4 {
            let mut links = map.links;
            links.clear();
            self.links_pool.push(links);
        }
    }

    fn take_record(&mut self, ttl: u8) -> HopInterfaces {
        let mut rec = self.record_pool.pop().unwrap_or_else(|| HopInterfaces {
            ttl,
            interfaces: Vec::new(),
            flows: Vec::new(),
            probes_sent: 0,
            stars: 0,
            converged: false,
            class: BalancerClass::NotBalanced,
        });
        rec.ttl = ttl;
        rec.interfaces.clear();
        rec.flows.clear();
        rec.probes_sent = 0;
        rec.stars = 0;
        rec.converged = false;
        rec.class = BalancerClass::NotBalanced;
        rec
    }
}

/// Discover the multipath DAG toward `destination`, allocating fresh
/// bookkeeping. Prefer [`discover_with`] in loops.
pub fn discover<T: Transport>(
    transport: &mut T,
    destination: Ipv4Addr,
    config: &MdaConfig,
) -> MultipathMap {
    discover_with(transport, destination, config, &mut MdaScratch::new())
}

/// Discover the multipath DAG toward `destination`, reusing `scratch`
/// for all per-walk bookkeeping. With a warm scratch and a pooling
/// transport, the whole probe→response cycle performs no heap
/// allocation.
///
/// Up to [`MdaConfig::window`] probes stay in flight at once (see the
/// module docs for the windowed semantics); `window = 1` reproduces
/// the strictly sequential walk, and both discover the identical DAG
/// on deterministic networks.
pub fn discover_with<T: Transport>(
    transport: &mut T,
    destination: Ipv4Addr,
    config: &MdaConfig,
    scratch: &mut MdaScratch,
) -> MultipathMap {
    assert!(
        config.max_flows_per_hop >= 1
            && config.max_flows_per_hop <= usize::from(u16::MAX - config.base_src_port),
        "flow ids must fit the source-port space above base_src_port"
    );
    let source = transport.source_addr();
    let window = usize::from(config.window).max(1);
    scratch.rule.reset(config.alpha);
    scratch.registry.clear();

    let mut opened = 0usize; // states[..opened] are live this walk
    let mut frontier = 0usize; // first hop not yet finalized
    let mut consecutive_stars = 0u8;
    let mut next_id: u16 = 0;
    let mut total_probes = 0usize;
    let kept: usize;

    'drive: loop {
        // 1. Finalize complete hops in TTL order. Everything the map
        //    reports — which hops exist, where the walk stops — is
        //    decided here, so speculative probes cannot change it.
        while frontier < opened && scratch.states[frontier].finalized() {
            let h = &scratch.states[frontier];
            if h.terminal_complete() {
                kept = frontier + 1;
                break 'drive;
            }
            if h.interfaces.is_empty() {
                consecutive_stars += 1;
                if consecutive_stars >= config.max_consecutive_stars {
                    kept = frontier + 1;
                    break 'drive;
                }
            } else {
                consecutive_stars = 0;
            }
            frontier += 1;
        }

        // 2. Top up the probe window in deterministic priority order:
        //    lowest unfinished hop first; within a hop, retries before
        //    new flows before the classification batch; a new hop opens
        //    only when no existing hop wants a probe. The 15-bit probe
        //    id space is a hard launch gate: a (degenerate) walk that
        //    exhausts it winds down with partial, unconverged hops
        //    rather than recycling ids into mis-attribution.
        while scratch.registry.len() < window && total_probes < usize::from(ID_SPACE) {
            let Some(launch) =
                next_launch(&scratch.states[..opened], &mut scratch.rule, config, frontier)
            else {
                break;
            };
            let (hop_idx, flow, retries_left, kind) = match launch {
                Launch::Retry { hop, flow } => {
                    let Slot::AwaitingRetry { retries_left } =
                        scratch.states[hop].slots[usize::from(flow)]
                    else {
                        unreachable!("retry launch on a non-retry slot")
                    };
                    (hop, flow, retries_left, ProbeKind::Enumerate { flow })
                }
                Launch::NewFlow { hop } => {
                    let flow = scratch.states[hop].slots.len() as u16;
                    (hop, flow, config.flow_retries, ProbeKind::Enumerate { flow })
                }
                Launch::Classify { hop } => {
                    // Re-probe with the first flow that answered — a
                    // committed, deterministic choice that avoids
                    // pinning the batch to a silent branch.
                    let flow = scratch.states[hop]
                        .flows
                        .first()
                        .map(|&(f, _)| f)
                        .expect("classification only runs on hops with answers");
                    (hop, flow, 0, ProbeKind::Classify)
                }
                Launch::OpenHop => {
                    if opened == scratch.states.len() {
                        scratch.states.push(HopState::default());
                    }
                    let ttl = opened as u8 + 1;
                    scratch.states[opened].reset(ttl);
                    opened += 1;
                    continue; // the next scan launches its first flow
                }
            };
            let st = &mut scratch.states[hop_idx];
            match kind {
                ProbeKind::Enumerate { .. } => {
                    let slot = Slot::InFlight { retries_left };
                    if usize::from(flow) == st.slots.len() {
                        st.slots.push(slot);
                    } else {
                        st.slots[usize::from(flow)] = slot;
                    }
                }
                ProbeKind::Classify => st.class_launched += 1,
            }
            st.probes_sent += 1;
            total_probes += 1;
            let ttl = st.ttl;
            let payload = transport.grab_payload();
            let packet = build_probe(config, source, destination, ttl, flow, next_id, payload);
            let sent = transport.now();
            scratch.registry.push(RegEntry {
                id: next_id,
                hop: hop_idx,
                kind,
                deadline: sent + config.timeout,
            });
            next_id = next_id.wrapping_add(1) & ID_SPACE;
            transport.send(packet);
        }

        if scratch.registry.is_empty() {
            // Nothing in flight and nothing launchable: every opened
            // hop is finalized and the TTL ceiling stops new ones.
            kept = opened;
            break;
        }

        // 3. Resolve whichever in-flight probe settles first: a
        //    response that already arrived, the next response before
        //    the earliest outstanding deadline, or that deadline.
        let delivery = match transport.try_recv() {
            Some(d) => d,
            None => {
                let deadline = scratch
                    .registry
                    .iter()
                    .map(|e| e.deadline)
                    .min()
                    .expect("outstanding probes carry deadlines");
                match transport.recv_until(deadline) {
                    Some(d) => d,
                    None => {
                        // The deadline passed silently: expire every
                        // probe whose window has closed — stars after
                        // retries, retries otherwise.
                        let now = transport.now();
                        let mut i = 0;
                        while i < scratch.registry.len() {
                            if scratch.registry[i].deadline > now {
                                i += 1;
                                continue;
                            }
                            let e = scratch.registry.swap_remove(i);
                            let st = &mut scratch.states[e.hop];
                            match e.kind {
                                ProbeKind::Enumerate { flow } => {
                                    let fi = usize::from(flow);
                                    if st.enum_done && fi >= st.committed {
                                        continue; // speculative leftover
                                    }
                                    let Slot::InFlight { retries_left } = st.slots[fi] else {
                                        continue;
                                    };
                                    st.slots[fi] = if retries_left > 0 {
                                        Slot::AwaitingRetry { retries_left: retries_left - 1 }
                                    } else {
                                        Slot::Star
                                    };
                                    st.commit(&mut scratch.rule, config);
                                }
                                ProbeKind::Classify => st.class_resolved += 1,
                            }
                        }
                        continue 'drive;
                    }
                }
            }
        };
        let (_at, resp) = delivery;
        let Some(id) = match_response(config, destination, &resp) else {
            transport.release(resp);
            continue; // stray packet
        };
        let Some(pos) = scratch.registry.iter().position(|e| e.id == id) else {
            transport.release(resp);
            continue; // late (already expired) or duplicate
        };
        let entry = scratch.registry.swap_remove(pos);
        let from = resp.ip.src;
        let terminal = is_terminal(destination, &resp);
        transport.release(resp);
        let st = &mut scratch.states[entry.hop];
        match entry.kind {
            ProbeKind::Enumerate { flow } => {
                let fi = usize::from(flow);
                if st.enum_done && fi >= st.committed {
                    continue; // speculative result past the stopping point
                }
                debug_assert!(matches!(st.slots[fi], Slot::InFlight { .. }));
                st.slots[fi] = Slot::Answered { addr: from, terminal };
                st.commit(&mut scratch.rule, config);
            }
            ProbeKind::Classify => {
                st.class_resolved += 1;
                st.class_answered += 1;
                if !st.class_addrs.contains(&from) {
                    st.class_addrs.push(from);
                }
            }
        }
    }

    // Convert the kept walk states into the result map. Interfaces are
    // copied (not moved) out of the states so the states keep their
    // warm capacity for the next walk.
    let mut hops: Vec<HopInterfaces> = scratch.hops_pool.pop().unwrap_or_default();
    hops.clear();
    for i in 0..kept {
        let mut rec = scratch.take_record(scratch.states[i].ttl);
        let st = &scratch.states[i];
        rec.interfaces.extend_from_slice(&st.interfaces);
        rec.interfaces.sort_unstable();
        rec.flows.extend_from_slice(&st.flows);
        rec.probes_sent = st.probes_sent;
        rec.stars = st.stars;
        rec.converged = st.converged;
        rec.class = st.class();
        hops.push(rec);
    }
    let mut links: Vec<DagLink> = scratch.links_pool.pop().unwrap_or_default();
    links.clear();
    for i in 1..hops.len() {
        let (a, b) = (&hops[i - 1], &hops[i]);
        // Merge-join on flow id (both lists are in flow order).
        let (mut x, mut y) = (0, 0);
        while x < a.flows.len() && y < b.flows.len() {
            match a.flows[x].0.cmp(&b.flows[y].0) {
                std::cmp::Ordering::Less => x += 1,
                std::cmp::Ordering::Greater => y += 1,
                std::cmp::Ordering::Equal => {
                    links.push(DagLink { from_ttl: a.ttl, from: a.flows[x].1, to: b.flows[y].1 });
                    x += 1;
                    y += 1;
                }
            }
        }
    }
    links.sort_unstable();
    links.dedup();
    let reached = hops.iter().any(|h| h.interfaces.contains(&destination));
    MultipathMap { destination, hops, links, total_probes, reached }
}

/// Deterministic launch priority: scan hops from the finalization
/// frontier; the first hop still enumerating takes retries (lowest
/// flow first), then new flows up to its current target; a converged
/// balanced hop takes its classification batch; only when no open hop
/// wants a probe does a new hop open — and never past a hop already
/// known to be terminal, nor past the TTL ceiling.
fn next_launch(
    states: &[HopState],
    rule: &mut RuleTable,
    config: &MdaConfig,
    frontier: usize,
) -> Option<Launch> {
    let mut terminal_known = false;
    for (i, st) in states.iter().enumerate().skip(frontier) {
        if !st.enum_done {
            if let Some(fi) = st.slots.iter().position(|s| matches!(s, Slot::AwaitingRetry { .. }))
            {
                return Some(Launch::Retry { hop: i, flow: fi as u16 });
            }
            if st.slots.len() < st.target(rule, config) {
                return Some(Launch::NewFlow { hop: i });
            }
        } else if st.class_launched < st.classify_target {
            return Some(Launch::Classify { hop: i });
        }
        terminal_known |= st.enum_done && st.terminal_complete();
    }
    if !terminal_known && states.len() < usize::from(config.max_ttl) {
        return Some(Launch::OpenHop);
    }
    None
}

/// Distinguish per-flow from per-packet balancing at `ttl`: send
/// `repeats` probes with an identical flow identifier and watch the
/// responder set. The standalone form of the classification the walk
/// performs inline; useful for re-probing a known hop.
pub fn classify_balancer<T: Transport>(
    transport: &mut T,
    destination: Ipv4Addr,
    ttl: u8,
    repeats: usize,
    config: &MdaConfig,
) -> BalancerClass {
    let source = transport.source_addr();
    let mut seen: Vec<Ipv4Addr> = Vec::new();
    let mut answered = 0usize;
    for i in 0..repeats {
        let payload = transport.grab_payload();
        let id = (i & 0x7fff) as u16;
        let probe = build_probe(config, source, destination, ttl, 0, id, payload);
        transport.send(probe);
        let deadline = transport.now() + config.timeout;
        while let Some((_, resp)) = transport.recv_until(deadline) {
            let matched = match_response(config, destination, &resp) == Some(id);
            let from = resp.ip.src;
            transport.release(resp);
            if matched {
                answered += 1;
                if !seen.contains(&from) {
                    seen.push(from);
                }
                break;
            }
        }
    }
    if answered < 2 {
        BalancerClass::Undetermined
    } else if seen.len() > 1 {
        BalancerClass::PerPacket
    } else {
        BalancerClass::PerFlow
    }
}
