//! The windowed multipath-discovery engine.
//!
//! [`discover_with`] walks TTL by TTL toward a destination, varying the
//! *flow identifier* (UDP source port — a genuine five-tuple field)
//! across probes at each TTL until the MDA stopping rule
//! ([`crate::probes_to_rule_out`]) says every interface at that hop has
//! been seen with high probability. Flow identifiers are **reused
//! across TTLs**: the interface flow `f` revealed at hop `h` and the
//! one it revealed at `h + 1` are endpoints of a directed link, so the
//! walk recovers the interface-level DAG — including unequal-length
//! diamonds, whose merge interface surfaces at several TTLs (the
//! [`crate::MultipathMap::discovered_delta`] convergence signal) —
//! rather than flat per-hop sets.
//!
//! # Windowing
//!
//! Up to [`MdaConfig::window`] probes stay in flight at once, the same
//! registry/`try_recv` discipline `pt_core::trace_with` uses: probes
//! launch in a deterministic `(TTL, flow, retry)` priority order,
//! retire by the probe id recovered from each response (never "the
//! probe most recently sent"), and every stopping decision is taken
//! over a hop's *committed prefix* — its flow results folded strictly
//! in flow order. Results a wider window speculatively gathered past
//! the point where the stopping rule fires are discarded, as are hops
//! speculated past the terminal hop or the consecutive-star limit, so
//! on deterministic networks a windowed walk discovers the
//! byte-identical DAG a sequential (`window = 1`) walk discovers —
//! only faster in virtual time.
//!
//! # Classification
//!
//! The moment a hop's enumeration finishes with two or more
//! interfaces — converged or not; a starred balanced hop still holds a
//! real balancer worth classifying — the engine launches a fixed-flow
//! re-probe batch at that TTL *inline* (it rides the same window as
//! ongoing enumeration of deeper hops): a per-flow balancer pins the
//! responder, a per-packet balancer scatters it ([`BalancerClass`]).
//!
//! # Non-responses
//!
//! A flow whose probe times out is retried up to
//! [`MdaConfig::flow_retries`] times before being committed as a
//! *star*. Stars are first-class: they are counted per hop, they do
//! not feed the stopping rule's "nothing new" streak (a non-answer is
//! not evidence that the seen set is complete), and any star in the
//! committed prefix marks the hop as *not converged* — a silent router
//! inside a balanced hop is visible as non-convergence instead of
//! silently under-counting the hop's width.

use std::net::Ipv4Addr;

use pt_core::{prefix_u16, prefix_u32, quotation_for, Transport};
use pt_netsim::time::{SimDuration, SimTime};
use pt_wire::ipv4::{protocol, Ipv4Header};
use pt_wire::tcp::{flags as tcp_flags, TcpSegment};
use pt_wire::{IcmpMessage, Packet, Transport as Wire, UdpDatagram};

use crate::map::{BalancerClass, DagLink, HopInterfaces, MultipathMap};
use crate::rule::RuleTable;

/// Probe protocol for a walk. UDP is the paper's default; TCP is the
/// fallback the adaptive walk switches to mid-trace when a run of
/// all-star hops suggests a UDP filter on the path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MdaProtocol {
    /// UDP datagrams to high ports: flow id in the source port, probe
    /// id in the pinned checksum (the Paris encoding).
    Udp,
    /// TCP SYNs to the HTTP port (as tcptraceroute sends, to look like
    /// web traffic): flow id in the source port, probe id in the
    /// Sequence Number.
    Tcp,
}

/// Destination port of TCP fallback probes — the well-known HTTP port,
/// the one port filtering middleboxes most reliably pass.
const TCP_FALLBACK_PORT: u16 = 80;

/// Dead-hop retry clamp for the adaptive walk: a hop that has never
/// answered gets this many retries per flow (matching the classic
/// default) instead of the full adaptive budget — backoff chains are
/// for routers that demonstrably respond (rate limiting), not for
/// black holes.
const DEAD_FLOW_RETRIES: u8 = 2;

/// MDA parameters.
#[derive(Debug, Clone, Copy)]
pub struct MdaConfig {
    /// Miss probability bound per hop (the stopping rule's confidence
    /// is `1 - alpha`).
    pub alpha: f64,
    /// Hard cap on flows tried per hop.
    pub max_flows_per_hop: usize,
    /// Maximum TTL to walk.
    pub max_ttl: u8,
    /// Per-probe timeout.
    pub timeout: SimDuration,
    /// Give up after this many consecutive all-star hops.
    pub max_consecutive_stars: u8,
    /// Probes kept in flight at once. `1` reproduces the strictly
    /// sequential send→wait→timeout walk; wider windows overlap probes
    /// within and across hops and cut virtual probing time while
    /// discovering the identical DAG on deterministic networks.
    pub window: u8,
    /// Times a silent flow is re-probed before it is committed as a
    /// star (loss robustness; a genuinely silent interface still stars
    /// after every retry).
    pub flow_retries: u8,
    /// Size of the fixed-flow re-probe batch that classifies a
    /// converged balanced hop as per-flow vs per-packet.
    pub classify_repeats: u8,
    /// Source port of flow 0; flow `f` probes from `base_src_port + f`.
    pub base_src_port: u16,
    /// Fixed destination port (the five-tuple's other half).
    pub dst_port: u16,
    /// Protocol the walk starts with.
    pub protocol: MdaProtocol,
    /// Base delay before re-probing a timed-out flow at a hop that has
    /// already answered (rate-limit evidence). Doubles per retry, with
    /// deterministic jitter drawn from `jitter_seed`. `ZERO` retries
    /// immediately — the classic walk.
    pub retry_backoff: SimDuration,
    /// Seed for the retry-jitter draws; derive it from the unit seed so
    /// campaigns stay reproducible for any worker count.
    pub jitter_seed: u64,
    /// Once a hop shows rate-limit evidence (a timeout after an
    /// answer), enumerate it one probe at a time with at least this gap
    /// between launches, doubling per further starved interval up to
    /// `pace_cap`. `ZERO` disables pacing.
    pub pace_initial: SimDuration,
    /// Ceiling for the per-hop pacing gap.
    pub pace_cap: SimDuration,
    /// Flow budget for an all-star hop before giving up on it, `0`
    /// meaning the stopping rule's own scale (`rule.get(1)` — the
    /// classic behaviour). The adaptive walk sets a smaller budget:
    /// against a hop that answers *nothing*, flow diversity buys no
    /// information (filters and MPLS interiors are flow-independent),
    /// and the walk crosses more silent hops, so per-hop thrift keeps
    /// the fault-free overhead bounded.
    pub dead_hop_flows: usize,
    /// Fall back from UDP to TCP mid-walk when a run of all-star hops
    /// right after answering hops suggests a UDP filter.
    pub protocol_fallback: bool,
    /// Consecutive all-star hops that trigger the protocol fallback.
    /// Must be below `max_consecutive_stars` or abandonment wins.
    pub fallback_after_stars: u8,
    /// Watchdog: hard ceiling on probes one walk may send (`0` =
    /// unlimited; the 15-bit id space still caps every walk). When it
    /// trips with enumeration still wanting probes, the walk winds
    /// down and the resulting map is marked
    /// [`MultipathMap::degraded`].
    pub probe_budget: usize,
    /// Watchdog: ceiling on the virtual time one walk may consume
    /// ([`SimDuration::ZERO`] = unlimited), measured from the walk's
    /// start. Same wind-down and degradation semantics as
    /// [`MdaConfig::probe_budget`]; virtual time makes the cut
    /// deterministic for any worker count.
    pub time_budget: SimDuration,
}

impl Default for MdaConfig {
    fn default() -> Self {
        MdaConfig {
            alpha: 0.05,
            max_flows_per_hop: 64,
            max_ttl: 39,
            timeout: SimDuration::from_secs(2),
            max_consecutive_stars: 3,
            window: 8,
            flow_retries: 2,
            classify_repeats: 8,
            base_src_port: 40_000,
            dst_port: 33_435,
            protocol: MdaProtocol::Udp,
            retry_backoff: SimDuration::ZERO,
            jitter_seed: 0,
            pace_initial: SimDuration::ZERO,
            pace_cap: SimDuration::ZERO,
            dead_hop_flows: 0,
            protocol_fallback: false,
            fallback_after_stars: 2,
            probe_budget: 0,
            time_budget: SimDuration::ZERO,
        }
    }
}

impl MdaConfig {
    /// This configuration with `window = 1`: the strictly sequential
    /// walk (one probe in flight, hop by hop).
    pub fn sequential(self) -> Self {
        MdaConfig { window: 1, ..self }
    }

    /// The hostile-network preset: a deeper retry budget with
    /// exponential backoff and seeded jitter at hops that answer then
    /// go silent (token-bucket rate limiters), per-hop probe pacing
    /// that widens to ride out the refill interval, a longer star run
    /// before abandonment (so MPLS interiors that hide several hops do
    /// not truncate the walk), and a mid-walk UDP → TCP fallback for
    /// filtered paths. On fault-free paths none of these engage and
    /// the walk behaves like the default configuration plus a deeper
    /// (but clamped — see the dead-hop retry clamp) retry budget.
    pub fn adaptive(jitter_seed: u64) -> Self {
        MdaConfig {
            flow_retries: 5,
            max_consecutive_stars: 5,
            retry_backoff: SimDuration::from_millis(750),
            jitter_seed,
            pace_initial: SimDuration::from_millis(1_500),
            pace_cap: SimDuration::from_secs(8),
            dead_hop_flows: 4,
            protocol_fallback: true,
            fallback_after_stars: 2,
            ..MdaConfig::default()
        }
    }
}

/// Probe ids live in the 15 low bits of the pinned checksum; one walk
/// never issues more than this many probes (enforced as a launch gate),
/// so an id is never live twice and responses cannot mis-attribute.
const ID_SPACE: u16 = 0x7fff;

/// The per-probe identifier rides in the pinned UDP checksum; the high
/// bit marks "one of ours" and keeps the pinned value nonzero.
fn tag_of(id: u16) -> u16 {
    0x8000 | (id & ID_SPACE)
}

#[allow(clippy::too_many_arguments)]
fn build_probe(
    config: &MdaConfig,
    proto: MdaProtocol,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    ttl: u8,
    flow: u16,
    id: u16,
    mut payload: Vec<u8>,
) -> Packet {
    match proto {
        MdaProtocol::Udp => {
            let mut ip = Ipv4Header::new(src, dst, protocol::UDP, ttl);
            ip.total_length = (pt_wire::ipv4::HEADER_LEN + pt_wire::udp::HEADER_LEN + 2) as u16;
            let udp = UdpDatagram::with_pinned_checksum_in(
                config.base_src_port.wrapping_add(flow),
                config.dst_port,
                tag_of(id),
                2,
                &ip,
                payload,
            );
            Packet::new(ip, Wire::Udp(udp))
        }
        MdaProtocol::Tcp => {
            let ip = Ipv4Header::new(src, dst, protocol::TCP, ttl);
            let mut seg = TcpSegment::syn_probe(
                config.base_src_port.wrapping_add(flow),
                TCP_FALLBACK_PORT,
                u32::from(tag_of(id)),
            );
            // SYN probes carry no data; the buffer rides along
            // (cleared) so its allocation rejoins the pool.
            payload.clear();
            seg.payload = payload;
            Packet::new(ip, Wire::Tcp(seg))
        }
    }
}

/// Recover the probe id a response answers, if it answers one of this
/// walk's probes at all — under the probe protocol currently in force.
/// UDP: mid-path ICMP errors and the terminal Port Unreachable, all
/// quoting the probe's UDP header. TCP: quoted SYNs mid-path, plus the
/// destination's own SYN-ACK/RST whose Acknowledgment is our Sequence
/// plus one. After a mid-walk protocol switch, straggler responses to
/// the abandoned protocol fail here and are released as strays.
fn match_response(
    config: &MdaConfig,
    proto: MdaProtocol,
    dst: Ipv4Addr,
    response: &Packet,
) -> Option<u16> {
    if proto == MdaProtocol::Tcp && response.ip.src == dst {
        if let Wire::Tcp(seg) = &response.transport {
            if seg.src_port != TCP_FALLBACK_PORT
                || seg.control & (tcp_flags::SYN | tcp_flags::RST) == 0
            {
                return None;
            }
            let flow = seg.dst_port.wrapping_sub(config.base_src_port);
            if usize::from(flow) >= config.max_flows_per_hop {
                return None;
            }
            let tag = seg.ack.wrapping_sub(1);
            if tag > u32::from(u16::MAX) {
                return None;
            }
            let tag = tag as u16;
            return (tag & 0x8000 != 0).then_some(tag & ID_SPACE);
        }
    }
    let q = quotation_for(dst, response)?;
    let (quoted_proto, expected_dst_port) = match proto {
        MdaProtocol::Udp => (protocol::UDP, config.dst_port),
        MdaProtocol::Tcp => (protocol::TCP, TCP_FALLBACK_PORT),
    };
    if q.ip.protocol != quoted_proto {
        return None;
    }
    if prefix_u16(&q.transport_prefix, 2) != expected_dst_port {
        return None;
    }
    let sp = prefix_u16(&q.transport_prefix, 0);
    let flow = sp.wrapping_sub(config.base_src_port);
    if usize::from(flow) >= config.max_flows_per_hop {
        return None;
    }
    let tag = match proto {
        // The pinned checksum sits in quoted octets 6–7.
        MdaProtocol::Udp => prefix_u16(&q.transport_prefix, 6),
        // The Sequence Number sits in quoted octets 4–7; ours never
        // exceed sixteen bits.
        MdaProtocol::Tcp => {
            let seq = prefix_u32(&q.transport_prefix, 4);
            if seq > u32::from(u16::MAX) {
                return None;
            }
            seq as u16
        }
    };
    (tag & 0x8000 != 0).then_some(tag & ID_SPACE)
}

/// SplitMix64 — the same tiny generator the campaign layer uses to
/// derive per-unit seeds; here it turns `(seed, key)` into retry
/// jitter without any RNG state to carry.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Flow budget for a hop with no interface yet: the configured
/// dead-hop budget, or the stopping rule's own scale when unset.
fn dead_hop_budget(rule: &mut RuleTable, config: &MdaConfig) -> usize {
    if config.dead_hop_flows > 0 {
        config.dead_hop_flows
    } else {
        rule.get(1)
    }
}

/// Exponential backoff with deterministic jitter for the `attempt`-th
/// retry of `flow` at `ttl`: `retry_backoff * 2^attempt`, plus up to
/// half that again drawn from the walk's jitter seed — reproducible,
/// and no two flows thunder back in lockstep.
fn backoff_delay(config: &MdaConfig, ttl: u8, flow: u16, attempt: u8) -> SimDuration {
    if config.retry_backoff == SimDuration::ZERO {
        return SimDuration::ZERO;
    }
    let base = config.retry_backoff.nanos().saturating_mul(1u64 << u32::from(attempt.min(6)));
    let key = (u64::from(ttl) << 32) | (u64::from(flow) << 16) | u64::from(attempt);
    let jitter = splitmix64(config.jitter_seed ^ key) % (base / 2 + 1);
    SimDuration::from_nanos(base.saturating_add(jitter))
}

fn is_terminal(dst: Ipv4Addr, response: &Packet) -> bool {
    response.ip.src == dst
        || matches!(&response.transport, Wire::Icmp(IcmpMessage::DestUnreachable { .. }))
}

/// One flow's probing state at one hop.
#[derive(Debug, Clone, Copy)]
enum Slot {
    /// A probe for this flow is in flight; `retries_left` more probes
    /// may follow if it times out.
    InFlight { retries_left: u8 },
    /// The last probe timed out but retries remain; the launcher will
    /// re-probe this flow before opening new ones, but no earlier than
    /// `not_before` (the adaptive walk's exponential backoff; the
    /// classic walk sets it to the expiry instant, i.e. immediately).
    AwaitingRetry { retries_left: u8, not_before: SimTime },
    /// The flow got an answer.
    Answered { addr: Ipv4Addr, terminal: bool },
    /// The flow never answered, retries included.
    Star,
}

/// Per-hop walk state. Lives in [`MdaScratch`] and is reused (inner
/// vectors keep their capacity) across walks.
#[derive(Debug, Default)]
struct HopState {
    ttl: u8,
    slots: Vec<Slot>,
    /// Leading slots folded into the rule state, strictly in flow order.
    committed: usize,
    /// Distinct committed interfaces, in first-seen order.
    interfaces: Vec<Ipv4Addr>,
    /// Committed `(flow, responder)` evidence.
    flows: Vec<(u16, Ipv4Addr)>,
    stars: usize,
    answered: usize,
    terminals: usize,
    probes_sent: usize,
    enum_done: bool,
    converged: bool,
    classify_target: usize,
    class_launched: usize,
    class_resolved: usize,
    class_answered: usize,
    class_addrs: Vec<Ipv4Addr>,
    /// Rate-limit evidence seen: the hop answered, then starved. While
    /// paced, the hop takes one probe at a time, gated on `gate`.
    paced: bool,
    /// Current pacing gap; doubles per starved interval up to the cap.
    pace: SimDuration,
    /// No probe launches at a paced hop before this instant.
    gate: SimTime,
    /// Last instant the pacing gap was escalated, so one sweep that
    /// expires a whole window of probes at once escalates it once.
    pace_bumped_at: SimTime,
    /// Starved intervals (distinct expiry instants after an answer)
    /// seen at this hop. Pacing engages on the second one: a single
    /// timeout is indistinguishable from ordinary link loss, while a
    /// token-bucket limiter starves every interval after its burst.
    starves: u8,
}

impl HopState {
    fn reset(&mut self, ttl: u8) {
        self.ttl = ttl;
        self.slots.clear();
        self.committed = 0;
        self.interfaces.clear();
        self.flows.clear();
        self.stars = 0;
        self.answered = 0;
        self.terminals = 0;
        self.probes_sent = 0;
        self.enum_done = false;
        self.converged = false;
        self.classify_target = 0;
        self.class_launched = 0;
        self.class_resolved = 0;
        self.class_answered = 0;
        self.class_addrs.clear();
        self.paced = false;
        self.pace = SimDuration::ZERO;
        self.gate = SimTime::ZERO;
        self.pace_bumped_at = SimTime::ZERO;
        self.starves = 0;
    }

    /// Any answer at this hop, committed or not — evidence the router
    /// responds at all, i.e. that silence is rate limiting rather than
    /// a black hole, and retrying with backoff is worth the wait.
    fn lively(&self) -> bool {
        self.answered > 0 || self.slots.iter().any(|s| matches!(s, Slot::Answered { .. }))
    }

    /// Probes of this hop currently in flight (enumeration and
    /// classification) — what a paced hop holds to at most one.
    fn outstanding(&self) -> usize {
        self.slots.iter().filter(|s| matches!(s, Slot::InFlight { .. })).count()
            + (self.class_launched - self.class_resolved)
    }

    /// Flows this hop's enumeration wants launched in total, given the
    /// committed evidence so far: enough that — if every pending probe
    /// lands on the seen set — the stopping rule fires exactly at the
    /// last one. Grows when new interfaces (or stars, which carry no
    /// evidence) commit; never shrinks below what was already launched.
    fn target(&self, rule: &mut RuleTable, config: &MdaConfig) -> usize {
        if self.enum_done {
            return self.slots.len();
        }
        let k = self.interfaces.len();
        let t = if k == 0 {
            // No interface yet: an all-silent hop is abandoned after as
            // many flows as would rule out a *second* interface had one
            // answered — the rule's own scale, not the full flow budget
            // (or the adaptive walk's smaller `dead_hop_flows` budget).
            dead_hop_budget(rule, config)
        } else {
            // The rule bounds *answered* probes at the hop (the MDA
            // table's n_k is a total, discovery probes included); a
            // lost probe observes nothing, so each committed star
            // widens the send budget by exactly one — the
            // loss-adjusted rule. Loss can only widen, never narrow,
            // the hop hypothesis.
            rule.get_lossy(k, self.stars)
        };
        t.min(config.max_flows_per_hop)
    }

    /// Fold resolved leading slots into the rule state and take the
    /// stopping decision. Called whenever a slot resolves.
    fn commit(&mut self, rule: &mut RuleTable, config: &MdaConfig) {
        while !self.enum_done && self.committed < self.slots.len() {
            match self.slots[self.committed] {
                Slot::Answered { addr, terminal } => {
                    self.flows.push((self.committed as u16, addr));
                    if !self.interfaces.contains(&addr) {
                        self.interfaces.push(addr);
                    }
                    self.answered += 1;
                    if terminal {
                        self.terminals += 1;
                    }
                }
                Slot::Star => self.stars += 1,
                Slot::InFlight { .. } | Slot::AwaitingRetry { .. } => break,
            }
            self.committed += 1;
            let k = self.interfaces.len();
            // The loss-adjusted stopping point: `answered + stars`
            // committed flows against the base requirement plus the
            // observed loss — i.e. the rule still demands its full
            // count of *answered* probes, and every star defers it.
            if k >= 1 && self.committed >= rule.get_lossy(k, self.stars) {
                self.enum_done = true;
                self.converged = self.stars == 0;
            } else if k == 0 && self.committed >= dead_hop_budget(rule, config) {
                self.enum_done = true; // all-star hop: give up early
            } else if self.committed >= config.max_flows_per_hop {
                self.enum_done = true; // flow budget exhausted
            }
        }
        if self.enum_done && self.classify_target == 0 && self.interfaces.len() >= 2 {
            self.classify_target = usize::from(config.classify_repeats);
        }
    }

    /// Every committed answer was terminal (and there was at least
    /// one): this hop is the end of the walk.
    fn terminal_complete(&self) -> bool {
        self.answered > 0 && self.terminals == self.answered
    }

    /// Enumeration and the inline classification batch are both done;
    /// the hop can be finalized in TTL order. Speculative enumeration
    /// probes past the committed prefix may still be in flight — their
    /// answers are discarded, so they need not be waited for.
    fn finalized(&self) -> bool {
        self.enum_done
            && self.class_launched == self.classify_target
            && self.class_resolved == self.classify_target
    }

    fn class(&self) -> BalancerClass {
        if self.interfaces.len() < 2 {
            BalancerClass::NotBalanced
        } else if self.class_answered < 2 {
            BalancerClass::Undetermined
        } else if self.class_addrs.len() > 1 {
            BalancerClass::PerPacket
        } else {
            BalancerClass::PerFlow
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum ProbeKind {
    Enumerate { flow: u16 },
    Classify,
}

#[derive(Debug, Clone, Copy)]
struct RegEntry {
    id: u16,
    hop: usize,
    kind: ProbeKind,
    deadline: SimTime,
}

/// What the launch scan decided to send next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Launch {
    Retry { hop: usize, flow: u16 },
    NewFlow { hop: usize },
    Classify { hop: usize },
    OpenHop,
}

const RECORD_POOL_CAP: usize = 64;

/// Reusable per-walk bookkeeping: the outstanding-probe registry, the
/// per-hop walk states, the stopping-rule memo, and pools of result
/// vectors harvested from finished maps. A caller that keeps one
/// `MdaScratch` across walks — recycling each consumed
/// [`MultipathMap`] back into it — runs [`discover_with`] with zero
/// steady-state heap allocation.
#[derive(Debug, Default)]
pub struct MdaScratch {
    registry: Vec<RegEntry>,
    states: Vec<HopState>,
    rule: RuleTable,
    record_pool: Vec<HopInterfaces>,
    hops_pool: Vec<Vec<HopInterfaces>>,
    links_pool: Vec<Vec<DagLink>>,
}

impl MdaScratch {
    /// Empty scratch; warms up over the first walk.
    pub fn new() -> Self {
        Self::default()
    }

    /// Harvest a finished map's vectors for reuse by later walks. Call
    /// this instead of dropping maps you have finished reading.
    pub fn recycle(&mut self, map: MultipathMap) {
        let mut hops = map.hops;
        for hop in hops.drain(..) {
            if self.record_pool.len() < RECORD_POOL_CAP {
                self.record_pool.push(hop);
            }
        }
        if self.hops_pool.len() < 4 {
            self.hops_pool.push(hops);
        }
        if self.links_pool.len() < 4 {
            let mut links = map.links;
            links.clear();
            self.links_pool.push(links);
        }
    }

    fn take_record(&mut self, ttl: u8) -> HopInterfaces {
        let mut rec = self.record_pool.pop().unwrap_or_else(|| HopInterfaces {
            ttl,
            interfaces: Vec::new(),
            flows: Vec::new(),
            probes_sent: 0,
            stars: 0,
            converged: false,
            class: BalancerClass::NotBalanced,
        });
        rec.ttl = ttl;
        rec.interfaces.clear();
        rec.flows.clear();
        rec.probes_sent = 0;
        rec.stars = 0;
        rec.converged = false;
        rec.class = BalancerClass::NotBalanced;
        rec
    }
}

/// Discover the multipath DAG toward `destination`, allocating fresh
/// bookkeeping. Prefer [`discover_with`] in loops.
pub fn discover<T: Transport>(
    transport: &mut T,
    destination: Ipv4Addr,
    config: &MdaConfig,
) -> MultipathMap {
    discover_with(transport, destination, config, &mut MdaScratch::new())
}

/// Discover the multipath DAG toward `destination`, reusing `scratch`
/// for all per-walk bookkeeping. With a warm scratch and a pooling
/// transport, the whole probe→response cycle performs no heap
/// allocation.
///
/// Up to [`MdaConfig::window`] probes stay in flight at once (see the
/// module docs for the windowed semantics); `window = 1` reproduces
/// the strictly sequential walk, and both discover the identical DAG
/// on deterministic networks.
pub fn discover_with<T: Transport>(
    transport: &mut T,
    destination: Ipv4Addr,
    config: &MdaConfig,
    scratch: &mut MdaScratch,
) -> MultipathMap {
    assert!(
        config.max_flows_per_hop >= 1
            && config.max_flows_per_hop <= usize::from(u16::MAX - config.base_src_port),
        "flow ids must fit the source-port space above base_src_port"
    );
    let source = transport.source_addr();
    let window = usize::from(config.window).max(1);
    scratch.rule.reset(config.alpha);
    scratch.registry.clear();

    let mut opened = 0usize; // states[..opened] are live this walk
    let mut frontier = 0usize; // first hop not yet finalized
    let mut consecutive_stars = 0u8;
    let mut next_id: u16 = 0;
    let mut total_probes = 0usize;
    let mut proto = config.protocol;
    let kept: usize;

    // Watchdog budgets: the probe gate folds the configured ceiling
    // into the id-space cap; the time cutoff is anchored at the walk's
    // start. `budget_hit` records that a closed gate cut off launches
    // the walk still wanted, which marks the resulting map degraded.
    let start = transport.now();
    let probe_gate = if config.probe_budget == 0 {
        usize::from(ID_SPACE)
    } else {
        config.probe_budget.min(usize::from(ID_SPACE))
    };
    let time_cutoff = (config.time_budget.nanos() > 0).then(|| start + config.time_budget);
    let mut budget_hit = false;

    'drive: loop {
        // 1. Finalize complete hops in TTL order. Everything the map
        //    reports — which hops exist, where the walk stops — is
        //    decided here, so speculative probes cannot change it.
        while frontier < opened && scratch.states[frontier].finalized() {
            let h = &scratch.states[frontier];
            if h.terminal_complete() {
                kept = frontier + 1;
                break 'drive;
            }
            if h.interfaces.is_empty() {
                consecutive_stars += 1;
                if proto == MdaProtocol::Udp
                    && config.protocol_fallback
                    && consecutive_stars >= config.fallback_after_stars
                {
                    // A run of all-star hops right behind answering
                    // hops smells like a UDP filter, not a dead path:
                    // roll the starred run back and re-enumerate it
                    // over TCP. Outstanding probes at the rolled-back
                    // hops are forgotten (their late answers no longer
                    // match the protocol in force); hops before the
                    // run keep their committed UDP evidence.
                    let first = frontier + 1 - usize::from(consecutive_stars);
                    scratch.registry.retain(|e| e.hop < first);
                    opened = first;
                    frontier = first;
                    consecutive_stars = 0;
                    proto = MdaProtocol::Tcp;
                    continue 'drive;
                }
                if consecutive_stars >= config.max_consecutive_stars {
                    kept = frontier + 1;
                    break 'drive;
                }
            } else {
                consecutive_stars = 0;
            }
            frontier += 1;
        }

        // 2. Top up the probe window in deterministic priority order:
        //    lowest unfinished hop first; within a hop, retries before
        //    new flows before the classification batch; a new hop opens
        //    only when no existing hop wants a probe. The 15-bit probe
        //    id space is a hard launch gate: a (degenerate) walk that
        //    exhausts it winds down with partial, unconverged hops
        //    rather than recycling ids into mis-attribution.
        let now = transport.now();
        let mut wake: Option<SimTime> = None;
        while scratch.registry.len() < window {
            if total_probes >= probe_gate || time_cutoff.is_some_and(|cutoff| now >= cutoff) {
                // A watchdog (or the id space) closed the launch gate.
                // Leaving `wake` unset lets the walk wind down: once
                // the registry drains, nothing reopens it. The map is
                // degraded only if enumeration still wanted probes —
                // a walk that was already done keeps a clean bill.
                if !budget_hit {
                    let (launch, next_ready) = next_launch(
                        &scratch.states[..opened],
                        &mut scratch.rule,
                        config,
                        frontier,
                        now,
                    );
                    budget_hit = launch.is_some() || next_ready.is_some();
                }
                break;
            }
            let (launch, next_ready) =
                next_launch(&scratch.states[..opened], &mut scratch.rule, config, frontier, now);
            wake = next_ready;
            let Some(launch) = launch else {
                break;
            };
            let (hop_idx, flow, retries_left, kind) = match launch {
                Launch::Retry { hop, flow } => {
                    let Slot::AwaitingRetry { retries_left, .. } =
                        scratch.states[hop].slots[usize::from(flow)]
                    else {
                        unreachable!("retry launch on a non-retry slot")
                    };
                    (hop, flow, retries_left, ProbeKind::Enumerate { flow })
                }
                Launch::NewFlow { hop } => {
                    let flow = scratch.states[hop].slots.len() as u16;
                    (hop, flow, config.flow_retries, ProbeKind::Enumerate { flow })
                }
                Launch::Classify { hop } => {
                    // Re-probe with the first flow that answered — a
                    // committed, deterministic choice that avoids
                    // pinning the batch to a silent branch.
                    let flow = scratch.states[hop]
                        .flows
                        .first()
                        .map(|&(f, _)| f)
                        .expect("classification only runs on hops with answers");
                    (hop, flow, 0, ProbeKind::Classify)
                }
                Launch::OpenHop => {
                    if opened == scratch.states.len() {
                        scratch.states.push(HopState::default());
                    }
                    let ttl = opened as u8 + 1;
                    scratch.states[opened].reset(ttl);
                    opened += 1;
                    continue; // the next scan launches its first flow
                }
            };
            let st = &mut scratch.states[hop_idx];
            match kind {
                ProbeKind::Enumerate { .. } => {
                    let slot = Slot::InFlight { retries_left };
                    if usize::from(flow) == st.slots.len() {
                        st.slots.push(slot);
                    } else {
                        st.slots[usize::from(flow)] = slot;
                    }
                }
                ProbeKind::Classify => st.class_launched += 1,
            }
            if st.paced {
                st.gate = now + st.pace;
            }
            st.probes_sent += 1;
            total_probes += 1;
            let ttl = st.ttl;
            let payload = transport.grab_payload();
            let packet =
                build_probe(config, proto, source, destination, ttl, flow, next_id, payload);
            let sent = transport.now();
            scratch.registry.push(RegEntry {
                id: next_id,
                hop: hop_idx,
                kind,
                deadline: sent + config.timeout,
            });
            next_id = next_id.wrapping_add(1) & ID_SPACE;
            transport.send(packet);
        }

        if scratch.registry.is_empty() {
            if let Some(at) = wake {
                // Nothing in flight but a deferred launch (a backoff
                // retry or a paced hop's gate) is pending: idle the
                // clock forward until it is due. Anything delivered
                // meanwhile answers no outstanding probe — a stray.
                if let Some((_, resp)) = transport.recv_until(at) {
                    transport.release(resp);
                }
                continue 'drive;
            }
            // Nothing in flight and nothing launchable: every opened
            // hop is finalized and the TTL ceiling stops new ones.
            kept = opened;
            break;
        }

        // 3. Resolve whichever in-flight probe settles first: a
        //    response that already arrived, the next response before
        //    the earliest outstanding deadline, or that deadline.
        let delivery = match transport.try_recv() {
            Some(d) => d,
            None => {
                let deadline = scratch
                    .registry
                    .iter()
                    .map(|e| e.deadline)
                    .min()
                    .expect("outstanding probes carry deadlines");
                // A deferred launch due earlier than every deadline
                // bounds the wait: wake up, launch it, keep walking.
                let deadline = wake.map_or(deadline, |w| deadline.min(w));
                match transport.recv_until(deadline) {
                    Some(d) => d,
                    None => {
                        // The deadline passed silently: expire every
                        // probe whose window has closed — stars after
                        // retries, retries otherwise.
                        let now = transport.now();
                        let mut i = 0;
                        while i < scratch.registry.len() {
                            if scratch.registry[i].deadline > now {
                                i += 1;
                                continue;
                            }
                            let e = scratch.registry.swap_remove(i);
                            let st = &mut scratch.states[e.hop];
                            match e.kind {
                                ProbeKind::Enumerate { flow } => {
                                    let fi = usize::from(flow);
                                    if st.enum_done && fi >= st.committed {
                                        continue; // speculative leftover
                                    }
                                    let Slot::InFlight { retries_left } = st.slots[fi] else {
                                        continue;
                                    };
                                    let lively = st.lively();
                                    // Timeouts at a hop that has
                                    // answered are rate-limit
                                    // evidence — but only repeated
                                    // ones. Count one starve per sweep
                                    // instant (one starved window is
                                    // one signal) and engage or widen
                                    // pacing from the second on; a
                                    // lone timeout is ordinary link
                                    // loss and costs only its backoff.
                                    if lively
                                        && config.pace_initial > SimDuration::ZERO
                                        && st.pace_bumped_at != now
                                    {
                                        st.pace_bumped_at = now;
                                        st.starves = st.starves.saturating_add(1);
                                        if st.starves >= 2 {
                                            st.paced = true;
                                            st.pace = if st.pace == SimDuration::ZERO {
                                                config.pace_initial
                                            } else {
                                                (st.pace + st.pace).min(config.pace_cap)
                                            };
                                        }
                                    }
                                    let spent = config.flow_retries.saturating_sub(retries_left);
                                    let exhausted = retries_left == 0
                                        || (config.retry_backoff > SimDuration::ZERO
                                            && !lively
                                            && spent >= DEAD_FLOW_RETRIES);
                                    st.slots[fi] = if exhausted {
                                        Slot::Star
                                    } else {
                                        // First retry fires immediately
                                        // (right for isolated loss, and
                                        // exactly the classic walk);
                                        // repeats back off — by then
                                        // the silence is a pattern.
                                        let not_before = if lively && spent >= 1 {
                                            now + backoff_delay(config, st.ttl, flow, spent - 1)
                                        } else {
                                            now
                                        };
                                        Slot::AwaitingRetry {
                                            retries_left: retries_left - 1,
                                            not_before,
                                        }
                                    };
                                    st.commit(&mut scratch.rule, config);
                                }
                                ProbeKind::Classify => st.class_resolved += 1,
                            }
                        }
                        continue 'drive;
                    }
                }
            }
        };
        let (_at, resp) = delivery;
        let Some(id) = match_response(config, proto, destination, &resp) else {
            transport.release(resp);
            continue; // stray packet
        };
        let Some(pos) = scratch.registry.iter().position(|e| e.id == id) else {
            transport.release(resp);
            continue; // late (already expired) or duplicate
        };
        let entry = scratch.registry.swap_remove(pos);
        let from = resp.ip.src;
        let terminal = is_terminal(destination, &resp);
        transport.release(resp);
        let st = &mut scratch.states[entry.hop];
        match entry.kind {
            ProbeKind::Enumerate { flow } => {
                let fi = usize::from(flow);
                if st.enum_done && fi >= st.committed {
                    continue; // speculative result past the stopping point
                }
                debug_assert!(matches!(st.slots[fi], Slot::InFlight { .. }));
                st.slots[fi] = Slot::Answered { addr: from, terminal };
                st.commit(&mut scratch.rule, config);
            }
            ProbeKind::Classify => {
                st.class_resolved += 1;
                st.class_answered += 1;
                if !st.class_addrs.contains(&from) {
                    st.class_addrs.push(from);
                }
            }
        }
    }

    // Convert the kept walk states into the result map. Interfaces are
    // copied (not moved) out of the states so the states keep their
    // warm capacity for the next walk.
    let mut hops: Vec<HopInterfaces> = scratch.hops_pool.pop().unwrap_or_default();
    hops.clear();
    for i in 0..kept {
        let mut rec = scratch.take_record(scratch.states[i].ttl);
        let st = &scratch.states[i];
        rec.interfaces.extend_from_slice(&st.interfaces);
        rec.interfaces.sort_unstable();
        rec.flows.extend_from_slice(&st.flows);
        rec.probes_sent = st.probes_sent;
        rec.stars = st.stars;
        rec.converged = st.converged;
        rec.class = st.class();
        hops.push(rec);
    }
    let mut links: Vec<DagLink> = scratch.links_pool.pop().unwrap_or_default();
    links.clear();
    for i in 1..hops.len() {
        let (a, b) = (&hops[i - 1], &hops[i]);
        // Merge-join on flow id (both lists are in flow order).
        let (mut x, mut y) = (0, 0);
        while x < a.flows.len() && y < b.flows.len() {
            match a.flows[x].0.cmp(&b.flows[y].0) {
                std::cmp::Ordering::Less => x += 1,
                std::cmp::Ordering::Greater => y += 1,
                std::cmp::Ordering::Equal => {
                    links.push(DagLink { from_ttl: a.ttl, from: a.flows[x].1, to: b.flows[y].1 });
                    x += 1;
                    y += 1;
                }
            }
        }
    }
    links.sort_unstable();
    links.dedup();
    let reached = hops.iter().any(|h| h.interfaces.contains(&destination));
    MultipathMap { destination, hops, links, total_probes, reached, degraded: budget_hit }
}

/// Deterministic launch priority: scan hops from the finalization
/// frontier; the first hop still enumerating takes retries (lowest
/// flow first), then new flows up to its current target; a converged
/// balanced hop takes its classification batch; only when no open hop
/// wants a probe does a new hop open — and never past a hop already
/// known to be terminal, nor past the TTL ceiling.
///
/// Adaptive deferrals ride alongside: a backoff retry whose
/// `not_before` is still ahead, or a paced hop whose gate has not
/// opened (or that already holds its one allowed probe), is skipped
/// for now and its due time folded into the returned wake-up instant —
/// the drive loop idles the clock to the earlier of that instant and
/// the next probe deadline, so deferred launches fire exactly on time
/// and deeper hops keep walking meanwhile.
fn next_launch(
    states: &[HopState],
    rule: &mut RuleTable,
    config: &MdaConfig,
    frontier: usize,
    now: SimTime,
) -> (Option<Launch>, Option<SimTime>) {
    fn defer(wake: &mut Option<SimTime>, at: SimTime) {
        *wake = Some(wake.map_or(at, |w| w.min(at)));
    }
    let mut wake: Option<SimTime> = None;
    let mut terminal_known = false;
    for (i, st) in states.iter().enumerate().skip(frontier) {
        // A paced hop (rate-limit evidence) launches one probe at a
        // time, no earlier than its gate.
        let gated = st.paced && (st.outstanding() > 0 || st.gate > now);
        if !st.enum_done {
            if gated {
                if st.outstanding() == 0 {
                    defer(&mut wake, st.gate);
                }
            } else {
                let mut ready = None;
                for (fi, s) in st.slots.iter().enumerate() {
                    if let Slot::AwaitingRetry { not_before, .. } = s {
                        if *not_before <= now {
                            ready = Some(fi);
                            break;
                        }
                        defer(&mut wake, *not_before);
                    }
                }
                if let Some(fi) = ready {
                    return (Some(Launch::Retry { hop: i, flow: fi as u16 }), wake);
                }
                if st.slots.len() < st.target(rule, config) {
                    return (Some(Launch::NewFlow { hop: i }), wake);
                }
            }
        } else if st.class_launched < st.classify_target {
            if gated {
                if st.outstanding() == 0 {
                    defer(&mut wake, st.gate);
                }
            } else {
                return (Some(Launch::Classify { hop: i }), wake);
            }
        }
        terminal_known |= st.enum_done && st.terminal_complete();
    }
    if !terminal_known && states.len() < usize::from(config.max_ttl) {
        return (Some(Launch::OpenHop), wake);
    }
    (None, wake)
}

/// Distinguish per-flow from per-packet balancing at `ttl`: send
/// `repeats` probes with an identical flow identifier and watch the
/// responder set. The standalone form of the classification the walk
/// performs inline; useful for re-probing a known hop.
pub fn classify_balancer<T: Transport>(
    transport: &mut T,
    destination: Ipv4Addr,
    ttl: u8,
    repeats: usize,
    config: &MdaConfig,
) -> BalancerClass {
    let source = transport.source_addr();
    let mut seen: Vec<Ipv4Addr> = Vec::new();
    let mut answered = 0usize;
    for i in 0..repeats {
        let payload = transport.grab_payload();
        let id = (i & 0x7fff) as u16;
        let probe = build_probe(config, config.protocol, source, destination, ttl, 0, id, payload);
        transport.send(probe);
        let deadline = transport.now() + config.timeout;
        while let Some((_, resp)) = transport.recv_until(deadline) {
            let matched = match_response(config, config.protocol, destination, &resp) == Some(id);
            let from = resp.ip.src;
            transport.release(resp);
            if matched {
                answered += 1;
                if !seen.contains(&from) {
                    seen.push(from);
                }
                break;
            }
        }
    }
    if answered < 2 {
        BalancerClass::Undetermined
    } else if seen.len() > 1 {
        BalancerClass::PerPacket
    } else {
        BalancerClass::PerFlow
    }
}
