//! Ground-truth validation — the experiment the paper could not run.
//!
//! Because the synthetic Internet records what it planted on every
//! branch ([`pt_topogen::DestTruth`]), we can score the anomaly
//! classifiers: of the destinations where the generator installed a
//! zero-TTL forwarder, how many did the classic campaign flag with a
//! zero-TTL loop? Of the flagged ones, how many were real?

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use pt_anomaly::r#loop::LoopCause;
use pt_anomaly::{find_loops, CampaignAccumulator};
use pt_core::{MeasuredRoute, StrategyId};
use pt_mda::BalancerClass;
use pt_topogen::SyntheticInternet;

use crate::runner::{DestMultipath, MultipathResult};

/// Precision/recall for one cause classifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CauseScore {
    /// Destinations the generator gave this anomaly source.
    pub truth_positives: usize,
    /// Destinations the classifier flagged.
    pub flagged: usize,
    /// Flagged ∩ truth.
    pub hits: usize,
}

impl CauseScore {
    /// Fraction of flagged destinations that truly have the source.
    pub fn precision(&self) -> f64 {
        if self.flagged == 0 {
            1.0
        } else {
            self.hits as f64 / self.flagged as f64
        }
    }

    /// Fraction of true sources that got flagged.
    pub fn recall(&self) -> f64 {
        if self.truth_positives == 0 {
            1.0
        } else {
            self.hits as f64 / self.truth_positives as f64
        }
    }
}

/// Classifier scores against generator ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// Zero-TTL forwarding detection.
    pub zero_ttl: CauseScore,
    /// NAT / address rewriting detection.
    pub rewriting: CauseScore,
    /// Unreachability detection.
    pub unreachability: CauseScore,
    /// Per-flow-LB attribution (classic-minus-Paris differencing),
    /// scored against destinations with an unequal-length per-flow
    /// balancer (the only per-flow ones that can cause loops).
    pub per_flow: CauseScore,
}

/// Score the per-route loop classifiers over a set of measured routes
/// (typically a `keep_routes` campaign's classic routes).
pub fn validate_causes(
    net: &SyntheticInternet,
    routes: &[(StrategyId, usize, MeasuredRoute)],
    classic: &CampaignAccumulator,
    paris: &CampaignAccumulator,
) -> ValidationReport {
    let mut flagged_zero_ttl: BTreeSet<Ipv4Addr> = BTreeSet::new();
    let mut flagged_rewriting: BTreeSet<Ipv4Addr> = BTreeSet::new();
    let mut flagged_unreach: BTreeSet<Ipv4Addr> = BTreeSet::new();
    for (tool, _, route) in routes {
        if *tool != StrategyId::ClassicUdp {
            continue;
        }
        for l in find_loops(route) {
            match l.cause {
                LoopCause::ZeroTtlForwarding => {
                    flagged_zero_ttl.insert(route.destination);
                }
                LoopCause::AddressRewriting => {
                    flagged_rewriting.insert(route.destination);
                }
                LoopCause::Unreachability => {
                    flagged_unreach.insert(route.destination);
                }
                LoopCause::Unexplained => {}
            }
        }
    }
    // Per-flow attribution: classic loop signature absent under Paris.
    let paris_sigs = paris.loop_signatures();
    let flagged_per_flow: BTreeSet<Ipv4Addr> = classic
        .loop_signatures()
        .into_iter()
        .filter(|sig| !paris_sigs.contains(sig))
        .map(|(_, dest)| dest)
        .collect();
    // Only count per-flow flags at destinations without a route-local
    // cause (mirrors the attribution precedence).
    let flagged_per_flow: BTreeSet<Ipv4Addr> = flagged_per_flow
        .difference(
            &flagged_zero_ttl
                .union(&flagged_rewriting)
                .chain(flagged_unreach.iter())
                .copied()
                .collect(),
        )
        .copied()
        .collect();

    let score = |flagged: &BTreeSet<Ipv4Addr>, truth: &dyn Fn(&pt_topogen::DestTruth) -> bool| {
        let truth_set: BTreeSet<Ipv4Addr> =
            net.dests.iter().filter(|d| truth(&d.truth)).map(|d| d.addr).collect();
        CauseScore {
            truth_positives: truth_set.len(),
            flagged: flagged.len(),
            hits: flagged.intersection(&truth_set).count(),
        }
    };

    ValidationReport {
        zero_ttl: score(&flagged_zero_ttl, &|t| t.zero_ttl),
        rewriting: score(&flagged_rewriting, &|t| t.nat),
        unreachability: score(&flagged_unreach, &|t| t.broken),
        per_flow: score(&flagged_per_flow, &|t| t.per_flow_lb && t.lb_delta >= 1),
    }
}

/// Multipath discovery scored against the generator's planted
/// balancers ([`pt_topogen::DestTruth`]): of the destinations that
/// carry one, how many did MDA recover — width, branch-length delta
/// *and* per-flow/per-packet class — and did any plain destination get
/// flagged as balanced?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultipathScore {
    /// Destinations the generator gave a balancer.
    pub balancer_dests: usize,
    /// Destinations without one.
    pub plain_dests: usize,
    /// Balancer destinations whose discovery shows a balanced hop.
    pub discovered: usize,
    /// ... whose confident width equals the planted `lb_width`.
    pub width_correct: usize,
    /// ... whose discovered delta equals the planted `lb_delta`.
    pub delta_correct: usize,
    /// ... classified per-flow/per-packet matching the planted kind.
    pub class_correct: usize,
    /// Balancer destinations where all three match.
    pub full_matches: usize,
    /// Plain destinations falsely flagged as balanced (any class other
    /// than `NotBalanced`).
    pub false_balancers: usize,
}

impl MultipathScore {
    /// Fraction of balancer destinations fully recovered (width, delta
    /// and class all correct). 1.0 when the network has no balancers.
    pub fn accuracy(&self) -> f64 {
        if self.balancer_dests == 0 {
            1.0
        } else {
            self.full_matches as f64 / self.balancer_dests as f64
        }
    }
}

/// Score a multipath campaign against the generator's ground truth.
pub fn validate_multipath(net: &SyntheticInternet, result: &MultipathResult) -> MultipathScore {
    let mut score = MultipathScore {
        balancer_dests: 0,
        plain_dests: 0,
        discovered: 0,
        width_correct: 0,
        delta_correct: 0,
        class_correct: 0,
        full_matches: 0,
        false_balancers: 0,
    };
    for d in &result.per_dest {
        let truth = &net.dests[d.dest].truth;
        match truth.balancer() {
            None => {
                score.plain_dests += 1;
                if d.class != BalancerClass::NotBalanced {
                    score.false_balancers += 1;
                }
            }
            Some((width, delta, per_packet)) => {
                score.balancer_dests += 1;
                if d.class == BalancerClass::NotBalanced {
                    continue;
                }
                score.discovered += 1;
                let width_ok = d.width == usize::from(width);
                let delta_ok = d.delta == delta;
                let class_ok = d.class
                    == if per_packet { BalancerClass::PerPacket } else { BalancerClass::PerFlow };
                score.width_correct += usize::from(width_ok);
                score.delta_correct += usize::from(delta_ok);
                score.class_correct += usize::from(class_ok);
                score.full_matches += usize::from(width_ok && delta_ok && class_ok);
            }
        }
    }
    score
}

/// Whether one destination's merged discovery matches its planted
/// truth: reachability exactly as planted (a fault-truncated walk that
/// never reaches a reachable destination is wrong, whatever else it
/// found), and the balancer — width, delta and class — recovered
/// exactly, or confidently absent where none was planted.
fn dest_matches_truth(truth: &pt_topogen::DestTruth, d: &DestMultipath) -> bool {
    if d.reached == truth.firewalled {
        return false;
    }
    match truth.balancer() {
        None => d.class == BalancerClass::NotBalanced,
        Some((width, delta, per_packet)) => {
            d.width == usize::from(width)
                && d.delta == delta
                && d.class
                    == if per_packet { BalancerClass::PerPacket } else { BalancerClass::PerFlow }
        }
    }
}

/// Loop/cycle anomaly signatures partitioned by whether they coincide
/// with a destination the generator gave a hostile fault — the
/// rate-limiters, MPLS tunnels, UDP filters and asymmetric returns of
/// the fault-injection engine corrupt measurements in ways that mimic
/// genuine routing anomalies, and an analyst reading the campaign
/// report needs the two populations separated before drawing §4-style
/// conclusions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultAttribution {
    /// Loop signatures `(looping address, destination)` at destinations
    /// with at least one planted hostile fault
    /// ([`pt_topogen::DestTruth::any_hostile_fault`]) — likely
    /// fault-induced rather than genuine routing anomalies.
    pub fault_induced: Vec<(Ipv4Addr, Ipv4Addr)>,
    /// Loop signatures at destinations without any hostile fault.
    pub organic: Vec<(Ipv4Addr, Ipv4Addr)>,
    /// Destinations carrying a hostile fault that produced no loop
    /// signature at all (faults that degraded quietly).
    pub silent_fault_dests: usize,
}

/// Partition a campaign accumulator's loop signatures by hostile-fault
/// coincidence (typically the classic accumulator, which sees the
/// anomalies Paris suppresses). Signatures come back sorted for stable
/// reporting.
pub fn attribute_fault_anomalies(
    net: &SyntheticInternet,
    classic: &CampaignAccumulator,
) -> FaultAttribution {
    let hostile: BTreeSet<Ipv4Addr> =
        net.dests.iter().filter(|d| d.truth.any_hostile_fault()).map(|d| d.addr).collect();
    let mut fault_induced = Vec::new();
    let mut organic = Vec::new();
    for sig in classic.loop_signatures() {
        if hostile.contains(&sig.1) {
            fault_induced.push(sig);
        } else {
            organic.push(sig);
        }
    }
    fault_induced.sort();
    organic.sort();
    let looped: BTreeSet<Ipv4Addr> = fault_induced.iter().map(|&(_, dest)| dest).collect();
    FaultAttribution {
        silent_fault_dests: hostile.difference(&looped).count(),
        fault_induced,
        organic,
    }
}

/// Recovery of hostile-fault destinations by the adaptive walker,
/// scored against a fixed-rate baseline over the same network — the
/// PR-6 acceptance metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecoveryScore {
    /// Destinations with at least one planted hostile fault
    /// ([`pt_topogen::DestTruth::any_hostile_fault`]).
    pub hostile_dests: usize,
    /// Hostile destinations the fixed-rate walker got wrong
    /// (truncated short of a reachable destination, or balancer
    /// evidence missing/incorrect).
    pub fixed_wrong: usize,
    /// ... of which the adaptive walker got fully right.
    pub recovered: usize,
    /// Hostile destinations the adaptive walker still got wrong.
    pub adaptive_wrong: usize,
    /// Destinations without a planted balancer that the adaptive
    /// walker flagged as balanced — its fault tolerance must not come
    /// from crying balancer, so this must stay zero.
    pub false_balancers: usize,
}

impl FaultRecoveryScore {
    /// Fraction of the fixed-rate walker's hostile-destination
    /// failures the adaptive walker fixed. 1.0 when the fixed walker
    /// made no mistakes.
    pub fn recovery_rate(&self) -> f64 {
        if self.fixed_wrong == 0 {
            1.0
        } else {
            self.recovered as f64 / self.fixed_wrong as f64
        }
    }
}

/// Score an adaptive multipath campaign's recovery of planted hostile
/// faults against a fixed-rate campaign over the same network.
pub fn validate_fault_recovery(
    net: &SyntheticInternet,
    fixed: &MultipathResult,
    adaptive: &MultipathResult,
) -> FaultRecoveryScore {
    assert_eq!(fixed.per_dest.len(), net.dests.len(), "fixed result covers every destination");
    assert_eq!(adaptive.per_dest.len(), net.dests.len(), "adaptive result covers every dest");
    let mut score = FaultRecoveryScore {
        hostile_dests: 0,
        fixed_wrong: 0,
        recovered: 0,
        adaptive_wrong: 0,
        false_balancers: 0,
    };
    for (i, dest) in net.dests.iter().enumerate() {
        let truth = &dest.truth;
        let a = &adaptive.per_dest[i];
        if truth.balancer().is_none() && a.class != BalancerClass::NotBalanced {
            score.false_balancers += 1;
        }
        if !truth.any_hostile_fault() {
            continue;
        }
        score.hostile_dests += 1;
        let adaptive_ok = dest_matches_truth(truth, a);
        if !dest_matches_truth(truth, &fixed.per_dest[i]) {
            score.fixed_wrong += 1;
            score.recovered += usize::from(adaptive_ok);
        }
        score.adaptive_wrong += usize::from(!adaptive_ok);
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run, CampaignConfig, DynamicsConfig};
    use pt_topogen::{generate, InternetConfig};

    #[test]
    fn classifiers_score_well_on_a_deterministic_anomaly_mix() {
        // A network with frequent deterministic anomaly sources.
        let config = InternetConfig {
            seed: 77,
            n_destinations: 120,
            per_flow_lb: 0.25,
            lb_equal_weight: 0.2,
            lb_delta1_weight: 0.6,
            per_packet_lb: 0.0,
            zero_ttl: 0.1,
            broken: 0.05,
            nat: 0.1,
            firewalled_dest: 0.0,
            silent_router: 0.0,
            link_loss: 0.0,
            ..InternetConfig::default()
        };
        let net = generate(&config);
        let cc = CampaignConfig {
            rounds: 6,
            workers: 4,
            dynamics: DynamicsConfig::none(),
            keep_routes: true,
            seed: 3,
            ..Default::default()
        };
        let result = run(&net, &cc);
        let v = validate_causes(&net, &result.routes, &result.classic, &result.paris);
        // Deterministic causes fire on every trace → recall should be
        // essentially perfect, precision high.
        assert!(v.zero_ttl.recall() > 0.9, "zero-TTL recall {:?}", v.zero_ttl);
        assert!(v.zero_ttl.precision() > 0.9, "zero-TTL precision {:?}", v.zero_ttl);
        // Upstream load balancers can legitimately break a NAT loop's
        // strictly-decreasing response-TTL signature, so recall is high
        // but not perfect.
        assert!(v.rewriting.recall() >= 0.7, "rewriting recall {:?}", v.rewriting);
        assert!(v.unreachability.recall() > 0.9, "unreachability {:?}", v.unreachability);
        // Per-flow attribution is stochastic but should be mostly right.
        assert!(v.per_flow.precision() > 0.7, "per-flow precision {:?}", v.per_flow);
    }

    #[test]
    fn scores_handle_empty_inputs() {
        let s = CauseScore { truth_positives: 0, flagged: 0, hits: 0 };
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.recall(), 1.0);
    }

    #[test]
    fn fault_attribution_partitions_by_hostile_truth() {
        let net = generate(&InternetConfig::hostile(11));
        let hostile: std::collections::BTreeSet<_> =
            net.dests.iter().filter(|d| d.truth.any_hostile_fault()).map(|d| d.addr).collect();
        assert!(!hostile.is_empty(), "hostile preset plants faults");
        let cc = CampaignConfig { rounds: 3, workers: 4, seed: 5, ..Default::default() };
        let result = run(&net, &cc);
        let attr = attribute_fault_anomalies(&net, &result.classic);
        // The partition is exact: every signature lands on exactly one
        // side, decided by the destination's planted truth.
        let total = result.classic.loop_signatures().len();
        assert_eq!(attr.fault_induced.len() + attr.organic.len(), total);
        for (_, dest) in &attr.fault_induced {
            assert!(hostile.contains(dest));
        }
        for (_, dest) in &attr.organic {
            assert!(!hostile.contains(dest));
        }
        // Silent faults + looping faults cover the hostile population.
        let looping: std::collections::BTreeSet<_> =
            attr.fault_induced.iter().map(|&(_, d)| d).collect();
        assert_eq!(attr.silent_fault_dests, hostile.len() - looping.len());
        // Sorted output for stable reporting.
        let mut sorted = attr.fault_induced.clone();
        sorted.sort();
        assert_eq!(sorted, attr.fault_induced);
    }
}
