//! Paper-vs-measured reporting: the §3/§4 reference values and a renderer
//! that prints them side by side with a campaign's results.

use pt_anomaly::stats::{FinalCycleCause, FinalLoopCause};

use crate::runner::{CampaignResult, MultipathResult};

/// Every quantitative claim of the paper's study, as published.
#[derive(Debug, Clone, Copy)]
pub struct PaperBaseline {
    /// §4.1.2: routes containing at least one loop.
    pub pct_routes_with_loop: f64,
    /// §4.1.2: destinations with a loop on some route.
    pub pct_dests_with_loop: f64,
    /// §4.1.2: discovered addresses in a loop at least once.
    pub pct_addrs_in_loop: f64,
    /// §4.1.2: loop signatures seen in exactly one round.
    pub pct_loop_sigs_single_round: f64,
    /// §4.1.2: loops attributed to per-flow load balancing.
    pub loop_per_flow: f64,
    /// §4.1.2: zero-TTL forwarding share.
    pub loop_zero_ttl: f64,
    /// §4.1.2: unreachability share.
    pub loop_unreachability: f64,
    /// §4.1.2: address rewriting share.
    pub loop_rewriting: f64,
    /// §4.1.2: suspected per-packet residue.
    pub loop_per_packet: f64,
    /// §4.1.2: loops seen only by Paris.
    pub loops_only_paris: f64,
    /// §4.2.2: routes containing a cycle.
    pub pct_routes_with_cycle: f64,
    /// §4.2.2: destinations with a cycle.
    pub pct_dests_with_cycle: f64,
    /// §4.2.2: addresses in a cycle.
    pub pct_addrs_in_cycle: f64,
    /// §4.2.2: cycle signatures in exactly one round.
    pub pct_cycle_sigs_single_round: f64,
    /// §4.2.2: mean rounds per cycle signature.
    pub cycle_sig_mean_rounds: f64,
    /// §4.2.2: per-flow share of cycles.
    pub cycle_per_flow: f64,
    /// §4.2.2: forwarding-loop share.
    pub cycle_forwarding_loop: f64,
    /// §4.2.2: unreachability share.
    pub cycle_unreachability: f64,
    /// §4.3.2: destinations showing a diamond.
    pub pct_dests_with_diamond: f64,
    /// §4.3.2: per-flow share of diamonds.
    pub diamond_per_flow: f64,
}

impl PaperBaseline {
    /// The published values.
    pub const PUBLISHED: PaperBaseline = PaperBaseline {
        pct_routes_with_loop: 5.3,
        pct_dests_with_loop: 18.0,
        pct_addrs_in_loop: 6.3,
        pct_loop_sigs_single_round: 18.0,
        loop_per_flow: 87.0,
        loop_zero_ttl: 6.9,
        loop_unreachability: 1.2,
        loop_rewriting: 2.8,
        loop_per_packet: 2.5,
        loops_only_paris: 0.25,
        pct_routes_with_cycle: 0.84,
        pct_dests_with_cycle: 11.0,
        pct_addrs_in_cycle: 3.6,
        pct_cycle_sigs_single_round: 30.0,
        cycle_sig_mean_rounds: 6.8,
        cycle_per_flow: 78.0,
        cycle_forwarding_loop: 20.0,
        cycle_unreachability: 1.2,
        pct_dests_with_diamond: 79.0,
        diamond_per_flow: 64.0,
    };
}

fn row(out: &mut String, label: &str, paper: f64, measured: f64) {
    use std::fmt::Write;
    let _ = writeln!(out, "| {label:<46} | {paper:>8.2} | {measured:>8.2} |");
}

/// Render a paper-vs-measured table for a campaign run.
pub fn render_report(result: &CampaignResult) -> String {
    let p = PaperBaseline::PUBLISHED;
    let c = &result.classic_report;
    let cmp = &result.comparison;
    let mut out = String::new();
    out.push_str("## Classic traceroute anomalies: paper vs measured (%)\n\n");
    out.push_str("| metric                                         |    paper | measured |\n");
    out.push_str("|------------------------------------------------|----------|----------|\n");
    row(&mut out, "routes with a loop (§4.1.2)", p.pct_routes_with_loop, c.pct_routes_with_loop);
    row(&mut out, "destinations with a loop", p.pct_dests_with_loop, c.pct_dests_with_loop);
    row(&mut out, "addresses in a loop", p.pct_addrs_in_loop, c.pct_addrs_in_loop);
    row(
        &mut out,
        "loop signatures seen in one round only",
        p.pct_loop_sigs_single_round,
        c.pct_loop_sigs_single_round,
    );
    row(
        &mut out,
        "loops: per-flow load balancing",
        p.loop_per_flow,
        cmp.loop_pct(FinalLoopCause::PerFlowLoadBalancing),
    );
    row(
        &mut out,
        "loops: zero-TTL forwarding",
        p.loop_zero_ttl,
        cmp.loop_pct(FinalLoopCause::ZeroTtlForwarding),
    );
    row(
        &mut out,
        "loops: unreachability",
        p.loop_unreachability,
        cmp.loop_pct(FinalLoopCause::Unreachability),
    );
    row(
        &mut out,
        "loops: address rewriting",
        p.loop_rewriting,
        cmp.loop_pct(FinalLoopCause::AddressRewriting),
    );
    row(
        &mut out,
        "loops: per-packet (suspected)",
        p.loop_per_packet,
        cmp.loop_pct(FinalLoopCause::PerPacketSuspected),
    );
    row(&mut out, "loops seen only by Paris", p.loops_only_paris, cmp.loops_only_in_paris_pct);
    row(&mut out, "routes with a cycle (§4.2.2)", p.pct_routes_with_cycle, c.pct_routes_with_cycle);
    row(&mut out, "destinations with a cycle", p.pct_dests_with_cycle, c.pct_dests_with_cycle);
    row(&mut out, "addresses in a cycle", p.pct_addrs_in_cycle, c.pct_addrs_in_cycle);
    row(
        &mut out,
        "cycle signatures seen in one round only",
        p.pct_cycle_sigs_single_round,
        c.pct_cycle_sigs_single_round,
    );
    row(
        &mut out,
        "cycles: per-flow load balancing",
        p.cycle_per_flow,
        cmp.cycle_pct(FinalCycleCause::PerFlowLoadBalancing),
    );
    row(
        &mut out,
        "cycles: forwarding loops",
        p.cycle_forwarding_loop,
        cmp.cycle_pct(FinalCycleCause::ForwardingLoop),
    );
    row(
        &mut out,
        "cycles: unreachability",
        p.cycle_unreachability,
        cmp.cycle_pct(FinalCycleCause::Unreachability),
    );
    row(
        &mut out,
        "destinations with a diamond (§4.3.2)",
        p.pct_dests_with_diamond,
        c.pct_dests_with_diamond,
    );
    row(
        &mut out,
        "diamonds: per-flow load balancing",
        p.diamond_per_flow,
        cmp.diamond_per_flow_pct,
    );
    out.push_str("\n## Scale (§3)\n\n");
    use std::fmt::Write;
    let _ = writeln!(
        out,
        "- rounds: {} (paper: 556)\n- destinations: {} (paper: 5,000)\n\
         - routes measured (classic): {}\n- responses (classic): {} (paper: ~90 M total)\n\
         - mid-route stars (classic): {} (paper: 2.6 M)\n\
         - Paris: {} routes with a loop = {:.2}% (classic: {:.2}%)\n\
         - diamonds, classic: {} — Paris: {}\n\
         - mean virtual probing time per destination: {:.1} s\n\
         - budget-degraded routes (classic / Paris): {} / {} — quarantined units: {}",
        c.rounds,
        c.destinations,
        c.routes_total,
        c.responses,
        c.mid_route_stars,
        result.paris_report.routes_total,
        result.paris_report.pct_routes_with_loop,
        c.pct_routes_with_loop,
        c.diamonds_total,
        result.paris_report.diamonds_total,
        result.mean_virtual_secs,
        c.degraded_routes,
        result.paris_report.degraded_routes,
        result.quarantined.len(),
    );
    out
}

/// A canonical, order-independent digest of a campaign's results: both
/// tool reports rendered field by field, plus the comparison with its
/// cause maps sorted by key. Two campaign runs produced identical
/// results iff their digests are byte-identical — the determinism tests
/// and the hot-path refactor checks diff this string.
pub fn report_digest(result: &CampaignResult) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    // ToolReport contains only scalars: its derived Debug is canonical.
    let _ = writeln!(out, "classic: {:?}", result.classic_report);
    let _ = writeln!(out, "paris: {:?}", result.paris_report);
    let cmp = &result.comparison;
    let mut loops: Vec<String> =
        cmp.loop_causes.iter().map(|(k, v)| format!("{k:?}={v:?}")).collect();
    loops.sort();
    let mut cycles: Vec<String> =
        cmp.cycle_causes.iter().map(|(k, v)| format!("{k:?}={v:?}")).collect();
    cycles.sort();
    let _ = writeln!(out, "loop_causes: [{}]", loops.join(", "));
    let _ = writeln!(out, "cycle_causes: [{}]", cycles.join(", "));
    let _ = writeln!(out, "diamond_per_flow_pct: {:?}", cmp.diamond_per_flow_pct);
    let _ = writeln!(out, "loops_only_in_paris_pct: {:?}", cmp.loops_only_in_paris_pct);
    // Quarantined units are part of the result contract: a resumed or
    // re-sharded campaign must reproduce them exactly (same units, same
    // panic payloads), not just the healthy-unit statistics.
    for q in &result.quarantined {
        let _ = writeln!(
            out,
            "quarantined: unit={} dest={} round={} addr={} panic={:?}",
            q.unit, q.dest, q.round, q.addr, q.panic,
        );
    }
    out
}

/// Render the multipath-discovery summary — the §6 numbers the anomaly
/// tables cannot show, printed next to them: how many destinations
/// carry a balancer, its width/delta spectrum, and the per-flow vs
/// per-packet split.
pub fn render_multipath_report(result: &MultipathResult) -> String {
    use std::fmt::Write;
    let r = &result.report;
    let mut out = String::new();
    out.push_str("## Multipath discovery (§6 future work, MDA)\n\n");
    let _ = writeln!(
        out,
        "- destinations: {} × {} round(s); reached: {}\n\
         - balanced destinations discovered: {} ({} per-flow, {} per-packet, {} undetermined)\n\
         - confident width histogram (2 / 3 / ≥4): {} / {} / {}\n\
         - branch-length delta histogram (0 / 1 / ≥2): {} / {} / {}\n\
         - mean probes per destination: {:.1}\n\
         - mean virtual probing secs per destination: {:.2}\n\
         - budget-degraded units: {} — quarantined units: {}",
        r.destinations,
        r.rounds,
        r.reached_dests,
        r.balanced_dests,
        r.per_flow_dests,
        r.per_packet_dests,
        r.undetermined_dests,
        r.width_hist[0],
        r.width_hist[1],
        r.width_hist[2],
        r.delta_hist[0],
        r.delta_hist[1],
        r.delta_hist[2],
        r.mean_probes,
        result.mean_virtual_secs,
        r.degraded_units,
        result.quarantined.len(),
    );
    out
}

/// A canonical digest of a multipath campaign's results: every per-unit
/// discovery in unit order, the merged per-destination view, and the
/// aggregate report. Two runs produced identical results iff their
/// digests are byte-identical — the worker-invariance test for the
/// multipath mode diffs this string.
pub fn multipath_digest(result: &MultipathResult) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for u in &result.units {
        let _ = writeln!(
            out,
            "unit d{} r{} {}: w={}/{} delta={} class={:?} hops={} links={} stars={} unconv={} \
             probes={} reached={} degraded={}",
            u.dest,
            u.round,
            u.addr,
            u.width,
            u.observed_width,
            u.delta,
            u.class,
            u.hops,
            u.links,
            u.stars,
            u.unconverged_hops,
            u.probes,
            u.reached,
            u.degraded,
        );
    }
    for d in &result.per_dest {
        let _ = writeln!(
            out,
            "dest {} {}: w={}/{} delta={} class={:?} probes={} reached={} degraded={}",
            d.dest,
            d.addr,
            d.width,
            d.observed_width,
            d.delta,
            d.class,
            d.probes,
            d.reached,
            d.degraded,
        );
    }
    let _ = writeln!(out, "report: {:?}", result.report);
    let _ = writeln!(out, "mean_virtual_secs: {:?}", result.mean_virtual_secs);
    for q in &result.quarantined {
        let _ = writeln!(
            out,
            "quarantined: unit={} dest={} round={} addr={} panic={:?}",
            q.unit, q.dest, q.round, q.addr, q.panic,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run, run_multipath, CampaignConfig, MultipathConfig};
    use pt_topogen::{generate, InternetConfig};

    #[test]
    fn report_renders_every_paper_metric() {
        let net = generate(&InternetConfig::tiny(5));
        let result = run(&net, &CampaignConfig { rounds: 2, workers: 2, ..Default::default() });
        let text = render_report(&result);
        for needle in [
            "routes with a loop",
            "per-flow load balancing",
            "zero-TTL forwarding",
            "address rewriting",
            "forwarding loops",
            "destinations with a diamond",
            "only by Paris",
            "paper: 556",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in report:\n{text}");
        }
    }

    #[test]
    fn multipath_report_renders_and_digests() {
        let net = generate(&InternetConfig::tiny(5));
        let result = run_multipath(&net, &MultipathConfig { workers: 2, ..Default::default() });
        let text = render_multipath_report(&result);
        for needle in [
            "Multipath discovery",
            "balanced destinations discovered",
            "width histogram",
            "delta histogram",
            "virtual probing secs",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in report:\n{text}");
        }
        let digest = multipath_digest(&result);
        assert_eq!(digest.lines().filter(|l| l.starts_with("unit ")).count(), 40);
        assert_eq!(digest.lines().filter(|l| l.starts_with("dest ")).count(), 40);
    }

    #[test]
    fn baseline_loop_shares_sum_to_about_100() {
        let p = PaperBaseline::PUBLISHED;
        let sum = p.loop_per_flow
            + p.loop_zero_ttl
            + p.loop_unreachability
            + p.loop_rewriting
            + p.loop_per_packet;
        assert!((sum - 100.0).abs() < 1.0, "published shares sum to {sum}");
        let cycles = p.cycle_per_flow + p.cycle_forwarding_loop + p.cycle_unreachability + 1.1;
        assert!((cycles - 100.0).abs() < 1.0, "published cycle shares sum to {cycles}");
    }
}
