//! # pt-campaign — the paper's measurement study, end to end
//!
//! Reproduces §3's setup over the synthetic Internet: parallel probing
//! "processes" (threads, 32 in the paper) each own a shard of the
//! destination list and trace every destination once per round — first
//! with Paris traceroute (fixed random five-tuple per trace), then with
//! classic traceroute (NetBSD header behaviour) — on a shared simulator
//! whose virtual clock, IP-ID counters and routing dynamics persist
//! across traces. Results flow into `pt-anomaly` accumulators; the
//! classic-vs-Paris comparison reproduces §4's attribution.
//!
//! A second campaign mode, [`run_multipath`], runs the §6 future work
//! at the same scale: windowed MDA discovery (`pt-mda`) toward every
//! destination over the identical work-stealing `(destination, round)`
//! pool, with the same seed-derived determinism guarantee, scored
//! against the generator's planted balancers by [`validate_multipath`].

#![warn(missing_docs)]

pub mod report;
pub mod runner;
pub mod snapshot;
pub mod validate;

pub use report::{
    multipath_digest, render_multipath_report, render_report, report_digest, PaperBaseline,
};
pub use runner::{
    run, run_multipath, CampaignConfig, CampaignResult, DestMultipath, DynamicsConfig,
    InjectConfig, MultipathConfig, MultipathReport, MultipathResult, QuarantinedUnit,
    UnitDiscovery,
};
pub use snapshot::{
    run_checkpointed, run_multipath_checkpointed, run_multipath_resumed, run_resumed,
    CheckpointConfig,
};
pub use validate::{
    attribute_fault_anomalies, validate_causes, validate_fault_recovery, validate_multipath,
    FaultAttribution, FaultRecoveryScore, MultipathScore, ValidationReport,
};
