//! The side-by-side campaign runner: a work-stealing pool of
//! per-destination trace tasks.
//!
//! Execution is decomposed into `(destination, round)` work units — one
//! Paris + one classic trace over a pristine per-unit simulator — that
//! `workers` threads claim from pre-distributed work-stealing deques.
//! Every random draw a unit makes (probe ports, dynamics, the
//! simulator's own node RNGs) derives from `splitmix64` mixes of
//! `(campaign seed, destination index, round)`, never from the worker
//! that happens to claim the unit; accumulator merging is
//! order-insensitive and kept routes are re-sorted into unit order. The
//! result: the campaign's entire [`ComparisonReport`] digest is
//! byte-identical for any worker count, and `workers` is a pure
//! performance knob (the property `tests/worker_invariance.rs` pins).

use std::collections::BTreeSet;
use std::net::Ipv4Addr;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crossbeam_deque::{Steal, Stealer, Worker};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pt_anomaly::{compare, CampaignAccumulator, ComparisonReport, ToolReport};
use pt_core::{
    trace_with, ClassicUdp, MeasuredRoute, ParisUdp, StrategyId, TraceConfig, TraceScratch,
};
use pt_mda::{discover_with, BalancerClass, MdaConfig, MdaScratch};
use pt_netsim::routing::NextHop;
use pt_netsim::time::SimDuration;
use pt_netsim::{SimTransport, SimulatorPool};
use pt_topogen::{DestInfo, SyntheticInternet};

/// Routing-dynamics knobs: the §4 causes that are *events*, not topology.
#[derive(Debug, Clone, Copy)]
pub struct DynamicsConfig {
    /// Per-trace probability of a transient forwarding loop between two
    /// adjacent branch routers, active while the trace runs (→ genuine
    /// cycles, §4.2).
    pub forwarding_loop_prob: f64,
    /// Delay from trace start to loop activation (lets the trace get past
    /// the access network first). Tuned to the windowed tracer's pacing:
    /// with `TraceConfig::window` probes in flight a trace covers the
    /// access network in a few milliseconds of virtual time, not the
    /// tens a sequential trace took.
    pub forwarding_loop_delay: SimDuration,
    /// How long a transient forwarding loop lasts.
    pub forwarding_loop_window: SimDuration,
    /// Per-trace probability that a load balancer's egress mapping flips
    /// mid-trace (→ routing-change loops; the source of the paper's
    /// 0.25% Paris-only loops).
    pub balancer_flap_prob: f64,
    /// Delay from trace start to the flap.
    pub balancer_flap_after: SimDuration,
}

impl Default for DynamicsConfig {
    fn default() -> Self {
        DynamicsConfig {
            forwarding_loop_prob: 0.0004,
            forwarding_loop_delay: SimDuration::from_millis(30),
            forwarding_loop_window: SimDuration::from_millis(500),
            balancer_flap_prob: 0.008,
            balancer_flap_after: SimDuration::from_millis(80),
        }
    }
}

impl DynamicsConfig {
    /// No routing dynamics at all.
    pub fn none() -> Self {
        DynamicsConfig {
            forwarding_loop_prob: 0.0,
            forwarding_loop_delay: SimDuration::ZERO,
            forwarding_loop_window: SimDuration::ZERO,
            balancer_flap_prob: 0.0,
            balancer_flap_after: SimDuration::ZERO,
        }
    }
}

/// Deterministic fault injection for the campaign engines' own
/// crash-safety machinery: force specific `(destination, round)` units
/// to panic or to run away, so quarantine and watchdog paths can be
/// exercised end to end without hoping for a real bug.
#[derive(Debug, Clone, Default)]
pub struct InjectConfig {
    /// Units that panic mid-unit (after their Paris trace, before any
    /// of the unit's results are ingested — proving partial work is
    /// discarded).
    pub panic_units: BTreeSet<u32>,
    /// Units whose simulator gets a *permanent* forwarding loop
    /// installed toward the destination before probing starts: the
    /// trace never terminates organically and only a watchdog budget
    /// (or the max-TTL ceiling) ends it.
    pub runaway_units: BTreeSet<u32>,
}

impl InjectConfig {
    /// No injected faults (the default).
    pub fn none() -> Self {
        InjectConfig::default()
    }

    /// Whether any injection is configured.
    pub fn is_empty(&self) -> bool {
        self.panic_units.is_empty() && self.runaway_units.is_empty()
    }
}

/// One quarantined `(destination, round)` unit: the worker caught its
/// panic, discarded every partial result, rebuilt its simulator pool
/// and scratch, and recorded this instead of dying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedUnit {
    /// The unit id (round-major).
    pub unit: u32,
    /// Destination index into [`SyntheticInternet::dests`].
    pub dest: usize,
    /// Round number.
    pub round: usize,
    /// The destination address the unit was probing.
    pub addr: Ipv4Addr,
    /// The unit's derived seed stream — enough to replay the unit in
    /// isolation.
    pub seed: u64,
    /// The panic payload, when it was a string (the common case);
    /// `"opaque panic payload"` otherwise.
    pub panic: String,
}

/// Campaign parameters (§3's setup).
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Measurement rounds (556 in the paper).
    pub rounds: usize,
    /// Worker threads claiming `(destination, round)` work units (the
    /// paper ran 32 parallel probing processes). Purely a performance
    /// knob: results are bit-identical for any value.
    pub workers: usize,
    /// Per-trace parameters; defaults to the paper's, with the windowed
    /// tracer's default `window` (3 probes in flight per trace — the
    /// virtual-time analogue of the paper's 32 parallel processes).
    /// Setting `trace.window = 1` reproduces the strictly sequential
    /// per-probe discipline, and with it the pre-windowed campaign
    /// digest byte for byte — provided [`CampaignConfig::dynamics`] is
    /// disabled or pinned to explicit values, since the *default*
    /// dynamics timings were retuned to windowed pacing in the same
    /// change (see [`DynamicsConfig::default`]).
    pub trace: TraceConfig,
    /// Routing dynamics.
    pub dynamics: DynamicsConfig,
    /// Campaign-level seed (ports, dynamics draws).
    pub seed: u64,
    /// When set, keep every measured route (memory-heavy; for debugging
    /// and small runs only).
    pub keep_routes: bool,
    /// Deterministic fault injection (crash-safety testing).
    pub inject: InjectConfig,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            rounds: 25,
            workers: 8,
            trace: TraceConfig::paper(),
            dynamics: DynamicsConfig::default(),
            seed: 20061025, // the paper's publication date

            keep_routes: false,
            inject: InjectConfig::none(),
        }
    }
}

/// Campaign output: per-tool summaries plus the §4 attribution.
#[derive(Debug)]
pub struct CampaignResult {
    /// Classic traceroute accumulator (for further analysis).
    pub classic: CampaignAccumulator,
    /// Paris traceroute accumulator.
    pub paris: CampaignAccumulator,
    /// Classic summary.
    pub classic_report: ToolReport,
    /// Paris summary.
    pub paris_report: ToolReport,
    /// The classic-vs-Paris attribution.
    pub comparison: ComparisonReport,
    /// Kept routes (tool, round, route), when requested; sorted into
    /// `(round, destination)` unit order regardless of worker count.
    pub routes: Vec<(StrategyId, usize, MeasuredRoute)>,
    /// Mean virtual seconds of probing per destination (summed over all
    /// of a destination's rounds). Worker-count-independent, unlike the
    /// per-shard figure it replaces, and the number the windowed tracer
    /// divides by roughly `trace.window`.
    pub mean_virtual_secs: f64,
    /// Units whose execution panicked, in unit order. Their partial
    /// results are fully discarded — nothing of a poisoned unit reaches
    /// the accumulators, the kept routes, or the virtual-time sums —
    /// so the healthy-unit digest is independent of *where* a panic
    /// struck and of the worker count.
    pub quarantined: Vec<QuarantinedUnit>,
}

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A `(destination, round)` work unit, encoded round-major so unit order
/// matches the old serial iteration (`for round { for dest }`).
pub(crate) type UnitId = u32;

/// What a block of units accumulated — one worker's claim-order fold,
/// or several workers' folds merged, or several *blocks* merged by the
/// checkpoint engine. Accumulator merging is order-insensitive (integer
/// counters, sets, and per-key u64 maps), so producers can fold units
/// in any order; everything order-sensitive (kept routes, virtual-time
/// floats, quarantine records) is tagged with its unit id and re-ordered
/// deterministically by [`finalize_campaign`].
pub(crate) struct BlockOutput {
    pub(crate) classic: CampaignAccumulator,
    pub(crate) paris: CampaignAccumulator,
    pub(crate) routes: Vec<(UnitId, StrategyId, usize, MeasuredRoute)>,
    pub(crate) virtual_secs: Vec<(UnitId, f64)>,
    pub(crate) quarantined: Vec<QuarantinedUnit>,
}

impl BlockOutput {
    pub(crate) fn empty() -> Self {
        BlockOutput {
            classic: CampaignAccumulator::new(StrategyId::ClassicUdp),
            paris: CampaignAccumulator::new(StrategyId::ParisUdp),
            routes: Vec::new(),
            virtual_secs: Vec::new(),
            quarantined: Vec::new(),
        }
    }

    /// Fold another block in. Order-insensitive, like everything that
    /// feeds it.
    pub(crate) fn absorb(&mut self, other: BlockOutput) {
        self.classic.merge(other.classic);
        self.paris.merge(other.paris);
        self.routes.extend(other.routes);
        self.virtual_secs.extend(other.virtual_secs);
        self.quarantined.extend(other.quarantined);
    }
}

/// Check the campaign-wide invariants and return the unit count.
pub(crate) fn campaign_units(net: &SyntheticInternet, config: &CampaignConfig) -> u32 {
    assert!(config.workers >= 1 && config.rounds >= 1);
    let n_units = net.dests.len() * config.rounds;
    assert!(u32::try_from(n_units).is_ok(), "campaign too large for u32 unit ids");
    n_units as u32
}

/// Run a full side-by-side campaign over `net`.
pub fn run(net: &SyntheticInternet, config: &CampaignConfig) -> CampaignResult {
    let n_units = campaign_units(net, config);
    let out = run_units(net, config, 0..n_units);
    finalize_campaign(net.dests.len(), out)
}

/// Execute one contiguous block of units over the work-stealing pool —
/// the whole campaign for [`run`], one checkpoint block for the
/// crash-safe engine in [`crate::snapshot`]. Results are independent of
/// the block partitioning because every unit's draws derive from
/// `(seed, destination, round)` alone and the fold is order-insensitive.
pub(crate) fn run_units(
    net: &SyntheticInternet,
    config: &CampaignConfig,
    units: Range<UnitId>,
) -> BlockOutput {
    let n_block = units.len();
    if n_block == 0 {
        return BlockOutput::empty();
    }
    let workers = config.workers.min(n_block).max(1);

    // Pre-distribute units round-robin across per-worker deques; a
    // worker that drains its own queue steals the oldest units from its
    // siblings, so stragglers (expensive destinations, dynamics-heavy
    // units) get rebalanced instead of serializing the tail.
    let locals: Vec<Worker<UnitId>> = (0..workers).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<UnitId>> = locals.iter().map(Worker::stealer).collect();
    for unit in units {
        locals[unit as usize % workers].push(unit);
    }

    let outputs: Vec<BlockOutput> = std::thread::scope(|scope| {
        let handles: Vec<_> = locals
            .into_iter()
            .enumerate()
            .map(|(worker_idx, local)| {
                let stealers = &stealers;
                let config = &*config;
                scope.spawn(move || run_worker(worker_idx, local, stealers, net, config))
            })
            .collect();
        // A worker thread only dies if the quarantine machinery itself
        // panicked (unit panics are caught inside `run_worker`).
        handles.into_iter().map(|h| h.join().expect("campaign worker died")).collect()
    });

    let mut merged = BlockOutput::empty();
    for out in outputs {
        merged.absorb(out);
    }
    merged
}

/// Order-sensitive assembly of the final result from an (unordered)
/// fold of every unit: re-sort by unit id, sum the virtual-time floats
/// in that fixed order, and compute the reports. Pure function of the
/// fold's contents — the reason worker count, block partitioning, and
/// kill/resume points all leave the digest byte-identical.
pub(crate) fn finalize_campaign(n_dests: usize, out: BlockOutput) -> CampaignResult {
    let BlockOutput { classic, paris, mut routes, mut virtual_secs, mut quarantined } = out;
    // Which worker (or checkpoint block) ran which unit is scheduling
    // noise; re-ordering by unit id (Paris before classic within a
    // unit) makes the kept-route list and the float summation below
    // pure functions of the seed.
    routes.sort_by_key(|(unit, tool, _, _)| (*unit, *tool != StrategyId::ParisUdp));
    virtual_secs.sort_by_key(|(unit, _)| *unit);
    quarantined.sort_by_key(|q| q.unit);
    let total_virtual: f64 = virtual_secs.iter().map(|(_, v)| v).sum();

    let classic_report = classic.report();
    let paris_report = paris.report();
    let comparison = compare(&classic, &paris);
    CampaignResult {
        classic,
        paris,
        classic_report,
        paris_report,
        comparison,
        routes: routes.into_iter().map(|(_, tool, round, route)| (tool, round, route)).collect(),
        mean_virtual_secs: total_virtual / n_dests.max(1) as f64,
        quarantined,
    }
}

/// Claim the next unit: own queue first, then steal the oldest work
/// from siblings. No unit is ever pushed after the workers start, so an
/// all-empty sweep means the campaign is drained.
fn next_unit(
    worker_idx: usize,
    local: &Worker<UnitId>,
    stealers: &[Stealer<UnitId>],
) -> Option<UnitId> {
    if let Some(unit) = local.pop() {
        return Some(unit);
    }
    let n = stealers.len();
    for off in 1..n {
        let victim = &stealers[(worker_idx + off) % n];
        loop {
            match victim.steal() {
                Steal::Success(unit) => return Some(unit),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
    }
    None
}

/// Decode a unit id into `(dest_idx, round)` and derive its RNG stream.
/// The two independent mixes keep the campaign-level draws (ports,
/// dynamics) and the simulator's node seeds decorrelated.
fn unit_coords(unit: UnitId, n_dests: usize, seed: u64) -> (usize, usize, u64) {
    let dest_idx = unit as usize % n_dests;
    let round = unit as usize / n_dests;
    let dest_stream = splitmix64(seed ^ splitmix64(dest_idx as u64 + 1));
    let unit_stream = splitmix64(dest_stream ^ (round as u64 + 1));
    (dest_idx, round, unit_stream)
}

/// Recover a human-readable message from a caught panic payload.
fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_owned(),
            Err(_) => "opaque panic payload".to_owned(),
        },
    }
}

fn run_worker(
    worker_idx: usize,
    local: Worker<UnitId>,
    stealers: &[Stealer<UnitId>],
    net: &SyntheticInternet,
    config: &CampaignConfig,
) -> BlockOutput {
    // One pool per worker: after the first unit, every acquire hands
    // back the same warm simulator (arena slots, payload buffers and
    // event-queue capacity intact) reset for the next destination.
    let mut pool = SimulatorPool::new(net.topology.clone());
    // One trace scratch per worker: hop records and the probe registry
    // recycle across every unit, so a worker's steady-state trace loop
    // performs no heap allocation at all.
    let mut scratch = TraceScratch::new();
    let mut out = BlockOutput::empty();
    while let Some(unit) = next_unit(worker_idx, &local, stealers) {
        // Unit isolation: a panicking unit is quarantined, not fatal.
        // `run_unit` mutates nothing outside itself — its routes only
        // reach the accumulators via `ingest_unit` after it returns —
        // so catching the unwind discards *all* of the unit's work.
        let result =
            catch_unwind(AssertUnwindSafe(|| run_unit(unit, net, config, &mut pool, &mut scratch)));
        match result {
            Ok(traced) => ingest_unit(unit, traced, config, &mut scratch, &mut out),
            Err(payload) => {
                // The unwind may have left the pooled simulator (lost
                // with the dropped transport) and the trace scratch in
                // arbitrary states; rebuild both so nothing poisoned
                // leaks into later units.
                pool = SimulatorPool::new(net.topology.clone());
                scratch = TraceScratch::new();
                let (dest_idx, round, unit_stream) =
                    unit_coords(unit, net.dests.len(), config.seed);
                out.quarantined.push(QuarantinedUnit {
                    unit,
                    dest: dest_idx,
                    round,
                    addr: net.dests[dest_idx].addr,
                    seed: unit_stream,
                    panic: panic_text(payload),
                });
            }
        }
    }
    out
}

/// One unit's raw output, held back from the accumulators until the
/// unit is known to have completed: quarantine semantics require that a
/// panic anywhere in the unit contaminates nothing.
struct UnitTrace {
    round: usize,
    paris: MeasuredRoute,
    classic: MeasuredRoute,
    virtual_secs: f64,
}

/// Run one `(destination, round)` unit: a Paris + classic trace pair
/// over a pristine simulator, with every draw derived from
/// `(seed, destination, round)` so the claiming worker is irrelevant.
/// Returns the measured pair without touching shared state — the caller
/// ingests on success ([`ingest_unit`]) or discards on panic.
fn run_unit(
    unit: UnitId,
    net: &SyntheticInternet,
    config: &CampaignConfig,
    pool: &mut SimulatorPool,
    scratch: &mut TraceScratch,
) -> UnitTrace {
    let (dest_idx, round, unit_stream) = unit_coords(unit, net.dests.len(), config.seed);
    let dest = &net.dests[dest_idx];

    let mut rng = StdRng::seed_from_u64(unit_stream);
    let sim = pool.acquire(splitmix64(unit_stream ^ 0x5157_ea11));
    let mut tx = SimTransport::new(sim, net.source);

    // Injected runaway: a permanent forwarding loop toward the
    // destination, installed before probing starts and never lifted.
    // Consumes no RNG draws, so healthy units are unaffected.
    if config.inject.runaway_units.contains(&unit) {
        install_runaway_loop(&mut tx, dest, &net.topology);
    }

    // Routing events are exogenous: draw independently before each
    // trace of the pair.
    schedule_dynamics(&mut rng, &mut tx, dest, &net.topology, config);

    // Paris traceroute first (§3 order), fixed random five-tuple.
    let sp = rng.gen_range(10_000..=60_000);
    let dp = rng.gen_range(10_000..=60_000);
    let mut paris = ParisUdp::new(sp, dp);
    let paris_route = trace_with(&mut tx, &mut paris, dest.addr, config.trace, scratch);

    // Injected panic: after the Paris trace, so the quarantine tests
    // prove a half-done unit's results are discarded wholesale.
    if config.inject.panic_units.contains(&unit) {
        panic!("injected fault: unit {unit} (dest {dest_idx}, round {round})");
    }

    schedule_dynamics(&mut rng, &mut tx, dest, &net.topology, config);

    // Then classic traceroute. Each trace is a fresh process in the
    // study, so the PID — and with it the source port — is new every
    // time; this is what lets classic explore different flow mappings
    // across rounds.
    let pid = rng.gen::<u16>() & 0x7fff;
    let mut classic = ClassicUdp::new(pid);
    let classic_route = trace_with(&mut tx, &mut classic, dest.addr, config.trace, scratch);

    let virtual_secs = tx.now().as_secs_f64();
    pool.release(tx.into_simulator());
    UnitTrace { round, paris: paris_route, classic: classic_route, virtual_secs }
}

/// Commit one completed unit's results to the fold — the only place a
/// unit's measurements touch shared state.
fn ingest_unit(
    unit: UnitId,
    traced: UnitTrace,
    config: &CampaignConfig,
    scratch: &mut TraceScratch,
    out: &mut BlockOutput,
) {
    let UnitTrace { round, paris, classic, virtual_secs } = traced;
    out.paris.ingest(round, &paris);
    out.classic.ingest(round, &classic);
    if config.keep_routes {
        out.routes.push((unit, StrategyId::ParisUdp, round, paris));
        out.routes.push((unit, StrategyId::ClassicUdp, round, classic));
    } else {
        scratch.recycle(paris);
        scratch.recycle(classic);
    }
    out.virtual_secs.push((unit, virtual_secs));
}

/// Install a *permanent* two-router forwarding loop toward `dest` on
/// the first adjacent linked pair of its branch chain — the injected
/// runaway fault. Probes toward the destination ping-pong between the
/// pair forever (each transit still decrements TTL and draws a Time
/// Exceeded, so the trace burns its full probe allowance); only a
/// watchdog budget or the max-TTL ceiling ends the trace.
fn install_runaway_loop(tx: &mut SimTransport, dest: &DestInfo, topo: &pt_netsim::Topology) {
    let pair = dest.chain.windows(2).find(|w| {
        topo.iface_toward(w[0], w[1]).is_some() && topo.iface_toward(w[1], w[0]).is_some()
    });
    let Some(&[x, y]) = pair else {
        panic!("runaway injection: destination {} has no linked adjacent chain pair", dest.addr)
    };
    let x_to_y = topo.iface_toward(x, y).expect("checked above");
    let y_to_x = topo.iface_toward(y, x).expect("checked above");
    let dst_pfx = pt_netsim::Ipv4Prefix::host(dest.addr);
    let now = tx.now();
    let sim = tx.simulator_mut();
    sim.schedule_route_set(now, x, dst_pfx, Some(NextHop::Iface(x_to_y)));
    sim.schedule_route_set(now, y, dst_pfx, Some(NextHop::Iface(y_to_x)));
}

/// Maybe schedule a transient forwarding loop or a balancer flap covering
/// the upcoming pair of traces toward `dest`.
fn schedule_dynamics(
    rng: &mut StdRng,
    tx: &mut SimTransport,
    dest: &DestInfo,
    topo: &pt_netsim::Topology,
    config: &CampaignConfig,
) {
    let dyn_cfg = config.dynamics;
    let now = tx.now();
    if dyn_cfg.forwarding_loop_prob > 0.0
        && dest.chain.len() >= 2
        && rng.gen_bool(dyn_cfg.forwarding_loop_prob)
    {
        // Pick an adjacent, actually-linked pair along the chain. The RNG
        // is only consulted when a candidate exists: drawing on an empty
        // candidate list would silently shift every later draw and make
        // the campaign's randomness depend on topology quirks.
        let candidates: Vec<(pt_netsim::NodeId, pt_netsim::NodeId)> = dest
            .chain
            .windows(2)
            .filter(|w| topo.iface_toward(w[0], w[1]).is_some())
            .map(|w| (w[0], w[1]))
            .collect();
        if let Some(&(x, y)) =
            (!candidates.is_empty()).then(|| &candidates[rng.gen_range(0..candidates.len())])
        {
            let dst_pfx = pt_netsim::Ipv4Prefix::host(dest.addr);
            // The candidate filter proved x→y is linked; y→x holding too
            // is a topology invariant (links are bidirectional). If either
            // breaks, name the pair — the quarantine layer catches this
            // panic and reports it instead of killing the worker.
            let x_to_y = topo.iface_toward(x, y).unwrap_or_else(|| {
                panic!("dynamics: no interface from {x:?} toward {y:?} (dest {})", dest.addr)
            });
            let y_to_x = topo.iface_toward(y, x).unwrap_or_else(|| {
                panic!("dynamics: no interface from {y:?} toward {x:?} (dest {})", dest.addr)
            });
            let sim = tx.simulator_mut();
            let start = now + dyn_cfg.forwarding_loop_delay;
            sim.schedule_route_set(start, x, dst_pfx, Some(NextHop::Iface(x_to_y)));
            sim.schedule_route_set(start, y, dst_pfx, Some(NextHop::Iface(y_to_x)));
            let end = start + dyn_cfg.forwarding_loop_window;
            sim.schedule_route_set(end, x, dst_pfx, None);
            sim.schedule_route_set(end, y, dst_pfx, None);
        }
    }
    if dyn_cfg.balancer_flap_prob > 0.0
        && (dest.truth.per_flow_lb || dest.truth.per_packet_lb)
        && rng.gen_bool(dyn_cfg.balancer_flap_prob)
    {
        // Find the balancer on this branch and rotate its egress list —
        // every flow rehashes to a (generally) different path mid-trace.
        // The rotated route must be reinstalled under the *prefix that
        // matched*: installing it under the default prefix would shadow a
        // more specific original route for the rest of the shard.
        for &node in &dest.chain {
            let current = tx
                .simulator()
                .routing_of(node)
                .lookup_entry(dest.addr)
                .map(|(prefix, nh)| (prefix, nh.clone()));
            if let Some((prefix, NextHop::Balanced { kind, mut egresses })) = current {
                egresses.rotate_left(1);
                let at = now + dyn_cfg.balancer_flap_after;
                tx.simulator_mut().schedule_route_set(
                    at,
                    node,
                    prefix,
                    Some(NextHop::Balanced { kind, egresses }),
                );
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------
// The multipath campaign mode: MDA per destination over the same
// work-stealing (destination, round) pool.
// ---------------------------------------------------------------------

/// Multipath-campaign parameters: run windowed MDA discovery toward
/// every destination, `rounds` times, over the work-stealing pool. The
/// same determinism guarantee as the side-by-side campaign holds: every
/// draw derives from `(seed, destination, round)`, so the
/// [`crate::report::multipath_digest`] is byte-identical for any worker
/// count.
#[derive(Debug, Clone)]
pub struct MultipathConfig {
    /// Discovery rounds per destination (one is usually enough — the
    /// stopping rule already bounds the per-hop miss probability).
    pub rounds: usize,
    /// Worker threads claiming `(destination, round)` units. Purely a
    /// performance knob: results are bit-identical for any value.
    pub workers: usize,
    /// Per-destination MDA parameters. The flow family's base source
    /// port and destination port are drawn per unit from the campaign
    /// seed (the study's [10000, 60000] discipline) and override the
    /// ports set here.
    pub mda: MdaConfig,
    /// Run every unit with the adaptive probing policies
    /// ([`MdaConfig::adaptive`]): backoff retries and pacing against
    /// ICMP rate limiters, a longer star run for MPLS interiors, and
    /// the mid-walk UDP → TCP fallback for filtered paths. The jitter
    /// seed is derived per unit, so results stay bit-identical for any
    /// worker count. Statistical knobs (`alpha`, flow budget, window)
    /// still come from `mda`.
    pub adaptive: bool,
    /// Campaign-level seed.
    pub seed: u64,
    /// Deterministic fault injection (crash-safety testing).
    pub inject: InjectConfig,
}

impl Default for MultipathConfig {
    fn default() -> Self {
        MultipathConfig {
            rounds: 1,
            workers: 8,
            // Campaign-grade confidence: the per-hop stopping rule at
            // the MDA paper's alpha = 0.05 misses an interface at ~3-5%
            // of balanced hops by design (that *is* alpha), which
            // compounds over a campaign's whole destination list.
            // alpha = 0.01 costs ~3 extra probes per hop and brings
            // full-recovery accuracy against planted ground truth above
            // the 95% acceptance floor.
            mda: MdaConfig { alpha: 0.01, ..MdaConfig::default() },
            adaptive: false,
            seed: 20061025,
            inject: InjectConfig::none(),
        }
    }
}

/// What one `(destination, round)` discovery unit found — the scalar
/// summary of its [`pt_mda::MultipathMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitDiscovery {
    /// Destination index into [`SyntheticInternet::dests`].
    pub dest: usize,
    /// Round number.
    pub round: usize,
    /// The probed address.
    pub addr: Ipv4Addr,
    /// Maximum confident (converged) hop width.
    pub width: usize,
    /// Maximum observed hop width, converged or not.
    pub observed_width: usize,
    /// Discovered branch-length delta.
    pub delta: u8,
    /// Aggregate balancer classification.
    pub class: BalancerClass,
    /// Hops walked.
    pub hops: usize,
    /// Directed DAG links discovered.
    pub links: usize,
    /// Committed stars across all hops.
    pub stars: usize,
    /// Hops whose stopping rule did not converge.
    pub unconverged_hops: usize,
    /// Probes spent.
    pub probes: usize,
    /// The destination itself answered.
    pub reached: bool,
    /// A watchdog budget ([`MdaConfig::probe_budget`] /
    /// [`MdaConfig::time_budget`]) cut the walk short: the DAG is a
    /// valid but incomplete prefix, and widths are lower bounds.
    pub degraded: bool,
}

/// Per-destination view merged across rounds: widths/deltas take the
/// maximum, classification takes the strongest evidence (per-packet
/// dominates per-flow dominates undetermined), probes accumulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DestMultipath {
    /// Destination index into [`SyntheticInternet::dests`].
    pub dest: usize,
    /// The probed address.
    pub addr: Ipv4Addr,
    /// Maximum confident width over rounds.
    pub width: usize,
    /// Maximum observed width over rounds.
    pub observed_width: usize,
    /// Maximum discovered delta over rounds.
    pub delta: u8,
    /// Merged classification.
    pub class: BalancerClass,
    /// Total probes over rounds.
    pub probes: usize,
    /// Reached in any round.
    pub reached: bool,
    /// Some round's walk was budget-degraded, so the merged view may
    /// undercount.
    pub degraded: bool,
}

/// Aggregate multipath-campaign statistics — the discovery counterpart
/// of the anomaly [`ToolReport`], rendered next to it by
/// [`crate::report::render_multipath_report`].
#[derive(Debug, Clone, PartialEq)]
pub struct MultipathReport {
    /// Destinations probed.
    pub destinations: usize,
    /// Rounds per destination.
    pub rounds: usize,
    /// Destinations with at least one balanced hop discovered.
    pub balanced_dests: usize,
    /// Destinations classified per-flow.
    pub per_flow_dests: usize,
    /// Destinations classified per-packet.
    pub per_packet_dests: usize,
    /// Balanced destinations whose classification stayed undetermined.
    pub undetermined_dests: usize,
    /// Destinations that answered a probe themselves.
    pub reached_dests: usize,
    /// Histogram of confident widths 2, 3 and ≥ 4 over destinations.
    pub width_hist: [usize; 3],
    /// Histogram of discovered deltas 0, 1 and ≥ 2 over *balanced*
    /// destinations.
    pub delta_hist: [usize; 3],
    /// Mean probes per destination (all rounds).
    pub mean_probes: f64,
    /// Units whose walk a watchdog budget degraded.
    pub degraded_units: usize,
}

/// Multipath campaign output.
#[derive(Debug, Clone)]
pub struct MultipathResult {
    /// Raw per-unit discoveries, in round-major unit order regardless
    /// of worker count.
    pub units: Vec<UnitDiscovery>,
    /// Per-destination merged view, in destination order.
    pub per_dest: Vec<DestMultipath>,
    /// Aggregate statistics over `per_dest`.
    pub report: MultipathReport,
    /// Mean virtual probing seconds per destination (summed over its
    /// rounds); the figure the windowed engine divides.
    pub mean_virtual_secs: f64,
    /// Units whose execution panicked, in unit order — quarantined with
    /// all partial results discarded, exactly like the side-by-side
    /// campaign's [`CampaignResult::quarantined`].
    pub quarantined: Vec<QuarantinedUnit>,
}

fn stronger_class(a: BalancerClass, b: BalancerClass) -> BalancerClass {
    use BalancerClass::*;
    match (a, b) {
        (PerPacket, _) | (_, PerPacket) => PerPacket,
        (PerFlow, _) | (_, PerFlow) => PerFlow,
        (Undetermined, _) | (_, Undetermined) => Undetermined,
        _ => NotBalanced,
    }
}

/// One multipath unit's tagged output.
pub(crate) type TaggedUnit = (UnitId, UnitDiscovery, f64);

/// What a block of multipath units produced.
pub(crate) struct MultipathBlock {
    pub(crate) units: Vec<TaggedUnit>,
    pub(crate) quarantined: Vec<QuarantinedUnit>,
}

impl MultipathBlock {
    pub(crate) fn empty() -> Self {
        MultipathBlock { units: Vec::new(), quarantined: Vec::new() }
    }

    pub(crate) fn absorb(&mut self, other: MultipathBlock) {
        self.units.extend(other.units);
        self.quarantined.extend(other.quarantined);
    }
}

/// Check the multipath campaign's invariants and return the unit count.
pub(crate) fn multipath_units(net: &SyntheticInternet, config: &MultipathConfig) -> u32 {
    assert!(config.workers >= 1 && config.rounds >= 1);
    // Validated here, not deep inside a worker thread: the per-unit
    // port draw needs room for every flow id above a base in the
    // study's [10000, 60000] range, and one walk's probes must fit the
    // 15-bit probe-id space.
    assert!(
        (1..=4096).contains(&config.mda.max_flows_per_hop),
        "MultipathConfig: max_flows_per_hop must be in 1..=4096, got {}",
        config.mda.max_flows_per_hop
    );
    let n_units = net.dests.len() * config.rounds;
    assert!(u32::try_from(n_units).is_ok(), "campaign too large for u32 unit ids");
    n_units as u32
}

/// Run a multipath-discovery campaign over `net`: windowed MDA toward
/// every destination, on the same seed-derived, work-stealing
/// `(destination, round)` pool as [`run`].
pub fn run_multipath(net: &SyntheticInternet, config: &MultipathConfig) -> MultipathResult {
    let n_units = multipath_units(net, config);
    let out = run_multipath_block(net, config, 0..n_units);
    finalize_multipath(net, config, out)
}

/// Execute one contiguous block of multipath units — the whole campaign
/// for [`run_multipath`], one checkpoint block for the crash-safe
/// engine in [`crate::snapshot`].
pub(crate) fn run_multipath_block(
    net: &SyntheticInternet,
    config: &MultipathConfig,
    units: Range<UnitId>,
) -> MultipathBlock {
    let n_block = units.len();
    if n_block == 0 {
        return MultipathBlock::empty();
    }
    let workers = config.workers.min(n_block).max(1);

    let locals: Vec<Worker<UnitId>> = (0..workers).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<UnitId>> = locals.iter().map(Worker::stealer).collect();
    for unit in units {
        locals[unit as usize % workers].push(unit);
    }

    let outputs: Vec<MultipathBlock> = std::thread::scope(|scope| {
        let handles: Vec<_> = locals
            .into_iter()
            .enumerate()
            .map(|(worker_idx, local)| {
                let stealers = &stealers;
                let config = &*config;
                scope.spawn(move || {
                    let mut pool = SimulatorPool::new(net.topology.clone());
                    let mut scratch = MdaScratch::new();
                    let mut out = MultipathBlock::empty();
                    while let Some(unit) = next_unit(worker_idx, &local, stealers) {
                        // Same unit isolation as the side-by-side
                        // campaign: catch the unit's panic, rebuild the
                        // worker's pool and scratch, quarantine.
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            run_multipath_unit(unit, net, config, &mut pool, &mut scratch)
                        }));
                        match result {
                            Ok(tagged) => out.units.push(tagged),
                            Err(payload) => {
                                pool = SimulatorPool::new(net.topology.clone());
                                scratch = MdaScratch::new();
                                let (dest_idx, round, unit_stream) =
                                    unit_coords(unit, net.dests.len(), config.seed);
                                out.quarantined.push(QuarantinedUnit {
                                    unit,
                                    dest: dest_idx,
                                    round,
                                    addr: net.dests[dest_idx].addr,
                                    seed: unit_stream,
                                    panic: panic_text(payload),
                                });
                            }
                        }
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("campaign worker died")).collect()
    });

    let mut merged = MultipathBlock::empty();
    for out in outputs {
        merged.absorb(out);
    }
    merged
}

/// Order-sensitive assembly of the multipath result from an (unordered)
/// fold of every unit — the counterpart of [`finalize_campaign`].
pub(crate) fn finalize_multipath(
    net: &SyntheticInternet,
    config: &MultipathConfig,
    out: MultipathBlock,
) -> MultipathResult {
    let MultipathBlock { mut units, mut quarantined } = out;
    let n_dests = net.dests.len();
    units.sort_by_key(|(unit, _, _)| *unit);
    quarantined.sort_by_key(|q| q.unit);
    let total_virtual: f64 = units.iter().map(|(_, _, v)| v).sum();
    let units: Vec<UnitDiscovery> = units.into_iter().map(|(_, u, _)| u).collect();

    // Merge rounds into the per-destination view (units are sorted
    // round-major, so iterating them folds rounds in round order).
    let mut per_dest: Vec<DestMultipath> = net
        .dests
        .iter()
        .enumerate()
        .map(|(i, d)| DestMultipath {
            dest: i,
            addr: d.addr,
            width: 0,
            observed_width: 0,
            delta: 0,
            class: BalancerClass::NotBalanced,
            probes: 0,
            reached: false,
            degraded: false,
        })
        .collect();
    for u in &units {
        let d = &mut per_dest[u.dest];
        d.width = d.width.max(u.width);
        d.observed_width = d.observed_width.max(u.observed_width);
        d.delta = d.delta.max(u.delta);
        d.class = stronger_class(d.class, u.class);
        d.probes += u.probes;
        d.reached |= u.reached;
        d.degraded |= u.degraded;
    }

    let mut report = MultipathReport {
        destinations: n_dests,
        rounds: config.rounds,
        balanced_dests: 0,
        per_flow_dests: 0,
        per_packet_dests: 0,
        undetermined_dests: 0,
        reached_dests: 0,
        width_hist: [0; 3],
        delta_hist: [0; 3],
        mean_probes: 0.0,
        degraded_units: units.iter().filter(|u| u.degraded).count(),
    };
    let mut probes_total = 0usize;
    for d in &per_dest {
        probes_total += d.probes;
        report.reached_dests += usize::from(d.reached);
        match d.class {
            BalancerClass::NotBalanced => continue,
            BalancerClass::PerFlow => report.per_flow_dests += 1,
            BalancerClass::PerPacket => report.per_packet_dests += 1,
            BalancerClass::Undetermined => report.undetermined_dests += 1,
        }
        report.balanced_dests += 1;
        if d.width >= 2 {
            report.width_hist[(d.width - 2).min(2)] += 1;
        }
        report.delta_hist[usize::from(d.delta).min(2)] += 1;
    }
    report.mean_probes = probes_total as f64 / n_dests.max(1) as f64;

    MultipathResult {
        units,
        per_dest,
        report,
        mean_virtual_secs: total_virtual / n_dests.max(1) as f64,
        quarantined,
    }
}

/// One multipath unit: a full MDA walk toward one destination over a
/// pristine simulator, every draw derived from `(seed, dest, round)`.
fn run_multipath_unit(
    unit: UnitId,
    net: &SyntheticInternet,
    config: &MultipathConfig,
    pool: &mut SimulatorPool,
    scratch: &mut MdaScratch,
) -> TaggedUnit {
    let (dest_idx, round, unit_stream) = unit_coords(unit, net.dests.len(), config.seed);
    let dest = &net.dests[dest_idx];

    if config.inject.panic_units.contains(&unit) {
        panic!("injected fault: unit {unit} (dest {dest_idx}, round {round})");
    }

    let mut rng = StdRng::seed_from_u64(unit_stream);
    let sim = pool.acquire(splitmix64(unit_stream ^ 0x6d64_6121));
    let mut tx = SimTransport::new(sim, net.source);

    // Injected runaway: a permanent forwarding loop mid-branch — the
    // walk inches hop by hop to its TTL ceiling unless a watchdog
    // budget cuts it off first. No RNG draws consumed.
    if config.inject.runaway_units.contains(&unit) {
        install_runaway_loop(&mut tx, dest, &net.topology);
    }

    // The study's port discipline: draw the flow family's base source
    // port and the destination port uniformly, leaving room above the
    // base for every flow id.
    let max_flows = config.mda.max_flows_per_hop as u16;
    let base_src_port = rng.gen_range(10_000..=60_000u16.saturating_sub(max_flows));
    let dst_port = rng.gen_range(10_000..=60_000);
    let mda = if config.adaptive {
        // The adaptive preset's probing policies layered over this
        // campaign's statistical knobs; the jitter seed comes from the
        // unit stream, so retry schedules are reproducible and
        // worker-count independent.
        let policy = MdaConfig::adaptive(splitmix64(unit_stream ^ 0x6164_7074));
        MdaConfig {
            flow_retries: policy.flow_retries,
            max_consecutive_stars: policy.max_consecutive_stars,
            retry_backoff: policy.retry_backoff,
            jitter_seed: policy.jitter_seed,
            pace_initial: policy.pace_initial,
            pace_cap: policy.pace_cap,
            dead_hop_flows: policy.dead_hop_flows,
            protocol_fallback: policy.protocol_fallback,
            fallback_after_stars: policy.fallback_after_stars,
            base_src_port,
            dst_port,
            ..config.mda
        }
    } else {
        MdaConfig { base_src_port, dst_port, ..config.mda }
    };
    let map = discover_with(&mut tx, dest.addr, &mda, scratch);

    let discovery = UnitDiscovery {
        dest: dest_idx,
        round,
        addr: dest.addr,
        width: map.max_width(),
        observed_width: map.max_observed_width(),
        delta: map.discovered_delta(),
        class: map.classification(),
        hops: map.hops.len(),
        links: map.links.len(),
        stars: map.hops.iter().map(|h| h.stars).sum(),
        unconverged_hops: map.hops.iter().filter(|h| !h.converged).count(),
        probes: map.total_probes,
        reached: map.reached,
        degraded: map.degraded,
    };
    scratch.recycle(map);
    let virtual_secs = tx.now().as_secs_f64();
    pool.release(tx.into_simulator());
    (unit, discovery, virtual_secs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_topogen::{generate, InternetConfig};

    fn quick_config(rounds: usize) -> CampaignConfig {
        CampaignConfig { rounds, workers: 4, seed: 99, ..CampaignConfig::default() }
    }

    #[test]
    fn campaign_runs_and_counts_everything() {
        let net = generate(&InternetConfig::tiny(42));
        let result = run(&net, &quick_config(3));
        assert_eq!(result.classic_report.rounds, 3);
        assert_eq!(result.classic_report.routes_total, 3 * 40);
        assert_eq!(result.paris_report.routes_total, 3 * 40);
        assert_eq!(result.classic_report.destinations, 40);
        assert!(result.classic_report.responses > 0);
        assert!(result.mean_virtual_secs > 0.0);
    }

    #[test]
    fn campaign_is_deterministic() {
        let net = generate(&InternetConfig::tiny(42));
        let a = run(&net, &quick_config(2));
        let b = run(&net, &quick_config(2));
        assert_eq!(a.classic_report, b.classic_report);
        assert_eq!(a.paris_report, b.paris_report);
        assert_eq!(a.comparison, b.comparison);
    }

    #[test]
    fn worker_count_is_a_pure_performance_knob() {
        let net = generate(&InternetConfig::tiny(42));
        let base = run(&net, &quick_config(2));
        // 1000 exceeds the 80 units and exercises the clamp.
        for workers in [1, 3, 16, 1000] {
            let cfg = CampaignConfig { rounds: 2, workers, seed: 99, ..CampaignConfig::default() };
            let result = run(&net, &cfg);
            assert_eq!(result.classic_report, base.classic_report, "workers = {workers}");
            assert_eq!(result.paris_report, base.paris_report, "workers = {workers}");
            assert_eq!(result.comparison, base.comparison, "workers = {workers}");
            assert_eq!(result.mean_virtual_secs, base.mean_virtual_secs, "workers = {workers}");
        }
    }

    #[test]
    fn kept_routes_come_back_in_unit_order_for_any_worker_count() {
        let net = generate(&InternetConfig::tiny(42));
        let order = |workers: usize| {
            let cfg = CampaignConfig {
                rounds: 2,
                workers,
                seed: 99,
                keep_routes: true,
                ..CampaignConfig::default()
            };
            run(&net, &cfg)
                .routes
                .iter()
                .map(|(tool, round, route)| (*tool, *round, route.destination))
                .collect::<Vec<_>>()
        };
        let serial = order(1);
        assert_eq!(serial.len(), 2 * 40 * 2, "two tools per destination per round");
        // Round-major unit order, Paris before classic within a unit.
        assert_eq!(serial[0].0, StrategyId::ParisUdp);
        assert_eq!(serial[1].0, StrategyId::ClassicUdp);
        assert_eq!(serial[0].2, serial[1].2, "pair traces the same destination");
        assert_eq!(order(5), serial, "route order survives parallel claiming");
    }

    #[test]
    fn windowed_campaign_measures_sequential_routes_in_less_virtual_time() {
        // On a deterministic network (no link loss, no per-packet
        // balancing, no dynamics) the windowed tracer must measure the
        // exact routes the sequential tracer measures — including
        // star-limit abandonment on firewalled destinations — while
        // spending a fraction of the virtual probing time.
        let config = InternetConfig {
            seed: 31,
            n_destinations: 60,
            per_flow_lb: 0.4,
            per_packet_lb: 0.0,
            zero_ttl: 0.1,
            broken: 0.05,
            nat: 0.0,
            firewalled_dest: 0.2,
            silent_router: 0.05,
            link_loss: 0.0,
            ..InternetConfig::default()
        };
        let net = generate(&config);
        let campaign = |window: u8| {
            let mut cc = quick_config(2);
            cc.dynamics = DynamicsConfig::none();
            cc.trace = TraceConfig { window, ..cc.trace };
            run(&net, &cc)
        };
        let sequential = campaign(1);
        let windowed = campaign(TraceConfig::default().window);
        assert_eq!(windowed.classic_report, sequential.classic_report);
        assert_eq!(windowed.paris_report, sequential.paris_report);
        assert_eq!(windowed.comparison, sequential.comparison);
        let speedup = sequential.mean_virtual_secs / windowed.mean_virtual_secs;
        assert!(
            speedup >= 2.0,
            "windowed probing must cut virtual time per destination >= 2x, got {speedup:.2}x \
             ({:.2}s -> {:.2}s)",
            sequential.mean_virtual_secs,
            windowed.mean_virtual_secs
        );
    }

    #[test]
    fn classic_sees_more_anomalies_than_paris() {
        // The headline result, at small scale: a network dominated by
        // per-flow load balancers gives classic traceroute loops and
        // diamonds that Paris does not see.
        let config = InternetConfig {
            seed: 7,
            n_destinations: 120,
            per_flow_lb: 0.6,
            lb_equal_weight: 0.3,
            lb_delta1_weight: 0.5,
            per_packet_lb: 0.0,
            zero_ttl: 0.0,
            broken: 0.0,
            nat: 0.0,
            firewalled_dest: 0.0,
            silent_router: 0.0,
            link_loss: 0.0,
            ..InternetConfig::default()
        };
        let net = generate(&config);
        let mut cc = quick_config(6);
        cc.dynamics = DynamicsConfig::none();
        let result = run(&net, &cc);
        assert!(
            result.classic_report.pct_routes_with_loop > 2.0,
            "classic loop rate too low: {}",
            result.classic_report.pct_routes_with_loop
        );
        assert!(
            result.paris_report.pct_routes_with_loop
                < result.classic_report.pct_routes_with_loop / 5.0,
            "paris {} vs classic {}",
            result.paris_report.pct_routes_with_loop,
            result.classic_report.pct_routes_with_loop
        );
        assert!(result.classic_report.diamonds_total > result.paris_report.diamonds_total);
        // And the attribution says per-flow LB dominates.
        let pf =
            result.comparison.loop_pct(pt_anomaly::stats::FinalLoopCause::PerFlowLoadBalancing);
        assert!(pf > 80.0, "per-flow share {pf}");
    }

    #[test]
    fn multipath_campaign_discovers_the_balancer_population() {
        let net = generate(&InternetConfig::tiny(42));
        let result = run_multipath(&net, &MultipathConfig { workers: 4, ..Default::default() });
        assert_eq!(result.per_dest.len(), 40);
        assert_eq!(result.units.len(), 40);
        let truth_balanced = net.dests.iter().filter(|d| d.truth.has_balancer()).count();
        assert!(truth_balanced > 0, "tiny(42) must plant balancers");
        assert!(
            result.report.balanced_dests >= truth_balanced * 9 / 10,
            "discovered {} of {truth_balanced} balancers",
            result.report.balanced_dests
        );
        assert!(result.report.per_flow_dests >= result.report.per_packet_dests);
        assert!(result.mean_virtual_secs > 0.0);
        assert!(result.report.mean_probes > 0.0);
    }

    #[test]
    fn multipath_worker_count_is_a_pure_performance_knob() {
        let net = generate(&InternetConfig::tiny(42));
        let digest = |workers: usize| {
            let config = MultipathConfig { rounds: 2, workers, seed: 7, ..Default::default() };
            crate::report::multipath_digest(&run_multipath(&net, &config))
        };
        let baseline = digest(1);
        for workers in [3, 16, 1000] {
            assert_eq!(digest(workers), baseline, "workers = {workers}");
        }
    }

    #[test]
    fn windowed_multipath_discovers_sequential_dags_in_less_virtual_time() {
        // On a deterministic network (no loss, no per-packet balancing)
        // the probing window is a pure virtual-time knob: every unit's
        // discovery — width, delta, class, hops, links, stars — must be
        // identical, while the probing time per destination collapses.
        let config = InternetConfig {
            seed: 31,
            n_destinations: 40,
            per_flow_lb: 0.5,
            lb_delta1_weight: 0.3,
            per_packet_lb: 0.0,
            zero_ttl: 0.05,
            broken: 0.05,
            nat: 0.05,
            firewalled_dest: 0.15,
            silent_router: 0.05,
            link_loss: 0.0,
            ..InternetConfig::default()
        };
        let net = generate(&config);
        let campaign = |window: u8| {
            let mut mc = MultipathConfig { workers: 4, seed: 3, ..Default::default() };
            mc.mda.window = window;
            run_multipath(&net, &mc)
        };
        let sequential = campaign(1);
        let windowed = campaign(MdaConfig::default().window);
        let dag = |r: &MultipathResult| {
            r.units
                .iter()
                .map(|u| {
                    // Everything but probe counts, which legitimately
                    // include window-dependent speculation.
                    (
                        u.dest,
                        u.width,
                        u.observed_width,
                        u.delta,
                        u.class,
                        u.hops,
                        u.links,
                        u.stars,
                        u.unconverged_hops,
                        u.reached,
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(dag(&windowed), dag(&sequential), "window changed a discovered DAG");
        let cut = sequential.mean_virtual_secs / windowed.mean_virtual_secs;
        assert!(
            cut >= 1.5,
            "windowed MDA must cut virtual secs/destination >= 1.5x, got {cut:.2}x \
             ({:.2}s -> {:.2}s)",
            sequential.mean_virtual_secs,
            windowed.mean_virtual_secs
        );
    }

    #[test]
    fn injected_panic_is_quarantined_without_contaminating_healthy_units() {
        let net = generate(&InternetConfig::tiny(42));
        let inject = |units: &[u32]| InjectConfig {
            panic_units: units.iter().copied().collect(),
            runaway_units: BTreeSet::new(),
        };
        let digest = |workers: usize| {
            let cfg = CampaignConfig {
                rounds: 2,
                workers,
                seed: 99,
                inject: inject(&[5, 41]),
                ..CampaignConfig::default()
            };
            let result = run(&net, &cfg);
            // Both poisoned units are reported, in unit order, with
            // their coordinates and the panic message.
            assert_eq!(
                result.quarantined.iter().map(|q| q.unit).collect::<Vec<_>>(),
                vec![5, 41],
                "workers = {workers}"
            );
            assert_eq!(result.quarantined[0].dest, 5);
            assert_eq!(result.quarantined[0].round, 0);
            assert_eq!(result.quarantined[1].dest, 1);
            assert_eq!(result.quarantined[1].round, 1);
            assert_eq!(result.quarantined[0].addr, net.dests[5].addr);
            assert!(result.quarantined[0].panic.contains("injected fault: unit 5"));
            // The poisoned units' routes are fully discarded: 80 units
            // minus 2 quarantined, two tools each.
            assert_eq!(result.classic_report.routes_total, 78);
            assert_eq!(result.paris_report.routes_total, 78);
            crate::report::report_digest(&result)
        };
        // Healthy-unit results are byte-identical whatever worker
        // claimed the poisoned units.
        let baseline = digest(1);
        for workers in [4, 8] {
            assert_eq!(digest(workers), baseline, "workers = {workers}");
        }
    }

    #[test]
    fn injected_runaway_unit_is_cut_by_the_watchdog_budget() {
        let net = generate(&InternetConfig::tiny(42));
        let config = |workers: usize, runaway: &[u32]| CampaignConfig {
            rounds: 2,
            workers,
            seed: 99,
            // Generous for any organic trace on tiny(42) (paper
            // settings probe one TTL each from 2..=39, so an organic
            // worst case is bounded by the star limit well short of
            // this), but far below what a trace stuck in a permanent
            // forwarding loop would burn running to the 39-hop ceiling.
            trace: TraceConfig { probe_budget: 30, ..TraceConfig::paper() },
            inject: InjectConfig {
                panic_units: BTreeSet::new(),
                runaway_units: runaway.iter().copied().collect(),
            },
            ..CampaignConfig::default()
        };
        let clean = run(&net, &config(4, &[]));
        assert_eq!(
            clean.classic_report.degraded_routes + clean.paris_report.degraded_routes,
            0,
            "budget must not trip on healthy units"
        );
        let digest = |workers: usize| {
            let result = run(&net, &config(workers, &[7]));
            // Both of unit 7's traces hit the watchdog and are marked
            // degraded instead of spinning to the TTL ceiling.
            assert_eq!(result.classic_report.degraded_routes, 1, "workers = {workers}");
            assert_eq!(result.paris_report.degraded_routes, 1, "workers = {workers}");
            assert!(result.quarantined.is_empty());
            crate::report::report_digest(&result)
        };
        let baseline = digest(1);
        for workers in [4, 8] {
            assert_eq!(digest(workers), baseline, "workers = {workers}");
        }
    }

    #[test]
    fn multipath_panic_and_runaway_units_are_isolated() {
        let net = generate(&InternetConfig::tiny(42));
        let config = |workers: usize| {
            let mut mc = MultipathConfig { rounds: 2, workers, seed: 7, ..Default::default() };
            // Ample for an organic walk on tiny(42) (the longest takes
            // 181 probes); a walk crawling a permanent forwarding loop
            // hop-by-hop to its TTL ceiling takes 314.
            mc.mda.probe_budget = 240;
            mc.inject.panic_units.insert(3);
            mc.inject.runaway_units.insert(9);
            mc
        };
        let digest = |workers: usize| {
            let result = run_multipath(&net, &config(workers));
            assert_eq!(
                result.quarantined.iter().map(|q| q.unit).collect::<Vec<_>>(),
                vec![3],
                "workers = {workers}"
            );
            assert!(result.quarantined[0].panic.contains("injected fault: unit 3"));
            // The quarantined unit contributes nothing.
            assert_eq!(result.units.len(), 79, "workers = {workers}");
            // The runaway walk is budget-degraded, not endless.
            let runaway = result.units.iter().find(|u| u.dest == 9 && u.round == 0).unwrap();
            assert!(runaway.degraded, "workers = {workers}");
            assert!(runaway.probes <= 240, "workers = {workers}");
            assert_eq!(result.report.degraded_units, 1, "workers = {workers}");
            assert!(result.per_dest[9].degraded);
            crate::report::multipath_digest(&result)
        };
        let baseline = digest(1);
        for workers in [4, 8] {
            assert_eq!(digest(workers), baseline, "workers = {workers}");
        }
    }

    #[test]
    fn dynamics_generate_forwarding_loop_cycles() {
        let config = InternetConfig {
            seed: 21,
            n_destinations: 80,
            per_flow_lb: 0.0,
            per_packet_lb: 0.0,
            zero_ttl: 0.0,
            broken: 0.0,
            nat: 0.0,
            firewalled_dest: 0.0,
            silent_router: 0.0,
            link_loss: 0.0,
            branch_len_min: 3,
            branch_len_max: 5,
            ..InternetConfig::default()
        };
        let net = generate(&config);
        let mut cc = quick_config(8);
        cc.dynamics = DynamicsConfig {
            forwarding_loop_prob: 0.2,
            // Early enough that even a windowed trace (which clears the
            // access network in a few virtual ms) is still probing the
            // branch when the loop forms.
            forwarding_loop_delay: SimDuration::from_millis(5),
            forwarding_loop_window: SimDuration::from_secs(3),
            balancer_flap_prob: 0.0,
            balancer_flap_after: SimDuration::ZERO,
        };
        let result = run(&net, &cc);
        assert!(
            result.classic.cycle_instance_count() > 0,
            "forced forwarding loops must produce cycles"
        );
        let fl = result.comparison.cycle_pct(pt_anomaly::stats::FinalCycleCause::ForwardingLoop);
        assert!(fl > 30.0, "forwarding-loop share of cycles: {fl}");
    }
}
