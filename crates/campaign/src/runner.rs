//! The side-by-side campaign runner.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pt_anomaly::{compare, CampaignAccumulator, ComparisonReport, ToolReport};
use pt_core::{trace, ClassicUdp, MeasuredRoute, ParisUdp, StrategyId, TraceConfig};
use pt_netsim::routing::NextHop;
use pt_netsim::time::SimDuration;
use pt_netsim::{SimTransport, Simulator};
use pt_topogen::{DestInfo, SyntheticInternet};

/// Routing-dynamics knobs: the §4 causes that are *events*, not topology.
#[derive(Debug, Clone, Copy)]
pub struct DynamicsConfig {
    /// Per-trace probability of a transient forwarding loop between two
    /// adjacent branch routers, active while the trace runs (→ genuine
    /// cycles, §4.2).
    pub forwarding_loop_prob: f64,
    /// Delay from trace start to loop activation (lets the trace get past
    /// the access network first).
    pub forwarding_loop_delay: SimDuration,
    /// How long a transient forwarding loop lasts.
    pub forwarding_loop_window: SimDuration,
    /// Per-trace probability that a load balancer's egress mapping flips
    /// mid-trace (→ routing-change loops; the source of the paper's
    /// 0.25% Paris-only loops).
    pub balancer_flap_prob: f64,
    /// Delay from trace start to the flap.
    pub balancer_flap_after: SimDuration,
}

impl Default for DynamicsConfig {
    fn default() -> Self {
        DynamicsConfig {
            forwarding_loop_prob: 0.0004,
            forwarding_loop_delay: SimDuration::from_millis(100),
            forwarding_loop_window: SimDuration::from_millis(500),
            balancer_flap_prob: 0.008,
            balancer_flap_after: SimDuration::from_millis(250),
        }
    }
}

impl DynamicsConfig {
    /// No routing dynamics at all.
    pub fn none() -> Self {
        DynamicsConfig {
            forwarding_loop_prob: 0.0,
            forwarding_loop_delay: SimDuration::ZERO,
            forwarding_loop_window: SimDuration::ZERO,
            balancer_flap_prob: 0.0,
            balancer_flap_after: SimDuration::ZERO,
        }
    }
}

/// Campaign parameters (§3's setup).
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Measurement rounds (556 in the paper).
    pub rounds: usize,
    /// Parallel probing processes (32 in the paper).
    pub shards: usize,
    /// Per-trace parameters; defaults to the paper's.
    pub trace: TraceConfig,
    /// Routing dynamics.
    pub dynamics: DynamicsConfig,
    /// Campaign-level seed (ports, dynamics draws).
    pub seed: u64,
    /// When set, keep every measured route (memory-heavy; for debugging
    /// and small runs only).
    pub keep_routes: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            rounds: 25,
            shards: 8,
            trace: TraceConfig::paper(),
            dynamics: DynamicsConfig::default(),
            seed: 20061025, // the paper's publication date

            keep_routes: false,
        }
    }
}

/// Campaign output: per-tool summaries plus the §4 attribution.
#[derive(Debug)]
pub struct CampaignResult {
    /// Classic traceroute accumulator (for further analysis).
    pub classic: CampaignAccumulator,
    /// Paris traceroute accumulator.
    pub paris: CampaignAccumulator,
    /// Classic summary.
    pub classic_report: ToolReport,
    /// Paris summary.
    pub paris_report: ToolReport,
    /// The classic-vs-Paris attribution.
    pub comparison: ComparisonReport,
    /// Kept routes (tool, round, route), when requested.
    pub routes: Vec<(StrategyId, usize, MeasuredRoute)>,
    /// Virtual seconds of probing per shard, averaged.
    pub mean_virtual_secs_per_shard: f64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

struct ShardOutput {
    classic: CampaignAccumulator,
    paris: CampaignAccumulator,
    routes: Vec<(StrategyId, usize, MeasuredRoute)>,
    virtual_secs: f64,
}

/// Run a full side-by-side campaign over `net`.
pub fn run(net: &SyntheticInternet, config: &CampaignConfig) -> CampaignResult {
    assert!(config.shards >= 1 && config.rounds >= 1);
    let shards: Vec<Vec<&DestInfo>> = (0..config.shards)
        .map(|s| net.dests.iter().skip(s).step_by(config.shards).collect())
        .collect();

    let outputs: Vec<ShardOutput> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .enumerate()
            .map(|(shard_idx, dests)| {
                let config = config.clone();
                let topo = net.topology.clone();
                let source = net.source;
                scope.spawn(move || run_shard(shard_idx, dests, topo, source, &config))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("shard panicked")).collect()
    });

    let mut classic = CampaignAccumulator::new(StrategyId::ClassicUdp);
    let mut paris = CampaignAccumulator::new(StrategyId::ParisUdp);
    let mut routes = Vec::new();
    let mut virt = 0.0;
    let n = outputs.len() as f64;
    for out in outputs {
        classic.merge(out.classic);
        paris.merge(out.paris);
        routes.extend(out.routes);
        virt += out.virtual_secs / n;
    }
    let classic_report = classic.report();
    let paris_report = paris.report();
    let comparison = compare(&classic, &paris);
    CampaignResult {
        classic,
        paris,
        classic_report,
        paris_report,
        comparison,
        routes,
        mean_virtual_secs_per_shard: virt,
    }
}

fn run_shard(
    shard_idx: usize,
    dests: &[&DestInfo],
    topo: std::sync::Arc<pt_netsim::Topology>,
    source: pt_netsim::NodeId,
    config: &CampaignConfig,
) -> ShardOutput {
    let mut rng = StdRng::seed_from_u64(splitmix64(config.seed ^ (shard_idx as u64 + 1)));
    let sim = Simulator::new(topo.clone(), splitmix64(config.seed) ^ shard_idx as u64);
    let mut tx = SimTransport::new(sim, source);
    let mut classic_acc = CampaignAccumulator::new(StrategyId::ClassicUdp);
    let mut paris_acc = CampaignAccumulator::new(StrategyId::ParisUdp);
    let mut routes = Vec::new();

    for round in 0..config.rounds {
        for dest in dests {
            // Routing events are exogenous: draw independently before
            // each trace of the pair.
            schedule_dynamics(&mut rng, &mut tx, dest, &topo, config);

            // Paris traceroute first (§3 order), fixed random five-tuple.
            let sp = rng.gen_range(10_000..=60_000);
            let dp = rng.gen_range(10_000..=60_000);
            let mut paris = ParisUdp::new(sp, dp);
            let route = trace(&mut tx, &mut paris, dest.addr, config.trace);
            paris_acc.ingest(round, &route);
            if config.keep_routes {
                routes.push((StrategyId::ParisUdp, round, route));
            }

            schedule_dynamics(&mut rng, &mut tx, dest, &topo, config);

            // Then classic traceroute. Each trace is a fresh process in
            // the study, so the PID — and with it the source port — is
            // new every time; this is what lets classic explore different
            // flow mappings across rounds.
            let pid = rng.gen::<u16>() & 0x7fff;
            let mut classic = ClassicUdp::new(pid);
            let route = trace(&mut tx, &mut classic, dest.addr, config.trace);
            classic_acc.ingest(round, &route);
            if config.keep_routes {
                routes.push((StrategyId::ClassicUdp, round, route));
            }
        }
    }

    ShardOutput {
        classic: classic_acc,
        paris: paris_acc,
        routes,
        virtual_secs: tx.now().as_secs_f64(),
    }
}

/// Maybe schedule a transient forwarding loop or a balancer flap covering
/// the upcoming pair of traces toward `dest`.
fn schedule_dynamics(
    rng: &mut StdRng,
    tx: &mut SimTransport,
    dest: &DestInfo,
    topo: &pt_netsim::Topology,
    config: &CampaignConfig,
) {
    let dyn_cfg = config.dynamics;
    let now = tx.now();
    if dyn_cfg.forwarding_loop_prob > 0.0
        && dest.chain.len() >= 2
        && rng.gen_bool(dyn_cfg.forwarding_loop_prob)
    {
        // Pick an adjacent, actually-linked pair along the chain. The RNG
        // is only consulted when a candidate exists: drawing on an empty
        // candidate list would silently shift every later draw and make
        // the campaign's randomness depend on topology quirks.
        let candidates: Vec<(pt_netsim::NodeId, pt_netsim::NodeId)> = dest
            .chain
            .windows(2)
            .filter(|w| topo.iface_toward(w[0], w[1]).is_some())
            .map(|w| (w[0], w[1]))
            .collect();
        if let Some(&(x, y)) =
            (!candidates.is_empty()).then(|| &candidates[rng.gen_range(0..candidates.len())])
        {
            let dst_pfx = pt_netsim::Ipv4Prefix::host(dest.addr);
            let x_to_y = topo.iface_toward(x, y).unwrap();
            let y_to_x = topo.iface_toward(y, x).unwrap();
            let sim = tx.simulator_mut();
            let start = now + dyn_cfg.forwarding_loop_delay;
            sim.schedule_route_set(start, x, dst_pfx, Some(NextHop::Iface(x_to_y)));
            sim.schedule_route_set(start, y, dst_pfx, Some(NextHop::Iface(y_to_x)));
            let end = start + dyn_cfg.forwarding_loop_window;
            sim.schedule_route_set(end, x, dst_pfx, None);
            sim.schedule_route_set(end, y, dst_pfx, None);
        }
    }
    if dyn_cfg.balancer_flap_prob > 0.0
        && (dest.truth.per_flow_lb || dest.truth.per_packet_lb)
        && rng.gen_bool(dyn_cfg.balancer_flap_prob)
    {
        // Find the balancer on this branch and rotate its egress list —
        // every flow rehashes to a (generally) different path mid-trace.
        // The rotated route must be reinstalled under the *prefix that
        // matched*: installing it under the default prefix would shadow a
        // more specific original route for the rest of the shard.
        for &node in &dest.chain {
            let current = tx
                .simulator()
                .routing_of(node)
                .lookup_entry(dest.addr)
                .map(|(prefix, nh)| (prefix, nh.clone()));
            if let Some((prefix, NextHop::Balanced { kind, mut egresses })) = current {
                egresses.rotate_left(1);
                let at = now + dyn_cfg.balancer_flap_after;
                tx.simulator_mut().schedule_route_set(
                    at,
                    node,
                    prefix,
                    Some(NextHop::Balanced { kind, egresses }),
                );
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_topogen::{generate, InternetConfig};

    fn quick_config(rounds: usize) -> CampaignConfig {
        CampaignConfig { rounds, shards: 4, seed: 99, ..CampaignConfig::default() }
    }

    #[test]
    fn campaign_runs_and_counts_everything() {
        let net = generate(&InternetConfig::tiny(42));
        let result = run(&net, &quick_config(3));
        assert_eq!(result.classic_report.rounds, 3);
        assert_eq!(result.classic_report.routes_total, 3 * 40);
        assert_eq!(result.paris_report.routes_total, 3 * 40);
        assert_eq!(result.classic_report.destinations, 40);
        assert!(result.classic_report.responses > 0);
        assert!(result.mean_virtual_secs_per_shard > 0.0);
    }

    #[test]
    fn campaign_is_deterministic() {
        let net = generate(&InternetConfig::tiny(42));
        let a = run(&net, &quick_config(2));
        let b = run(&net, &quick_config(2));
        assert_eq!(a.classic_report, b.classic_report);
        assert_eq!(a.paris_report, b.paris_report);
        assert_eq!(a.comparison, b.comparison);
    }

    #[test]
    fn classic_sees_more_anomalies_than_paris() {
        // The headline result, at small scale: a network dominated by
        // per-flow load balancers gives classic traceroute loops and
        // diamonds that Paris does not see.
        let config = InternetConfig {
            seed: 7,
            n_destinations: 120,
            per_flow_lb: 0.6,
            lb_equal_weight: 0.3,
            lb_delta1_weight: 0.5,
            per_packet_lb: 0.0,
            zero_ttl: 0.0,
            broken: 0.0,
            nat: 0.0,
            firewalled_dest: 0.0,
            silent_router: 0.0,
            link_loss: 0.0,
            ..InternetConfig::default()
        };
        let net = generate(&config);
        let mut cc = quick_config(6);
        cc.dynamics = DynamicsConfig::none();
        let result = run(&net, &cc);
        assert!(
            result.classic_report.pct_routes_with_loop > 2.0,
            "classic loop rate too low: {}",
            result.classic_report.pct_routes_with_loop
        );
        assert!(
            result.paris_report.pct_routes_with_loop
                < result.classic_report.pct_routes_with_loop / 5.0,
            "paris {} vs classic {}",
            result.paris_report.pct_routes_with_loop,
            result.classic_report.pct_routes_with_loop
        );
        assert!(result.classic_report.diamonds_total > result.paris_report.diamonds_total);
        // And the attribution says per-flow LB dominates.
        let pf =
            result.comparison.loop_pct(pt_anomaly::stats::FinalLoopCause::PerFlowLoadBalancing);
        assert!(pf > 80.0, "per-flow share {pf}");
    }

    #[test]
    fn dynamics_generate_forwarding_loop_cycles() {
        let config = InternetConfig {
            seed: 21,
            n_destinations: 80,
            per_flow_lb: 0.0,
            per_packet_lb: 0.0,
            zero_ttl: 0.0,
            broken: 0.0,
            nat: 0.0,
            firewalled_dest: 0.0,
            silent_router: 0.0,
            link_loss: 0.0,
            branch_len_min: 3,
            branch_len_max: 5,
            ..InternetConfig::default()
        };
        let net = generate(&config);
        let mut cc = quick_config(8);
        cc.dynamics = DynamicsConfig {
            forwarding_loop_prob: 0.2,
            forwarding_loop_delay: SimDuration::from_millis(100),
            forwarding_loop_window: SimDuration::from_secs(3),
            balancer_flap_prob: 0.0,
            balancer_flap_after: SimDuration::ZERO,
        };
        let result = run(&net, &cc);
        assert!(
            result.classic.cycle_instance_count() > 0,
            "forced forwarding loops must produce cycles"
        );
        let fl = result.comparison.cycle_pct(pt_anomaly::stats::FinalCycleCause::ForwardingLoop);
        assert!(fl > 30.0, "forwarding-loop share of cycles: {fl}");
    }
}
