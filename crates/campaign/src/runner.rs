//! The side-by-side campaign runner: a work-stealing pool of
//! per-destination trace tasks.
//!
//! Execution is decomposed into `(destination, round)` work units — one
//! Paris + one classic trace over a pristine per-unit simulator — that
//! `workers` threads claim from pre-distributed work-stealing deques.
//! Every random draw a unit makes (probe ports, dynamics, the
//! simulator's own node RNGs) derives from `splitmix64` mixes of
//! `(campaign seed, destination index, round)`, never from the worker
//! that happens to claim the unit; accumulator merging is
//! order-insensitive and kept routes are re-sorted into unit order. The
//! result: the campaign's entire [`ComparisonReport`] digest is
//! byte-identical for any worker count, and `workers` is a pure
//! performance knob (the property `tests/worker_invariance.rs` pins).

use std::net::Ipv4Addr;

use crossbeam_deque::{Steal, Stealer, Worker};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pt_anomaly::{compare, CampaignAccumulator, ComparisonReport, ToolReport};
use pt_core::{
    trace_with, ClassicUdp, MeasuredRoute, ParisUdp, StrategyId, TraceConfig, TraceScratch,
};
use pt_mda::{discover_with, BalancerClass, MdaConfig, MdaScratch};
use pt_netsim::routing::NextHop;
use pt_netsim::time::SimDuration;
use pt_netsim::{SimTransport, SimulatorPool};
use pt_topogen::{DestInfo, SyntheticInternet};

/// Routing-dynamics knobs: the §4 causes that are *events*, not topology.
#[derive(Debug, Clone, Copy)]
pub struct DynamicsConfig {
    /// Per-trace probability of a transient forwarding loop between two
    /// adjacent branch routers, active while the trace runs (→ genuine
    /// cycles, §4.2).
    pub forwarding_loop_prob: f64,
    /// Delay from trace start to loop activation (lets the trace get past
    /// the access network first). Tuned to the windowed tracer's pacing:
    /// with `TraceConfig::window` probes in flight a trace covers the
    /// access network in a few milliseconds of virtual time, not the
    /// tens a sequential trace took.
    pub forwarding_loop_delay: SimDuration,
    /// How long a transient forwarding loop lasts.
    pub forwarding_loop_window: SimDuration,
    /// Per-trace probability that a load balancer's egress mapping flips
    /// mid-trace (→ routing-change loops; the source of the paper's
    /// 0.25% Paris-only loops).
    pub balancer_flap_prob: f64,
    /// Delay from trace start to the flap.
    pub balancer_flap_after: SimDuration,
}

impl Default for DynamicsConfig {
    fn default() -> Self {
        DynamicsConfig {
            forwarding_loop_prob: 0.0004,
            forwarding_loop_delay: SimDuration::from_millis(30),
            forwarding_loop_window: SimDuration::from_millis(500),
            balancer_flap_prob: 0.008,
            balancer_flap_after: SimDuration::from_millis(80),
        }
    }
}

impl DynamicsConfig {
    /// No routing dynamics at all.
    pub fn none() -> Self {
        DynamicsConfig {
            forwarding_loop_prob: 0.0,
            forwarding_loop_delay: SimDuration::ZERO,
            forwarding_loop_window: SimDuration::ZERO,
            balancer_flap_prob: 0.0,
            balancer_flap_after: SimDuration::ZERO,
        }
    }
}

/// Campaign parameters (§3's setup).
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Measurement rounds (556 in the paper).
    pub rounds: usize,
    /// Worker threads claiming `(destination, round)` work units (the
    /// paper ran 32 parallel probing processes). Purely a performance
    /// knob: results are bit-identical for any value.
    pub workers: usize,
    /// Per-trace parameters; defaults to the paper's, with the windowed
    /// tracer's default `window` (3 probes in flight per trace — the
    /// virtual-time analogue of the paper's 32 parallel processes).
    /// Setting `trace.window = 1` reproduces the strictly sequential
    /// per-probe discipline, and with it the pre-windowed campaign
    /// digest byte for byte — provided [`CampaignConfig::dynamics`] is
    /// disabled or pinned to explicit values, since the *default*
    /// dynamics timings were retuned to windowed pacing in the same
    /// change (see [`DynamicsConfig::default`]).
    pub trace: TraceConfig,
    /// Routing dynamics.
    pub dynamics: DynamicsConfig,
    /// Campaign-level seed (ports, dynamics draws).
    pub seed: u64,
    /// When set, keep every measured route (memory-heavy; for debugging
    /// and small runs only).
    pub keep_routes: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            rounds: 25,
            workers: 8,
            trace: TraceConfig::paper(),
            dynamics: DynamicsConfig::default(),
            seed: 20061025, // the paper's publication date

            keep_routes: false,
        }
    }
}

/// Campaign output: per-tool summaries plus the §4 attribution.
#[derive(Debug)]
pub struct CampaignResult {
    /// Classic traceroute accumulator (for further analysis).
    pub classic: CampaignAccumulator,
    /// Paris traceroute accumulator.
    pub paris: CampaignAccumulator,
    /// Classic summary.
    pub classic_report: ToolReport,
    /// Paris summary.
    pub paris_report: ToolReport,
    /// The classic-vs-Paris attribution.
    pub comparison: ComparisonReport,
    /// Kept routes (tool, round, route), when requested; sorted into
    /// `(round, destination)` unit order regardless of worker count.
    pub routes: Vec<(StrategyId, usize, MeasuredRoute)>,
    /// Mean virtual seconds of probing per destination (summed over all
    /// of a destination's rounds). Worker-count-independent, unlike the
    /// per-shard figure it replaces, and the number the windowed tracer
    /// divides by roughly `trace.window`.
    pub mean_virtual_secs: f64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A `(destination, round)` work unit, encoded round-major so unit order
/// matches the old serial iteration (`for round { for dest }`).
type UnitId = u32;

/// What one worker accumulated over every unit it claimed. Accumulator
/// merging is order-insensitive (integer counters, sets, and per-key
/// u64 maps), so workers can fold units in claim order; everything
/// order-sensitive (kept routes, virtual-time floats) is tagged with
/// its unit id and re-ordered deterministically by the merge step.
struct WorkerOutput {
    classic: CampaignAccumulator,
    paris: CampaignAccumulator,
    routes: Vec<(UnitId, StrategyId, usize, MeasuredRoute)>,
    virtual_secs: Vec<(UnitId, f64)>,
}

/// Run a full side-by-side campaign over `net`.
pub fn run(net: &SyntheticInternet, config: &CampaignConfig) -> CampaignResult {
    assert!(config.workers >= 1 && config.rounds >= 1);
    let n_dests = net.dests.len();
    let n_units = n_dests * config.rounds;
    assert!(u32::try_from(n_units).is_ok(), "campaign too large for u32 unit ids");
    let workers = config.workers.min(n_units).max(1);

    // Pre-distribute units round-robin across per-worker deques; a
    // worker that drains its own queue steals the oldest units from its
    // siblings, so stragglers (expensive destinations, dynamics-heavy
    // units) get rebalanced instead of serializing the tail.
    let locals: Vec<Worker<UnitId>> = (0..workers).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<UnitId>> = locals.iter().map(Worker::stealer).collect();
    for unit in 0..n_units {
        locals[unit % workers].push(unit as UnitId);
    }

    let outputs: Vec<WorkerOutput> = std::thread::scope(|scope| {
        let handles: Vec<_> = locals
            .into_iter()
            .enumerate()
            .map(|(worker_idx, local)| {
                let stealers = &stealers;
                let config = &*config;
                scope.spawn(move || run_worker(worker_idx, local, stealers, net, config))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });

    let mut classic = CampaignAccumulator::new(StrategyId::ClassicUdp);
    let mut paris = CampaignAccumulator::new(StrategyId::ParisUdp);
    let mut tagged_routes = Vec::new();
    let mut virt: Vec<(UnitId, f64)> = Vec::with_capacity(n_units);
    for out in outputs {
        classic.merge(out.classic);
        paris.merge(out.paris);
        tagged_routes.extend(out.routes);
        virt.extend(out.virtual_secs);
    }
    // Which worker ran which unit is scheduling noise; re-ordering by
    // unit id (Paris before classic within a unit) makes the kept-route
    // list and the float summation below pure functions of the seed.
    tagged_routes.sort_by_key(|(unit, tool, _, _)| (*unit, *tool != StrategyId::ParisUdp));
    virt.sort_by_key(|(unit, _)| *unit);
    let routes = tagged_routes.into_iter().map(|(_, tool, round, route)| (tool, round, route));
    let total_virtual: f64 = virt.iter().map(|(_, v)| v).sum();

    let classic_report = classic.report();
    let paris_report = paris.report();
    let comparison = compare(&classic, &paris);
    CampaignResult {
        classic,
        paris,
        classic_report,
        paris_report,
        comparison,
        routes: routes.collect(),
        mean_virtual_secs: total_virtual / n_dests.max(1) as f64,
    }
}

/// Claim the next unit: own queue first, then steal the oldest work
/// from siblings. No unit is ever pushed after the workers start, so an
/// all-empty sweep means the campaign is drained.
fn next_unit(
    worker_idx: usize,
    local: &Worker<UnitId>,
    stealers: &[Stealer<UnitId>],
) -> Option<UnitId> {
    if let Some(unit) = local.pop() {
        return Some(unit);
    }
    let n = stealers.len();
    for off in 1..n {
        let victim = &stealers[(worker_idx + off) % n];
        loop {
            match victim.steal() {
                Steal::Success(unit) => return Some(unit),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
    }
    None
}

fn run_worker(
    worker_idx: usize,
    local: Worker<UnitId>,
    stealers: &[Stealer<UnitId>],
    net: &SyntheticInternet,
    config: &CampaignConfig,
) -> WorkerOutput {
    // One pool per worker: after the first unit, every acquire hands
    // back the same warm simulator (arena slots, payload buffers and
    // event-queue capacity intact) reset for the next destination.
    let mut pool = SimulatorPool::new(net.topology.clone());
    // One trace scratch per worker: hop records and the probe registry
    // recycle across every unit, so a worker's steady-state trace loop
    // performs no heap allocation at all.
    let mut scratch = TraceScratch::new();
    let mut out = WorkerOutput {
        classic: CampaignAccumulator::new(StrategyId::ClassicUdp),
        paris: CampaignAccumulator::new(StrategyId::ParisUdp),
        routes: Vec::new(),
        virtual_secs: Vec::new(),
    };
    while let Some(unit) = next_unit(worker_idx, &local, stealers) {
        run_unit(unit, net, config, &mut pool, &mut scratch, &mut out);
    }
    out
}

/// Run one `(destination, round)` unit: a Paris + classic trace pair
/// over a pristine simulator, with every draw derived from
/// `(seed, destination, round)` so the claiming worker is irrelevant.
fn run_unit(
    unit: UnitId,
    net: &SyntheticInternet,
    config: &CampaignConfig,
    pool: &mut SimulatorPool,
    scratch: &mut TraceScratch,
    out: &mut WorkerOutput,
) {
    let n_dests = net.dests.len();
    let dest_idx = unit as usize % n_dests;
    let round = unit as usize / n_dests;
    let dest = &net.dests[dest_idx];

    // Per-destination RNG stream, whitened per round. The two
    // independent mixes keep the campaign-level draws (ports, dynamics)
    // and the simulator's node seeds decorrelated.
    let dest_stream = splitmix64(config.seed ^ splitmix64(dest_idx as u64 + 1));
    let unit_stream = splitmix64(dest_stream ^ (round as u64 + 1));
    let mut rng = StdRng::seed_from_u64(unit_stream);
    let sim = pool.acquire(splitmix64(unit_stream ^ 0x5157_ea11));
    let mut tx = SimTransport::new(sim, net.source);

    // Routing events are exogenous: draw independently before each
    // trace of the pair.
    schedule_dynamics(&mut rng, &mut tx, dest, &net.topology, config);

    // Paris traceroute first (§3 order), fixed random five-tuple.
    let sp = rng.gen_range(10_000..=60_000);
    let dp = rng.gen_range(10_000..=60_000);
    let mut paris = ParisUdp::new(sp, dp);
    let route = trace_with(&mut tx, &mut paris, dest.addr, config.trace, scratch);
    out.paris.ingest(round, &route);
    if config.keep_routes {
        out.routes.push((unit, StrategyId::ParisUdp, round, route));
    } else {
        scratch.recycle(route);
    }

    schedule_dynamics(&mut rng, &mut tx, dest, &net.topology, config);

    // Then classic traceroute. Each trace is a fresh process in the
    // study, so the PID — and with it the source port — is new every
    // time; this is what lets classic explore different flow mappings
    // across rounds.
    let pid = rng.gen::<u16>() & 0x7fff;
    let mut classic = ClassicUdp::new(pid);
    let route = trace_with(&mut tx, &mut classic, dest.addr, config.trace, scratch);
    out.classic.ingest(round, &route);
    if config.keep_routes {
        out.routes.push((unit, StrategyId::ClassicUdp, round, route));
    } else {
        scratch.recycle(route);
    }

    out.virtual_secs.push((unit, tx.now().as_secs_f64()));
    pool.release(tx.into_simulator());
}

/// Maybe schedule a transient forwarding loop or a balancer flap covering
/// the upcoming pair of traces toward `dest`.
fn schedule_dynamics(
    rng: &mut StdRng,
    tx: &mut SimTransport,
    dest: &DestInfo,
    topo: &pt_netsim::Topology,
    config: &CampaignConfig,
) {
    let dyn_cfg = config.dynamics;
    let now = tx.now();
    if dyn_cfg.forwarding_loop_prob > 0.0
        && dest.chain.len() >= 2
        && rng.gen_bool(dyn_cfg.forwarding_loop_prob)
    {
        // Pick an adjacent, actually-linked pair along the chain. The RNG
        // is only consulted when a candidate exists: drawing on an empty
        // candidate list would silently shift every later draw and make
        // the campaign's randomness depend on topology quirks.
        let candidates: Vec<(pt_netsim::NodeId, pt_netsim::NodeId)> = dest
            .chain
            .windows(2)
            .filter(|w| topo.iface_toward(w[0], w[1]).is_some())
            .map(|w| (w[0], w[1]))
            .collect();
        if let Some(&(x, y)) =
            (!candidates.is_empty()).then(|| &candidates[rng.gen_range(0..candidates.len())])
        {
            let dst_pfx = pt_netsim::Ipv4Prefix::host(dest.addr);
            let x_to_y = topo.iface_toward(x, y).unwrap();
            let y_to_x = topo.iface_toward(y, x).unwrap();
            let sim = tx.simulator_mut();
            let start = now + dyn_cfg.forwarding_loop_delay;
            sim.schedule_route_set(start, x, dst_pfx, Some(NextHop::Iface(x_to_y)));
            sim.schedule_route_set(start, y, dst_pfx, Some(NextHop::Iface(y_to_x)));
            let end = start + dyn_cfg.forwarding_loop_window;
            sim.schedule_route_set(end, x, dst_pfx, None);
            sim.schedule_route_set(end, y, dst_pfx, None);
        }
    }
    if dyn_cfg.balancer_flap_prob > 0.0
        && (dest.truth.per_flow_lb || dest.truth.per_packet_lb)
        && rng.gen_bool(dyn_cfg.balancer_flap_prob)
    {
        // Find the balancer on this branch and rotate its egress list —
        // every flow rehashes to a (generally) different path mid-trace.
        // The rotated route must be reinstalled under the *prefix that
        // matched*: installing it under the default prefix would shadow a
        // more specific original route for the rest of the shard.
        for &node in &dest.chain {
            let current = tx
                .simulator()
                .routing_of(node)
                .lookup_entry(dest.addr)
                .map(|(prefix, nh)| (prefix, nh.clone()));
            if let Some((prefix, NextHop::Balanced { kind, mut egresses })) = current {
                egresses.rotate_left(1);
                let at = now + dyn_cfg.balancer_flap_after;
                tx.simulator_mut().schedule_route_set(
                    at,
                    node,
                    prefix,
                    Some(NextHop::Balanced { kind, egresses }),
                );
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------
// The multipath campaign mode: MDA per destination over the same
// work-stealing (destination, round) pool.
// ---------------------------------------------------------------------

/// Multipath-campaign parameters: run windowed MDA discovery toward
/// every destination, `rounds` times, over the work-stealing pool. The
/// same determinism guarantee as the side-by-side campaign holds: every
/// draw derives from `(seed, destination, round)`, so the
/// [`crate::report::multipath_digest`] is byte-identical for any worker
/// count.
#[derive(Debug, Clone)]
pub struct MultipathConfig {
    /// Discovery rounds per destination (one is usually enough — the
    /// stopping rule already bounds the per-hop miss probability).
    pub rounds: usize,
    /// Worker threads claiming `(destination, round)` units. Purely a
    /// performance knob: results are bit-identical for any value.
    pub workers: usize,
    /// Per-destination MDA parameters. The flow family's base source
    /// port and destination port are drawn per unit from the campaign
    /// seed (the study's [10000, 60000] discipline) and override the
    /// ports set here.
    pub mda: MdaConfig,
    /// Run every unit with the adaptive probing policies
    /// ([`MdaConfig::adaptive`]): backoff retries and pacing against
    /// ICMP rate limiters, a longer star run for MPLS interiors, and
    /// the mid-walk UDP → TCP fallback for filtered paths. The jitter
    /// seed is derived per unit, so results stay bit-identical for any
    /// worker count. Statistical knobs (`alpha`, flow budget, window)
    /// still come from `mda`.
    pub adaptive: bool,
    /// Campaign-level seed.
    pub seed: u64,
}

impl Default for MultipathConfig {
    fn default() -> Self {
        MultipathConfig {
            rounds: 1,
            workers: 8,
            // Campaign-grade confidence: the per-hop stopping rule at
            // the MDA paper's alpha = 0.05 misses an interface at ~3-5%
            // of balanced hops by design (that *is* alpha), which
            // compounds over a campaign's whole destination list.
            // alpha = 0.01 costs ~3 extra probes per hop and brings
            // full-recovery accuracy against planted ground truth above
            // the 95% acceptance floor.
            mda: MdaConfig { alpha: 0.01, ..MdaConfig::default() },
            adaptive: false,
            seed: 20061025,
        }
    }
}

/// What one `(destination, round)` discovery unit found — the scalar
/// summary of its [`pt_mda::MultipathMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitDiscovery {
    /// Destination index into [`SyntheticInternet::dests`].
    pub dest: usize,
    /// Round number.
    pub round: usize,
    /// The probed address.
    pub addr: Ipv4Addr,
    /// Maximum confident (converged) hop width.
    pub width: usize,
    /// Maximum observed hop width, converged or not.
    pub observed_width: usize,
    /// Discovered branch-length delta.
    pub delta: u8,
    /// Aggregate balancer classification.
    pub class: BalancerClass,
    /// Hops walked.
    pub hops: usize,
    /// Directed DAG links discovered.
    pub links: usize,
    /// Committed stars across all hops.
    pub stars: usize,
    /// Hops whose stopping rule did not converge.
    pub unconverged_hops: usize,
    /// Probes spent.
    pub probes: usize,
    /// The destination itself answered.
    pub reached: bool,
}

/// Per-destination view merged across rounds: widths/deltas take the
/// maximum, classification takes the strongest evidence (per-packet
/// dominates per-flow dominates undetermined), probes accumulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DestMultipath {
    /// Destination index into [`SyntheticInternet::dests`].
    pub dest: usize,
    /// The probed address.
    pub addr: Ipv4Addr,
    /// Maximum confident width over rounds.
    pub width: usize,
    /// Maximum observed width over rounds.
    pub observed_width: usize,
    /// Maximum discovered delta over rounds.
    pub delta: u8,
    /// Merged classification.
    pub class: BalancerClass,
    /// Total probes over rounds.
    pub probes: usize,
    /// Reached in any round.
    pub reached: bool,
}

/// Aggregate multipath-campaign statistics — the discovery counterpart
/// of the anomaly [`ToolReport`], rendered next to it by
/// [`crate::report::render_multipath_report`].
#[derive(Debug, Clone, PartialEq)]
pub struct MultipathReport {
    /// Destinations probed.
    pub destinations: usize,
    /// Rounds per destination.
    pub rounds: usize,
    /// Destinations with at least one balanced hop discovered.
    pub balanced_dests: usize,
    /// Destinations classified per-flow.
    pub per_flow_dests: usize,
    /// Destinations classified per-packet.
    pub per_packet_dests: usize,
    /// Balanced destinations whose classification stayed undetermined.
    pub undetermined_dests: usize,
    /// Destinations that answered a probe themselves.
    pub reached_dests: usize,
    /// Histogram of confident widths 2, 3 and ≥ 4 over destinations.
    pub width_hist: [usize; 3],
    /// Histogram of discovered deltas 0, 1 and ≥ 2 over *balanced*
    /// destinations.
    pub delta_hist: [usize; 3],
    /// Mean probes per destination (all rounds).
    pub mean_probes: f64,
}

/// Multipath campaign output.
#[derive(Debug, Clone)]
pub struct MultipathResult {
    /// Raw per-unit discoveries, in round-major unit order regardless
    /// of worker count.
    pub units: Vec<UnitDiscovery>,
    /// Per-destination merged view, in destination order.
    pub per_dest: Vec<DestMultipath>,
    /// Aggregate statistics over `per_dest`.
    pub report: MultipathReport,
    /// Mean virtual probing seconds per destination (summed over its
    /// rounds); the figure the windowed engine divides.
    pub mean_virtual_secs: f64,
}

fn stronger_class(a: BalancerClass, b: BalancerClass) -> BalancerClass {
    use BalancerClass::*;
    match (a, b) {
        (PerPacket, _) | (_, PerPacket) => PerPacket,
        (PerFlow, _) | (_, PerFlow) => PerFlow,
        (Undetermined, _) | (_, Undetermined) => Undetermined,
        _ => NotBalanced,
    }
}

/// Run a multipath-discovery campaign over `net`: windowed MDA toward
/// every destination, on the same seed-derived, work-stealing
/// `(destination, round)` pool as [`run`].
pub fn run_multipath(net: &SyntheticInternet, config: &MultipathConfig) -> MultipathResult {
    assert!(config.workers >= 1 && config.rounds >= 1);
    // Validated here, not deep inside a worker thread: the per-unit
    // port draw needs room for every flow id above a base in the
    // study's [10000, 60000] range, and one walk's probes must fit the
    // 15-bit probe-id space.
    assert!(
        (1..=4096).contains(&config.mda.max_flows_per_hop),
        "MultipathConfig: max_flows_per_hop must be in 1..=4096, got {}",
        config.mda.max_flows_per_hop
    );
    let n_dests = net.dests.len();
    let n_units = n_dests * config.rounds;
    assert!(u32::try_from(n_units).is_ok(), "campaign too large for u32 unit ids");
    let workers = config.workers.min(n_units).max(1);

    let locals: Vec<Worker<UnitId>> = (0..workers).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<UnitId>> = locals.iter().map(Worker::stealer).collect();
    for unit in 0..n_units {
        locals[unit % workers].push(unit as UnitId);
    }

    type TaggedUnit = (UnitId, UnitDiscovery, f64);
    let outputs: Vec<Vec<TaggedUnit>> = std::thread::scope(|scope| {
        let handles: Vec<_> = locals
            .into_iter()
            .enumerate()
            .map(|(worker_idx, local)| {
                let stealers = &stealers;
                let config = &*config;
                scope.spawn(move || {
                    let mut pool = SimulatorPool::new(net.topology.clone());
                    let mut scratch = MdaScratch::new();
                    let mut out = Vec::new();
                    while let Some(unit) = next_unit(worker_idx, &local, stealers) {
                        out.push(run_multipath_unit(unit, net, config, &mut pool, &mut scratch));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });

    let mut tagged: Vec<TaggedUnit> = outputs.into_iter().flatten().collect();
    tagged.sort_by_key(|(unit, _, _)| *unit);
    let total_virtual: f64 = tagged.iter().map(|(_, _, v)| v).sum();
    let units: Vec<UnitDiscovery> = tagged.into_iter().map(|(_, u, _)| u).collect();

    // Merge rounds into the per-destination view (units are sorted
    // round-major, so iterating them folds rounds in round order).
    let mut per_dest: Vec<DestMultipath> = net
        .dests
        .iter()
        .enumerate()
        .map(|(i, d)| DestMultipath {
            dest: i,
            addr: d.addr,
            width: 0,
            observed_width: 0,
            delta: 0,
            class: BalancerClass::NotBalanced,
            probes: 0,
            reached: false,
        })
        .collect();
    for u in &units {
        let d = &mut per_dest[u.dest];
        d.width = d.width.max(u.width);
        d.observed_width = d.observed_width.max(u.observed_width);
        d.delta = d.delta.max(u.delta);
        d.class = stronger_class(d.class, u.class);
        d.probes += u.probes;
        d.reached |= u.reached;
    }

    let mut report = MultipathReport {
        destinations: n_dests,
        rounds: config.rounds,
        balanced_dests: 0,
        per_flow_dests: 0,
        per_packet_dests: 0,
        undetermined_dests: 0,
        reached_dests: 0,
        width_hist: [0; 3],
        delta_hist: [0; 3],
        mean_probes: 0.0,
    };
    let mut probes_total = 0usize;
    for d in &per_dest {
        probes_total += d.probes;
        report.reached_dests += usize::from(d.reached);
        match d.class {
            BalancerClass::NotBalanced => continue,
            BalancerClass::PerFlow => report.per_flow_dests += 1,
            BalancerClass::PerPacket => report.per_packet_dests += 1,
            BalancerClass::Undetermined => report.undetermined_dests += 1,
        }
        report.balanced_dests += 1;
        if d.width >= 2 {
            report.width_hist[(d.width - 2).min(2)] += 1;
        }
        report.delta_hist[usize::from(d.delta).min(2)] += 1;
    }
    report.mean_probes = probes_total as f64 / n_dests.max(1) as f64;

    MultipathResult {
        units,
        per_dest,
        report,
        mean_virtual_secs: total_virtual / n_dests.max(1) as f64,
    }
}

/// One multipath unit: a full MDA walk toward one destination over a
/// pristine simulator, every draw derived from `(seed, dest, round)`.
fn run_multipath_unit(
    unit: UnitId,
    net: &SyntheticInternet,
    config: &MultipathConfig,
    pool: &mut SimulatorPool,
    scratch: &mut MdaScratch,
) -> (UnitId, UnitDiscovery, f64) {
    let n_dests = net.dests.len();
    let dest_idx = unit as usize % n_dests;
    let round = unit as usize / n_dests;
    let dest = &net.dests[dest_idx];

    let dest_stream = splitmix64(config.seed ^ splitmix64(dest_idx as u64 + 1));
    let unit_stream = splitmix64(dest_stream ^ (round as u64 + 1));
    let mut rng = StdRng::seed_from_u64(unit_stream);
    let sim = pool.acquire(splitmix64(unit_stream ^ 0x6d64_6121));
    let mut tx = SimTransport::new(sim, net.source);

    // The study's port discipline: draw the flow family's base source
    // port and the destination port uniformly, leaving room above the
    // base for every flow id.
    let max_flows = config.mda.max_flows_per_hop as u16;
    let base_src_port = rng.gen_range(10_000..=60_000u16.saturating_sub(max_flows));
    let dst_port = rng.gen_range(10_000..=60_000);
    let mda = if config.adaptive {
        // The adaptive preset's probing policies layered over this
        // campaign's statistical knobs; the jitter seed comes from the
        // unit stream, so retry schedules are reproducible and
        // worker-count independent.
        let policy = MdaConfig::adaptive(splitmix64(unit_stream ^ 0x6164_7074));
        MdaConfig {
            flow_retries: policy.flow_retries,
            max_consecutive_stars: policy.max_consecutive_stars,
            retry_backoff: policy.retry_backoff,
            jitter_seed: policy.jitter_seed,
            pace_initial: policy.pace_initial,
            pace_cap: policy.pace_cap,
            dead_hop_flows: policy.dead_hop_flows,
            protocol_fallback: policy.protocol_fallback,
            fallback_after_stars: policy.fallback_after_stars,
            base_src_port,
            dst_port,
            ..config.mda
        }
    } else {
        MdaConfig { base_src_port, dst_port, ..config.mda }
    };
    let map = discover_with(&mut tx, dest.addr, &mda, scratch);

    let discovery = UnitDiscovery {
        dest: dest_idx,
        round,
        addr: dest.addr,
        width: map.max_width(),
        observed_width: map.max_observed_width(),
        delta: map.discovered_delta(),
        class: map.classification(),
        hops: map.hops.len(),
        links: map.links.len(),
        stars: map.hops.iter().map(|h| h.stars).sum(),
        unconverged_hops: map.hops.iter().filter(|h| !h.converged).count(),
        probes: map.total_probes,
        reached: map.reached,
    };
    scratch.recycle(map);
    let virtual_secs = tx.now().as_secs_f64();
    pool.release(tx.into_simulator());
    (unit, discovery, virtual_secs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_topogen::{generate, InternetConfig};

    fn quick_config(rounds: usize) -> CampaignConfig {
        CampaignConfig { rounds, workers: 4, seed: 99, ..CampaignConfig::default() }
    }

    #[test]
    fn campaign_runs_and_counts_everything() {
        let net = generate(&InternetConfig::tiny(42));
        let result = run(&net, &quick_config(3));
        assert_eq!(result.classic_report.rounds, 3);
        assert_eq!(result.classic_report.routes_total, 3 * 40);
        assert_eq!(result.paris_report.routes_total, 3 * 40);
        assert_eq!(result.classic_report.destinations, 40);
        assert!(result.classic_report.responses > 0);
        assert!(result.mean_virtual_secs > 0.0);
    }

    #[test]
    fn campaign_is_deterministic() {
        let net = generate(&InternetConfig::tiny(42));
        let a = run(&net, &quick_config(2));
        let b = run(&net, &quick_config(2));
        assert_eq!(a.classic_report, b.classic_report);
        assert_eq!(a.paris_report, b.paris_report);
        assert_eq!(a.comparison, b.comparison);
    }

    #[test]
    fn worker_count_is_a_pure_performance_knob() {
        let net = generate(&InternetConfig::tiny(42));
        let base = run(&net, &quick_config(2));
        // 1000 exceeds the 80 units and exercises the clamp.
        for workers in [1, 3, 16, 1000] {
            let cfg = CampaignConfig { rounds: 2, workers, seed: 99, ..CampaignConfig::default() };
            let result = run(&net, &cfg);
            assert_eq!(result.classic_report, base.classic_report, "workers = {workers}");
            assert_eq!(result.paris_report, base.paris_report, "workers = {workers}");
            assert_eq!(result.comparison, base.comparison, "workers = {workers}");
            assert_eq!(result.mean_virtual_secs, base.mean_virtual_secs, "workers = {workers}");
        }
    }

    #[test]
    fn kept_routes_come_back_in_unit_order_for_any_worker_count() {
        let net = generate(&InternetConfig::tiny(42));
        let order = |workers: usize| {
            let cfg = CampaignConfig {
                rounds: 2,
                workers,
                seed: 99,
                keep_routes: true,
                ..CampaignConfig::default()
            };
            run(&net, &cfg)
                .routes
                .iter()
                .map(|(tool, round, route)| (*tool, *round, route.destination))
                .collect::<Vec<_>>()
        };
        let serial = order(1);
        assert_eq!(serial.len(), 2 * 40 * 2, "two tools per destination per round");
        // Round-major unit order, Paris before classic within a unit.
        assert_eq!(serial[0].0, StrategyId::ParisUdp);
        assert_eq!(serial[1].0, StrategyId::ClassicUdp);
        assert_eq!(serial[0].2, serial[1].2, "pair traces the same destination");
        assert_eq!(order(5), serial, "route order survives parallel claiming");
    }

    #[test]
    fn windowed_campaign_measures_sequential_routes_in_less_virtual_time() {
        // On a deterministic network (no link loss, no per-packet
        // balancing, no dynamics) the windowed tracer must measure the
        // exact routes the sequential tracer measures — including
        // star-limit abandonment on firewalled destinations — while
        // spending a fraction of the virtual probing time.
        let config = InternetConfig {
            seed: 31,
            n_destinations: 60,
            per_flow_lb: 0.4,
            per_packet_lb: 0.0,
            zero_ttl: 0.1,
            broken: 0.05,
            nat: 0.0,
            firewalled_dest: 0.2,
            silent_router: 0.05,
            link_loss: 0.0,
            ..InternetConfig::default()
        };
        let net = generate(&config);
        let campaign = |window: u8| {
            let mut cc = quick_config(2);
            cc.dynamics = DynamicsConfig::none();
            cc.trace = TraceConfig { window, ..cc.trace };
            run(&net, &cc)
        };
        let sequential = campaign(1);
        let windowed = campaign(TraceConfig::default().window);
        assert_eq!(windowed.classic_report, sequential.classic_report);
        assert_eq!(windowed.paris_report, sequential.paris_report);
        assert_eq!(windowed.comparison, sequential.comparison);
        let speedup = sequential.mean_virtual_secs / windowed.mean_virtual_secs;
        assert!(
            speedup >= 2.0,
            "windowed probing must cut virtual time per destination >= 2x, got {speedup:.2}x \
             ({:.2}s -> {:.2}s)",
            sequential.mean_virtual_secs,
            windowed.mean_virtual_secs
        );
    }

    #[test]
    fn classic_sees_more_anomalies_than_paris() {
        // The headline result, at small scale: a network dominated by
        // per-flow load balancers gives classic traceroute loops and
        // diamonds that Paris does not see.
        let config = InternetConfig {
            seed: 7,
            n_destinations: 120,
            per_flow_lb: 0.6,
            lb_equal_weight: 0.3,
            lb_delta1_weight: 0.5,
            per_packet_lb: 0.0,
            zero_ttl: 0.0,
            broken: 0.0,
            nat: 0.0,
            firewalled_dest: 0.0,
            silent_router: 0.0,
            link_loss: 0.0,
            ..InternetConfig::default()
        };
        let net = generate(&config);
        let mut cc = quick_config(6);
        cc.dynamics = DynamicsConfig::none();
        let result = run(&net, &cc);
        assert!(
            result.classic_report.pct_routes_with_loop > 2.0,
            "classic loop rate too low: {}",
            result.classic_report.pct_routes_with_loop
        );
        assert!(
            result.paris_report.pct_routes_with_loop
                < result.classic_report.pct_routes_with_loop / 5.0,
            "paris {} vs classic {}",
            result.paris_report.pct_routes_with_loop,
            result.classic_report.pct_routes_with_loop
        );
        assert!(result.classic_report.diamonds_total > result.paris_report.diamonds_total);
        // And the attribution says per-flow LB dominates.
        let pf =
            result.comparison.loop_pct(pt_anomaly::stats::FinalLoopCause::PerFlowLoadBalancing);
        assert!(pf > 80.0, "per-flow share {pf}");
    }

    #[test]
    fn multipath_campaign_discovers_the_balancer_population() {
        let net = generate(&InternetConfig::tiny(42));
        let result = run_multipath(&net, &MultipathConfig { workers: 4, ..Default::default() });
        assert_eq!(result.per_dest.len(), 40);
        assert_eq!(result.units.len(), 40);
        let truth_balanced = net.dests.iter().filter(|d| d.truth.has_balancer()).count();
        assert!(truth_balanced > 0, "tiny(42) must plant balancers");
        assert!(
            result.report.balanced_dests >= truth_balanced * 9 / 10,
            "discovered {} of {truth_balanced} balancers",
            result.report.balanced_dests
        );
        assert!(result.report.per_flow_dests >= result.report.per_packet_dests);
        assert!(result.mean_virtual_secs > 0.0);
        assert!(result.report.mean_probes > 0.0);
    }

    #[test]
    fn multipath_worker_count_is_a_pure_performance_knob() {
        let net = generate(&InternetConfig::tiny(42));
        let digest = |workers: usize| {
            let config = MultipathConfig { rounds: 2, workers, seed: 7, ..Default::default() };
            crate::report::multipath_digest(&run_multipath(&net, &config))
        };
        let baseline = digest(1);
        for workers in [3, 16, 1000] {
            assert_eq!(digest(workers), baseline, "workers = {workers}");
        }
    }

    #[test]
    fn windowed_multipath_discovers_sequential_dags_in_less_virtual_time() {
        // On a deterministic network (no loss, no per-packet balancing)
        // the probing window is a pure virtual-time knob: every unit's
        // discovery — width, delta, class, hops, links, stars — must be
        // identical, while the probing time per destination collapses.
        let config = InternetConfig {
            seed: 31,
            n_destinations: 40,
            per_flow_lb: 0.5,
            lb_delta1_weight: 0.3,
            per_packet_lb: 0.0,
            zero_ttl: 0.05,
            broken: 0.05,
            nat: 0.05,
            firewalled_dest: 0.15,
            silent_router: 0.05,
            link_loss: 0.0,
            ..InternetConfig::default()
        };
        let net = generate(&config);
        let campaign = |window: u8| {
            let mut mc = MultipathConfig { workers: 4, seed: 3, ..Default::default() };
            mc.mda.window = window;
            run_multipath(&net, &mc)
        };
        let sequential = campaign(1);
        let windowed = campaign(MdaConfig::default().window);
        let dag = |r: &MultipathResult| {
            r.units
                .iter()
                .map(|u| {
                    // Everything but probe counts, which legitimately
                    // include window-dependent speculation.
                    (
                        u.dest,
                        u.width,
                        u.observed_width,
                        u.delta,
                        u.class,
                        u.hops,
                        u.links,
                        u.stars,
                        u.unconverged_hops,
                        u.reached,
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(dag(&windowed), dag(&sequential), "window changed a discovered DAG");
        let cut = sequential.mean_virtual_secs / windowed.mean_virtual_secs;
        assert!(
            cut >= 1.5,
            "windowed MDA must cut virtual secs/destination >= 1.5x, got {cut:.2}x \
             ({:.2}s -> {:.2}s)",
            sequential.mean_virtual_secs,
            windowed.mean_virtual_secs
        );
    }

    #[test]
    fn dynamics_generate_forwarding_loop_cycles() {
        let config = InternetConfig {
            seed: 21,
            n_destinations: 80,
            per_flow_lb: 0.0,
            per_packet_lb: 0.0,
            zero_ttl: 0.0,
            broken: 0.0,
            nat: 0.0,
            firewalled_dest: 0.0,
            silent_router: 0.0,
            link_loss: 0.0,
            branch_len_min: 3,
            branch_len_max: 5,
            ..InternetConfig::default()
        };
        let net = generate(&config);
        let mut cc = quick_config(8);
        cc.dynamics = DynamicsConfig {
            forwarding_loop_prob: 0.2,
            // Early enough that even a windowed trace (which clears the
            // access network in a few virtual ms) is still probing the
            // branch when the loop forms.
            forwarding_loop_delay: SimDuration::from_millis(5),
            forwarding_loop_window: SimDuration::from_secs(3),
            balancer_flap_prob: 0.0,
            balancer_flap_after: SimDuration::ZERO,
        };
        let result = run(&net, &cc);
        assert!(
            result.classic.cycle_instance_count() > 0,
            "forced forwarding loops must produce cycles"
        );
        let fl = result.comparison.cycle_pct(pt_anomaly::stats::FinalCycleCause::ForwardingLoop);
        assert!(fl > 30.0, "forwarding-loop share of cycles: {fl}");
    }
}
