//! The side-by-side campaign runner: a work-stealing pool of
//! per-destination trace tasks.
//!
//! Execution is decomposed into `(destination, round)` work units — one
//! Paris + one classic trace over a pristine per-unit simulator — that
//! `workers` threads claim from pre-distributed work-stealing deques.
//! Every random draw a unit makes (probe ports, dynamics, the
//! simulator's own node RNGs) derives from `splitmix64` mixes of
//! `(campaign seed, destination index, round)`, never from the worker
//! that happens to claim the unit; accumulator merging is
//! order-insensitive and kept routes are re-sorted into unit order. The
//! result: the campaign's entire [`ComparisonReport`] digest is
//! byte-identical for any worker count, and `workers` is a pure
//! performance knob (the property `tests/worker_invariance.rs` pins).

use crossbeam_deque::{Steal, Stealer, Worker};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pt_anomaly::{compare, CampaignAccumulator, ComparisonReport, ToolReport};
use pt_core::{
    trace_with, ClassicUdp, MeasuredRoute, ParisUdp, StrategyId, TraceConfig, TraceScratch,
};
use pt_netsim::routing::NextHop;
use pt_netsim::time::SimDuration;
use pt_netsim::{SimTransport, SimulatorPool};
use pt_topogen::{DestInfo, SyntheticInternet};

/// Routing-dynamics knobs: the §4 causes that are *events*, not topology.
#[derive(Debug, Clone, Copy)]
pub struct DynamicsConfig {
    /// Per-trace probability of a transient forwarding loop between two
    /// adjacent branch routers, active while the trace runs (→ genuine
    /// cycles, §4.2).
    pub forwarding_loop_prob: f64,
    /// Delay from trace start to loop activation (lets the trace get past
    /// the access network first). Tuned to the windowed tracer's pacing:
    /// with `TraceConfig::window` probes in flight a trace covers the
    /// access network in a few milliseconds of virtual time, not the
    /// tens a sequential trace took.
    pub forwarding_loop_delay: SimDuration,
    /// How long a transient forwarding loop lasts.
    pub forwarding_loop_window: SimDuration,
    /// Per-trace probability that a load balancer's egress mapping flips
    /// mid-trace (→ routing-change loops; the source of the paper's
    /// 0.25% Paris-only loops).
    pub balancer_flap_prob: f64,
    /// Delay from trace start to the flap.
    pub balancer_flap_after: SimDuration,
}

impl Default for DynamicsConfig {
    fn default() -> Self {
        DynamicsConfig {
            forwarding_loop_prob: 0.0004,
            forwarding_loop_delay: SimDuration::from_millis(30),
            forwarding_loop_window: SimDuration::from_millis(500),
            balancer_flap_prob: 0.008,
            balancer_flap_after: SimDuration::from_millis(80),
        }
    }
}

impl DynamicsConfig {
    /// No routing dynamics at all.
    pub fn none() -> Self {
        DynamicsConfig {
            forwarding_loop_prob: 0.0,
            forwarding_loop_delay: SimDuration::ZERO,
            forwarding_loop_window: SimDuration::ZERO,
            balancer_flap_prob: 0.0,
            balancer_flap_after: SimDuration::ZERO,
        }
    }
}

/// Campaign parameters (§3's setup).
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Measurement rounds (556 in the paper).
    pub rounds: usize,
    /// Worker threads claiming `(destination, round)` work units (the
    /// paper ran 32 parallel probing processes). Purely a performance
    /// knob: results are bit-identical for any value.
    pub workers: usize,
    /// Per-trace parameters; defaults to the paper's, with the windowed
    /// tracer's default `window` (3 probes in flight per trace — the
    /// virtual-time analogue of the paper's 32 parallel processes).
    /// Setting `trace.window = 1` reproduces the strictly sequential
    /// per-probe discipline, and with it the pre-windowed campaign
    /// digest byte for byte — provided [`CampaignConfig::dynamics`] is
    /// disabled or pinned to explicit values, since the *default*
    /// dynamics timings were retuned to windowed pacing in the same
    /// change (see [`DynamicsConfig::default`]).
    pub trace: TraceConfig,
    /// Routing dynamics.
    pub dynamics: DynamicsConfig,
    /// Campaign-level seed (ports, dynamics draws).
    pub seed: u64,
    /// When set, keep every measured route (memory-heavy; for debugging
    /// and small runs only).
    pub keep_routes: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            rounds: 25,
            workers: 8,
            trace: TraceConfig::paper(),
            dynamics: DynamicsConfig::default(),
            seed: 20061025, // the paper's publication date

            keep_routes: false,
        }
    }
}

/// Campaign output: per-tool summaries plus the §4 attribution.
#[derive(Debug)]
pub struct CampaignResult {
    /// Classic traceroute accumulator (for further analysis).
    pub classic: CampaignAccumulator,
    /// Paris traceroute accumulator.
    pub paris: CampaignAccumulator,
    /// Classic summary.
    pub classic_report: ToolReport,
    /// Paris summary.
    pub paris_report: ToolReport,
    /// The classic-vs-Paris attribution.
    pub comparison: ComparisonReport,
    /// Kept routes (tool, round, route), when requested; sorted into
    /// `(round, destination)` unit order regardless of worker count.
    pub routes: Vec<(StrategyId, usize, MeasuredRoute)>,
    /// Mean virtual seconds of probing per destination (summed over all
    /// of a destination's rounds). Worker-count-independent, unlike the
    /// per-shard figure it replaces, and the number the windowed tracer
    /// divides by roughly `trace.window`.
    pub mean_virtual_secs: f64,
}

impl CampaignResult {
    /// The pre-pool name for the virtual-time figure. The old value
    /// depended on how destinations were sharded over threads; the new
    /// field does not, so the two are equal only at `workers = 1`.
    #[deprecated(note = "use the worker-count-independent `mean_virtual_secs` field")]
    pub fn mean_virtual_secs_per_shard(&self) -> f64 {
        self.mean_virtual_secs
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A `(destination, round)` work unit, encoded round-major so unit order
/// matches the old serial iteration (`for round { for dest }`).
type UnitId = u32;

/// What one worker accumulated over every unit it claimed. Accumulator
/// merging is order-insensitive (integer counters, sets, and per-key
/// u64 maps), so workers can fold units in claim order; everything
/// order-sensitive (kept routes, virtual-time floats) is tagged with
/// its unit id and re-ordered deterministically by the merge step.
struct WorkerOutput {
    classic: CampaignAccumulator,
    paris: CampaignAccumulator,
    routes: Vec<(UnitId, StrategyId, usize, MeasuredRoute)>,
    virtual_secs: Vec<(UnitId, f64)>,
}

/// Run a full side-by-side campaign over `net`.
pub fn run(net: &SyntheticInternet, config: &CampaignConfig) -> CampaignResult {
    assert!(config.workers >= 1 && config.rounds >= 1);
    let n_dests = net.dests.len();
    let n_units = n_dests * config.rounds;
    assert!(u32::try_from(n_units).is_ok(), "campaign too large for u32 unit ids");
    let workers = config.workers.min(n_units).max(1);

    // Pre-distribute units round-robin across per-worker deques; a
    // worker that drains its own queue steals the oldest units from its
    // siblings, so stragglers (expensive destinations, dynamics-heavy
    // units) get rebalanced instead of serializing the tail.
    let locals: Vec<Worker<UnitId>> = (0..workers).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<UnitId>> = locals.iter().map(Worker::stealer).collect();
    for unit in 0..n_units {
        locals[unit % workers].push(unit as UnitId);
    }

    let outputs: Vec<WorkerOutput> = std::thread::scope(|scope| {
        let handles: Vec<_> = locals
            .into_iter()
            .enumerate()
            .map(|(worker_idx, local)| {
                let stealers = &stealers;
                let config = &*config;
                scope.spawn(move || run_worker(worker_idx, local, stealers, net, config))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });

    let mut classic = CampaignAccumulator::new(StrategyId::ClassicUdp);
    let mut paris = CampaignAccumulator::new(StrategyId::ParisUdp);
    let mut tagged_routes = Vec::new();
    let mut virt: Vec<(UnitId, f64)> = Vec::with_capacity(n_units);
    for out in outputs {
        classic.merge(out.classic);
        paris.merge(out.paris);
        tagged_routes.extend(out.routes);
        virt.extend(out.virtual_secs);
    }
    // Which worker ran which unit is scheduling noise; re-ordering by
    // unit id (Paris before classic within a unit) makes the kept-route
    // list and the float summation below pure functions of the seed.
    tagged_routes.sort_by_key(|(unit, tool, _, _)| (*unit, *tool != StrategyId::ParisUdp));
    virt.sort_by_key(|(unit, _)| *unit);
    let routes = tagged_routes.into_iter().map(|(_, tool, round, route)| (tool, round, route));
    let total_virtual: f64 = virt.iter().map(|(_, v)| v).sum();

    let classic_report = classic.report();
    let paris_report = paris.report();
    let comparison = compare(&classic, &paris);
    CampaignResult {
        classic,
        paris,
        classic_report,
        paris_report,
        comparison,
        routes: routes.collect(),
        mean_virtual_secs: total_virtual / n_dests.max(1) as f64,
    }
}

/// Claim the next unit: own queue first, then steal the oldest work
/// from siblings. No unit is ever pushed after the workers start, so an
/// all-empty sweep means the campaign is drained.
fn next_unit(
    worker_idx: usize,
    local: &Worker<UnitId>,
    stealers: &[Stealer<UnitId>],
) -> Option<UnitId> {
    if let Some(unit) = local.pop() {
        return Some(unit);
    }
    let n = stealers.len();
    for off in 1..n {
        let victim = &stealers[(worker_idx + off) % n];
        loop {
            match victim.steal() {
                Steal::Success(unit) => return Some(unit),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
    }
    None
}

fn run_worker(
    worker_idx: usize,
    local: Worker<UnitId>,
    stealers: &[Stealer<UnitId>],
    net: &SyntheticInternet,
    config: &CampaignConfig,
) -> WorkerOutput {
    // One pool per worker: after the first unit, every acquire hands
    // back the same warm simulator (arena slots, payload buffers and
    // event-queue capacity intact) reset for the next destination.
    let mut pool = SimulatorPool::new(net.topology.clone());
    // One trace scratch per worker: hop records and the probe registry
    // recycle across every unit, so a worker's steady-state trace loop
    // performs no heap allocation at all.
    let mut scratch = TraceScratch::new();
    let mut out = WorkerOutput {
        classic: CampaignAccumulator::new(StrategyId::ClassicUdp),
        paris: CampaignAccumulator::new(StrategyId::ParisUdp),
        routes: Vec::new(),
        virtual_secs: Vec::new(),
    };
    while let Some(unit) = next_unit(worker_idx, &local, stealers) {
        run_unit(unit, net, config, &mut pool, &mut scratch, &mut out);
    }
    out
}

/// Run one `(destination, round)` unit: a Paris + classic trace pair
/// over a pristine simulator, with every draw derived from
/// `(seed, destination, round)` so the claiming worker is irrelevant.
fn run_unit(
    unit: UnitId,
    net: &SyntheticInternet,
    config: &CampaignConfig,
    pool: &mut SimulatorPool,
    scratch: &mut TraceScratch,
    out: &mut WorkerOutput,
) {
    let n_dests = net.dests.len();
    let dest_idx = unit as usize % n_dests;
    let round = unit as usize / n_dests;
    let dest = &net.dests[dest_idx];

    // Per-destination RNG stream, whitened per round. The two
    // independent mixes keep the campaign-level draws (ports, dynamics)
    // and the simulator's node seeds decorrelated.
    let dest_stream = splitmix64(config.seed ^ splitmix64(dest_idx as u64 + 1));
    let unit_stream = splitmix64(dest_stream ^ (round as u64 + 1));
    let mut rng = StdRng::seed_from_u64(unit_stream);
    let sim = pool.acquire(splitmix64(unit_stream ^ 0x5157_ea11));
    let mut tx = SimTransport::new(sim, net.source);

    // Routing events are exogenous: draw independently before each
    // trace of the pair.
    schedule_dynamics(&mut rng, &mut tx, dest, &net.topology, config);

    // Paris traceroute first (§3 order), fixed random five-tuple.
    let sp = rng.gen_range(10_000..=60_000);
    let dp = rng.gen_range(10_000..=60_000);
    let mut paris = ParisUdp::new(sp, dp);
    let route = trace_with(&mut tx, &mut paris, dest.addr, config.trace, scratch);
    out.paris.ingest(round, &route);
    if config.keep_routes {
        out.routes.push((unit, StrategyId::ParisUdp, round, route));
    } else {
        scratch.recycle(route);
    }

    schedule_dynamics(&mut rng, &mut tx, dest, &net.topology, config);

    // Then classic traceroute. Each trace is a fresh process in the
    // study, so the PID — and with it the source port — is new every
    // time; this is what lets classic explore different flow mappings
    // across rounds.
    let pid = rng.gen::<u16>() & 0x7fff;
    let mut classic = ClassicUdp::new(pid);
    let route = trace_with(&mut tx, &mut classic, dest.addr, config.trace, scratch);
    out.classic.ingest(round, &route);
    if config.keep_routes {
        out.routes.push((unit, StrategyId::ClassicUdp, round, route));
    } else {
        scratch.recycle(route);
    }

    out.virtual_secs.push((unit, tx.now().as_secs_f64()));
    pool.release(tx.into_simulator());
}

/// Maybe schedule a transient forwarding loop or a balancer flap covering
/// the upcoming pair of traces toward `dest`.
fn schedule_dynamics(
    rng: &mut StdRng,
    tx: &mut SimTransport,
    dest: &DestInfo,
    topo: &pt_netsim::Topology,
    config: &CampaignConfig,
) {
    let dyn_cfg = config.dynamics;
    let now = tx.now();
    if dyn_cfg.forwarding_loop_prob > 0.0
        && dest.chain.len() >= 2
        && rng.gen_bool(dyn_cfg.forwarding_loop_prob)
    {
        // Pick an adjacent, actually-linked pair along the chain. The RNG
        // is only consulted when a candidate exists: drawing on an empty
        // candidate list would silently shift every later draw and make
        // the campaign's randomness depend on topology quirks.
        let candidates: Vec<(pt_netsim::NodeId, pt_netsim::NodeId)> = dest
            .chain
            .windows(2)
            .filter(|w| topo.iface_toward(w[0], w[1]).is_some())
            .map(|w| (w[0], w[1]))
            .collect();
        if let Some(&(x, y)) =
            (!candidates.is_empty()).then(|| &candidates[rng.gen_range(0..candidates.len())])
        {
            let dst_pfx = pt_netsim::Ipv4Prefix::host(dest.addr);
            let x_to_y = topo.iface_toward(x, y).unwrap();
            let y_to_x = topo.iface_toward(y, x).unwrap();
            let sim = tx.simulator_mut();
            let start = now + dyn_cfg.forwarding_loop_delay;
            sim.schedule_route_set(start, x, dst_pfx, Some(NextHop::Iface(x_to_y)));
            sim.schedule_route_set(start, y, dst_pfx, Some(NextHop::Iface(y_to_x)));
            let end = start + dyn_cfg.forwarding_loop_window;
            sim.schedule_route_set(end, x, dst_pfx, None);
            sim.schedule_route_set(end, y, dst_pfx, None);
        }
    }
    if dyn_cfg.balancer_flap_prob > 0.0
        && (dest.truth.per_flow_lb || dest.truth.per_packet_lb)
        && rng.gen_bool(dyn_cfg.balancer_flap_prob)
    {
        // Find the balancer on this branch and rotate its egress list —
        // every flow rehashes to a (generally) different path mid-trace.
        // The rotated route must be reinstalled under the *prefix that
        // matched*: installing it under the default prefix would shadow a
        // more specific original route for the rest of the shard.
        for &node in &dest.chain {
            let current = tx
                .simulator()
                .routing_of(node)
                .lookup_entry(dest.addr)
                .map(|(prefix, nh)| (prefix, nh.clone()));
            if let Some((prefix, NextHop::Balanced { kind, mut egresses })) = current {
                egresses.rotate_left(1);
                let at = now + dyn_cfg.balancer_flap_after;
                tx.simulator_mut().schedule_route_set(
                    at,
                    node,
                    prefix,
                    Some(NextHop::Balanced { kind, egresses }),
                );
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_topogen::{generate, InternetConfig};

    fn quick_config(rounds: usize) -> CampaignConfig {
        CampaignConfig { rounds, workers: 4, seed: 99, ..CampaignConfig::default() }
    }

    #[test]
    fn campaign_runs_and_counts_everything() {
        let net = generate(&InternetConfig::tiny(42));
        let result = run(&net, &quick_config(3));
        assert_eq!(result.classic_report.rounds, 3);
        assert_eq!(result.classic_report.routes_total, 3 * 40);
        assert_eq!(result.paris_report.routes_total, 3 * 40);
        assert_eq!(result.classic_report.destinations, 40);
        assert!(result.classic_report.responses > 0);
        assert!(result.mean_virtual_secs > 0.0);
    }

    #[test]
    fn campaign_is_deterministic() {
        let net = generate(&InternetConfig::tiny(42));
        let a = run(&net, &quick_config(2));
        let b = run(&net, &quick_config(2));
        assert_eq!(a.classic_report, b.classic_report);
        assert_eq!(a.paris_report, b.paris_report);
        assert_eq!(a.comparison, b.comparison);
    }

    #[test]
    fn worker_count_is_a_pure_performance_knob() {
        let net = generate(&InternetConfig::tiny(42));
        let base = run(&net, &quick_config(2));
        // 1000 exceeds the 80 units and exercises the clamp.
        for workers in [1, 3, 16, 1000] {
            let cfg = CampaignConfig { rounds: 2, workers, seed: 99, ..CampaignConfig::default() };
            let result = run(&net, &cfg);
            assert_eq!(result.classic_report, base.classic_report, "workers = {workers}");
            assert_eq!(result.paris_report, base.paris_report, "workers = {workers}");
            assert_eq!(result.comparison, base.comparison, "workers = {workers}");
            assert_eq!(result.mean_virtual_secs, base.mean_virtual_secs, "workers = {workers}");
        }
    }

    #[test]
    fn kept_routes_come_back_in_unit_order_for_any_worker_count() {
        let net = generate(&InternetConfig::tiny(42));
        let order = |workers: usize| {
            let cfg = CampaignConfig {
                rounds: 2,
                workers,
                seed: 99,
                keep_routes: true,
                ..CampaignConfig::default()
            };
            run(&net, &cfg)
                .routes
                .iter()
                .map(|(tool, round, route)| (*tool, *round, route.destination))
                .collect::<Vec<_>>()
        };
        let serial = order(1);
        assert_eq!(serial.len(), 2 * 40 * 2, "two tools per destination per round");
        // Round-major unit order, Paris before classic within a unit.
        assert_eq!(serial[0].0, StrategyId::ParisUdp);
        assert_eq!(serial[1].0, StrategyId::ClassicUdp);
        assert_eq!(serial[0].2, serial[1].2, "pair traces the same destination");
        assert_eq!(order(5), serial, "route order survives parallel claiming");
    }

    #[test]
    fn windowed_campaign_measures_sequential_routes_in_less_virtual_time() {
        // On a deterministic network (no link loss, no per-packet
        // balancing, no dynamics) the windowed tracer must measure the
        // exact routes the sequential tracer measures — including
        // star-limit abandonment on firewalled destinations — while
        // spending a fraction of the virtual probing time.
        let config = InternetConfig {
            seed: 31,
            n_destinations: 60,
            per_flow_lb: 0.4,
            per_packet_lb: 0.0,
            zero_ttl: 0.1,
            broken: 0.05,
            nat: 0.0,
            firewalled_dest: 0.2,
            silent_router: 0.05,
            link_loss: 0.0,
            ..InternetConfig::default()
        };
        let net = generate(&config);
        let campaign = |window: u8| {
            let mut cc = quick_config(2);
            cc.dynamics = DynamicsConfig::none();
            cc.trace = TraceConfig { window, ..cc.trace };
            run(&net, &cc)
        };
        let sequential = campaign(1);
        let windowed = campaign(TraceConfig::default().window);
        assert_eq!(windowed.classic_report, sequential.classic_report);
        assert_eq!(windowed.paris_report, sequential.paris_report);
        assert_eq!(windowed.comparison, sequential.comparison);
        let speedup = sequential.mean_virtual_secs / windowed.mean_virtual_secs;
        assert!(
            speedup >= 2.0,
            "windowed probing must cut virtual time per destination >= 2x, got {speedup:.2}x \
             ({:.2}s -> {:.2}s)",
            sequential.mean_virtual_secs,
            windowed.mean_virtual_secs
        );
    }

    #[test]
    fn classic_sees_more_anomalies_than_paris() {
        // The headline result, at small scale: a network dominated by
        // per-flow load balancers gives classic traceroute loops and
        // diamonds that Paris does not see.
        let config = InternetConfig {
            seed: 7,
            n_destinations: 120,
            per_flow_lb: 0.6,
            lb_equal_weight: 0.3,
            lb_delta1_weight: 0.5,
            per_packet_lb: 0.0,
            zero_ttl: 0.0,
            broken: 0.0,
            nat: 0.0,
            firewalled_dest: 0.0,
            silent_router: 0.0,
            link_loss: 0.0,
            ..InternetConfig::default()
        };
        let net = generate(&config);
        let mut cc = quick_config(6);
        cc.dynamics = DynamicsConfig::none();
        let result = run(&net, &cc);
        assert!(
            result.classic_report.pct_routes_with_loop > 2.0,
            "classic loop rate too low: {}",
            result.classic_report.pct_routes_with_loop
        );
        assert!(
            result.paris_report.pct_routes_with_loop
                < result.classic_report.pct_routes_with_loop / 5.0,
            "paris {} vs classic {}",
            result.paris_report.pct_routes_with_loop,
            result.classic_report.pct_routes_with_loop
        );
        assert!(result.classic_report.diamonds_total > result.paris_report.diamonds_total);
        // And the attribution says per-flow LB dominates.
        let pf =
            result.comparison.loop_pct(pt_anomaly::stats::FinalLoopCause::PerFlowLoadBalancing);
        assert!(pf > 80.0, "per-flow share {pf}");
    }

    #[test]
    fn dynamics_generate_forwarding_loop_cycles() {
        let config = InternetConfig {
            seed: 21,
            n_destinations: 80,
            per_flow_lb: 0.0,
            per_packet_lb: 0.0,
            zero_ttl: 0.0,
            broken: 0.0,
            nat: 0.0,
            firewalled_dest: 0.0,
            silent_router: 0.0,
            link_loss: 0.0,
            branch_len_min: 3,
            branch_len_max: 5,
            ..InternetConfig::default()
        };
        let net = generate(&config);
        let mut cc = quick_config(8);
        cc.dynamics = DynamicsConfig {
            forwarding_loop_prob: 0.2,
            // Early enough that even a windowed trace (which clears the
            // access network in a few virtual ms) is still probing the
            // branch when the loop forms.
            forwarding_loop_delay: SimDuration::from_millis(5),
            forwarding_loop_window: SimDuration::from_secs(3),
            balancer_flap_prob: 0.0,
            balancer_flap_after: SimDuration::ZERO,
        };
        let result = run(&net, &cc);
        assert!(
            result.classic.cycle_instance_count() > 0,
            "forced forwarding loops must produce cycles"
        );
        let fl = result.comparison.cycle_pct(pt_anomaly::stats::FinalCycleCause::ForwardingLoop);
        assert!(fl > 30.0, "forwarding-loop share of cycles: {fl}");
    }
}
