//! Crash-safe campaigns: versioned checkpoints and kill-anywhere
//! resume.
//!
//! The campaign engines in [`crate::runner`] fold `(destination, round)`
//! units in any order and only impose order at finalization, which makes
//! the whole campaign a *resumable* fold: execute units in blocks,
//! snapshot the fold state after each block, and — after a crash or a
//! kill — reload the snapshot and continue from the work-list cursor.
//! Because every unit's randomness derives from `(seed, destination,
//! round)` alone, the resumed run produces the exact units the dead run
//! would have, and the final report digest is **byte-identical** to an
//! uninterrupted run's, for any worker count and any kill point
//! (`tests/checkpoint_resume.rs` pins this).
//!
//! The snapshot is a versioned, line-oriented text format
//! (`ptsnap v1 ...`), hand-rolled (no serde in this workspace) and
//! *canonical*: sets and maps serialize in sorted order, so equal fold
//! contents produce equal bytes no matter how work was sharded. Floats
//! travel as IEEE-754 bit patterns — a reload loses nothing. Writes are
//! atomic (temp file + rename), so a crash mid-checkpoint leaves the
//! previous snapshot intact.

use std::fs;
use std::io;
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};

use pt_anomaly::CampaignAccumulator;
use pt_core::{HaltReason, Hop, MeasuredRoute, ProbeResult, ResponseKind, StrategyId};
use pt_mda::BalancerClass;
use pt_netsim::time::SimDuration;
use pt_topogen::SyntheticInternet;
use pt_wire::UnreachableCode;

use crate::runner::{
    campaign_units, finalize_campaign, finalize_multipath, multipath_units, run_multipath_block,
    run_units, splitmix64, BlockOutput, CampaignConfig, CampaignResult, MultipathBlock,
    MultipathConfig, MultipathResult, QuarantinedUnit, UnitDiscovery, UnitId,
};

/// Magic first-line prefix; bump the version when the format changes.
/// A loader refuses snapshots whose version it does not speak — there
/// is no silent cross-version reinterpretation.
const MAGIC: &str = "ptsnap v1";

/// Checkpointing knobs for [`run_checkpointed`] / [`run_resumed`] and
/// their multipath twins.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Where the snapshot lives. Overwritten atomically at every
    /// checkpoint.
    pub path: PathBuf,
    /// Units per checkpoint block: the campaign snapshots after every
    /// `every_units` completed units (and once more at the end). A
    /// crash loses at most one block of work.
    pub every_units: u32,
    /// Testing hook: stop — returning `Ok(None)` with the snapshot on
    /// disk — after this many checkpoints, *as if the process had been
    /// killed there*. `None` runs to completion.
    pub stop_after_checkpoints: Option<usize>,
}

impl CheckpointConfig {
    /// Checkpoint to `path` every 64 units, running to completion.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointConfig { path: path.into(), every_units: 64, stop_after_checkpoints: None }
    }
}

fn invalid<E: std::fmt::Display>(err: E) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("campaign snapshot: {err}"))
}

/// Write `text` to `path` atomically: temp file in the same directory,
/// then rename over the target.
fn atomic_write(path: &Path, text: &str) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, text)?;
    fs::rename(&tmp, path)
}

// ---------------------------------------------------------------------
// Fingerprints: refuse to resume a snapshot under a different campaign.
// ---------------------------------------------------------------------

fn mix(h: u64, v: u64) -> u64 {
    splitmix64(h ^ splitmix64(v))
}

fn mix_inject(mut h: u64, inject: &crate::runner::InjectConfig) -> u64 {
    for &u in &inject.panic_units {
        h = mix(h, 0x70616e_u64 ^ u64::from(u));
    }
    for &u in &inject.runaway_units {
        h = mix(h, 0x72756e_u64 ^ u64::from(u));
    }
    h
}

/// Everything that changes a side-by-side campaign's results, folded
/// into one value. Workers are deliberately excluded — worker count is
/// a pure performance knob, and resuming under a different one is
/// legal and byte-identical.
pub(crate) fn campaign_fingerprint(net: &SyntheticInternet, config: &CampaignConfig) -> u64 {
    let mut h = mix(0x7369_6465, config.seed); // "side"
    h = mix(h, config.rounds as u64);
    h = mix(h, net.dests.len() as u64);
    h = mix(h, u64::from(net.dests.first().map_or(0, |d| u32::from(d.addr))));
    let t = &config.trace;
    for v in [
        u64::from(t.min_ttl),
        u64::from(t.max_ttl),
        u64::from(t.probes_per_hop),
        t.timeout.nanos(),
        u64::from(t.max_consecutive_stars),
        u64::from(t.window),
        u64::from(t.probe_budget),
        t.time_budget.nanos(),
    ] {
        h = mix(h, v);
    }
    let d = &config.dynamics;
    for v in [
        d.forwarding_loop_prob.to_bits(),
        d.forwarding_loop_delay.nanos(),
        d.forwarding_loop_window.nanos(),
        d.balancer_flap_prob.to_bits(),
        d.balancer_flap_after.nanos(),
    ] {
        h = mix(h, v);
    }
    h = mix(h, u64::from(config.keep_routes));
    mix_inject(h, &config.inject)
}

/// The multipath counterpart of [`campaign_fingerprint`].
pub(crate) fn multipath_fingerprint(net: &SyntheticInternet, config: &MultipathConfig) -> u64 {
    let mut h = mix(0x6d64_6121, config.seed); // "mda!"
    h = mix(h, config.rounds as u64);
    h = mix(h, net.dests.len() as u64);
    h = mix(h, u64::from(net.dests.first().map_or(0, |d| u32::from(d.addr))));
    let m = &config.mda;
    for v in [
        m.alpha.to_bits(),
        m.max_flows_per_hop as u64,
        u64::from(m.max_ttl),
        u64::from(m.window),
        m.probe_budget as u64,
        m.time_budget.nanos(),
    ] {
        h = mix(h, v);
    }
    h = mix(h, u64::from(config.adaptive));
    mix_inject(h, &config.inject)
}

// ---------------------------------------------------------------------
// Shared line-format helpers.
// ---------------------------------------------------------------------

fn take<'a>(lines: &mut impl Iterator<Item = &'a str>, what: &str) -> Result<&'a str, String> {
    lines.next().ok_or_else(|| format!("truncated at {what}"))
}

fn tok<T: std::str::FromStr>(
    t: &mut std::str::SplitAsciiWhitespace<'_>,
    what: &str,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    t.next()
        .ok_or_else(|| format!("missing {what}"))?
        .parse()
        .map_err(|e| format!("bad {what}: {e}"))
}

fn tok_hex_u64(t: &mut std::str::SplitAsciiWhitespace<'_>, what: &str) -> Result<u64, String> {
    u64::from_str_radix(t.next().ok_or_else(|| format!("missing {what}"))?, 16)
        .map_err(|e| format!("bad {what}: {e}"))
}

fn expect_tag(line: &str, tag: &str) -> Result<(), String> {
    if line.split_ascii_whitespace().next() == Some(tag) {
        Ok(())
    } else {
        Err(format!("expected {tag:?} line, got {line:?}"))
    }
}

/// Escape a panic message into a single whitespace-preserving token
/// stream: backslash, newline and carriage return are encoded so the
/// message always fits one line.
fn escape_panic(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n").replace('\r', "\\r")
}

fn unescape_panic(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

fn write_quarantined(out: &mut String, quarantined: &[QuarantinedUnit]) {
    use std::fmt::Write;
    let mut sorted: Vec<&QuarantinedUnit> = quarantined.iter().collect();
    sorted.sort_by_key(|q| q.unit);
    let _ = writeln!(out, "quarantined {}", sorted.len());
    for q in sorted {
        let _ = writeln!(
            out,
            "q {} {} {} {} {:016x} {}",
            q.unit,
            q.dest,
            q.round,
            q.addr,
            q.seed,
            escape_panic(&q.panic)
        );
    }
}

fn read_quarantined<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
) -> Result<Vec<QuarantinedUnit>, String> {
    let header = take(lines, "quarantined header")?;
    expect_tag(header, "quarantined")?;
    let mut t = header.split_ascii_whitespace();
    t.next();
    let n: usize = tok(&mut t, "quarantine count")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let line = take(lines, "quarantine record")?;
        // The panic text is the 7th field and may contain spaces.
        let mut fields = line.splitn(7, ' ');
        let tag = fields.next().ok_or("empty quarantine record")?;
        if tag != "q" {
            return Err(format!("expected q record, got {line:?}"));
        }
        let parse = |f: Option<&str>, what: &str| -> Result<String, String> {
            f.map(str::to_owned).ok_or_else(|| format!("q: missing {what}"))
        };
        let unit: u32 = parse(fields.next(), "unit")?.parse().map_err(|e| format!("{e}"))?;
        let dest: usize = parse(fields.next(), "dest")?.parse().map_err(|e| format!("{e}"))?;
        let round: usize = parse(fields.next(), "round")?.parse().map_err(|e| format!("{e}"))?;
        let addr: Ipv4Addr = parse(fields.next(), "addr")?.parse().map_err(|e| format!("{e}"))?;
        let seed = u64::from_str_radix(&parse(fields.next(), "seed")?, 16)
            .map_err(|e| format!("q: bad seed: {e}"))?;
        let panic = unescape_panic(&parse(fields.next(), "panic text")?);
        out.push(QuarantinedUnit { unit, dest, round, addr, seed, panic });
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Route (de)serialization — only present under `keep_routes`.
// ---------------------------------------------------------------------

fn kind_code(kind: ResponseKind) -> String {
    match kind {
        ResponseKind::TimeExceeded => "TE".to_owned(),
        ResponseKind::EchoReply => "ER".to_owned(),
        ResponseKind::TcpReply => "TR".to_owned(),
        ResponseKind::Unreachable(UnreachableCode::Network) => "UN".to_owned(),
        ResponseKind::Unreachable(UnreachableCode::Host) => "UH".to_owned(),
        ResponseKind::Unreachable(UnreachableCode::Port) => "UP".to_owned(),
        ResponseKind::Unreachable(UnreachableCode::Other(c)) => format!("UO{c}"),
    }
}

fn kind_parse(s: &str) -> Result<ResponseKind, String> {
    Ok(match s {
        "TE" => ResponseKind::TimeExceeded,
        "ER" => ResponseKind::EchoReply,
        "TR" => ResponseKind::TcpReply,
        "UN" => ResponseKind::Unreachable(UnreachableCode::Network),
        "UH" => ResponseKind::Unreachable(UnreachableCode::Host),
        "UP" => ResponseKind::Unreachable(UnreachableCode::Port),
        other => match other.strip_prefix("UO") {
            Some(code) => ResponseKind::Unreachable(UnreachableCode::Other(
                code.parse().map_err(|e| format!("bad unreachable code: {e}"))?,
            )),
            None => return Err(format!("unknown response kind {other:?}")),
        },
    })
}

fn halt_name(halt: HaltReason) -> &'static str {
    match halt {
        HaltReason::Terminal => "Terminal",
        HaltReason::StarLimit => "StarLimit",
        HaltReason::MaxTtl => "MaxTtl",
        HaltReason::Budget => "Budget",
    }
}

fn halt_parse(s: &str) -> Result<HaltReason, String> {
    Ok(match s {
        "Terminal" => HaltReason::Terminal,
        "StarLimit" => HaltReason::StarLimit,
        "MaxTtl" => HaltReason::MaxTtl,
        "Budget" => HaltReason::Budget,
        other => return Err(format!("unknown halt reason {other:?}")),
    })
}

fn write_probe(out: &mut String, p: &ProbeResult) {
    use std::fmt::Write;
    match p.addr {
        Some(a) => {
            let _ = write!(out, " {a}");
        }
        None => out.push_str(" -"),
    }
    match p.rtt {
        Some(rtt) => {
            let _ = write!(out, ",{}", rtt.nanos());
        }
        None => out.push_str(",-"),
    }
    match p.kind {
        Some(k) => {
            let _ = write!(out, ",{}", kind_code(k));
        }
        None => out.push_str(",-"),
    }
    for field in [p.probe_ttl.map(u64::from), p.response_ttl.map(u64::from)] {
        match field {
            Some(v) => {
                let _ = write!(out, ",{v}");
            }
            None => out.push_str(",-"),
        }
    }
    match p.ip_id {
        Some(v) => {
            let _ = write!(out, ",{v}");
        }
        None => out.push_str(",-"),
    }
}

fn parse_probe(s: &str) -> Result<ProbeResult, String> {
    let mut f = s.split(',');
    let mut next = |what: &str| f.next().ok_or_else(|| format!("probe: missing {what}"));
    let opt = |v: &str| if v == "-" { None } else { Some(v.to_owned()) };
    let addr = match opt(next("addr")?) {
        Some(v) => Some(v.parse::<Ipv4Addr>().map_err(|e| format!("{e}"))?),
        None => None,
    };
    let rtt = match opt(next("rtt")?) {
        Some(v) => Some(SimDuration::from_nanos(v.parse::<u64>().map_err(|e| format!("{e}"))?)),
        None => None,
    };
    let kind = match opt(next("kind")?) {
        Some(v) => Some(kind_parse(&v)?),
        None => None,
    };
    let probe_ttl = match opt(next("probe_ttl")?) {
        Some(v) => Some(v.parse::<u8>().map_err(|e| format!("{e}"))?),
        None => None,
    };
    let response_ttl = match opt(next("response_ttl")?) {
        Some(v) => Some(v.parse::<u8>().map_err(|e| format!("{e}"))?),
        None => None,
    };
    let ip_id = match opt(next("ip_id")?) {
        Some(v) => Some(v.parse::<u16>().map_err(|e| format!("{e}"))?),
        None => None,
    };
    Ok(ProbeResult { addr, rtt, kind, probe_ttl, response_ttl, ip_id })
}

fn write_routes(out: &mut String, routes: &[(UnitId, StrategyId, usize, MeasuredRoute)]) {
    use std::fmt::Write;
    let mut order: Vec<usize> = (0..routes.len()).collect();
    // Canonical order: unit id, Paris before classic — the same order
    // finalization imposes.
    order.sort_by_key(|&i| (routes[i].0, routes[i].1 != StrategyId::ParisUdp));
    let _ = writeln!(out, "routes {}", routes.len());
    for i in order {
        let (unit, tool, round, route) = &routes[i];
        let _ = writeln!(
            out,
            "route {} {} {} {} {} {} {} {} {}",
            unit,
            tool.name(),
            round,
            route.strategy.name(),
            route.source,
            route.destination,
            route.min_ttl,
            halt_name(route.halt),
            route.hops.len(),
        );
        for hop in &route.hops {
            let _ = write!(out, "hop {} {}", hop.ttl, hop.probes.len());
            for p in &hop.probes {
                write_probe(out, p);
            }
            out.push('\n');
        }
    }
}

fn read_routes<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
) -> Result<Vec<(UnitId, StrategyId, usize, MeasuredRoute)>, String> {
    let header = take(lines, "routes header")?;
    expect_tag(header, "routes")?;
    let mut t = header.split_ascii_whitespace();
    t.next();
    let n: usize = tok(&mut t, "route count")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let line = take(lines, "route record")?;
        expect_tag(line, "route")?;
        let mut t = line.split_ascii_whitespace();
        t.next();
        let unit: u32 = tok(&mut t, "unit")?;
        let tool = StrategyId::from_name(t.next().ok_or("route: missing tool")?)
            .ok_or("route: unknown tool")?;
        let round: usize = tok(&mut t, "round")?;
        let strategy = StrategyId::from_name(t.next().ok_or("route: missing strategy")?)
            .ok_or("route: unknown strategy")?;
        let source: Ipv4Addr = tok(&mut t, "source")?;
        let destination: Ipv4Addr = tok(&mut t, "destination")?;
        let min_ttl: u8 = tok(&mut t, "min_ttl")?;
        let halt = halt_parse(t.next().ok_or("route: missing halt")?)?;
        let n_hops: usize = tok(&mut t, "hop count")?;
        let mut hops = Vec::with_capacity(n_hops);
        for _ in 0..n_hops {
            let line = take(lines, "hop record")?;
            expect_tag(line, "hop")?;
            let mut t = line.split_ascii_whitespace();
            t.next();
            let ttl: u8 = tok(&mut t, "ttl")?;
            let n_probes: usize = tok(&mut t, "probe count")?;
            let mut probes = Vec::with_capacity(n_probes);
            for _ in 0..n_probes {
                probes.push(parse_probe(t.next().ok_or("hop: truncated probes")?)?);
            }
            hops.push(Hop { ttl, probes });
        }
        out.push((
            unit,
            tool,
            round,
            MeasuredRoute { strategy, source, destination, min_ttl, hops, halt },
        ));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// The side-by-side campaign snapshot.
// ---------------------------------------------------------------------

/// The resumable fold state of a side-by-side campaign: everything the
/// engine has accumulated, plus the work-list cursor (units `0..cursor`
/// are done — completed or quarantined).
pub(crate) struct CampaignSnapshot {
    pub(crate) fingerprint: u64,
    pub(crate) cursor: u32,
    pub(crate) out: BlockOutput,
}

impl CampaignSnapshot {
    fn empty(fingerprint: u64) -> Self {
        CampaignSnapshot { fingerprint, cursor: 0, out: BlockOutput::empty() }
    }

    fn serialize(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "{MAGIC} side-by-side");
        let _ = writeln!(s, "fingerprint {:016x}", self.fingerprint);
        let _ = writeln!(s, "cursor {}", self.cursor);
        write_quarantined(&mut s, &self.out.quarantined);
        let mut virt: Vec<(UnitId, f64)> = self.out.virtual_secs.clone();
        virt.sort_by_key(|(unit, _)| *unit);
        let _ = writeln!(s, "virt {}", virt.len());
        for (unit, v) in virt {
            let _ = writeln!(s, "v {} {:016x}", unit, v.to_bits());
        }
        self.out.classic.snapshot_write(&mut s);
        self.out.paris.snapshot_write(&mut s);
        write_routes(&mut s, &self.out.routes);
        s.push_str("end\n");
        s
    }

    fn parse(text: &str) -> Result<CampaignSnapshot, String> {
        let mut lines = text.lines();
        let magic = take(&mut lines, "magic")?;
        if magic != format!("{MAGIC} side-by-side") {
            return Err(format!("not a v1 side-by-side snapshot (got {magic:?})"));
        }
        let line = take(&mut lines, "fingerprint")?;
        expect_tag(line, "fingerprint")?;
        let mut t = line.split_ascii_whitespace();
        t.next();
        let fingerprint = tok_hex_u64(&mut t, "fingerprint")?;
        let line = take(&mut lines, "cursor")?;
        expect_tag(line, "cursor")?;
        let mut t = line.split_ascii_whitespace();
        t.next();
        let cursor: u32 = tok(&mut t, "cursor")?;
        let quarantined = read_quarantined(&mut lines)?;
        let line = take(&mut lines, "virt header")?;
        expect_tag(line, "virt")?;
        let mut t = line.split_ascii_whitespace();
        t.next();
        let n_virt: usize = tok(&mut t, "virt count")?;
        let mut virtual_secs = Vec::with_capacity(n_virt);
        for _ in 0..n_virt {
            let line = take(&mut lines, "virt record")?;
            expect_tag(line, "v")?;
            let mut t = line.split_ascii_whitespace();
            t.next();
            let unit: u32 = tok(&mut t, "virt unit")?;
            let bits = tok_hex_u64(&mut t, "virt bits")?;
            virtual_secs.push((unit, f64::from_bits(bits)));
        }
        let classic = CampaignAccumulator::snapshot_read(&mut lines)?;
        let paris = CampaignAccumulator::snapshot_read(&mut lines)?;
        let routes = read_routes(&mut lines)?;
        if take(&mut lines, "end marker")? != "end" {
            return Err("missing end marker".to_owned());
        }
        Ok(CampaignSnapshot {
            fingerprint,
            cursor,
            out: BlockOutput { classic, paris, routes, virtual_secs, quarantined },
        })
    }

    fn save(&self, path: &Path) -> io::Result<()> {
        atomic_write(path, &self.serialize())
    }

    fn load(path: &Path) -> io::Result<CampaignSnapshot> {
        CampaignSnapshot::parse(&fs::read_to_string(path)?).map_err(invalid)
    }
}

fn drive_campaign(
    net: &SyntheticInternet,
    config: &CampaignConfig,
    ckpt: &CheckpointConfig,
    mut snap: CampaignSnapshot,
) -> io::Result<Option<CampaignResult>> {
    let n_units = campaign_units(net, config);
    if snap.cursor > n_units {
        return Err(invalid(format!(
            "cursor {} exceeds the campaign's {} units",
            snap.cursor, n_units
        )));
    }
    let every = ckpt.every_units.max(1);
    let mut checkpoints = 0usize;
    while snap.cursor < n_units {
        let end = n_units.min(snap.cursor.saturating_add(every));
        snap.out.absorb(run_units(net, config, snap.cursor..end));
        snap.cursor = end;
        snap.save(&ckpt.path)?;
        checkpoints += 1;
        if snap.cursor < n_units
            && ckpt.stop_after_checkpoints.is_some_and(|limit| checkpoints >= limit)
        {
            return Ok(None);
        }
    }
    Ok(Some(finalize_campaign(net.dests.len(), snap.out)))
}

/// Run a side-by-side campaign with periodic checkpoints — [`crate::run`]
/// with crash safety. Returns `Ok(None)` only when
/// [`CheckpointConfig::stop_after_checkpoints`] cut the run short (the
/// snapshot is on disk, ready for [`run_resumed`]); otherwise the result
/// is byte-for-byte the one [`crate::run`] produces.
pub fn run_checkpointed(
    net: &SyntheticInternet,
    config: &CampaignConfig,
    ckpt: &CheckpointConfig,
) -> io::Result<Option<CampaignResult>> {
    drive_campaign(net, config, ckpt, CampaignSnapshot::empty(campaign_fingerprint(net, config)))
}

/// Resume a checkpointed campaign from its snapshot and run it to
/// completion (or to the next `stop_after_checkpoints` kill point). The
/// snapshot must have been taken by a campaign with the same
/// results-affecting configuration — worker count may differ freely —
/// or this fails with `InvalidData` instead of producing a silently
/// inconsistent result.
pub fn run_resumed(
    net: &SyntheticInternet,
    config: &CampaignConfig,
    ckpt: &CheckpointConfig,
) -> io::Result<Option<CampaignResult>> {
    let snap = CampaignSnapshot::load(&ckpt.path)?;
    let expect = campaign_fingerprint(net, config);
    if snap.fingerprint != expect {
        return Err(invalid(format!(
            "fingerprint mismatch: snapshot {:016x}, campaign {:016x} — refusing to resume \
             under a different configuration",
            snap.fingerprint, expect
        )));
    }
    drive_campaign(net, config, ckpt, snap)
}

// ---------------------------------------------------------------------
// The multipath campaign snapshot.
// ---------------------------------------------------------------------

fn class_name(class: BalancerClass) -> &'static str {
    match class {
        BalancerClass::NotBalanced => "NotBalanced",
        BalancerClass::PerFlow => "PerFlow",
        BalancerClass::PerPacket => "PerPacket",
        BalancerClass::Undetermined => "Undetermined",
    }
}

fn class_parse(s: &str) -> Result<BalancerClass, String> {
    Ok(match s {
        "NotBalanced" => BalancerClass::NotBalanced,
        "PerFlow" => BalancerClass::PerFlow,
        "PerPacket" => BalancerClass::PerPacket,
        "Undetermined" => BalancerClass::Undetermined,
        other => return Err(format!("unknown balancer class {other:?}")),
    })
}

/// The resumable fold state of a multipath campaign.
pub(crate) struct MultipathSnapshot {
    pub(crate) fingerprint: u64,
    pub(crate) cursor: u32,
    pub(crate) out: MultipathBlock,
}

impl MultipathSnapshot {
    fn empty(fingerprint: u64) -> Self {
        MultipathSnapshot { fingerprint, cursor: 0, out: MultipathBlock::empty() }
    }

    fn serialize(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "{MAGIC} multipath");
        let _ = writeln!(s, "fingerprint {:016x}", self.fingerprint);
        let _ = writeln!(s, "cursor {}", self.cursor);
        write_quarantined(&mut s, &self.out.quarantined);
        let mut order: Vec<usize> = (0..self.out.units.len()).collect();
        order.sort_by_key(|&i| self.out.units[i].0);
        let _ = writeln!(s, "units {}", order.len());
        for i in order {
            let (unit, u, virt) = &self.out.units[i];
            let _ = writeln!(
                s,
                "u {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {:016x}",
                unit,
                u.dest,
                u.round,
                u.addr,
                u.width,
                u.observed_width,
                u.delta,
                class_name(u.class),
                u.hops,
                u.links,
                u.stars,
                u.unconverged_hops,
                u.probes,
                u.reached,
                u.degraded,
                virt.to_bits(),
            );
        }
        s.push_str("end\n");
        s
    }

    fn parse(text: &str) -> Result<MultipathSnapshot, String> {
        let mut lines = text.lines();
        let magic = take(&mut lines, "magic")?;
        if magic != format!("{MAGIC} multipath") {
            return Err(format!("not a v1 multipath snapshot (got {magic:?})"));
        }
        let line = take(&mut lines, "fingerprint")?;
        expect_tag(line, "fingerprint")?;
        let mut t = line.split_ascii_whitespace();
        t.next();
        let fingerprint = tok_hex_u64(&mut t, "fingerprint")?;
        let line = take(&mut lines, "cursor")?;
        expect_tag(line, "cursor")?;
        let mut t = line.split_ascii_whitespace();
        t.next();
        let cursor: u32 = tok(&mut t, "cursor")?;
        let quarantined = read_quarantined(&mut lines)?;
        let line = take(&mut lines, "units header")?;
        expect_tag(line, "units")?;
        let mut t = line.split_ascii_whitespace();
        t.next();
        let n_units: usize = tok(&mut t, "unit count")?;
        let mut units = Vec::with_capacity(n_units);
        for _ in 0..n_units {
            let line = take(&mut lines, "unit record")?;
            expect_tag(line, "u")?;
            let mut t = line.split_ascii_whitespace();
            t.next();
            let unit: u32 = tok(&mut t, "unit")?;
            let dest: usize = tok(&mut t, "dest")?;
            let round: usize = tok(&mut t, "round")?;
            let addr: Ipv4Addr = tok(&mut t, "addr")?;
            let width: usize = tok(&mut t, "width")?;
            let observed_width: usize = tok(&mut t, "observed width")?;
            let delta: u8 = tok(&mut t, "delta")?;
            let class = class_parse(t.next().ok_or("u: missing class")?)?;
            let hops: usize = tok(&mut t, "hops")?;
            let links: usize = tok(&mut t, "links")?;
            let stars: usize = tok(&mut t, "stars")?;
            let unconverged_hops: usize = tok(&mut t, "unconverged hops")?;
            let probes: usize = tok(&mut t, "probes")?;
            let reached: bool = tok(&mut t, "reached")?;
            let degraded: bool = tok(&mut t, "degraded")?;
            let virt = f64::from_bits(tok_hex_u64(&mut t, "virt bits")?);
            units.push((
                unit,
                UnitDiscovery {
                    dest,
                    round,
                    addr,
                    width,
                    observed_width,
                    delta,
                    class,
                    hops,
                    links,
                    stars,
                    unconverged_hops,
                    probes,
                    reached,
                    degraded,
                },
                virt,
            ));
        }
        if take(&mut lines, "end marker")? != "end" {
            return Err("missing end marker".to_owned());
        }
        Ok(MultipathSnapshot { fingerprint, cursor, out: MultipathBlock { units, quarantined } })
    }

    fn save(&self, path: &Path) -> io::Result<()> {
        atomic_write(path, &self.serialize())
    }

    fn load(path: &Path) -> io::Result<MultipathSnapshot> {
        MultipathSnapshot::parse(&fs::read_to_string(path)?).map_err(invalid)
    }
}

fn drive_multipath(
    net: &SyntheticInternet,
    config: &MultipathConfig,
    ckpt: &CheckpointConfig,
    mut snap: MultipathSnapshot,
) -> io::Result<Option<MultipathResult>> {
    let n_units = multipath_units(net, config);
    if snap.cursor > n_units {
        return Err(invalid(format!(
            "cursor {} exceeds the campaign's {} units",
            snap.cursor, n_units
        )));
    }
    let every = ckpt.every_units.max(1);
    let mut checkpoints = 0usize;
    while snap.cursor < n_units {
        let end = n_units.min(snap.cursor.saturating_add(every));
        snap.out.absorb(run_multipath_block(net, config, snap.cursor..end));
        snap.cursor = end;
        snap.save(&ckpt.path)?;
        checkpoints += 1;
        if snap.cursor < n_units
            && ckpt.stop_after_checkpoints.is_some_and(|limit| checkpoints >= limit)
        {
            return Ok(None);
        }
    }
    Ok(Some(finalize_multipath(net, config, snap.out)))
}

/// [`run_checkpointed`] for the multipath campaign mode.
pub fn run_multipath_checkpointed(
    net: &SyntheticInternet,
    config: &MultipathConfig,
    ckpt: &CheckpointConfig,
) -> io::Result<Option<MultipathResult>> {
    drive_multipath(net, config, ckpt, MultipathSnapshot::empty(multipath_fingerprint(net, config)))
}

/// [`run_resumed`] for the multipath campaign mode.
pub fn run_multipath_resumed(
    net: &SyntheticInternet,
    config: &MultipathConfig,
    ckpt: &CheckpointConfig,
) -> io::Result<Option<MultipathResult>> {
    let snap = MultipathSnapshot::load(&ckpt.path)?;
    let expect = multipath_fingerprint(net, config);
    if snap.fingerprint != expect {
        return Err(invalid(format!(
            "fingerprint mismatch: snapshot {:016x}, campaign {:016x} — refusing to resume \
             under a different configuration",
            snap.fingerprint, expect
        )));
    }
    drive_multipath(net, config, ckpt, snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::report_digest;
    use crate::runner::run;
    use pt_topogen::{generate, InternetConfig};

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ptsnap-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn checkpointed_run_matches_plain_run_and_snapshot_is_canonical() {
        let net = generate(&InternetConfig::tiny(42));
        let config = CampaignConfig {
            rounds: 2,
            workers: 4,
            seed: 99,
            keep_routes: true,
            ..CampaignConfig::default()
        };
        let plain = report_digest(&run(&net, &config));
        let path = tmp_path("canonical");
        let ckpt =
            CheckpointConfig { every_units: 17, stop_after_checkpoints: None, path: path.clone() };
        let result = run_checkpointed(&net, &config, &ckpt).unwrap().expect("ran to completion");
        assert_eq!(report_digest(&result), plain);
        // The final on-disk snapshot round-trips to identical bytes —
        // the canonical-format property the resume tests build on.
        let text = fs::read_to_string(&path).unwrap();
        let reparsed = CampaignSnapshot::parse(&text).unwrap();
        assert_eq!(reparsed.cursor, 80);
        assert_eq!(reparsed.serialize(), text);
        // Kept routes survive the round trip exactly.
        assert_eq!(reparsed.out.routes.len(), result.routes.len());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn resume_refuses_a_mismatched_configuration() {
        let net = generate(&InternetConfig::tiny(42));
        let config = CampaignConfig { rounds: 2, workers: 2, seed: 99, ..Default::default() };
        let path = tmp_path("mismatch");
        let ckpt = CheckpointConfig {
            every_units: 40,
            stop_after_checkpoints: Some(1),
            path: path.clone(),
        };
        assert!(run_checkpointed(&net, &config, &ckpt).unwrap().is_none());
        // Same campaign, different seed: a silent resume would splice
        // two unrelated campaigns together.
        let other = CampaignConfig { seed: 100, ..config.clone() };
        let err = run_resumed(&net, &other, &ckpt).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("fingerprint mismatch"), "{err}");
        // But a different *worker count* is explicitly fine.
        let reworked = CampaignConfig { workers: 7, ..config.clone() };
        assert!(run_resumed(&net, &reworked, &ckpt).unwrap().is_some());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn panic_text_escaping_round_trips() {
        for s in ["plain", "with\nnewline", "back\\slash", "mixed \\n literal\r\n", ""] {
            assert_eq!(unescape_panic(&escape_panic(s)), s);
        }
    }
}
