//! `pt-lint`: the workspace determinism/purity static-analysis pass.
//!
//! Walks the workspace sources and enforces the repo's determinism
//! invariants as hard rules (D1–D6, see [`rules`]): no randomized map
//! order, no wall clock, no ambient entropy, no context-free panics,
//! no undocumented `unsafe`, no lossy float formatting in snapshot
//! text. Violations can be waived inline — with a mandatory written
//! reason — via `// ptlint: allow(<rule>): <reason>`.
//!
//! Everything is hand-rolled on a small Rust lexer ([`lexer`]): the
//! build environment has no crates.io access, so `syn`/dylint-style
//! tooling is not an option, and the rules only need token streams
//! that cannot misfire inside strings or comments.

pub mod lexer;
pub mod rules;
pub mod scope;
pub mod waiver;

use std::path::{Path, PathBuf};

use lexer::TokKind;
use rules::{FileCtx, RuleSet, Violation};

/// How one lint run went.
pub struct Outcome {
    /// Violations, sorted by path then line.
    pub violations: Vec<Violation>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Waivers that suppressed at least one violation.
    pub waivers_used: usize,
}

/// Decide which rules arm for a workspace-relative path. `None` means
/// the file is out of scope entirely.
///
/// Policy:
/// - `target/`, hidden dirs, and the lint's own known-bad fixtures are
///   skipped.
/// - `support/` is skipped: those crates are offline stand-ins for
///   crates.io dependencies (`criterion` must read the wall clock to
///   be a benchmark harness) and sit outside the determinism boundary
///   — swapping in the real crates must not change what the lint
///   covers.
/// - `crates/bench/` may time things (that is its job) but still must
///   not draw entropy or hide `unsafe`.
/// - integration tests and examples are exempt from the engine-only
///   rules (D1/D4/D6) but must stay clock- and entropy-clean.
/// - everything else — engine crate sources and the umbrella `src/` —
///   gets all six rules.
pub fn rules_for_path(rel: &str) -> Option<RuleSet> {
    let rel = rel.trim_start_matches("./");
    if !rel.ends_with(".rs") {
        return None;
    }
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.iter().any(|p| *p == "target" || p.starts_with('.')) {
        return None;
    }
    if rel.starts_with("crates/lint/tests/fixtures/") {
        return None;
    }
    if rel.starts_with("support/") {
        return None;
    }
    if rel.starts_with("crates/bench/") {
        return Some(RuleSet { entropy: true, unsafe_block: true, ..RuleSet::default() });
    }
    let is_test_or_example =
        parts.contains(&"tests") || parts.contains(&"examples") || parts.contains(&"benches");
    if is_test_or_example {
        return Some(RuleSet {
            wall_clock: true,
            entropy: true,
            unsafe_block: true,
            ..RuleSet::default()
        });
    }
    Some(RuleSet::engine())
}

/// Lint one file's source under the rules for `rel_path`.
///
/// Waiver handling happens here: well-formed waivers suppress matching
/// violations on their target line; malformed waivers (no reason,
/// unknown rule) are violations themselves and suppress nothing.
pub fn lint_source(rel_path: &str, src: &str, rules: RuleSet) -> (Vec<Violation>, usize) {
    let toks = lexer::lex(src);
    let code: Vec<_> = toks.iter().filter(|t| t.kind != TokKind::Comment).copied().collect();
    let comments: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Comment).copied().collect();
    let last_line = src.lines().count() as u32 + 1;
    let regions = scope::analyze(&code, last_line);

    let whole_file_snapshot = Path::new(rel_path)
        .file_name()
        .and_then(|f| f.to_str())
        .is_some_and(|f| f == "snapshot.rs");
    let ctx = FileCtx {
        path: rel_path,
        code: &code,
        comments: &comments,
        regions: &regions,
        whole_file_snapshot,
    };
    let mut violations = rules::check(&ctx, rules);

    let mut code_lines: Vec<u32> = code.iter().map(|t| t.line).collect();
    code_lines.dedup();
    let (waivers, waiver_errors) = waiver::collect(&comments, &code_lines);

    let mut used = vec![false; waivers.len()];
    violations.retain(|v| {
        for (w, used) in waivers.iter().zip(used.iter_mut()) {
            if w.rule == v.rule && w.target_line == v.line {
                *used = true;
                return false;
            }
        }
        true
    });
    let waivers_used = used.iter().filter(|u| **u).count();

    for e in waiver_errors {
        violations.push(Violation {
            path: rel_path.to_string(),
            line: e.line,
            rule: "waiver",
            code: "W0",
            msg: e.msg,
        });
    }
    violations.sort_by(|a, b| a.line.cmp(&b.line).then(a.code.cmp(b.code)));
    (violations, waivers_used)
}

/// Recursively collect `.rs` files under `root`, in sorted order so
/// the lint's own output is deterministic.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|f| f.to_str()).unwrap_or("");
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Lint every in-scope `.rs` file under `root` (the workspace root).
pub fn lint_workspace(root: &Path) -> Outcome {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files);
    let mut violations = Vec::new();
    let mut files_scanned = 0usize;
    let mut waivers_used = 0usize;
    for path in files {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        let Some(rules) = rules_for_path(&rel) else { continue };
        let src = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                violations.push(Violation {
                    path: rel.clone(),
                    line: 0,
                    rule: "waiver",
                    code: "W0",
                    msg: format!("unreadable source file: {e}"),
                });
                continue;
            }
        };
        files_scanned += 1;
        let (mut file_violations, used) = lint_source(&rel, &src, rules);
        waivers_used += used;
        violations.append(&mut file_violations);
    }
    violations.sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));
    Outcome { violations, files_scanned, waivers_used }
}

/// Render one violation rustc-style.
pub fn render(v: &Violation) -> String {
    format!("error[{}/{}]: {}\n  --> {}:{}\n", v.code, v.rule, v.msg, v.path, v.line)
}
