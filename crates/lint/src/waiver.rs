//! Scoped inline waivers: `// ptlint: allow(<rule>): <reason>`.
//!
//! A waiver suppresses one rule on one line — the line it trails, or
//! (for a comment standing alone on its own line) the next line that
//! carries code. The reason is mandatory: a waiver that cannot say
//! *why* the invariant holds anyway is exactly the silent exemption
//! this tool exists to forbid, so an empty reason is itself a
//! violation and suppresses nothing.

use crate::lexer::{Tok, TokKind};
use crate::rules::RULE_NAMES;

/// One parsed waiver.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// The rule name being waived (e.g. `map-order`).
    pub rule: String,
    /// The line the waiver applies to.
    pub target_line: u32,
    /// The line the waiver comment sits on (diagnostics).
    pub comment_line: u32,
    /// The justification text.
    pub reason: String,
}

/// Waiver-syntax problems (reported as violations in their own right).
#[derive(Debug, Clone)]
pub struct WaiverError {
    /// Line of the malformed waiver comment.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

/// Scan `comments` for waivers. `code_lines` must hold, in ascending
/// order, every line that carries at least one code token — used to
/// resolve a standalone waiver comment to the line it covers.
pub fn collect(comments: &[Tok<'_>], code_lines: &[u32]) -> (Vec<Waiver>, Vec<WaiverError>) {
    let mut waivers = Vec::new();
    let mut errors = Vec::new();
    for c in comments {
        debug_assert_eq!(c.kind, TokKind::Comment);
        // The directive must open the comment (`// ptlint: ...`), so
        // prose that merely *mentions* the syntax is not a waiver.
        let opened = c.text.trim_start_matches(['/', '*', '!']).trim_start();
        let Some(body) = opened.strip_prefix("ptlint:") else { continue };
        let body = body.trim();
        let Some(rest) = body.strip_prefix("allow") else {
            errors.push(WaiverError {
                line: c.line,
                msg: format!("unrecognized ptlint directive: `{body}`"),
            });
            continue;
        };
        let rest = rest.trim_start();
        let (rule, after) = match rest.strip_prefix('(').and_then(|r| r.split_once(')')) {
            Some((rule, after)) => (rule.trim().to_string(), after),
            None => {
                errors.push(WaiverError {
                    line: c.line,
                    msg: "malformed waiver: expected `ptlint: allow(<rule>): <reason>`".to_string(),
                });
                continue;
            }
        };
        if !RULE_NAMES.contains(&rule.as_str()) {
            errors.push(WaiverError {
                line: c.line,
                msg: format!(
                    "waiver names unknown rule `{rule}` (known: {})",
                    RULE_NAMES.join(", ")
                ),
            });
            continue;
        }
        let reason = after.trim_start().strip_prefix(':').unwrap_or("").trim();
        if reason.is_empty() {
            errors.push(WaiverError {
                line: c.line,
                msg: format!(
                    "waiver for `{rule}` has no reason — every waiver must explain why \
                     the invariant still holds"
                ),
            });
            continue;
        }
        // Trailing comment covers its own line; a standalone comment
        // covers the next code-bearing line.
        let target_line = if code_lines.binary_search(&c.line).is_ok() {
            c.line
        } else {
            match code_lines.iter().find(|&&l| l > c.line) {
                Some(&l) => l,
                None => c.line,
            }
        };
        waivers.push(Waiver {
            rule,
            target_line,
            comment_line: c.line,
            reason: reason.to_string(),
        });
    }
    (waivers, errors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> (Vec<Waiver>, Vec<WaiverError>) {
        let toks = lex(src);
        let comments: Vec<_> =
            toks.iter().filter(|t| t.kind == TokKind::Comment).copied().collect();
        let mut code_lines: Vec<u32> =
            toks.iter().filter(|t| t.kind != TokKind::Comment).map(|t| t.line).collect();
        code_lines.dedup();
        collect(&comments, &code_lines)
    }

    #[test]
    fn trailing_waiver_covers_its_own_line() {
        let (w, e) = run("let x = f(); // ptlint: allow(map-order): sorted before digest\n");
        assert!(e.is_empty());
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].rule, "map-order");
        assert_eq!(w[0].target_line, 1);
    }

    #[test]
    fn standalone_waiver_covers_next_code_line() {
        let (w, e) = run("// ptlint: allow(wall-clock): display only\n\nlet t = now();\n");
        assert!(e.is_empty());
        assert_eq!(w[0].target_line, 3);
    }

    #[test]
    fn empty_reason_is_an_error_and_no_waiver() {
        let (w, e) = run("x(); // ptlint: allow(map-order):\n");
        assert!(w.is_empty());
        assert_eq!(e.len(), 1);
        assert!(e[0].msg.contains("no reason"));
        let (w2, e2) = run("x(); // ptlint: allow(map-order)\n");
        assert!(w2.is_empty());
        assert_eq!(e2.len(), 1);
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let (w, e) = run("x(); // ptlint: allow(no-such-rule): because\n");
        assert!(w.is_empty());
        assert_eq!(e.len(), 1);
        assert!(e[0].msg.contains("unknown rule"));
    }
}
