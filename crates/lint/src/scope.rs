//! Source regions the rules treat specially: `#[cfg(test)]` /
//! `#[test]` item extents (exempt from the engine-code rules), `use`
//! declarations (importing a type is not instantiating it), and
//! snapshot-writer function bodies (where the float-format rule D6
//! applies).

use crate::lexer::{Tok, TokKind};

/// Per-file region classification, indexed by line (1-based; index 0
/// unused) or by code-token position.
pub struct Regions {
    /// Lines covered by a test-gated item (`#[cfg(test)]` mod/fn/impl
    /// or a `#[test]` function), attribute lines included.
    pub test_line: Vec<bool>,
    /// Lines inside a `fn snapshot_write`-family body — digest/snapshot
    /// text is produced here, so D6's float-format rule arms.
    pub snapshot_line: Vec<bool>,
    /// Code-token indices that sit inside a `use ... ;` declaration.
    pub in_use: Vec<bool>,
}

/// True when the attribute token run (the idents between `#[` and the
/// matching `]`) gates the item to test builds.
fn is_test_attr(idents: &[&str]) -> bool {
    match idents.first() {
        Some(&"test") => true,
        Some(&"cfg") => idents.contains(&"test"),
        _ => false,
    }
}

/// Find the index of the token that closes the item starting at
/// `start`: either a top-level `;` before any brace, or the `}`
/// matching the first `{`. Returns the last token index of the item.
fn item_extent(code: &[Tok<'_>], start: usize) -> usize {
    let mut depth = 0usize;
    let mut saw_brace = false;
    let mut i = start;
    while i < code.len() {
        match code[i].kind {
            TokKind::Punct('{') => {
                depth += 1;
                saw_brace = true;
            }
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                if saw_brace && depth == 0 {
                    return i;
                }
            }
            TokKind::Punct(';') if !saw_brace && depth == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    code.len().saturating_sub(1)
}

/// Classify every line and code token of one file.
///
/// `code` must be the comment-free token stream; `last_line` the file's
/// final line number.
pub fn analyze(code: &[Tok<'_>], last_line: u32) -> Regions {
    let n = last_line as usize + 2;
    let mut regions = Regions {
        test_line: vec![false; n],
        snapshot_line: vec![false; n],
        in_use: vec![false; code.len()],
    };

    // `use ...;` spans (token-indexed).
    let mut i = 0usize;
    while i < code.len() {
        if code[i].kind == TokKind::Ident && code[i].text == "use" {
            // `use` only opens an import at item position; a preceding
            // `.` (method chains) or `::` cannot occur with the
            // keyword, so no further disambiguation is needed.
            let mut j = i;
            while j < code.len() && code[j].kind != TokKind::Punct(';') {
                regions.in_use[j] = true;
                j += 1;
            }
            if j < code.len() {
                regions.in_use[j] = true;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }

    // Attribute-gated test items.
    let mut i = 0usize;
    while i < code.len() {
        let is_hash = code[i].kind == TokKind::Punct('#');
        if !is_hash {
            i += 1;
            continue;
        }
        // `#[...]` or `#![...]` — collect idents to the matching `]`.
        let mut j = i + 1;
        if j < code.len() && code[j].kind == TokKind::Punct('!') {
            j += 1; // inner attribute; never gates an item, but skip it
        }
        if j >= code.len() || code[j].kind != TokKind::Punct('[') {
            i += 1;
            continue;
        }
        let attr_start_line = code[i].line;
        let mut depth = 0usize;
        let mut idents: Vec<&str> = Vec::new();
        while j < code.len() {
            match code[j].kind {
                TokKind::Punct('[') => depth += 1,
                TokKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokKind::Ident => idents.push(code[j].text),
                _ => {}
            }
            j += 1;
        }
        if !is_test_attr(&idents) {
            i = j + 1;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut k = j + 1;
        while k + 1 < code.len()
            && code[k].kind == TokKind::Punct('#')
            && code[k + 1].kind == TokKind::Punct('[')
        {
            let mut depth = 0usize;
            let mut m = k + 1;
            while m < code.len() {
                match code[m].kind {
                    TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                m += 1;
            }
            k = m + 1;
        }
        let end = item_extent(code, k);
        let end_line = code.get(end).map_or(last_line, |t| t.line);
        for line in attr_start_line..=end_line {
            if let Some(slot) = regions.test_line.get_mut(line as usize) {
                *slot = true;
            }
        }
        i = end + 1;
    }

    // Snapshot-writer bodies: `fn <name>` where the name belongs to
    // the canonical text-serialization family.
    let mut i = 0usize;
    while i + 1 < code.len() {
        if code[i].kind == TokKind::Ident
            && code[i].text == "fn"
            && code[i + 1].kind == TokKind::Ident
            && code[i + 1].text.contains("snapshot_write")
        {
            let end = item_extent(code, i);
            let end_line = code.get(end).map_or(last_line, |t| t.line);
            for line in code[i].line..=end_line {
                if let Some(slot) = regions.snapshot_line.get_mut(line as usize) {
                    *slot = true;
                }
            }
            i = end + 1;
            continue;
        }
        i += 1;
    }

    regions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn regions(src: &str) -> Regions {
        let toks = lex(src);
        let code: Vec<_> = toks.iter().filter(|t| t.kind != TokKind::Comment).copied().collect();
        let last = src.lines().count() as u32;
        analyze(&code, last)
    }

    #[test]
    fn cfg_test_mod_extent_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn inner() {}\n}\nfn after() {}\n";
        let r = regions(src);
        assert!(!r.test_line[1]);
        assert!(r.test_line[2] && r.test_line[3] && r.test_line[4] && r.test_line[5]);
        assert!(!r.test_line[6]);
    }

    #[test]
    fn test_fn_extent_is_marked() {
        let src = "#[test]\nfn t() {\n    body();\n}\nfn live() {}\n";
        let r = regions(src);
        assert!(r.test_line[1] && r.test_line[2] && r.test_line[3] && r.test_line[4]);
        assert!(!r.test_line[5]);
    }

    #[test]
    fn non_test_attrs_do_not_mark() {
        let src = "#[derive(Debug)]\nstruct S;\nfn live() {}\n";
        let r = regions(src);
        assert!(!r.test_line[2]);
        assert!(!r.test_line[3]);
    }

    #[test]
    fn use_spans_cover_import_tokens() {
        let src = "use std::collections::HashMap;\nfn f() { let m = HashMap::new(); }\n";
        let toks = lex(src);
        let code: Vec<_> = toks.iter().filter(|t| t.kind != TokKind::Comment).copied().collect();
        let r = analyze(&code, 2);
        let first_map = code
            .iter()
            .position(|t| t.text == "HashMap")
            .expect("HashMap token must exist in the import");
        let second_map = code
            .iter()
            .rposition(|t| t.text == "HashMap")
            .expect("HashMap token must exist in the body");
        assert!(r.in_use[first_map]);
        assert!(!r.in_use[second_map]);
    }

    #[test]
    fn snapshot_write_bodies_are_marked() {
        let src = "fn snapshot_write(&self) {\n    emit();\n}\nfn other() {\n    emit();\n}\n";
        let r = regions(src);
        assert!(r.snapshot_line[1] && r.snapshot_line[2] && r.snapshot_line[3]);
        assert!(!r.snapshot_line[4] && !r.snapshot_line[5]);
    }
}
