//! `pt-lint` CLI: lint the workspace, print rustc-style diagnostics,
//! exit nonzero on any violation.
//!
//! ```sh
//! cargo run -p pt-lint --release            # lint the current tree
//! cargo run -p pt-lint --release -- <root>  # lint another tree
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let root = match args.next() {
        Some(flag) if flag == "--help" || flag == "-h" => {
            eprintln!(
                "pt-lint: workspace determinism/purity static analysis\n\
                 usage: pt-lint [workspace-root]\n\
                 rules: D1 map-order, D2 wall-clock, D3 entropy, D4 bare-unwrap, \
                 D5 unsafe-block, D6 float-format\n\
                 waive: // ptlint: allow(<rule>): <reason>"
            );
            return ExitCode::SUCCESS;
        }
        Some(path) => PathBuf::from(path),
        None => PathBuf::from("."),
    };
    if !root.join("Cargo.toml").exists() {
        eprintln!(
            "pt-lint: {} does not look like a workspace root (no Cargo.toml)",
            root.display()
        );
        return ExitCode::FAILURE;
    }
    let outcome = pt_lint::lint_workspace(&root);
    for v in &outcome.violations {
        print!("{}", pt_lint::render(v));
    }
    if outcome.violations.is_empty() {
        println!(
            "pt-lint: clean — {} files scanned, {} waiver(s) in effect",
            outcome.files_scanned, outcome.waivers_used
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "pt-lint: {} violation(s) across {} files scanned ({} waiver(s) in effect)",
            outcome.violations.len(),
            outcome.files_scanned,
            outcome.waivers_used
        );
        ExitCode::FAILURE
    }
}
