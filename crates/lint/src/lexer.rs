//! A hand-rolled Rust lexer — just enough tokenization for line-level
//! static analysis.
//!
//! The build environment has no crates.io access, so `syn`-grade
//! parsing is off the table. What the determinism rules actually need
//! is much weaker: identifier/punctuation streams that *never*
//! misfire on the contents of string literals or comments, plus
//! line numbers for diagnostics. This lexer delivers exactly that:
//! comments (line, nested block), string literals (plain, raw with
//! any hash count, byte, byte-raw), char literals vs lifetimes,
//! numbers, identifiers, and single-character punctuation.

/// What kind of lexeme a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `fn`, `unsafe`, ...).
    Ident,
    /// A single punctuation character (`::` arrives as two `:` toks).
    Punct(char),
    /// Numeric literal (int or float; suffix included).
    Num,
    /// String literal, quotes included in `text`.
    Str,
    /// Char literal (`'a'`, `'\n'`).
    Char,
    /// Lifetime (`'a`, `'_`, `'static`).
    Lifetime,
    /// Line or block comment, markers included in `text`.
    Comment,
}

/// One token: kind, the exact source slice, and its starting line
/// (1-based).
#[derive(Debug, Clone, Copy)]
pub struct Tok<'s> {
    /// Lexeme class.
    pub kind: TokKind,
    /// The exact source text of the token.
    pub text: &'s str,
    /// 1-based line the token starts on.
    pub line: u32,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Tokenize `src`. Unterminated literals/comments terminate at end of
/// file rather than failing: a linter must keep going on odd input.
pub fn lex(src: &str) -> Vec<Tok<'_>> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        // Whitespace.
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            let start = i;
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            toks.push(Tok { kind: TokKind::Comment, text: &src[start..i], line });
            continue;
        }
        if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let (start, start_line) = (i, line);
            let mut depth = 1usize;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            toks.push(Tok { kind: TokKind::Comment, text: &src[start..i], line: start_line });
            continue;
        }
        // Raw / byte string prefixes and raw identifiers.
        if c == b'r' || c == b'b' {
            // r"..." | r#"..."# | b"..." | br"..." | br#"..."# | rb is
            // not a thing; r#ident is a raw identifier.
            let mut j = i;
            let mut _byte = false;
            if b[j] == b'b' {
                _byte = true;
                j += 1;
            }
            if j < b.len() && b[j] == b'r' {
                j += 1;
                let mut hashes = 0usize;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == b'"' {
                    // Raw string: ends at `"` + the same number of `#`.
                    let (start, start_line) = (i, line);
                    j += 1;
                    loop {
                        if j >= b.len() {
                            break;
                        }
                        if b[j] == b'\n' {
                            line += 1;
                            j += 1;
                            continue;
                        }
                        if b[j] == b'"' {
                            let mut k = 0usize;
                            while k < hashes && b.get(j + 1 + k) == Some(&b'#') {
                                k += 1;
                            }
                            if k == hashes {
                                j += 1 + hashes;
                                break;
                            }
                        }
                        j += 1;
                    }
                    toks.push(Tok { kind: TokKind::Str, text: &src[start..j], line: start_line });
                    i = j;
                    continue;
                }
                if hashes == 1 && j < b.len() && is_ident_start(b[j]) && b[i] == b'r' {
                    // Raw identifier r#foo: emit the bare name.
                    let start = j;
                    while j < b.len() && is_ident_continue(b[j]) {
                        j += 1;
                    }
                    toks.push(Tok { kind: TokKind::Ident, text: &src[start..j], line });
                    i = j;
                    continue;
                }
                // `r` / `b` not followed by a string: plain identifier.
            } else if j < b.len() && b[j] == b'"' {
                // b"...": scan as a normal (escaped) string below by
                // falling through with the prefix folded in.
                let (start, start_line) = (i, line);
                let mut k = j + 1;
                while k < b.len() {
                    match b[k] {
                        b'\\' => k += 2,
                        b'\n' => {
                            line += 1;
                            k += 1;
                        }
                        b'"' => {
                            k += 1;
                            break;
                        }
                        _ => k += 1,
                    }
                }
                toks.push(Tok { kind: TokKind::Str, text: &src[start..k], line: start_line });
                i = k;
                continue;
            }
            // Fall through: lex as a plain identifier.
        }
        if is_ident_start(c) {
            let start = i;
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            toks.push(Tok { kind: TokKind::Ident, text: &src[start..i], line });
            continue;
        }
        // Plain string literal.
        if c == b'"' {
            let (start, start_line) = (i, line);
            i += 1;
            while i < b.len() {
                match b[i] {
                    b'\\' => i += 2,
                    b'\n' => {
                        line += 1;
                        i += 1;
                    }
                    b'"' => {
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
            toks.push(Tok { kind: TokKind::Str, text: &src[start..i], line: start_line });
            continue;
        }
        // Char literal or lifetime.
        if c == b'\'' {
            let start = i;
            let next = b.get(i + 1).copied();
            let is_char = match next {
                Some(b'\\') => true,
                Some(n) if is_ident_start(n) => b.get(i + 2) == Some(&b'\''),
                Some(_) => true,
                None => false,
            };
            if is_char {
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' => i += 2,
                        b'\'' => {
                            i += 1;
                            break;
                        }
                        b'\n' => break, // stray quote; bail at EOL
                        _ => i += 1,
                    }
                }
                toks.push(Tok { kind: TokKind::Char, text: &src[start..i], line });
            } else {
                i += 1;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                toks.push(Tok { kind: TokKind::Lifetime, text: &src[start..i], line });
            }
            continue;
        }
        // Number: digits, then an optional fraction, letting the
        // alnum run swallow radix prefixes and suffixes. `0..9` must
        // not eat the range dots.
        if c.is_ascii_digit() {
            let start = i;
            while i < b.len() && (is_ident_continue(b[i])) {
                i += 1;
            }
            if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                i += 1;
                while i < b.len() && (is_ident_continue(b[i])) {
                    i += 1;
                }
            }
            toks.push(Tok { kind: TokKind::Num, text: &src[start..i], line });
            continue;
        }
        // Everything else: one punctuation character.
        let ch = src[i..].chars().next().unwrap_or('\u{fffd}');
        let len = ch.len_utf8();
        toks.push(Tok { kind: TokKind::Punct(ch), text: &src[i..i + len], line });
        i += len;
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text.to_string())).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let t = kinds("let m: HashMap<u32, u32> = HashMap::new();");
        let idents: Vec<&str> =
            t.iter().filter(|(k, _)| *k == TokKind::Ident).map(|(_, s)| s.as_str()).collect();
        assert_eq!(idents, ["let", "m", "HashMap", "u32", "u32", "HashMap", "new"]);
    }

    #[test]
    fn strings_hide_their_contents() {
        let t = lex("let s = \"Instant::now() HashMap\"; x");
        assert!(t
            .iter()
            .all(|t| t.kind != TokKind::Ident || (t.text != "Instant" && t.text != "HashMap")));
        assert!(t.iter().any(|t| t.kind == TokKind::Str));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let t = lex("let s = r#\"a \" b HashMap\"#; y");
        assert_eq!(t.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
        assert!(t.iter().any(|t| t.kind == TokKind::Ident && t.text == "y"));
        assert!(!t.iter().any(|t| t.kind == TokKind::Ident && t.text == "HashMap"));
    }

    #[test]
    fn comments_are_tokens_with_text() {
        let t = lex("x // ptlint: allow(map-order): reason\ny /* block\nspan */ z");
        let comments: Vec<&str> =
            t.iter().filter(|t| t.kind == TokKind::Comment).map(|t| t.text).collect();
        assert_eq!(comments.len(), 2);
        assert!(comments[0].contains("ptlint"));
        assert!(comments[1].contains("span"));
        // Line numbers survive multi-line block comments.
        let z = t.iter().find(|t| t.text == "z").expect("z token must exist");
        assert_eq!(z.line, 3);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let t = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(t.iter().filter(|t| t.kind == TokKind::Lifetime).count(), 2);
        assert_eq!(t.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let t = lex("for i in 0..10 { let x = 1.5e3; }");
        let nums: Vec<&str> = t.iter().filter(|t| t.kind == TokKind::Num).map(|t| t.text).collect();
        assert_eq!(nums[0], "0");
        assert_eq!(nums[1], "10");
        assert!(nums[2].starts_with("1.5"));
    }

    #[test]
    fn nested_block_comments() {
        let t = lex("a /* outer /* inner */ still */ b");
        let idents: Vec<&str> =
            t.iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect();
        assert_eq!(idents, ["a", "b"]);
    }
}
