//! The determinism/purity rules D1–D6.
//!
//! Every result this reproduction claims rests on one invariant: no
//! nondeterminism may reach a digest. These rules make the repo's
//! conventions machine-checked:
//!
//! - **D1 `map-order`** — no default-`RandomState` `HashMap`/`HashSet`
//!   in engine code. `RandomState` seeds itself from OS entropy, so
//!   iteration order varies run to run; anything it feeds must use the
//!   deterministic `AddrHasher`, a BTree collection, or prove sorted
//!   iteration in a waiver.
//! - **D2 `wall-clock`** — no `Instant::now`/`SystemTime` outside
//!   `crates/bench`. Simulation time is virtual; wall-clock reads make
//!   results machine-dependent.
//! - **D3 `entropy`** — no ambient randomness (`thread_rng`, `OsRng`,
//!   `from_entropy`, ...). All draws derive from the seeded
//!   `support/rand` chain.
//! - **D4 `bare-unwrap`** — no bare `unwrap()` / `expect("")` in
//!   engine (non-test) code: the campaign quarantine reports panic
//!   payloads, so panics must name the node/unit/invariant involved.
//! - **D5 `unsafe-block`** — `unsafe` requires a `// SAFETY:` comment
//!   within the three preceding lines (or on the same line).
//! - **D6 `float-format`** — inside snapshot-writer code, floats must
//!   reach the text through the bit-pattern helpers (`to_bits` +
//!   `{:016x}`), never `{}`/`{:?}`/`{:.N}` formatting. Heuristic:
//!   float-suggesting argument names and precision format specs.

use crate::lexer::{Tok, TokKind};
use crate::scope::Regions;

/// Canonical rule names, in rule order D1..D6 (waiver syntax uses
/// these).
pub const RULE_NAMES: [&str; 6] =
    ["map-order", "wall-clock", "entropy", "bare-unwrap", "unsafe-block", "float-format"];

/// Short codes, aligned with [`RULE_NAMES`].
pub const RULE_CODES: [&str; 6] = ["D1", "D2", "D3", "D4", "D5", "D6"];

/// Which rules apply to one file (derived from its workspace path).
#[derive(Debug, Clone, Copy, Default)]
pub struct RuleSet {
    /// D1: default-hasher collections.
    pub map_order: bool,
    /// D2: wall-clock reads.
    pub wall_clock: bool,
    /// D3: ambient entropy.
    pub entropy: bool,
    /// D4: bare unwrap / empty expect.
    pub bare_unwrap: bool,
    /// D5: unsafe without SAFETY comment.
    pub unsafe_block: bool,
    /// D6: float formatting in snapshot text.
    pub float_format: bool,
}

impl RuleSet {
    /// All six rules armed — engine source.
    pub fn engine() -> Self {
        RuleSet {
            map_order: true,
            wall_clock: true,
            entropy: true,
            bare_unwrap: true,
            unsafe_block: true,
            float_format: true,
        }
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name (`map-order`, ...) — `waiver` for waiver-syntax errors.
    pub rule: &'static str,
    /// Short code (`D1`..`D6`, `W0` for waiver errors).
    pub code: &'static str,
    /// Description of what fired.
    pub msg: String,
}

/// Everything the rules need to scan one file.
pub struct FileCtx<'s> {
    /// Workspace-relative path (diagnostics only).
    pub path: &'s str,
    /// Comment-free token stream.
    pub code: &'s [Tok<'s>],
    /// Comment tokens (for D5's SAFETY search).
    pub comments: &'s [Tok<'s>],
    /// Region classification.
    pub regions: &'s Regions,
    /// Whether the whole file counts as snapshot-writer code (true for
    /// `snapshot.rs` files; otherwise only `fn snapshot_write` bodies).
    pub whole_file_snapshot: bool,
}

impl FileCtx<'_> {
    fn is_test_line(&self, line: u32) -> bool {
        self.regions.test_line.get(line as usize).copied().unwrap_or(false)
    }

    fn is_snapshot_line(&self, line: u32) -> bool {
        self.whole_file_snapshot
            || self.regions.snapshot_line.get(line as usize).copied().unwrap_or(false)
    }

    fn violation(&self, line: u32, rule_idx: usize, msg: String) -> Violation {
        Violation {
            path: self.path.to_string(),
            line,
            rule: RULE_NAMES[rule_idx],
            code: RULE_CODES[rule_idx],
            msg,
        }
    }
}

/// Run every armed rule over one file.
pub fn check(ctx: &FileCtx<'_>, rules: RuleSet) -> Vec<Violation> {
    let mut out = Vec::new();
    if rules.map_order {
        d1_map_order(ctx, &mut out);
    }
    if rules.wall_clock {
        d2_wall_clock(ctx, &mut out);
    }
    if rules.entropy {
        d3_entropy(ctx, &mut out);
    }
    if rules.bare_unwrap {
        d4_bare_unwrap(ctx, &mut out);
    }
    if rules.unsafe_block {
        d5_unsafe_block(ctx, &mut out);
    }
    if rules.float_format {
        d6_float_format(ctx, &mut out);
    }
    out
}

/// Count top-level generic arguments of the `<...>` group opening at
/// `code[open]` (which must be `<`). Returns `None` when the group
/// never closes within a sane distance (treated as not-a-generic).
fn generic_arg_count(code: &[Tok<'_>], open: usize) -> Option<usize> {
    let mut angle = 0usize;
    let mut round = 0usize;
    let mut square = 0usize;
    let mut commas = 0usize;
    let mut saw_any = false;
    let mut prev_dash = false;
    for (steps, t) in code[open..].iter().enumerate() {
        if steps > 256 {
            return None;
        }
        let was_dash = prev_dash;
        prev_dash = t.kind == TokKind::Punct('-');
        match t.kind {
            TokKind::Punct('<') => angle += 1,
            // A `>` preceded by `-` is a return arrow (`fn() -> V`
            // inside the generics), not a closer.
            TokKind::Punct('>') if !was_dash => {
                angle -= 1;
                if angle == 0 {
                    return Some(if saw_any { commas + 1 } else { 0 });
                }
            }
            TokKind::Punct('(') => round += 1,
            TokKind::Punct(')') => round = round.saturating_sub(1),
            TokKind::Punct('[') => square += 1,
            TokKind::Punct(']') => square = square.saturating_sub(1),
            TokKind::Punct(',') if angle == 1 && round == 0 && square == 0 => commas += 1,
            TokKind::Punct(';') => return None, // statement boundary: not a generic
            _ => saw_any = true,
        }
    }
    None
}

/// D1: default-hasher `HashMap` / `HashSet`.
fn d1_map_order(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    let code = ctx.code;
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        if ctx.regions.in_use.get(i).copied().unwrap_or(false) || ctx.is_test_line(t.line) {
            continue;
        }
        let hasher_args_needed = if t.text == "HashMap" { 3 } else { 2 };
        let fire = |out: &mut Vec<Violation>, what: &str| {
            out.push(ctx.violation(
                t.line,
                0,
                format!(
                    "default-hasher `{}` {what}: `RandomState` iteration order varies per \
                     run; use `AddrHashBuilder`/`AddrMap`, a BTree collection, or prove \
                     sorted iteration in a waiver",
                    t.text
                ),
            ));
        };
        match code.get(i + 1).map(|n| n.kind) {
            Some(TokKind::Punct('<')) => {
                if let Some(args) = generic_arg_count(code, i + 1) {
                    if args > 0 && args < hasher_args_needed {
                        fire(out, "type without an explicit hasher parameter");
                    }
                }
            }
            Some(TokKind::Punct(':'))
                if code.get(i + 2).map(|n| n.kind) == Some(TokKind::Punct(':')) =>
            {
                match code.get(i + 3) {
                    // Turbofish: `HashMap::<K, V>::new()`.
                    Some(n) if n.kind == TokKind::Punct('<') => {
                        if let Some(args) = generic_arg_count(code, i + 3) {
                            if args > 0 && args < hasher_args_needed {
                                fire(out, "turbofish without an explicit hasher parameter");
                            }
                        }
                    }
                    // `new` / `with_capacity` / `from` exist only for
                    // S = RandomState; `default` / `with_hasher` /
                    // `with_capacity_and_hasher` are hasher-generic.
                    Some(n)
                        if n.kind == TokKind::Ident
                            && matches!(n.text, "new" | "with_capacity" | "from") =>
                    {
                        fire(out, "constructor (defined only for `RandomState`)");
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
}

/// D2: wall-clock reads.
fn d2_wall_clock(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    let code = ctx.code;
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "Instant"
            && code.get(i + 1).is_some_and(|n| n.kind == TokKind::Punct(':'))
            && code.get(i + 2).is_some_and(|n| n.kind == TokKind::Punct(':'))
            && code.get(i + 3).is_some_and(|n| n.kind == TokKind::Ident && n.text == "now")
        {
            out.push(
                ctx.violation(
                    t.line,
                    1,
                    "`Instant::now()` reads the wall clock: engine results must be a pure \
                 function of the seed (only `crates/bench` may time things)"
                        .to_string(),
                ),
            );
        }
        if t.text == "SystemTime" && !ctx.regions.in_use.get(i).copied().unwrap_or(false) {
            out.push(
                ctx.violation(
                    t.line,
                    1,
                    "`SystemTime` is wall-clock state: engine results must be a pure function \
                 of the seed (only `crates/bench` may time things)"
                        .to_string(),
                ),
            );
        }
    }
}

/// Identifiers that summon ambient entropy.
const ENTROPY_IDENTS: [&str; 7] =
    ["thread_rng", "ThreadRng", "from_entropy", "from_os_rng", "OsRng", "getrandom", "RandomState"];

/// D3: ambient entropy.
fn d3_entropy(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    for t in ctx.code {
        if t.kind == TokKind::Ident && ENTROPY_IDENTS.contains(&t.text) {
            out.push(ctx.violation(
                t.line,
                2,
                format!(
                    "`{}` draws ambient entropy: every random draw must derive from the \
                     seeded `support/rand` chain so runs are reproducible",
                    t.text
                ),
            ));
        }
    }
}

/// D4: bare `unwrap()` / `expect("")` in non-test engine code.
fn d4_bare_unwrap(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    let code = ctx.code;
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident || ctx.is_test_line(t.line) {
            continue;
        }
        let preceded_by_dot = i > 0 && code[i - 1].kind == TokKind::Punct('.');
        if !preceded_by_dot {
            continue;
        }
        if t.text == "unwrap"
            && code.get(i + 1).is_some_and(|n| n.kind == TokKind::Punct('('))
            && code.get(i + 2).is_some_and(|n| n.kind == TokKind::Punct(')'))
        {
            out.push(
                ctx.violation(
                    t.line,
                    3,
                    "bare `unwrap()`: a panic here reaches the quarantine report with no \
                 context — use `expect(\"<which invariant, which unit>\")` or handle the \
                 `None`/`Err`"
                        .to_string(),
                ),
            );
        }
        if t.text == "expect"
            && code.get(i + 1).is_some_and(|n| n.kind == TokKind::Punct('('))
            && code.get(i + 2).is_some_and(|n| {
                n.kind == TokKind::Str && matches!(n.text, "\"\"" | "r\"\"" | "b\"\"")
            })
        {
            out.push(
                ctx.violation(
                    t.line,
                    3,
                    "`expect(\"\")` carries no more context than `unwrap()`: name the \
                 invariant that failed"
                        .to_string(),
                ),
            );
        }
    }
}

/// D5: `unsafe` requires a `SAFETY:` comment nearby.
fn d5_unsafe_block(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    for t in ctx.code {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        let documented = ctx.comments.iter().any(|c| {
            c.line + 3 >= t.line && c.line <= t.line && {
                let lower = c.text.to_ascii_lowercase();
                lower.contains("safety")
            }
        });
        if !documented {
            out.push(
                ctx.violation(
                    t.line,
                    4,
                    "`unsafe` without a `// SAFETY:` comment in the three preceding lines: \
                 every unsafe block must state the invariant that makes it sound"
                        .to_string(),
                ),
            );
        }
    }
}

/// Snake-case segments that mark an identifier as float-suggesting
/// for D6. Matched segment-exact (`forwarding_loop_prob` fires,
/// `probes_sent` and `strategy` do not).
const FLOATISH: [&str; 10] =
    ["prob", "probability", "alpha", "secs", "mean", "pct", "rate", "frac", "ratio", "float"];

fn is_floatish_ident(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower.split('_').any(|seg| FLOATISH.contains(&seg))
}

/// Scan a format-string literal for lossy float formatting. Returns a
/// reason when one is found.
fn lossy_fmt_spec(fmt: &str) -> Option<String> {
    let inner = fmt.trim_start_matches(['r', 'b', '#']).trim_matches(['"', '#']);
    let bytes = inner.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != b'{' {
            i += 1;
            continue;
        }
        if bytes.get(i + 1) == Some(&b'{') {
            i += 2; // escaped brace
            continue;
        }
        let end = match inner[i..].find('}') {
            Some(off) => i + off,
            None => break,
        };
        let body = &inner[i + 1..end];
        let (name, spec) = match body.split_once(':') {
            Some((n, s)) => (n, s),
            None => (body, ""),
        };
        if spec.contains('.') || spec.ends_with('e') || spec.ends_with('E') {
            return Some(format!(
                "format spec `{{{body}}}` is precision/exponent float formatting"
            ));
        }
        if !name.is_empty()
            && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            && is_floatish_ident(name)
            && !spec.contains('x')
            && !spec.contains('X')
        {
            return Some(format!(
                "inline capture `{{{body}}}` formats a float-suggesting value directly"
            ));
        }
        i = end + 1;
    }
    None
}

/// D6: floats in snapshot text must go through the bit-pattern helpers.
///
/// Heuristic, by design: a line-level scanner cannot type-check, so it
/// flags (a) precision/exponent format specs, and (b) write-macro
/// arguments whose identifiers *look* like floats (`prob`, `secs`,
/// `mean`, ...) and are not routed through `to_bits`. False positives
/// carry a waiver escape like every other rule.
fn d6_float_format(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    let code = ctx.code;
    let mut i = 0usize;
    while i < code.len() {
        let t = &code[i];
        let is_write_macro = t.kind == TokKind::Ident
            && matches!(t.text, "write" | "writeln" | "format")
            && code.get(i + 1).is_some_and(|n| n.kind == TokKind::Punct('!'))
            && code.get(i + 2).is_some_and(|n| n.kind == TokKind::Punct('('));
        if !is_write_macro || !ctx.is_snapshot_line(t.line) || ctx.is_test_line(t.line) {
            i += 1;
            continue;
        }
        // Extent of the macro call.
        let open = i + 2;
        let mut depth = 0usize;
        let mut close = open;
        for (j, tok) in code.iter().enumerate().skip(open) {
            match tok.kind {
                TokKind::Punct('(') => depth += 1,
                TokKind::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        close = j;
                        break;
                    }
                }
                _ => {}
            }
        }
        // Format string: first string literal in the call.
        let fmt_idx =
            code[open..=close].iter().position(|t| t.kind == TokKind::Str).map(|off| open + off);
        if let Some(fi) = fmt_idx {
            if let Some(reason) = lossy_fmt_spec(code[fi].text) {
                out.push(ctx.violation(
                    code[fi].line,
                    5,
                    format!(
                        "{reason}; snapshot floats must be written as `{{:016x}}` of \
                         `f64::to_bits` so re-serialization is byte-exact"
                    ),
                ));
            }
            // Positional arguments after the format string.
            let mut arg: Vec<usize> = Vec::new();
            let mut depth = 0usize;
            let flush = |arg: &mut Vec<usize>, out: &mut Vec<Violation>| {
                let has_to_bits = arg
                    .iter()
                    .any(|&k| code[k].kind == TokKind::Ident && code[k].text == "to_bits");
                if has_to_bits {
                    arg.clear();
                    return;
                }
                let floatish = arg.iter().find(|&&k| {
                    let t = &code[k];
                    if t.kind != TokKind::Ident {
                        return false;
                    }
                    if t.text == "f64" || t.text == "f32" {
                        // Bare `f64` idents only count as a cast target
                        // (`x as f64` makes the argument a float).
                        return k > 0
                            && code[k - 1].kind == TokKind::Ident
                            && code[k - 1].text == "as";
                    }
                    is_floatish_ident(t.text)
                });
                if let Some(&k) = floatish {
                    out.push(ctx.violation(
                        code[k].line,
                        5,
                        format!(
                            "`{}` looks like a float written into snapshot text via `{{}}` \
                             formatting; route it through `f64::to_bits` + `{{:016x}}` (or \
                             waive with the reason it cannot be a float)",
                            code[k].text
                        ),
                    ));
                }
                arg.clear();
            };
            for (j, tok) in code.iter().enumerate().take(close).skip(fi + 1) {
                match tok.kind {
                    TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => {
                        depth += 1;
                        arg.push(j);
                    }
                    TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                        depth = depth.saturating_sub(1);
                        arg.push(j);
                    }
                    TokKind::Punct(',') if depth == 0 => flush(&mut arg, out),
                    _ => arg.push(j),
                }
            }
            flush(&mut arg, out);
        }
        i = close + 1;
    }
}
