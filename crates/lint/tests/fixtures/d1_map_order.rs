// Known-bad fixture for D1/map-order. Expected D1 lines: 7, 10, 11, 13, 18.
// (Line 13 also fires D3: naming `RandomState` at all is ambient entropy.)
use std::collections::{HashMap, HashSet};

pub struct State {
    // Type annotation without a hasher parameter.
    pub by_addr: HashMap<u32, u64>,
}

pub fn build() -> HashSet<u32> {
    let mut s = HashSet::new();
    s.insert(1);
    let _m: HashMap<u32, u64, std::hash::RandomState> = HashMap::with_capacity(4);
    s
}

pub fn turbofish() -> usize {
    HashMap::<u32, u64>::default().len()
}

// Explicit hasher parameters are fine (line below must NOT fire).
pub type Keyed<V> = HashMap<u32, V, std::hash::BuildHasherDefault<std::hash::DefaultHasher>>;
