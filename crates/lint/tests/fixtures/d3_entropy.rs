// Known-bad fixture for D3/entropy. Expected D3 lines: 4, 9.
pub fn jitter() -> u64 {
    // Ambient entropy: two runs of the same seed now differ.
    let mut rng = rand::thread_rng();
    rng.next_u64()
}

pub fn reseed() -> u64 {
    let rng = SmallRng::from_entropy();
    rng.next_u64()
}
