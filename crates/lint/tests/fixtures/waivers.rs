// Waiver fixtures: suppression works, but only with a written reason.
use std::collections::HashMap;

pub struct Waived {
    // ptlint: allow(map-order): keys are sorted into a Vec before any digest sees them
    pub standalone: HashMap<u32, u64>,
    pub trailing: HashMap<u32, u64>, // ptlint: allow(map-order): iterated only for len()
}

pub struct NotWaived {
    // An empty reason must not suppress (expect D1 *and* W0 here).
    // ptlint: allow(map-order):
    pub empty_reason: HashMap<u32, u64>,
    // An unknown rule name must not suppress (expect D1 and W0).
    // ptlint: allow(no-such-rule): reason text
    pub unknown_rule: HashMap<u32, u64>,
    // A waiver for a different rule must not suppress this D1.
    // ptlint: allow(wall-clock): wrong rule entirely
    pub wrong_rule: HashMap<u32, u64>,
}
