// Known-bad fixture for D4/bare-unwrap. Expected D4 lines: 4, 9.
// Test code at the bottom is exempt.
pub fn next_hop(route: Option<u32>) -> u32 {
    route.unwrap()
}

pub fn parse(text: &str) -> u32 {
    // An empty expect message is no better than unwrap.
    text.parse().expect("")
}

pub fn named(route: Option<u32>) -> u32 {
    // A named panic is what the rule demands (must NOT fire).
    route.expect("destination must have a next hop after route install")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
