// Known-bad fixture for D5/unsafe-block. Expected D5 line: 4.
pub fn read_first(bytes: &[u8]) -> u8 {
    debug_assert!(!bytes.is_empty());
    unsafe { *bytes.get_unchecked(0) }
}

pub fn read_first_documented(bytes: &[u8]) -> u8 {
    debug_assert!(!bytes.is_empty());
    // SAFETY: the debug_assert above plus every caller's bounds check
    // guarantee the slice is non-empty (must NOT fire).
    unsafe { *bytes.get_unchecked(0) }
}
