// Known-bad fixture for D6/float-format. Expected D6 lines: 6, 8, 11.
// The function name marks this as snapshot-writer code.
pub fn snapshot_write(out: &mut String, loss_rate: f64, count: u64) {
    use std::fmt::Write;
    // Floats straight into snapshot text: lossy, not byte-canonical.
    let _ = writeln!(out, "rate {}", loss_rate);
    // Precision formatting is float formatting even when the name hides it.
    let _ = writeln!(out, "count {:.2}", count);
    // Casting to f64 inside the write is the same mistake.
    let ratio = count;
    let _ = writeln!(out, "share {}", ratio as f64);
    // The bit-pattern helper path is the sanctioned one (must NOT fire).
    let _ = writeln!(out, "rate {:016x}", loss_rate.to_bits());
}

pub fn render(out: &mut String, loss_rate: f64) {
    use std::fmt::Write;
    // Outside snapshot-writer code, display formatting is fine.
    let _ = writeln!(out, "rate {loss_rate}");
}
