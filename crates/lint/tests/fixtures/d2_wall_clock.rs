// Known-bad fixture for D2/wall-clock. Expected D2 lines: 7, 11, 12.
use std::time::Instant;

pub fn trace_one() -> u64 {
    // Timing the engine from inside the engine makes results
    // machine-dependent.
    let started = Instant::now();
    started.elapsed().as_nanos() as u64
}

pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
