//! Fixture-driven self-tests: every rule fires on its known-bad
//! snippet at the right lines, waivers suppress only with a written
//! reason, and — the gate itself — the real workspace is clean while a
//! seeded violation in engine code fails.

use std::path::Path;

use pt_lint::rules::RuleSet;
use pt_lint::{lint_source, lint_workspace, rules_for_path};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} must be readable: {e}", path.display()))
}

/// Lines at which `rule` fires when linting `name` as engine code.
fn lines_for(name: &str, rule: &str) -> Vec<u32> {
    let src = fixture(name);
    let (violations, _) = lint_source(&format!("crates/x/src/{name}"), &src, RuleSet::engine());
    violations.iter().filter(|v| v.rule == rule).map(|v| v.line).collect()
}

#[test]
fn d1_fires_on_default_hasher_maps_at_the_right_lines() {
    assert_eq!(lines_for("d1_map_order.rs", "map-order"), vec![7, 10, 11, 13, 18]);
}

#[test]
fn d2_fires_on_wall_clock_reads() {
    assert_eq!(lines_for("d2_wall_clock.rs", "wall-clock"), vec![7, 11, 12]);
}

#[test]
fn d3_fires_on_ambient_entropy() {
    assert_eq!(lines_for("d3_entropy.rs", "entropy"), vec![4, 9]);
}

#[test]
fn d4_fires_on_bare_unwrap_but_not_in_tests_or_named_expects() {
    assert_eq!(lines_for("d4_bare_unwrap.rs", "bare-unwrap"), vec![4, 9]);
}

#[test]
fn d5_fires_on_undocumented_unsafe_only() {
    assert_eq!(lines_for("d5_unsafe_block.rs", "unsafe-block"), vec![4]);
}

#[test]
fn d6_fires_on_float_formatting_in_snapshot_writers_only() {
    assert_eq!(lines_for("d6_float_format.rs", "float-format"), vec![6, 8, 11]);
}

#[test]
fn d6_arms_for_the_whole_file_when_it_is_named_snapshot_rs() {
    let src = "pub fn emit(out: &mut String, mean: f64) {\n    use std::fmt::Write;\n    \
               let _ = writeln!(out, \"m {}\", mean);\n}\n";
    let (in_snapshot, _) = lint_source("crates/x/src/snapshot.rs", src, RuleSet::engine());
    assert_eq!(in_snapshot.iter().filter(|v| v.rule == "float-format").count(), 1);
    let (elsewhere, _) = lint_source("crates/x/src/report.rs", src, RuleSet::engine());
    assert_eq!(elsewhere.iter().filter(|v| v.rule == "float-format").count(), 0);
}

#[test]
fn waivers_suppress_with_reason_and_only_with_reason() {
    let src = fixture("waivers.rs");
    let (violations, used) = lint_source("crates/x/src/waivers.rs", &src, RuleSet::engine());
    let d1: Vec<u32> =
        violations.iter().filter(|v| v.rule == "map-order").map(|v| v.line).collect();
    let w0: Vec<u32> = violations.iter().filter(|v| v.code == "W0").map(|v| v.line).collect();
    // Waived lines 6 and 7 are clean; unwaived/malformed ones are not.
    assert_eq!(d1, vec![13, 16, 19]);
    // The empty reason and the unknown rule are violations themselves.
    assert_eq!(w0, vec![12, 15]);
    assert_eq!(used, 2, "both well-formed waivers must register as used");
}

#[test]
fn rules_match_the_path_policy() {
    assert!(rules_for_path("crates/netsim/src/sim.rs").expect("engine file in scope").map_order);
    assert!(rules_for_path("src/lib.rs").expect("umbrella crate in scope").bare_unwrap);
    let bench = rules_for_path("crates/bench/benches/wire.rs").expect("bench in scope");
    assert!(!bench.wall_clock && bench.entropy && bench.unsafe_block);
    let tests = rules_for_path("tests/determinism.rs").expect("tests in scope");
    assert!(tests.wall_clock && !tests.map_order && !tests.bare_unwrap);
    assert!(rules_for_path("support/rand/src/lib.rs").is_none(), "support is out of scope");
    assert!(rules_for_path("target/debug/build/x.rs").is_none());
    assert!(
        rules_for_path("crates/lint/tests/fixtures/d1_map_order.rs").is_none(),
        "known-bad fixtures must not fail the workspace run"
    );
}

/// The acceptance gate, as a test: the actual workspace passes its own
/// lint. This is the same scan CI's `lint` job runs.
#[test]
fn the_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf();
    assert!(root.join("Cargo.toml").exists(), "workspace root must hold Cargo.toml");
    let outcome = lint_workspace(&root);
    let rendered: String = outcome.violations.iter().map(pt_lint::render).collect();
    assert!(outcome.violations.is_empty(), "workspace must be lint-clean:\n{rendered}");
    assert!(outcome.files_scanned > 50, "the scan must actually cover the workspace");
}

/// Seeding any single D1–D6 violation into a real engine source must
/// make the lint fail — the regression the tool exists to catch.
#[test]
fn seeding_each_rule_into_real_engine_code_fails() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let target = root.join("crates/netsim/src/routing.rs");
    let clean = std::fs::read_to_string(&target).expect("engine source must be readable");
    let seeds: [(&str, &str); 6] = [
        ("map-order", "pub fn seeded() -> std::collections::HashMap<u32, u32> { todo!() }"),
        ("wall-clock", "pub fn seeded() -> u128 { Instant::now().elapsed().as_nanos() }"),
        ("entropy", "pub fn seeded() -> u64 { rand::thread_rng().next_u64() }"),
        ("bare-unwrap", "pub fn seeded(x: Option<u32>) -> u32 { x.unwrap() }"),
        ("unsafe-block", "pub fn seeded(b: &[u8]) -> u8 { unsafe { *b.get_unchecked(0) } }"),
        (
            "float-format",
            "pub fn snapshot_write(out: &mut String, mean: f64) {\n    use std::fmt::Write;\n    \
             let _ = writeln!(out, \"m {}\", mean);\n}",
        ),
    ];
    let rules = rules_for_path("crates/netsim/src/routing.rs").expect("engine path in scope");
    let (base, _) = lint_source("crates/netsim/src/routing.rs", &clean, rules);
    assert!(base.is_empty(), "the unmodified engine file must be clean");
    for (rule, seed) in seeds {
        let poisoned = format!("{clean}\n{seed}\n");
        let (violations, _) = lint_source("crates/netsim/src/routing.rs", &poisoned, rules);
        assert!(
            violations.iter().any(|v| v.rule == rule),
            "seeded {rule} violation must be caught; got: {violations:?}"
        );
    }
}
