//! Paris traceroute strategies (§2.2): per-probe identifiers chosen so
//! the flow identifier never changes within a trace.

use std::net::Ipv4Addr;

use pt_wire::ipv4::{protocol, Ipv4Header};
use pt_wire::tcp::flags as tcp_flags;
use pt_wire::{IcmpMessage, Packet, TcpSegment, Transport as Wire, UdpDatagram};

use crate::probe::{prefix_u16, prefix_u32, quotation_for, ProbeSpec, ProbeStrategy, StrategyId};

/// Paris traceroute, UDP mode.
///
/// The five-tuple is fixed for the whole trace (the study draws Source
/// and Destination Port uniformly from [10000, 60000], §3). The per-probe
/// identifier is the UDP **Checksum**, pinned by solving for the first
/// two payload octets — outside the four octets load balancers hash, yet
/// inside the eight octets a Time Exceeded quotes.
#[derive(Debug, Clone)]
pub struct ParisUdp {
    /// Fixed source port for the trace.
    pub src_port: u16,
    /// Fixed destination port for the trace.
    pub dst_port: u16,
    /// Payload length (≥ 2; the first word is the checksum compensator).
    pub payload_len: usize,
    /// Base value for the checksum identifier sequence.
    pub base_tag: u16,
}

impl ParisUdp {
    /// A trace with the study's fixed five-tuple.
    pub fn new(src_port: u16, dst_port: u16) -> Self {
        ParisUdp { src_port, dst_port, payload_len: 2, base_tag: 0x8000 }
    }

    /// The checksum identifier for probe `idx` — never zero, because a
    /// zero UDP checksum means "absent".
    fn tag(&self, probe_idx: u64) -> u16 {
        let t = self.base_tag.wrapping_add(probe_idx as u16);
        if t == 0 {
            1
        } else {
            t
        }
    }

    fn untag(&self, checksum: u16) -> u64 {
        u64::from(checksum.wrapping_sub(self.base_tag))
    }
}

impl ProbeStrategy for ParisUdp {
    fn id(&self) -> StrategyId {
        StrategyId::ParisUdp
    }

    fn build_probe_with(
        &mut self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        ttl: u8,
        probe_idx: u64,
        payload: Vec<u8>,
    ) -> Packet {
        let mut ip = Ipv4Header::new(src, dst, protocol::UDP, ttl);
        ip.total_length =
            (pt_wire::ipv4::HEADER_LEN + pt_wire::udp::HEADER_LEN + self.payload_len.max(2)) as u16;
        let udp = UdpDatagram::with_pinned_checksum_in(
            self.src_port,
            self.dst_port,
            self.tag(probe_idx),
            self.payload_len,
            &ip,
            payload,
        );
        Packet::new(ip, Wire::Udp(udp))
    }

    fn build_probe_batch(
        &mut self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        specs: &[ProbeSpec],
        payloads: &mut dyn FnMut() -> Vec<u8>,
        out: &mut Vec<Packet>,
    ) {
        // The pinned-checksum arithmetic sums the pseudo-header (addresses,
        // protocol, UDP length), ports, and length — none of which involve
        // the TTL — so one invariant sum serves the whole window and each
        // probe costs two one's-complement adds instead of a fresh
        // pseudo-header walk. Byte-identical to the unbatched constructor
        // by construction (it is implemented on top of the same solve).
        let template = {
            let mut ip = Ipv4Header::new(src, dst, protocol::UDP, 0);
            ip.total_length = (pt_wire::ipv4::HEADER_LEN
                + pt_wire::udp::HEADER_LEN
                + self.payload_len.max(2)) as u16;
            ip
        };
        let invariant = UdpDatagram::pinned_checksum_invariant(
            self.src_port,
            self.dst_port,
            self.payload_len,
            &template,
        );
        for spec in specs {
            let mut ip = template;
            ip.ttl = spec.ttl;
            let udp = UdpDatagram::with_pinned_checksum_from_invariant(
                invariant,
                self.src_port,
                self.dst_port,
                self.tag(spec.probe_idx),
                self.payload_len,
                payloads(),
            );
            out.push(Packet::new(ip, Wire::Udp(udp)));
        }
    }

    fn match_response(&self, dst: Ipv4Addr, response: &Packet) -> Option<u64> {
        let q = quotation_for(dst, response)?;
        if q.ip.protocol != protocol::UDP {
            return None;
        }
        if prefix_u16(&q.transport_prefix, 0) != self.src_port
            || prefix_u16(&q.transport_prefix, 2) != self.dst_port
        {
            return None;
        }
        // The identifier rides in the quoted Checksum field (octets 6–7).
        Some(self.untag(prefix_u16(&q.transport_prefix, 6)))
    }
}

/// Paris traceroute, ICMP Echo mode.
///
/// Varies the Sequence Number like classic traceroute, but co-varies the
/// Identifier so `Identifier +' Sequence` — and therefore the Checksum in
/// the hashed first four octets — stays constant.
#[derive(Debug, Clone)]
pub struct ParisIcmp {
    /// The constant one's-complement sum `identifier +' seq` of the trace.
    pub tag_sum: u16,
}

impl ParisIcmp {
    /// A trace whose probes share checksum `!tag_sum`.
    pub fn new(tag_sum: u16) -> Self {
        ParisIcmp { tag_sum }
    }
}

impl ProbeStrategy for ParisIcmp {
    fn id(&self) -> StrategyId {
        StrategyId::ParisIcmp
    }

    fn build_probe_with(
        &mut self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        ttl: u8,
        probe_idx: u64,
        payload: Vec<u8>,
    ) -> Packet {
        let ip = Ipv4Header::new(src, dst, protocol::ICMP, ttl);
        let msg = IcmpMessage::echo_probe_paris_in(self.tag_sum, probe_idx as u16, payload);
        Packet::new(ip, Wire::Icmp(msg))
    }

    fn match_response(&self, dst: Ipv4Addr, response: &Packet) -> Option<u64> {
        if let Wire::Icmp(IcmpMessage::EchoReply { identifier, seq, .. }) = &response.transport {
            // The destination echoes both fields; check they belong to our
            // tagged family.
            if response.ip.src == dst
                && pt_wire::checksum::ones_add(*identifier, *seq) == self.tag_sum
            {
                return Some(u64::from(*seq));
            }
            return None;
        }
        let q = quotation_for(dst, response)?;
        if q.ip.protocol != protocol::ICMP || q.transport_prefix[0] != 8 {
            return None;
        }
        let identifier = prefix_u16(&q.transport_prefix, 4);
        let seq = prefix_u16(&q.transport_prefix, 6);
        (pt_wire::checksum::ones_add(identifier, seq) == self.tag_sum).then(|| u64::from(seq))
    }
}

/// Paris traceroute, TCP mode: constant ports (80 by default, emulating
/// web traffic, as tcptraceroute does to traverse firewalls), Sequence
/// Number as the per-probe identifier.
#[derive(Debug, Clone)]
pub struct ParisTcp {
    /// Fixed source port.
    pub src_port: u16,
    /// Fixed destination port (80 to look like the web).
    pub dst_port: u16,
    /// Base for the sequence-number identifier.
    pub base_seq: u32,
}

impl ParisTcp {
    /// Web-emulating defaults.
    pub fn new(src_port: u16) -> Self {
        ParisTcp { src_port, dst_port: 80, base_seq: 0x0100_0000 }
    }
}

impl ProbeStrategy for ParisTcp {
    fn id(&self) -> StrategyId {
        StrategyId::ParisTcp
    }

    fn build_probe_with(
        &mut self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        ttl: u8,
        probe_idx: u64,
        mut payload: Vec<u8>,
    ) -> Packet {
        let ip = Ipv4Header::new(src, dst, protocol::TCP, ttl);
        let mut seg = TcpSegment::syn_probe(
            self.src_port,
            self.dst_port,
            self.base_seq.wrapping_add(probe_idx as u32),
        );
        // SYN probes carry no data; the buffer rides along (cleared) so
        // its allocation rejoins the pool when the probe is consumed.
        payload.clear();
        seg.payload = payload;
        Packet::new(ip, Wire::Tcp(seg))
    }

    fn match_response(&self, dst: Ipv4Addr, response: &Packet) -> Option<u64> {
        // Terminal response: SYN-ACK or RST from the destination, whose
        // Acknowledgment Number is our Sequence + 1.
        if let Wire::Tcp(seg) = &response.transport {
            if response.ip.src == dst
                && seg.src_port == self.dst_port
                && seg.dst_port == self.src_port
                && seg.control & (tcp_flags::SYN | tcp_flags::RST) != 0
            {
                return Some(u64::from(seg.ack.wrapping_sub(1).wrapping_sub(self.base_seq)));
            }
            return None;
        }
        let q = quotation_for(dst, response)?;
        if q.ip.protocol != protocol::TCP {
            return None;
        }
        if prefix_u16(&q.transport_prefix, 0) != self.src_port
            || prefix_u16(&q.transport_prefix, 2) != self.dst_port
        {
            return None;
        }
        // Sequence Number sits in quoted octets 4–7.
        Some(u64::from(prefix_u32(&q.transport_prefix, 4).wrapping_sub(self.base_seq)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_wire::icmp::Quotation;
    use pt_wire::{FlowPolicy, UnreachableCode};

    fn addrs() -> (Ipv4Addr, Ipv4Addr) {
        (Ipv4Addr::new(10, 0, 1, 1), Ipv4Addr::new(192, 0, 2, 9))
    }

    fn time_exceeded_for(probe: &Packet, from: Ipv4Addr) -> Packet {
        let q = Quotation::from_probe(probe.ip, &probe.transport_bytes());
        let ip = Ipv4Header::new(from, probe.ip.src, protocol::ICMP, 250);
        Packet::new(ip, Wire::Icmp(IcmpMessage::TimeExceeded { quotation: q }))
    }

    fn port_unreachable_for(probe: &Packet, from: Ipv4Addr) -> Packet {
        let q = Quotation::from_probe(probe.ip, &probe.transport_bytes());
        let ip = Ipv4Header::new(from, probe.ip.src, protocol::ICMP, 60);
        Packet::new(
            ip,
            Wire::Icmp(IcmpMessage::DestUnreachable { code: UnreachableCode::Port, quotation: q }),
        )
    }

    #[test]
    fn paris_udp_round_trips_probe_identity() {
        let (src, dst) = addrs();
        let mut s = ParisUdp::new(41000, 52000);
        for idx in [0u64, 1, 5, 39] {
            let probe = s.build_probe(src, dst, 5, idx);
            let resp = time_exceeded_for(&probe, Ipv4Addr::new(10, 9, 9, 9));
            assert_eq!(s.match_response(dst, &resp), Some(idx));
            let terminal = port_unreachable_for(&probe, dst);
            assert_eq!(s.match_response(dst, &terminal), Some(idx));
        }
    }

    #[test]
    fn paris_udp_probes_share_one_flow() {
        let (src, dst) = addrs();
        let mut s = ParisUdp::new(41000, 52000);
        let a = s.build_probe(src, dst, 5, 0);
        for idx in 1..40 {
            let b = s.build_probe(src, dst, 5 + (idx % 30) as u8, idx);
            for policy in FlowPolicy::ALL {
                assert!(policy.same_flow(&a, &b), "probe {idx} split under {policy:?}");
            }
        }
    }

    #[test]
    fn paris_udp_probes_are_valid_packets() {
        let (src, dst) = addrs();
        let mut s = ParisUdp::new(41000, 52000);
        for idx in 0..40 {
            let probe = s.build_probe(src, dst, 1 + (idx % 39) as u8, idx);
            // Emit + parse must verify all checksums.
            let parsed = Packet::parse(&probe.emit()).expect("valid probe");
            match parsed.transport {
                Wire::Udp(u) => assert_eq!(u.checksum, s.tag(idx)),
                other => panic!("wrong transport {other:?}"),
            }
        }
    }

    #[test]
    fn paris_icmp_round_trips_probe_identity() {
        let (src, dst) = addrs();
        let mut s = ParisIcmp::new(0xb00b);
        for idx in [0u64, 2, 17] {
            let probe = s.build_probe(src, dst, 5, idx);
            let resp = time_exceeded_for(&probe, Ipv4Addr::new(10, 9, 9, 9));
            assert_eq!(s.match_response(dst, &resp), Some(idx));
        }
        // Echo Reply from the destination also matches.
        let probe = s.build_probe(src, dst, 30, 4);
        let (ident, seq) = match &probe.transport {
            Wire::Icmp(IcmpMessage::EchoRequest { identifier, seq, .. }) => (*identifier, *seq),
            other => panic!("wrong transport {other:?}"),
        };
        let reply = Packet::new(
            Ipv4Header::new(dst, src, protocol::ICMP, 60),
            Wire::Icmp(IcmpMessage::EchoReply { identifier: ident, seq, payload: vec![] }),
        );
        assert_eq!(s.match_response(dst, &reply), Some(4));
    }

    #[test]
    fn paris_icmp_probes_share_one_flow() {
        let (src, dst) = addrs();
        let mut s = ParisIcmp::new(0x1234);
        let a = s.build_probe(src, dst, 5, 0);
        for idx in 1..40 {
            let b = s.build_probe(src, dst, 9, idx);
            for policy in FlowPolicy::ALL {
                assert!(policy.same_flow(&a, &b), "probe {idx} split under {policy:?}");
            }
        }
    }

    #[test]
    fn paris_icmp_rejects_other_tag_families() {
        let (src, dst) = addrs();
        let mut mine = ParisIcmp::new(0x1111);
        let mut other = ParisIcmp::new(0x2222);
        let probe = other.build_probe(src, dst, 5, 3);
        let resp = time_exceeded_for(&probe, Ipv4Addr::new(10, 9, 9, 9));
        assert_eq!(mine.match_response(dst, &resp), None);
        let my_probe = mine.build_probe(src, dst, 5, 3);
        let resp = time_exceeded_for(&my_probe, Ipv4Addr::new(10, 9, 9, 9));
        assert_eq!(mine.match_response(dst, &resp), Some(3));
    }

    #[test]
    fn paris_tcp_round_trips_probe_identity() {
        let (src, dst) = addrs();
        let mut s = ParisTcp::new(55555);
        for idx in [0u64, 1, 38] {
            let probe = s.build_probe(src, dst, 5, idx);
            let resp = time_exceeded_for(&probe, Ipv4Addr::new(10, 9, 9, 9));
            assert_eq!(s.match_response(dst, &resp), Some(idx));
        }
        // Terminal SYN-ACK from the destination.
        let probe = s.build_probe(src, dst, 30, 7);
        let seq = match &probe.transport {
            Wire::Tcp(t) => t.seq,
            other => panic!("wrong transport {other:?}"),
        };
        let mut synack = TcpSegment::syn_probe(80, 55555, 0);
        synack.ack = seq.wrapping_add(1);
        synack.control = tcp_flags::SYN | tcp_flags::ACK;
        let reply = Packet::new(Ipv4Header::new(dst, src, protocol::TCP, 60), Wire::Tcp(synack));
        assert_eq!(s.match_response(dst, &reply), Some(7));
    }

    #[test]
    fn paris_tcp_probes_share_one_flow() {
        let (src, dst) = addrs();
        let mut s = ParisTcp::new(55555);
        let a = s.build_probe(src, dst, 5, 0);
        let b = s.build_probe(src, dst, 20, 39);
        for policy in FlowPolicy::ALL {
            assert!(policy.same_flow(&a, &b), "{policy:?}");
        }
    }
}
