//! # pt-core — the paper's contribution: traceroute engines
//!
//! Implements the probing strategies the paper compares:
//!
//! | Strategy | Per-probe identifier | Flow identifier |
//! |---|---|---|
//! | [`ClassicUdp`] | Destination Port (33435 + n) | **varies** — the bug |
//! | [`ClassicIcmp`] | Sequence Number (checksum drifts) | **varies** — the bug |
//! | [`ParisUdp`] | Checksum (payload-compensated) | constant |
//! | [`ParisIcmp`] | Sequence Number + Identifier (checksum pinned) | constant |
//! | [`ParisTcp`] | Sequence Number | constant |
//! | [`TcpTraceroute`] | IP Identification | constant (Toren's tool) |
//!
//! plus the sans-IO [`trace`] driver that turns a strategy and a
//! [`Transport`] into a [`MeasuredRoute`]: one probe per hop by default
//! (as in the paper's study, §3), 2-second timeouts, halting on
//! Destination Unreachable, at 39 hops, or after exactly eight
//! consecutive stars. The driver keeps up to [`TraceConfig::window`]
//! probes in flight at once (`tracer` module docs) — the virtual-time
//! analogue of the paper's 32 parallel tracing processes — and
//! `window = 1` reproduces the strictly sequential discipline exactly.
//!
//! The driver also records the three pieces of side information Paris
//! traceroute adds (§2.2): the **probe TTL** (from the quoted IP header),
//! the **response TTL**, and the **IP ID** of the response — the inputs
//! to the anomaly classifiers in `pt-anomaly`.

#![warn(missing_docs)]

pub mod adaptive;
pub mod classic;
pub mod paris;
pub mod probe;
pub mod render;
pub mod route;
pub mod tcptrace;
pub mod tracer;

pub use adaptive::{trace_adaptive, AdaptiveTraceConfig};
pub use classic::{ClassicIcmp, ClassicUdp};
pub use paris::{ParisIcmp, ParisTcp, ParisUdp};
pub use probe::{prefix_u16, prefix_u32, quotation_for, ProbeSpec, ProbeStrategy, StrategyId};
pub use render::{render, RenderOptions};
pub use route::{HaltReason, Hop, MeasuredRoute, ProbeResult, ResponseKind};
pub use tcptrace::TcpTraceroute;
pub use tracer::{trace, trace_with, TraceConfig, TraceScratch, Transport};
