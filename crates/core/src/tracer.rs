//! The sans-IO traceroute driver.
//!
//! Reproduces the study's probing discipline (§3): one probe per hop
//! (configurable to classic traceroute's three), up to two seconds'
//! wait per probe, immediate halt on any Destination Unreachable or
//! terminal reply, a ceiling of 39 hops, and abandonment after eight
//! consecutive unanswered hops (exactly eight: the hop that brings the
//! consecutive-star count to [`TraceConfig::max_consecutive_stars`] is
//! the last one probed).
//!
//! # Windowed probing
//!
//! [`trace_with`] keeps up to [`TraceConfig::window`] probes
//! outstanding at once — the virtual-time analogue of the paper's 32
//! parallel tracing processes, applied inside one trace. Probes are
//! *launched* in strict `(TTL, slot)` order but *retired* by the
//! response/deadline that actually resolves them; every response is
//! attributed to its probe through the outstanding-probe registry (by
//! the probe id the strategy recovers from the response), never to
//! "whatever was sent last", so reordered and late replies land in the
//! right hop record. Halting decisions — terminal reply, star limit —
//! are taken only when a hop *finalizes*, and hops finalize in TTL
//! order; speculative probes past a terminal reply or the star limit
//! are discarded along with their hop records, so the measured route a
//! windowed trace reports is the same one a sequential trace measures
//! (identical on deterministic lossless paths, where `window` only
//! changes how much virtual time the trace takes: roughly ×`window`
//! less).
//!
//! `window = 1` reproduces the strictly sequential send→wait→timeout
//! discipline: same probes at the same virtual times, same route —
//! byte-for-byte at `probes_per_hop = 1` (the study's setting, pinned
//! by digest comparison against the pre-windowed driver). With more
//! probes per hop one *deliberate* divergence remains at every window:
//! the hop a terminal reply lands in now receives its full probe
//! complement (classic traceroute behavior) instead of abandoning its
//! remaining slots as phantom stars.
//!
//! The driver is allocation-free in steady state: probe payloads come
//! from the transport's recycling pool ([`Transport::grab_payload`]),
//! and the per-trace bookkeeping (hop records, the outstanding-probe
//! registry, per-hop progress counters) lives in a caller-held
//! [`TraceScratch`] that [`trace_with`] reuses and
//! [`TraceScratch::recycle`] refills from finished routes. [`trace`]
//! remains the convenience form that allocates fresh scratch per call.

use std::net::Ipv4Addr;

use pt_netsim::time::{SimDuration, SimTime};
use pt_netsim::SimTransport;
use pt_wire::{IcmpMessage, Packet, Transport as Wire};

use crate::probe::{ProbeSpec, ProbeStrategy};
use crate::route::{HaltReason, Hop, MeasuredRoute, ProbeResult, ResponseKind};

/// The packet I/O a tracer needs. `pt-netsim`'s [`SimTransport`]
/// implements it over virtual time; a raw-socket transport would
/// implement it over wall-clock time.
pub trait Transport {
    /// Current time.
    fn now(&self) -> SimTime;
    /// The local address probes carry as their source.
    fn source_addr(&self) -> Ipv4Addr;
    /// Transmit a probe.
    fn send(&mut self, packet: Packet);
    /// Block until the next inbound packet or `deadline`, whichever is
    /// first. `None` means the deadline passed silently.
    fn recv_until(&mut self, deadline: SimTime) -> Option<(SimTime, Packet)>;
    /// Non-blocking poll: the next inbound packet that has *already*
    /// arrived, without advancing time. The windowed driver drains this
    /// before computing the earliest outstanding deadline, so transports
    /// that buffer deliveries (the simulator's inbox lanes) serve
    /// several in-flight probes per wait. The default (`None`) is
    /// always correct — [`Transport::recv_until`] re-polls buffered
    /// deliveries first — just less direct.
    fn try_recv(&mut self) -> Option<(SimTime, Packet)> {
        None
    }
    /// Hand back a packet the tracer has finished with, so the transport
    /// can recycle its buffers. The tracer calls this for every packet
    /// `recv_until` produced; transports without a recycling story just
    /// drop it.
    fn release(&mut self, packet: Packet) {
        let _ = packet;
    }
    /// A cleared payload buffer for the next probe — the other half of
    /// the [`Transport::release`] recycling loop. Probe builders thread
    /// it into the packet, the network consumes the packet, and the
    /// buffer's allocation eventually comes back here. Transports
    /// without a pool hand out fresh (empty, unallocated) buffers.
    fn grab_payload(&mut self) -> Vec<u8> {
        Vec::new()
    }
}

impl Transport for SimTransport {
    fn now(&self) -> SimTime {
        SimTransport::now(self)
    }

    fn source_addr(&self) -> Ipv4Addr {
        SimTransport::source_addr(self)
    }

    fn send(&mut self, packet: Packet) {
        SimTransport::send(self, packet)
    }

    fn recv_until(&mut self, deadline: SimTime) -> Option<(SimTime, Packet)> {
        SimTransport::recv_until(self, deadline)
    }

    fn try_recv(&mut self) -> Option<(SimTime, Packet)> {
        SimTransport::try_recv(self)
    }

    fn release(&mut self, packet: Packet) {
        // Responses go back into the simulator's payload-buffer pool, so
        // a long trace loop reuses the same few buffers end to end.
        self.simulator_mut().recycle(packet);
    }

    fn grab_payload(&mut self) -> Vec<u8> {
        self.simulator_mut().grab_payload()
    }
}

/// Traceroute parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// First TTL probed. The study uses 2 to skip the university network.
    pub min_ttl: u8,
    /// Last TTL probed ("no trace extends further than 39 hops", §3).
    pub max_ttl: u8,
    /// Probes per hop: 1 in the study, 3 in classic traceroute defaults.
    pub probes_per_hop: u8,
    /// Per-probe response timeout (2 s in the study).
    pub timeout: SimDuration,
    /// Abandon after this many consecutive all-star hops (8 in the
    /// study): the hop that brings the count to this value is the last
    /// one probed.
    pub max_consecutive_stars: u8,
    /// Probes kept in flight at once. `1` is the study's strictly
    /// sequential per-process discipline (send, wait, time out, next);
    /// the default `3` pipelines the TTL ladder — the virtual-time
    /// analogue of the paper's 32 parallel tracing processes — and cuts
    /// virtual probing time roughly ×`window` while measuring the same
    /// route on deterministic lossless paths (see the module docs).
    pub window: u8,
    /// Watchdog: hard ceiling on probes one trace may send (`0` =
    /// unlimited). When it trips, the send gate closes, in-flight
    /// probes drain normally, and the route halts with
    /// [`HaltReason::Budget`] unless an organic halt (terminal reply,
    /// star limit) lands first while draining.
    pub probe_budget: u32,
    /// Watchdog: ceiling on the virtual time one trace may consume
    /// ([`SimDuration::ZERO`] = unlimited), measured from the trace's
    /// first transport observation. Checked before each send, so the
    /// trace never launches a probe past the ceiling; same wind-down
    /// and [`HaltReason::Budget`] semantics as
    /// [`TraceConfig::probe_budget`]. Virtual time makes the cut
    /// deterministic: the same trace degrades at the same probe on
    /// every run and every worker count.
    pub time_budget: SimDuration,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            min_ttl: 1,
            max_ttl: 39,
            probes_per_hop: 1,
            timeout: SimDuration::from_secs(2),
            max_consecutive_stars: 8,
            window: 3,
            probe_budget: 0,
            time_budget: SimDuration::ZERO,
        }
    }
}

impl TraceConfig {
    /// Exactly the study's parameters (§3), including `min_ttl = 2`.
    /// Keeps the windowed default; combine with
    /// [`TraceConfig::sequential`] for the per-process discipline.
    pub fn paper() -> Self {
        TraceConfig { min_ttl: 2, ..Self::default() }
    }

    /// Classic traceroute's three-probes-per-hop default — the mode that
    /// makes diamonds visible within a single trace.
    pub fn three_probes() -> Self {
        TraceConfig { probes_per_hop: 3, ..Self::default() }
    }

    /// This configuration with `window = 1`: the strictly sequential
    /// send→wait→timeout loop (byte-identical to the pre-windowed
    /// driver at one probe per hop; see the module docs for the
    /// terminal-hop caveat under `probes_per_hop > 1`).
    pub fn sequential(self) -> Self {
        TraceConfig { window: 1, ..self }
    }
}

/// Classify a response packet and extract the Paris side information.
pub(crate) fn classify(resp: &Packet) -> (ResponseKind, Option<u8>) {
    match &resp.transport {
        Wire::Icmp(IcmpMessage::TimeExceeded { quotation }) => {
            (ResponseKind::TimeExceeded, Some(quotation.ip.ttl))
        }
        Wire::Icmp(IcmpMessage::DestUnreachable { code, quotation }) => {
            (ResponseKind::Unreachable(*code), Some(quotation.ip.ttl))
        }
        Wire::Icmp(_) => (ResponseKind::EchoReply, None),
        Wire::Tcp(_) => (ResponseKind::TcpReply, None),
        Wire::Udp(_) => (ResponseKind::TcpReply, None), // not produced by responders
    }
}

#[derive(Debug, Clone, Copy)]
struct Outstanding {
    hop: usize,
    slot: usize,
    sent: SimTime,
    /// `sent + timeout`: when this probe stops occupying the window.
    deadline: SimTime,
    /// The deadline passed with no answer. The entry stays in the
    /// registry so a late response can still be attributed to it, but
    /// it no longer counts toward window occupancy and its hop already
    /// counts it as resolved.
    expired: bool,
}

/// Per-hop probe vectors the scratch retains; sized for a caller that
/// holds a full-length *pair* of routes alive before recycling both at
/// once (the campaign's crash-isolated work unit does exactly that), so
/// the cap only guards against a caller recycling routes it never
/// traces.
const SCRATCH_HOP_POOL_CAP: usize = 96;

/// Reusable per-trace bookkeeping: the outstanding-probe registry, the
/// per-hop progress counters, and pools of hop/probe vectors harvested
/// from finished routes. A worker that keeps one `TraceScratch` across
/// its traces — recycling each consumed [`MeasuredRoute`] back into it
/// — runs [`trace_with`] with zero steady-state heap allocation (the
/// counting-allocator regression test pins this end to end, in both
/// sequential and windowed modes).
#[derive(Debug, Default)]
pub struct TraceScratch {
    /// Outstanding probes by index. A linear scan: a trace keeps at
    /// most `hops × probes_per_hop` entries, and the common case is a
    /// handful of unanswered stragglers.
    registry: Vec<(u64, Outstanding)>,
    /// Resolved-probe counters (answered or expired), parallel to the
    /// route's hop list; a hop finalizes — in TTL order — once its
    /// counter reaches `probes_per_hop`.
    hop_resolved: Vec<u8>,
    /// Recycled `Hop::probes` vectors.
    probe_vecs: Vec<Vec<ProbeResult>>,
    /// Recycled `MeasuredRoute::hops` vectors.
    hop_vecs: Vec<Vec<Hop>>,
    /// Planned `(ttl, probe_idx)` specs for the current window top-up —
    /// the slice handed to [`ProbeStrategy::build_probe_batch`].
    batch_specs: Vec<ProbeSpec>,
    /// `(hop index, slot)` registry targets parallel to `batch_specs`.
    batch_slots: Vec<(usize, usize)>,
    /// Packets built by the strategy's batch pass, drained on send.
    batch_packets: Vec<Packet>,
}

impl TraceScratch {
    /// Empty scratch; warms up over the first trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Harvest a finished route's vectors for reuse by later traces.
    /// Call this instead of dropping routes you have finished reading.
    pub fn recycle(&mut self, route: MeasuredRoute) {
        let mut hops = route.hops;
        for hop in hops.drain(..) {
            if self.probe_vecs.len() < SCRATCH_HOP_POOL_CAP {
                self.probe_vecs.push(hop.probes);
            }
        }
        if self.hop_vecs.len() < 4 {
            self.hop_vecs.push(hops);
        }
    }

    fn take_hops(&mut self) -> Vec<Hop> {
        let mut hops = self.hop_vecs.pop().unwrap_or_default();
        hops.clear();
        hops
    }

    fn take_probes(&mut self, n: usize) -> Vec<ProbeResult> {
        let mut probes = self.probe_vecs.pop().unwrap_or_default();
        probes.clear();
        probes.resize(n, ProbeResult::STAR);
        probes
    }

    /// Drop speculative hops past `keep`, returning their probe vectors
    /// to the pool.
    fn truncate_hops(&mut self, hops: &mut Vec<Hop>, keep: usize) {
        while hops.len() > keep {
            let hop = hops.pop().expect("len > keep");
            if self.probe_vecs.len() < SCRATCH_HOP_POOL_CAP {
                self.probe_vecs.push(hop.probes);
            }
        }
    }

    /// [`TraceScratch::truncate_hops`] applied to a finished route —
    /// the adaptive wrapper's splice/truncate entry point.
    pub(crate) fn truncate_route(&mut self, route: &mut MeasuredRoute, keep: usize) {
        let mut hops = core::mem::take(&mut route.hops);
        self.truncate_hops(&mut hops, keep);
        route.hops = hops;
    }

    /// Return a drained hop vector to the pool (the adaptive splice
    /// empties a tail route's vector into the prefix and stashes the
    /// husk here, keeping the loop allocation-free).
    pub(crate) fn stash_hops(&mut self, hops: Vec<Hop>) {
        if self.hop_vecs.len() < 4 {
            self.hop_vecs.push(hops);
        }
    }
}

/// Run one traceroute toward `destination` with the given strategy,
/// allocating fresh bookkeeping. Prefer [`trace_with`] in loops.
pub fn trace<T: Transport>(
    transport: &mut T,
    strategy: &mut dyn ProbeStrategy,
    destination: Ipv4Addr,
    config: TraceConfig,
) -> MeasuredRoute {
    trace_with(transport, strategy, destination, config, &mut TraceScratch::new())
}

/// Run one traceroute toward `destination`, reusing `scratch` for all
/// per-trace bookkeeping. With a warm scratch and a pooling transport,
/// the whole probe→response cycle performs no heap allocation.
///
/// Up to [`TraceConfig::window`] probes stay in flight at once (see the
/// module docs for the windowed semantics); `window = 1` reproduces the
/// strictly sequential discipline exactly.
pub fn trace_with<T: Transport>(
    transport: &mut T,
    strategy: &mut dyn ProbeStrategy,
    destination: Ipv4Addr,
    config: TraceConfig,
    scratch: &mut TraceScratch,
) -> MeasuredRoute {
    let source = transport.source_addr();
    let mut hops: Vec<Hop> = scratch.take_hops();
    scratch.registry.clear();
    scratch.hop_resolved.clear();
    let window = usize::from(config.window).max(1);
    let pph = usize::from(config.probes_per_hop);

    let mut probe_idx: u64 = 0;
    let mut consecutive_stars: u8 = 0;
    let mut halt = HaltReason::MaxTtl;

    // Watchdog budgets: the virtual-time cutoff is anchored at the
    // trace's start, and `budget_hit` remembers that a ceiling closed
    // the send gate so the halt reason can say so after wind-down.
    let time_cutoff =
        (config.time_budget.nanos() > 0).then(|| transport.now() + config.time_budget);
    let mut budget_hit = false;

    // Send cursor: probes launch in strict (TTL, slot) order.
    let mut next_ttl = config.min_ttl;
    let mut next_slot: usize = 0;
    let mut sent_done = config.min_ttl > config.max_ttl;
    // First hop index not yet finalized; halting is decided here only.
    let mut frontier: usize = 0;
    // Probes in flight (sent, unanswered, deadline not yet passed).
    let mut outstanding: usize = 0;
    // Lowest hop with a terminal response recorded so far. Probes are
    // never launched for hops past it, and the trace halts (discarding
    // any speculative later hops) once the frontier reaches it.
    let mut terminal_hop: Option<usize> = None;

    'drive: loop {
        // 1. Finalize complete hops in TTL order. Everything the route
        //    reports — the halt reason, which hops exist, the star
        //    count — is decided here, so out-of-order responses and
        //    speculative probes cannot change the measured route.
        while frontier < hops.len() && usize::from(scratch.hop_resolved[frontier]) == pph {
            if terminal_hop.is_some_and(|h| h <= frontier) {
                halt = HaltReason::Terminal;
                scratch.truncate_hops(&mut hops, frontier + 1);
                break 'drive;
            }
            if hops[frontier].all_stars() {
                consecutive_stars += 1;
                if consecutive_stars >= config.max_consecutive_stars {
                    halt = HaltReason::StarLimit;
                    scratch.truncate_hops(&mut hops, frontier + 1);
                    break 'drive;
                }
            } else {
                consecutive_stars = 0;
            }
            frontier += 1;
        }

        // 2. Top up the probe window, never opening a hop past a
        //    terminal reply (a hop the terminal reply belongs to still
        //    gets its full probe complement — classic traceroute sends
        //    all three probes at the terminal TTL).
        //
        //    The window's probes are *planned* first — the budget,
        //    terminal, and window gates apply in exactly the order the
        //    per-probe loop applied them — then built in one strategy
        //    pass ([`ProbeStrategy::build_probe_batch`], which amortizes
        //    per-probe header arithmetic such as the Paris pinned-
        //    checksum pseudo-header sum) and registered + sent in plan
        //    order. `Transport::send` never advances time (it enqueues),
        //    so the batch's send timestamps, and therefore the measured
        //    routes and campaign digests, are byte-identical to
        //    one-probe-at-a-time construction.
        scratch.batch_specs.clear();
        scratch.batch_slots.clear();
        while !sent_done && outstanding + scratch.batch_specs.len() < window {
            if (config.probe_budget != 0 && probe_idx >= u64::from(config.probe_budget))
                || time_cutoff.is_some_and(|cutoff| transport.now() >= cutoff)
            {
                // Watchdog tripped: close the send gate for good and
                // let the probes already in flight drain. A hop cut
                // mid-complement keeps only the slots actually probed,
                // so star and probe accounting stay honest.
                budget_hit = true;
                sent_done = true;
                if next_slot != 0 {
                    if let Some(hop) = hops.last_mut() {
                        hop.probes.truncate(next_slot);
                    }
                }
                break;
            }
            let hop_index = if next_slot == 0 { hops.len() } else { hops.len() - 1 };
            if terminal_hop.is_some_and(|h| hop_index > h) {
                break;
            }
            if next_slot == 0 {
                let probes = scratch.take_probes(pph);
                hops.push(Hop { ttl: next_ttl, probes });
                scratch.hop_resolved.push(0);
            }
            if pph > 0 {
                let idx = probe_idx;
                probe_idx += 1;
                scratch.batch_specs.push(ProbeSpec { ttl: next_ttl, probe_idx: idx });
                scratch.batch_slots.push((hop_index, next_slot));
                next_slot += 1;
            }
            if next_slot >= pph {
                next_slot = 0;
                if next_ttl >= config.max_ttl {
                    sent_done = true;
                } else {
                    next_ttl += 1;
                }
            }
        }
        if !scratch.batch_specs.is_empty() {
            // Split-borrow the scratch so the built packets can drain
            // into sends while the spec/slot plans are still readable.
            let TraceScratch { registry, batch_specs, batch_slots, batch_packets, .. } =
                &mut *scratch;
            debug_assert!(batch_packets.is_empty());
            strategy.build_probe_batch(
                source,
                destination,
                batch_specs,
                &mut || transport.grab_payload(),
                batch_packets,
            );
            debug_assert_eq!(batch_packets.len(), batch_specs.len());
            for ((packet, spec), &(hop, slot)) in
                batch_packets.drain(..).zip(batch_specs.iter()).zip(batch_slots.iter())
            {
                let sent = transport.now();
                registry.push((
                    spec.probe_idx,
                    Outstanding {
                        hop,
                        slot,
                        sent,
                        deadline: sent + config.timeout,
                        expired: false,
                    },
                ));
                transport.send(packet);
                outstanding += 1;
            }
        }

        if outstanding == 0 {
            if sent_done {
                // Hops pushed by this iteration's send phase may already
                // be complete (probes_per_hop = 0 resolves a hop the
                // moment it opens): give finalization another pass
                // before concluding MaxTtl, so the star limit still
                // halts empty-hop traces.
                if frontier < hops.len() && usize::from(scratch.hop_resolved[frontier]) == pph {
                    continue 'drive;
                }
                break; // every hop finalized without a halt: MaxTtl
            }
            // Nothing in flight and the send gate is closed: a terminal
            // reply arrived for a hop the cursor had already passed
            // (possible only with probes_per_hop > 1 and a late reply).
            debug_assert!(terminal_hop.is_some(), "send stalled without a terminal reply");
            halt = HaltReason::Terminal;
            let keep = (frontier + 1).min(hops.len());
            scratch.truncate_hops(&mut hops, keep);
            break;
        }

        // 3. Resolve whichever in-flight probe settles first: a
        //    response that already arrived (drained without advancing
        //    time), the next response before the earliest outstanding
        //    deadline, or that deadline itself.
        let delivery = match transport.try_recv() {
            Some(d) => d,
            None => {
                let deadline = scratch
                    .registry
                    .iter()
                    .filter(|(_, o)| !o.expired)
                    .map(|(_, o)| o.deadline)
                    .min()
                    .expect("outstanding probes must carry deadlines");
                match transport.recv_until(deadline) {
                    Some(d) => d,
                    None => {
                        // The deadline passed silently: retire every
                        // probe whose window has closed. Entries stay in
                        // the registry so late responses still attribute.
                        let now = transport.now();
                        for (_, o) in scratch.registry.iter_mut() {
                            if !o.expired && o.deadline <= now {
                                o.expired = true;
                                outstanding -= 1;
                                scratch.hop_resolved[o.hop] += 1;
                            }
                        }
                        continue 'drive;
                    }
                }
            }
        };
        let (at, resp) = delivery;
        let Some(matched) = strategy.match_response(destination, &resp) else {
            transport.release(resp);
            continue; // stray packet; keep waiting
        };
        let Some(pos) = scratch.registry.iter().position(|&(id, _)| id == matched) else {
            transport.release(resp);
            continue; // duplicate or unknown probe id
        };
        let (_, o) = scratch.registry.swap_remove(pos);
        if !o.expired {
            outstanding -= 1;
            scratch.hop_resolved[o.hop] += 1;
        }
        let (kind, probe_ttl) = classify(&resp);
        hops[o.hop].probes[o.slot] = ProbeResult {
            addr: Some(resp.ip.src),
            rtt: Some(at.since(o.sent)),
            kind: Some(kind),
            probe_ttl,
            response_ttl: Some(resp.ip.ttl),
            ip_id: Some(resp.ip.identification),
        };
        if kind.terminates() && terminal_hop.is_none_or(|h| o.hop < h) {
            terminal_hop = Some(o.hop);
        }
        transport.release(resp);
    }

    // A budget cut only claims the halt when nothing organic landed
    // while draining: a terminal reply or the star limit still wins.
    if budget_hit && halt == HaltReason::MaxTtl {
        halt = HaltReason::Budget;
    }

    MeasuredRoute {
        strategy: strategy.id(),
        source,
        destination,
        min_ttl: config.min_ttl,
        hops,
        halt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classic::ClassicUdp;
    use crate::paris::{ParisIcmp, ParisTcp, ParisUdp};
    use crate::tcptrace::TcpTraceroute;
    use pt_netsim::scenarios;
    use pt_netsim::Simulator;
    use pt_wire::UnreachableCode;

    fn transport(sc: &scenarios::Scenario, seed: u64) -> SimTransport {
        SimTransport::new(Simulator::new(sc.topology.clone(), seed), sc.source)
    }

    #[test]
    fn paris_udp_traces_a_linear_chain_end_to_end() {
        let sc = scenarios::linear(6);
        let mut tx = transport(&sc, 1);
        let mut strat = ParisUdp::new(41000, 52000);
        let route = trace(&mut tx, &mut strat, sc.destination, TraceConfig::default());
        assert_eq!(route.halt, HaltReason::Terminal);
        assert!(route.reached_destination());
        assert_eq!(route.hops.len(), 7, "6 routers + destination");
        let addrs = route.addresses();
        assert!(addrs.iter().all(Option::is_some), "no stars on a healthy chain");
        assert_eq!(addrs[6], Some(sc.destination));
        // Every mid-path response is a normal probe-TTL-1 Time Exceeded.
        for hop in &route.hops[..6] {
            assert_eq!(hop.probes[0].kind, Some(ResponseKind::TimeExceeded));
            assert_eq!(hop.probes[0].probe_ttl, Some(1));
        }
        // The terminal hop is Port Unreachable.
        assert_eq!(
            route.hops[6].probes[0].kind,
            Some(ResponseKind::Unreachable(UnreachableCode::Port))
        );
    }

    #[test]
    fn all_strategies_complete_a_linear_chain() {
        let sc = scenarios::linear(5);
        let strategies: Vec<Box<dyn ProbeStrategy>> = vec![
            Box::new(ClassicUdp::new(321)),
            Box::new(crate::classic::ClassicIcmp::new(321)),
            Box::new(ParisUdp::new(40001, 50001)),
            Box::new(ParisIcmp::new(0x7777)),
            Box::new(ParisTcp::new(55001)),
            Box::new(TcpTraceroute::new(55002)),
        ];
        for mut strat in strategies {
            let mut tx = transport(&sc, 99);
            let route = trace(&mut tx, strat.as_mut(), sc.destination, TraceConfig::default());
            assert_eq!(route.halt, HaltReason::Terminal, "strategy {} did not finish", strat.id());
            assert!(route.reached_destination(), "strategy {}", strat.id());
            assert_eq!(route.hops.len(), 6, "strategy {}", strat.id());
        }
    }

    #[test]
    fn paris_keeps_one_path_through_fig1_classic_may_mix() {
        let sc = scenarios::fig1(pt_netsim::BalancerKind::PerFlow(pt_wire::FlowPolicy::FiveTuple));
        // Paris: one flow → a consistent physical path, so hops 7/8 are
        // (A, *) or (*, D) — never (A, D).
        for seed in 0..8 {
            let mut tx = transport(&sc, seed);
            let mut strat = ParisUdp::new(41000 + seed as u16, 52000);
            let route = trace(&mut tx, &mut strat, sc.destination, TraceConfig::default());
            let a = route.addresses();
            // hops index: 0-based from ttl 1 → hop7 = index 6, hop8 = 7.
            let pair = (a[6], a[7]);
            assert!(
                pair == (Some(sc.a("A")), None) || pair == (None, Some(sc.a("D"))),
                "Paris mixed paths at seed {seed}: {pair:?}"
            );
        }
        // Classic: across source ports, some trace shows the impossible
        // (A, D) adjacency — the false link.
        let mut saw_false_link = false;
        for pid in 0..64 {
            let mut tx = transport(&sc, 1000 + pid as u64);
            let mut strat = ClassicUdp::new(pid);
            let route = trace(&mut tx, &mut strat, sc.destination, TraceConfig::default());
            let a = route.addresses();
            if a[6] == Some(sc.a("A")) && a[7] == Some(sc.a("D")) {
                saw_false_link = true;
                break;
            }
        }
        assert!(saw_false_link, "classic traceroute should infer the false link A→D");
    }

    #[test]
    fn unreachability_halts_with_flag() {
        let sc = scenarios::unreachability_loop();
        let mut tx = transport(&sc, 1);
        let mut strat = ParisUdp::new(41000, 52000);
        let route = trace(&mut tx, &mut strat, sc.destination, TraceConfig::default());
        assert_eq!(route.halt, HaltReason::Terminal);
        let last = route.hops.last().unwrap();
        assert_eq!(
            last.probes[0].kind.unwrap().unreachable_flag(),
            Some(UnreachableCode::Host),
            "!H flag"
        );
        // The loop: hop 6 and hop 7 both show U.
        let a = route.addresses();
        assert_eq!(a[5], a[6]);
        assert!(!route.reached_destination());
    }

    /// A destination that never answers UDP: after the last router, the
    /// trace abandons once the consecutive-star limit is *reached*.
    fn blackhole() -> (SimTransport, Ipv4Addr) {
        let mut b = pt_netsim::TopologyBuilder::new();
        let s = b.host("S", pt_netsim::HostConfig::default());
        let r = b.router("r", pt_netsim::RouterConfig::default());
        let d = b.host("D", pt_netsim::HostConfig::firewalled());
        b.link(s, r, SimDuration::from_millis(1), 0.0);
        b.link(r, d, SimDuration::from_millis(1), 0.0);
        b.default_via(s, r);
        b.default_via(r, d);
        b.default_via(d, r);
        let s_pfx = b.subnet_of(s);
        b.route_via(r, s_pfx, s);
        let dst = b.addr_of(d);
        let topo = std::sync::Arc::new(b.build());
        (SimTransport::new(Simulator::new(topo, 1), s), dst)
    }

    #[test]
    fn star_limit_abandons_unresponsive_tail() {
        let (mut tx, dst) = blackhole();
        let mut strat = ParisUdp::new(41000, 52000);
        let route = trace(&mut tx, &mut strat, dst, TraceConfig::default());
        assert_eq!(route.halt, HaltReason::StarLimit);
        assert_eq!(route.hops.len(), 1 + 8, "router + exactly 8 star hops (§3's limit)");
        assert!(!route.reached_destination());
        assert_eq!(route.stars(), 8);
        assert_eq!(route.mid_route_stars(), 0, "all stars are trailing");
    }

    /// Counts probes handed to `send` — what the source actually emits,
    /// as opposed to what the route records.
    struct CountingTransport<T: Transport> {
        inner: T,
        sent: usize,
    }

    impl<T: Transport> Transport for CountingTransport<T> {
        fn now(&self) -> SimTime {
            self.inner.now()
        }
        fn source_addr(&self) -> Ipv4Addr {
            self.inner.source_addr()
        }
        fn send(&mut self, packet: Packet) {
            self.sent += 1;
            self.inner.send(packet)
        }
        fn recv_until(&mut self, deadline: SimTime) -> Option<(SimTime, Packet)> {
            self.inner.recv_until(deadline)
        }
        fn try_recv(&mut self) -> Option<(SimTime, Packet)> {
            self.inner.try_recv()
        }
        fn release(&mut self, packet: Packet) {
            self.inner.release(packet)
        }
        fn grab_payload(&mut self) -> Vec<u8> {
            self.inner.grab_payload()
        }
    }

    #[test]
    fn star_limit_boundary_sends_exactly_max_consecutive_stars_probes() {
        // The off-by-one regression gate: §3 says *eight* consecutive
        // unanswered hops abandon the trace, so on a blackhole path the
        // source sends 1 answered probe + 8 star probes — not 9 stars.
        let (tx, dst) = blackhole();
        let mut tx = CountingTransport { inner: tx, sent: 0 };
        let mut strat = ParisUdp::new(41000, 52000);
        let route = trace(&mut tx, &mut strat, dst, TraceConfig::default().sequential());
        assert_eq!(route.halt, HaltReason::StarLimit);
        assert_eq!(route.stars(), 8, "exactly the study's limit, not limit + 1");
        assert_eq!(tx.sent, 1 + 8, "one answered hop + 8 star probes actually sent");

        // Windowed mode measures the same route; the (bounded) extra
        // probes it speculates past the limit are discarded.
        let (tx2, dst2) = blackhole();
        let mut tx2 = CountingTransport { inner: tx2, sent: 0 };
        let mut strat2 = ParisUdp::new(41000, 52000);
        let windowed = trace(&mut tx2, &mut strat2, dst2, TraceConfig::default());
        assert_eq!(windowed, route, "windowed route must match sequential");
        assert!(tx2.sent >= 9 && tx2.sent <= 9 + 2, "speculation bounded by window - 1");
    }

    #[test]
    fn zero_probes_per_hop_still_hits_the_star_limit() {
        // A degenerate config nobody should use, but it must keep the
        // old driver's semantics: a hop with no probes is vacuously
        // all-star, so the trace abandons at the star limit instead of
        // spinning out 39 empty hops to MaxTtl.
        let sc = scenarios::linear(3);
        for window in [1u8, 3] {
            let mut tx = transport(&sc, 1);
            let mut strat = ParisUdp::new(41000, 52000);
            let config = TraceConfig { probes_per_hop: 0, window, ..TraceConfig::default() };
            let route = trace(&mut tx, &mut strat, sc.destination, config);
            assert_eq!(route.halt, HaltReason::StarLimit, "window {window}");
            assert_eq!(route.hops.len(), 8, "window {window}: exactly the star limit");
            assert!(route.hops.iter().all(|h| h.probes.is_empty()), "window {window}");
        }
    }

    #[test]
    fn probe_budget_degrades_a_long_trace_deterministically() {
        let sc = scenarios::linear(6);
        let config = TraceConfig { probe_budget: 3, ..TraceConfig::default() };
        let mut tx = transport(&sc, 1);
        let mut strat = ParisUdp::new(41000, 52000);
        let route = trace(&mut tx, &mut strat, sc.destination, config);
        assert_eq!(route.halt, HaltReason::Budget);
        assert!(route.degraded());
        assert_eq!(route.probes_sent(), 3, "the gate closes exactly at the ceiling");
        assert_eq!(route.hops.len(), 3);
        assert!(!route.reached_destination());
        // The cut is a pure function of the config: a rerun degrades at
        // the identical probe.
        let mut tx = transport(&sc, 1);
        let mut strat = ParisUdp::new(41000, 52000);
        assert_eq!(trace(&mut tx, &mut strat, sc.destination, config), route);
    }

    #[test]
    fn budgeted_trace_that_finishes_in_budget_is_identical_to_unbudgeted() {
        let sc = scenarios::linear(6);
        let mut tx = transport(&sc, 1);
        let mut strat = ParisUdp::new(41000, 52000);
        let plain = trace(&mut tx, &mut strat, sc.destination, TraceConfig::default());
        assert_eq!(plain.halt, HaltReason::Terminal);

        // Budget of exactly the 7 committed probes: the windowed driver
        // wants to speculate past them, the gate blocks that, and the
        // terminal reply lands while draining — an organic halt, so the
        // route is not marked degraded and matches the unbudgeted one.
        let config = TraceConfig {
            probe_budget: 7,
            time_budget: SimDuration::from_secs(600),
            ..TraceConfig::default()
        };
        let mut tx = transport(&sc, 1);
        let mut strat = ParisUdp::new(41000, 52000);
        let budgeted = trace(&mut tx, &mut strat, sc.destination, config);
        assert_eq!(budgeted, plain);
        assert!(!budgeted.degraded());
    }

    #[test]
    fn time_budget_cuts_a_blackhole_trace_before_the_star_limit() {
        // The blackhole tail burns a 2 s timeout per star; a 3 s budget
        // stops the trace well before the 8-star abandonment.
        let (mut tx, dst) = blackhole();
        let mut strat = ParisUdp::new(41000, 52000);
        let config =
            TraceConfig { time_budget: SimDuration::from_secs(3), ..TraceConfig::default() };
        let route = trace(&mut tx, &mut strat, dst, config);
        assert_eq!(route.halt, HaltReason::Budget, "{route:?}");
        assert!(route.stars() < 8, "cut short of the star limit: {route:?}");
    }

    #[test]
    fn paper_config_skips_hop_one() {
        let sc = scenarios::linear(4);
        let mut tx = transport(&sc, 1);
        let mut strat = ParisUdp::new(41000, 52000);
        let route = trace(&mut tx, &mut strat, sc.destination, TraceConfig::paper());
        assert_eq!(route.min_ttl, 2);
        assert_eq!(route.hops[0].ttl, 2);
        assert_eq!(route.hops.len(), 4, "hops 2..=5");
    }

    #[test]
    fn three_probe_config_records_three_results_per_hop() {
        let sc = scenarios::linear(3);
        let mut tx = transport(&sc, 1);
        let mut strat = ClassicUdp::new(7);
        let route = trace(&mut tx, &mut strat, sc.destination, TraceConfig::three_probes());
        for hop in &route.hops[..route.hops.len() - 1] {
            assert_eq!(hop.probes.len(), 3);
            assert!(hop.probes.iter().all(|p| !p.is_star()));
        }
    }

    #[test]
    fn terminal_hop_gets_its_full_probe_complement() {
        // Classic traceroute sends all three probes at the terminal TTL;
        // the driver must not leave the later slots as phantom stars
        // (indistinguishable from loss in the anomaly stats).
        for window in [1u8, 3] {
            let sc = scenarios::linear(3);
            let mut tx = transport(&sc, 1);
            let mut strat = ClassicUdp::new(7);
            let config = TraceConfig { window, ..TraceConfig::three_probes() };
            let route = trace(&mut tx, &mut strat, sc.destination, config);
            assert_eq!(route.halt, HaltReason::Terminal);
            let last = route.hops.last().unwrap();
            assert_eq!(last.probes.len(), 3);
            assert!(
                last.probes.iter().all(|p| !p.is_star()),
                "window {window}: terminal hop slots must all be probed, got {:?}",
                last.probes
            );
            assert!(
                last.probes.iter().all(|p| p.kind.is_some_and(|k| k.terminates())),
                "window {window}: every terminal-hop probe reaches the destination"
            );
        }
    }

    #[test]
    fn rtt_increases_along_the_path() {
        let sc = scenarios::linear(5);
        let mut tx = transport(&sc, 1);
        let mut strat = ParisUdp::new(41000, 52000);
        let route = trace(&mut tx, &mut strat, sc.destination, TraceConfig::default());
        let rtts: Vec<_> = route.hops.iter().map(|h| h.probes[0].rtt.unwrap()).collect();
        for w in rtts.windows(2) {
            assert!(w[0] < w[1], "RTT must grow with distance: {rtts:?}");
        }
    }

    #[test]
    fn zero_ttl_forwarding_surfaces_in_probe_ttl() {
        let sc = scenarios::fig4();
        let mut tx = transport(&sc, 1);
        let mut strat = ParisUdp::new(41000, 52000);
        let route = trace(&mut tx, &mut strat, sc.destination, TraceConfig::default());
        let a = route.addresses();
        // Hops 7 and 8 (indices 6, 7) both show A...
        assert_eq!(a[6], Some(sc.a("A")));
        assert_eq!(a[7], Some(sc.a("A")));
        // ...but the probe TTLs distinguish the cause: 0 then 1.
        assert_eq!(route.hops[6].probes[0].probe_ttl, Some(0));
        assert_eq!(route.hops[7].probes[0].probe_ttl, Some(1));
    }

    #[test]
    fn nat_loop_shows_decreasing_response_ttl() {
        let sc = scenarios::fig5();
        let mut tx = transport(&sc, 1);
        let mut strat = ParisUdp::new(41000, 52000);
        let route = trace(&mut tx, &mut strat, sc.destination, TraceConfig::default());
        let a = route.addresses();
        // Hops 6..=9 (indices 5..=8) all show N0.
        for (i, addr) in a.iter().enumerate().take(9).skip(5) {
            assert_eq!(*addr, Some(sc.a("N")), "hop {}", i + 1);
        }
        let ttls: Vec<_> = (5..=8).map(|i| route.hops[i].probes[0].response_ttl.unwrap()).collect();
        assert_eq!(ttls, vec![250, 249, 248, 247], "the paper's Fig. 5 numbers");
    }

    // ------------------------------------------------------------------
    // Scripted-transport tests: attribution under reordering, late
    // replies, and duplicates — the windowed failure modes a live
    // simulator only hits probabilistically.
    // ------------------------------------------------------------------

    use pt_wire::icmp::Quotation;
    use pt_wire::ipv4::{protocol, Ipv4Header};

    /// A transport whose "network" is a script: each sent probe may
    /// produce replies at arbitrary future times (including never, out
    /// of order, or twice).
    struct ScriptedTransport<F: FnMut(&Packet, SimTime) -> Vec<(SimTime, Packet)>> {
        now: SimTime,
        source: Ipv4Addr,
        pending: Vec<(SimTime, u64, Packet)>,
        next_seq: u64,
        plan: F,
    }

    impl<F: FnMut(&Packet, SimTime) -> Vec<(SimTime, Packet)>> ScriptedTransport<F> {
        fn new(source: Ipv4Addr, plan: F) -> Self {
            ScriptedTransport { now: SimTime::ZERO, source, pending: Vec::new(), next_seq: 0, plan }
        }

        fn pop_due(&mut self, deadline: SimTime) -> Option<(SimTime, Packet)> {
            let best = self
                .pending
                .iter()
                .enumerate()
                .min_by_key(|(_, (at, seq, _))| (*at, *seq))
                .map(|(i, (at, _, _))| (i, *at))?;
            if best.1 > deadline {
                return None;
            }
            let (at, _, packet) = self.pending.remove(best.0);
            self.now = self.now.max(at);
            Some((at, packet))
        }
    }

    impl<F: FnMut(&Packet, SimTime) -> Vec<(SimTime, Packet)>> Transport for ScriptedTransport<F> {
        fn now(&self) -> SimTime {
            self.now
        }
        fn source_addr(&self) -> Ipv4Addr {
            self.source
        }
        fn send(&mut self, packet: Packet) {
            for (at, resp) in (self.plan)(&packet, self.now) {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.pending.push((at, seq, resp));
            }
        }
        fn recv_until(&mut self, deadline: SimTime) -> Option<(SimTime, Packet)> {
            match self.pop_due(deadline) {
                Some(d) => Some(d),
                None => {
                    self.now = self.now.max(deadline);
                    None
                }
            }
        }
        fn try_recv(&mut self) -> Option<(SimTime, Packet)> {
            self.pop_due(self.now)
        }
    }

    fn hop_addr(ttl: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 9, ttl, 1)
    }

    fn time_exceeded_for(probe: &Packet, from: Ipv4Addr) -> Packet {
        let q = Quotation::from_probe(probe.ip, &probe.transport_bytes());
        let ip = Ipv4Header::new(from, probe.ip.src, protocol::ICMP, 250);
        Packet::new(ip, Wire::Icmp(IcmpMessage::TimeExceeded { quotation: q }))
    }

    fn port_unreachable_for(probe: &Packet, from: Ipv4Addr) -> Packet {
        let q = Quotation::from_probe(probe.ip, &probe.transport_bytes());
        let ip = Ipv4Header::new(from, probe.ip.src, protocol::ICMP, 60);
        Packet::new(
            ip,
            Wire::Icmp(IcmpMessage::DestUnreachable { code: UnreachableCode::Port, quotation: q }),
        )
    }

    #[test]
    fn reordered_responses_attribute_to_their_own_hops() {
        // Hop 1 answers *slower* than hop 2 (think unequal-length
        // load-balanced branches): with a 3-probe window both are in
        // flight and hop 2's reply lands first. Attribution must go by
        // probe id, not arrival order.
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(192, 0, 2, 9);
        let plan = |probe: &Packet, now: SimTime| {
            let ttl = probe.ip.ttl;
            let delay = match ttl {
                1 => SimDuration::from_millis(900), // slow outlier
                3 => {
                    return vec![(now + SimDuration::from_millis(30), {
                        let mut p = port_unreachable_for(probe, dst);
                        p.ip.src = dst;
                        p
                    })]
                }
                _ => SimDuration::from_millis(10 * u64::from(ttl)),
            };
            vec![(now + delay, time_exceeded_for(probe, hop_addr(ttl)))]
        };
        let mut tx = ScriptedTransport::new(src, plan);
        let mut strat = ParisUdp::new(41000, 52000);
        let route = trace(&mut tx, &mut strat, dst, TraceConfig::default());
        assert_eq!(route.halt, HaltReason::Terminal);
        assert_eq!(route.hops.len(), 3);
        assert_eq!(route.hops[0].probes[0].addr, Some(hop_addr(1)));
        assert_eq!(route.hops[1].probes[0].addr, Some(hop_addr(2)));
        assert_eq!(route.hops[2].probes[0].addr, Some(dst));
        assert_eq!(
            route.hops[0].probes[0].rtt,
            Some(SimDuration::from_millis(900)),
            "RTT measured against the probe's own send time"
        );
    }

    #[test]
    fn late_response_after_timeout_still_attributes() {
        // Hop 2's reply arrives after its 2 s window (recorded as a star
        // at finalization) but during hop 4's wait: the registry keeps
        // expired probes, so the record is filled in retroactively —
        // the same forgiveness the sequential driver always had.
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(192, 0, 2, 9);
        let plan = |probe: &Packet, now: SimTime| {
            let ttl = probe.ip.ttl;
            let delay = match ttl {
                2 => SimDuration::from_millis(2050), // past the 2 s timeout
                5 => {
                    return vec![(now + SimDuration::from_millis(50), {
                        let mut p = port_unreachable_for(probe, dst);
                        p.ip.src = dst;
                        p
                    })]
                }
                _ => SimDuration::from_millis(10 * u64::from(ttl)),
            };
            vec![(now + delay, time_exceeded_for(probe, hop_addr(ttl)))]
        };
        let mut tx = ScriptedTransport::new(src, plan);
        let mut strat = ParisUdp::new(41000, 52000);
        let route = trace(&mut tx, &mut strat, dst, TraceConfig::default().sequential());
        assert_eq!(route.halt, HaltReason::Terminal);
        assert_eq!(route.hops.len(), 5);
        assert_eq!(
            route.hops[1].probes[0].addr,
            Some(hop_addr(2)),
            "late reply must still fill its own hop record"
        );
        assert_eq!(route.hops[1].probes[0].rtt, Some(SimDuration::from_millis(2050)));
    }

    #[test]
    fn duplicate_responses_are_ignored() {
        // Each hop answers twice; the second copy finds no registry
        // entry (the first consumed it) and must not clobber anything —
        // in particular not a *different* probe's slot.
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(192, 0, 2, 9);
        let plan = |probe: &Packet, now: SimTime| {
            let ttl = probe.ip.ttl;
            if ttl == 3 {
                let mut p = port_unreachable_for(probe, dst);
                p.ip.src = dst;
                let mut q = port_unreachable_for(probe, dst);
                q.ip.src = dst;
                return vec![
                    (now + SimDuration::from_millis(30), p),
                    (now + SimDuration::from_millis(31), q),
                ];
            }
            let first = time_exceeded_for(probe, hop_addr(ttl));
            let second = time_exceeded_for(probe, hop_addr(ttl));
            vec![
                (now + SimDuration::from_millis(10 * u64::from(ttl)), first),
                (now + SimDuration::from_millis(10 * u64::from(ttl) + 5), second),
            ]
        };
        for window in [1u8, 3] {
            let mut tx = ScriptedTransport::new(src, plan);
            let mut strat = ParisUdp::new(41000, 52000);
            let config = TraceConfig { window, ..TraceConfig::default() };
            let route = trace(&mut tx, &mut strat, dst, config);
            assert_eq!(route.halt, HaltReason::Terminal, "window {window}");
            assert_eq!(route.hops.len(), 3, "window {window}");
            for (i, hop) in route.hops[..2].iter().enumerate() {
                assert_eq!(hop.probes[0].addr, Some(hop_addr(i as u8 + 1)), "window {window}");
            }
        }
    }
}
