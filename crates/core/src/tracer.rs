//! The sans-IO traceroute driver.
//!
//! Reproduces the study's probing discipline (§3): one probe per hop
//! (configurable to classic traceroute's three), up to two seconds'
//! wait per probe, immediate halt on any Destination Unreachable or
//! terminal reply, a ceiling of 39 hops, and abandonment after eight
//! consecutive unanswered hops.
//!
//! The driver is allocation-free in steady state: probe payloads come
//! from the transport's recycling pool ([`Transport::grab_payload`]),
//! and the per-trace bookkeeping (hop records, the outstanding-probe
//! registry) lives in a caller-held [`TraceScratch`] that
//! [`trace_with`] reuses and [`TraceScratch::recycle`] refills from
//! finished routes. [`trace`] remains the convenience form that
//! allocates fresh scratch per call.

use std::net::Ipv4Addr;

use pt_netsim::time::{SimDuration, SimTime};
use pt_netsim::SimTransport;
use pt_wire::{IcmpMessage, Packet, Transport as Wire};

use crate::probe::ProbeStrategy;
use crate::route::{HaltReason, Hop, MeasuredRoute, ProbeResult, ResponseKind};
use crate::tcptrace::CURRENT_PROBE;

/// The packet I/O a tracer needs. `pt-netsim`'s [`SimTransport`]
/// implements it over virtual time; a raw-socket transport would
/// implement it over wall-clock time.
pub trait Transport {
    /// Current time.
    fn now(&self) -> SimTime;
    /// The local address probes carry as their source.
    fn source_addr(&self) -> Ipv4Addr;
    /// Transmit a probe.
    fn send(&mut self, packet: Packet);
    /// Block until the next inbound packet or `deadline`, whichever is
    /// first. `None` means the deadline passed silently.
    fn recv_until(&mut self, deadline: SimTime) -> Option<(SimTime, Packet)>;
    /// Hand back a packet the tracer has finished with, so the transport
    /// can recycle its buffers. The tracer calls this for every packet
    /// `recv_until` produced; transports without a recycling story just
    /// drop it.
    fn release(&mut self, packet: Packet) {
        let _ = packet;
    }
    /// A cleared payload buffer for the next probe — the other half of
    /// the [`Transport::release`] recycling loop. Probe builders thread
    /// it into the packet, the network consumes the packet, and the
    /// buffer's allocation eventually comes back here. Transports
    /// without a pool hand out fresh (empty, unallocated) buffers.
    fn grab_payload(&mut self) -> Vec<u8> {
        Vec::new()
    }
}

impl Transport for SimTransport {
    fn now(&self) -> SimTime {
        SimTransport::now(self)
    }

    fn source_addr(&self) -> Ipv4Addr {
        SimTransport::source_addr(self)
    }

    fn send(&mut self, packet: Packet) {
        SimTransport::send(self, packet)
    }

    fn recv_until(&mut self, deadline: SimTime) -> Option<(SimTime, Packet)> {
        SimTransport::recv_until(self, deadline)
    }

    fn release(&mut self, packet: Packet) {
        // Responses go back into the simulator's payload-buffer pool, so
        // a long trace loop reuses the same few buffers end to end.
        self.simulator_mut().recycle(packet);
    }

    fn grab_payload(&mut self) -> Vec<u8> {
        self.simulator_mut().grab_payload()
    }
}

/// Traceroute parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// First TTL probed. The study uses 2 to skip the university network.
    pub min_ttl: u8,
    /// Last TTL probed ("no trace extends further than 39 hops", §3).
    pub max_ttl: u8,
    /// Probes per hop: 1 in the study, 3 in classic traceroute defaults.
    pub probes_per_hop: u8,
    /// Per-probe response timeout (2 s in the study).
    pub timeout: SimDuration,
    /// Abandon after this many consecutive all-star hops (8 in the study).
    pub max_consecutive_stars: u8,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            min_ttl: 1,
            max_ttl: 39,
            probes_per_hop: 1,
            timeout: SimDuration::from_secs(2),
            max_consecutive_stars: 8,
        }
    }
}

impl TraceConfig {
    /// Exactly the study's parameters (§3), including `min_ttl = 2`.
    pub fn paper() -> Self {
        TraceConfig { min_ttl: 2, ..Self::default() }
    }

    /// Classic traceroute's three-probes-per-hop default — the mode that
    /// makes diamonds visible within a single trace.
    pub fn three_probes() -> Self {
        TraceConfig { probes_per_hop: 3, ..Self::default() }
    }
}

/// Classify a response packet and extract the Paris side information.
fn classify(resp: &Packet) -> (ResponseKind, Option<u8>) {
    match &resp.transport {
        Wire::Icmp(IcmpMessage::TimeExceeded { quotation }) => {
            (ResponseKind::TimeExceeded, Some(quotation.ip.ttl))
        }
        Wire::Icmp(IcmpMessage::DestUnreachable { code, quotation }) => {
            (ResponseKind::Unreachable(*code), Some(quotation.ip.ttl))
        }
        Wire::Icmp(_) => (ResponseKind::EchoReply, None),
        Wire::Tcp(_) => (ResponseKind::TcpReply, None),
        Wire::Udp(_) => (ResponseKind::TcpReply, None), // not produced by responders
    }
}

#[derive(Debug, Clone, Copy)]
struct Outstanding {
    hop: usize,
    slot: usize,
    sent: SimTime,
}

/// Per-hop probe vectors the scratch retains; a trace never exceeds the
/// 39-hop ceiling, so this bounds nothing in practice — it only guards
/// against a caller recycling routes it never traces.
const SCRATCH_HOP_POOL_CAP: usize = 64;

/// Reusable per-trace bookkeeping: the outstanding-probe registry plus
/// pools of hop/probe vectors harvested from finished routes. A worker
/// that keeps one `TraceScratch` across its traces — recycling each
/// consumed [`MeasuredRoute`] back into it — runs [`trace_with`] with
/// zero steady-state heap allocation (the counting-allocator regression
/// test pins this end to end).
#[derive(Debug, Default)]
pub struct TraceScratch {
    /// Outstanding probes by index. A linear scan: a trace keeps at
    /// most `hops × probes_per_hop` entries, and the common case is a
    /// handful of unanswered stragglers.
    registry: Vec<(u64, Outstanding)>,
    /// Recycled `Hop::probes` vectors.
    probe_vecs: Vec<Vec<ProbeResult>>,
    /// Recycled `MeasuredRoute::hops` vectors.
    hop_vecs: Vec<Vec<Hop>>,
}

impl TraceScratch {
    /// Empty scratch; warms up over the first trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Harvest a finished route's vectors for reuse by later traces.
    /// Call this instead of dropping routes you have finished reading.
    pub fn recycle(&mut self, route: MeasuredRoute) {
        let mut hops = route.hops;
        for hop in hops.drain(..) {
            if self.probe_vecs.len() < SCRATCH_HOP_POOL_CAP {
                self.probe_vecs.push(hop.probes);
            }
        }
        if self.hop_vecs.len() < 4 {
            self.hop_vecs.push(hops);
        }
    }

    fn take_hops(&mut self) -> Vec<Hop> {
        let mut hops = self.hop_vecs.pop().unwrap_or_default();
        hops.clear();
        hops
    }

    fn take_probes(&mut self, n: usize) -> Vec<ProbeResult> {
        let mut probes = self.probe_vecs.pop().unwrap_or_default();
        probes.clear();
        probes.resize(n, ProbeResult::STAR);
        probes
    }
}

/// Run one traceroute toward `destination` with the given strategy,
/// allocating fresh bookkeeping. Prefer [`trace_with`] in loops.
pub fn trace<T: Transport>(
    transport: &mut T,
    strategy: &mut dyn ProbeStrategy,
    destination: Ipv4Addr,
    config: TraceConfig,
) -> MeasuredRoute {
    trace_with(transport, strategy, destination, config, &mut TraceScratch::new())
}

/// Run one traceroute toward `destination`, reusing `scratch` for all
/// per-trace bookkeeping. With a warm scratch and a pooling transport,
/// the whole probe→response cycle performs no heap allocation.
pub fn trace_with<T: Transport>(
    transport: &mut T,
    strategy: &mut dyn ProbeStrategy,
    destination: Ipv4Addr,
    config: TraceConfig,
    scratch: &mut TraceScratch,
) -> MeasuredRoute {
    let source = transport.source_addr();
    let mut hops: Vec<Hop> = scratch.take_hops();
    scratch.registry.clear();
    let mut probe_idx: u64 = 0;
    let mut consecutive_stars: u8 = 0;
    let mut halt = HaltReason::MaxTtl;

    'ttl_loop: for ttl in config.min_ttl..=config.max_ttl {
        let hop_index = hops.len();
        let probes = scratch.take_probes(usize::from(config.probes_per_hop));
        hops.push(Hop { ttl, probes });
        for slot in 0..usize::from(config.probes_per_hop) {
            let idx = probe_idx;
            probe_idx += 1;
            let payload = transport.grab_payload();
            let packet = strategy.build_probe_with(source, destination, ttl, idx, payload);
            let sent = transport.now();
            scratch.registry.push((idx, Outstanding { hop: hop_index, slot, sent }));
            transport.send(packet);
            let deadline = sent + config.timeout;
            let mut saw_terminal = false;
            while let Some((at, resp)) = transport.recv_until(deadline) {
                let Some(matched) = strategy.match_response(destination, &resp) else {
                    transport.release(resp);
                    continue; // stray packet; keep waiting
                };
                let matched = if matched == CURRENT_PROBE { idx } else { matched };
                let Some(pos) = scratch.registry.iter().position(|&(id, _)| id == matched) else {
                    transport.release(resp);
                    continue; // duplicate or unknown probe id
                };
                let (_, slot_info) = scratch.registry.swap_remove(pos);
                let (kind, probe_ttl) = classify(&resp);
                hops[slot_info.hop].probes[slot_info.slot] = ProbeResult {
                    addr: Some(resp.ip.src),
                    rtt: Some(at.since(slot_info.sent)),
                    kind: Some(kind),
                    probe_ttl,
                    response_ttl: Some(resp.ip.ttl),
                    ip_id: Some(resp.ip.identification),
                };
                if kind.terminates() {
                    saw_terminal = true;
                }
                let answered_current = matched == idx;
                transport.release(resp);
                if answered_current {
                    break; // current probe answered; next probe or hop
                }
            }
            if saw_terminal {
                halt = HaltReason::Terminal;
                break 'ttl_loop;
            }
        }
        if hops[hop_index].all_stars() {
            consecutive_stars += 1;
            if consecutive_stars > config.max_consecutive_stars {
                halt = HaltReason::StarLimit;
                break;
            }
        } else {
            consecutive_stars = 0;
        }
    }

    MeasuredRoute {
        strategy: strategy.id(),
        source,
        destination,
        min_ttl: config.min_ttl,
        hops,
        halt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classic::ClassicUdp;
    use crate::paris::{ParisIcmp, ParisTcp, ParisUdp};
    use crate::tcptrace::TcpTraceroute;
    use pt_netsim::scenarios;
    use pt_netsim::Simulator;
    use pt_wire::UnreachableCode;

    fn transport(sc: &scenarios::Scenario, seed: u64) -> SimTransport {
        SimTransport::new(Simulator::new(sc.topology.clone(), seed), sc.source)
    }

    #[test]
    fn paris_udp_traces_a_linear_chain_end_to_end() {
        let sc = scenarios::linear(6);
        let mut tx = transport(&sc, 1);
        let mut strat = ParisUdp::new(41000, 52000);
        let route = trace(&mut tx, &mut strat, sc.destination, TraceConfig::default());
        assert_eq!(route.halt, HaltReason::Terminal);
        assert!(route.reached_destination());
        assert_eq!(route.hops.len(), 7, "6 routers + destination");
        let addrs = route.addresses();
        assert!(addrs.iter().all(Option::is_some), "no stars on a healthy chain");
        assert_eq!(addrs[6], Some(sc.destination));
        // Every mid-path response is a normal probe-TTL-1 Time Exceeded.
        for hop in &route.hops[..6] {
            assert_eq!(hop.probes[0].kind, Some(ResponseKind::TimeExceeded));
            assert_eq!(hop.probes[0].probe_ttl, Some(1));
        }
        // The terminal hop is Port Unreachable.
        assert_eq!(
            route.hops[6].probes[0].kind,
            Some(ResponseKind::Unreachable(UnreachableCode::Port))
        );
    }

    #[test]
    fn all_strategies_complete_a_linear_chain() {
        let sc = scenarios::linear(5);
        let strategies: Vec<Box<dyn ProbeStrategy>> = vec![
            Box::new(ClassicUdp::new(321)),
            Box::new(crate::classic::ClassicIcmp::new(321)),
            Box::new(ParisUdp::new(40001, 50001)),
            Box::new(ParisIcmp::new(0x7777)),
            Box::new(ParisTcp::new(55001)),
            Box::new(TcpTraceroute::new(55002)),
        ];
        for mut strat in strategies {
            let mut tx = transport(&sc, 99);
            let route = trace(&mut tx, strat.as_mut(), sc.destination, TraceConfig::default());
            assert_eq!(route.halt, HaltReason::Terminal, "strategy {} did not finish", strat.id());
            assert!(route.reached_destination(), "strategy {}", strat.id());
            assert_eq!(route.hops.len(), 6, "strategy {}", strat.id());
        }
    }

    #[test]
    fn paris_keeps_one_path_through_fig1_classic_may_mix() {
        let sc = scenarios::fig1(pt_netsim::BalancerKind::PerFlow(pt_wire::FlowPolicy::FiveTuple));
        // Paris: one flow → a consistent physical path, so hops 7/8 are
        // (A, *) or (*, D) — never (A, D).
        for seed in 0..8 {
            let mut tx = transport(&sc, seed);
            let mut strat = ParisUdp::new(41000 + seed as u16, 52000);
            let route = trace(&mut tx, &mut strat, sc.destination, TraceConfig::default());
            let a = route.addresses();
            // hops index: 0-based from ttl 1 → hop7 = index 6, hop8 = 7.
            let pair = (a[6], a[7]);
            assert!(
                pair == (Some(sc.a("A")), None) || pair == (None, Some(sc.a("D"))),
                "Paris mixed paths at seed {seed}: {pair:?}"
            );
        }
        // Classic: across source ports, some trace shows the impossible
        // (A, D) adjacency — the false link.
        let mut saw_false_link = false;
        for pid in 0..64 {
            let mut tx = transport(&sc, 1000 + pid as u64);
            let mut strat = ClassicUdp::new(pid);
            let route = trace(&mut tx, &mut strat, sc.destination, TraceConfig::default());
            let a = route.addresses();
            if a[6] == Some(sc.a("A")) && a[7] == Some(sc.a("D")) {
                saw_false_link = true;
                break;
            }
        }
        assert!(saw_false_link, "classic traceroute should infer the false link A→D");
    }

    #[test]
    fn unreachability_halts_with_flag() {
        let sc = scenarios::unreachability_loop();
        let mut tx = transport(&sc, 1);
        let mut strat = ParisUdp::new(41000, 52000);
        let route = trace(&mut tx, &mut strat, sc.destination, TraceConfig::default());
        assert_eq!(route.halt, HaltReason::Terminal);
        let last = route.hops.last().unwrap();
        assert_eq!(
            last.probes[0].kind.unwrap().unreachable_flag(),
            Some(UnreachableCode::Host),
            "!H flag"
        );
        // The loop: hop 6 and hop 7 both show U.
        let a = route.addresses();
        assert_eq!(a[5], a[6]);
        assert!(!route.reached_destination());
    }

    #[test]
    fn star_limit_abandons_unresponsive_tail() {
        // A destination that never answers UDP: after the last router, 8
        // consecutive stars and give up.
        let mut b = pt_netsim::TopologyBuilder::new();
        let s = b.host("S", pt_netsim::HostConfig::default());
        let r = b.router("r", pt_netsim::RouterConfig::default());
        let d = b.host("D", pt_netsim::HostConfig::firewalled());
        b.link(s, r, SimDuration::from_millis(1), 0.0);
        b.link(r, d, SimDuration::from_millis(1), 0.0);
        b.default_via(s, r);
        b.default_via(r, d);
        b.default_via(d, r);
        let s_pfx = b.subnet_of(s);
        b.route_via(r, s_pfx, s);
        let dst = b.addr_of(d);
        let topo = std::sync::Arc::new(b.build());
        let mut tx = SimTransport::new(Simulator::new(topo, 1), s);
        let mut strat = ParisUdp::new(41000, 52000);
        let route = trace(&mut tx, &mut strat, dst, TraceConfig::default());
        assert_eq!(route.halt, HaltReason::StarLimit);
        assert_eq!(route.hops.len(), 1 + 9, "router + 9 star hops (limit 8 exceeded)");
        assert!(!route.reached_destination());
        assert_eq!(route.stars(), 9);
        assert_eq!(route.mid_route_stars(), 0, "all stars are trailing");
    }

    #[test]
    fn paper_config_skips_hop_one() {
        let sc = scenarios::linear(4);
        let mut tx = transport(&sc, 1);
        let mut strat = ParisUdp::new(41000, 52000);
        let route = trace(&mut tx, &mut strat, sc.destination, TraceConfig::paper());
        assert_eq!(route.min_ttl, 2);
        assert_eq!(route.hops[0].ttl, 2);
        assert_eq!(route.hops.len(), 4, "hops 2..=5");
    }

    #[test]
    fn three_probe_config_records_three_results_per_hop() {
        let sc = scenarios::linear(3);
        let mut tx = transport(&sc, 1);
        let mut strat = ClassicUdp::new(7);
        let route = trace(&mut tx, &mut strat, sc.destination, TraceConfig::three_probes());
        for hop in &route.hops[..route.hops.len() - 1] {
            assert_eq!(hop.probes.len(), 3);
            assert!(hop.probes.iter().all(|p| !p.is_star()));
        }
    }

    #[test]
    fn rtt_increases_along_the_path() {
        let sc = scenarios::linear(5);
        let mut tx = transport(&sc, 1);
        let mut strat = ParisUdp::new(41000, 52000);
        let route = trace(&mut tx, &mut strat, sc.destination, TraceConfig::default());
        let rtts: Vec<_> = route.hops.iter().map(|h| h.probes[0].rtt.unwrap()).collect();
        for w in rtts.windows(2) {
            assert!(w[0] < w[1], "RTT must grow with distance: {rtts:?}");
        }
    }

    #[test]
    fn zero_ttl_forwarding_surfaces_in_probe_ttl() {
        let sc = scenarios::fig4();
        let mut tx = transport(&sc, 1);
        let mut strat = ParisUdp::new(41000, 52000);
        let route = trace(&mut tx, &mut strat, sc.destination, TraceConfig::default());
        let a = route.addresses();
        // Hops 7 and 8 (indices 6, 7) both show A...
        assert_eq!(a[6], Some(sc.a("A")));
        assert_eq!(a[7], Some(sc.a("A")));
        // ...but the probe TTLs distinguish the cause: 0 then 1.
        assert_eq!(route.hops[6].probes[0].probe_ttl, Some(0));
        assert_eq!(route.hops[7].probes[0].probe_ttl, Some(1));
    }

    #[test]
    fn nat_loop_shows_decreasing_response_ttl() {
        let sc = scenarios::fig5();
        let mut tx = transport(&sc, 1);
        let mut strat = ParisUdp::new(41000, 52000);
        let route = trace(&mut tx, &mut strat, sc.destination, TraceConfig::default());
        let a = route.addresses();
        // Hops 6..=9 (indices 5..=8) all show N0.
        for (i, addr) in a.iter().enumerate().take(9).skip(5) {
            assert_eq!(*addr, Some(sc.a("N")), "hop {}", i + 1);
        }
        let ttls: Vec<_> = (5..=8).map(|i| route.hops[i].probes[0].response_ttl.unwrap()).collect();
        assert_eq!(ttls, vec![250, 249, 248, 247], "the paper's Fig. 5 numbers");
    }
}
