//! Measured routes: what a traceroute run produces and what the anomaly
//! analysis consumes.
//!
//! §4 defines a measured route as the tuple `R = (r0, ..., rℓ)` where
//! `r0` is the source address and `ri` is the address answering at TTL
//! `i`, or a star. [`MeasuredRoute::addresses`] yields exactly that view;
//! the richer per-probe records keep the Paris side information (probe
//! TTL, response TTL, IP ID, unreachable flags) the classifiers need.

use std::net::Ipv4Addr;

use pt_netsim::time::SimDuration;
use pt_wire::UnreachableCode;

use crate::probe::StrategyId;

/// What kind of response a probe drew.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseKind {
    /// ICMP Time Exceeded — the normal mid-path answer.
    TimeExceeded,
    /// ICMP Destination Unreachable. `Port` is the normal UDP trace end;
    /// `Host`/`Network` print as `!H`/`!N` and signal trouble.
    Unreachable(UnreachableCode),
    /// ICMP Echo Reply — ICMP trace reached the destination.
    EchoReply,
    /// TCP SYN-ACK or RST — TCP trace reached the destination.
    TcpReply,
}

impl ResponseKind {
    /// Whether this response terminates a trace (paper §3: any
    /// Destination Unreachable halts immediately; terminal replies too).
    pub fn terminates(&self) -> bool {
        !matches!(self, ResponseKind::TimeExceeded)
    }

    /// Whether traceroute would print an unreachable flag (`!H`/`!N`)
    /// for it — the §4.1 "Unreachability message" loop marker.
    pub fn unreachable_flag(&self) -> Option<UnreachableCode> {
        match self {
            ResponseKind::Unreachable(c @ (UnreachableCode::Host | UnreachableCode::Network)) => {
                Some(*c)
            }
            _ => None,
        }
    }
}

/// The outcome of one probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeResult {
    /// Responding address, or `None` for a star.
    pub addr: Option<Ipv4Addr>,
    /// Round-trip time, when a response arrived.
    pub rtt: Option<SimDuration>,
    /// Response type.
    pub kind: Option<ResponseKind>,
    /// The quoted probe TTL — §2.2's anomaly signal (1 is normal, 0 means
    /// zero-TTL forwarding upstream). Only ICMP errors carry it.
    pub probe_ttl: Option<u8>,
    /// TTL of the response packet on arrival — length of the return path.
    pub response_ttl: Option<u8>,
    /// IP Identification of the response — the router's internal counter.
    pub ip_id: Option<u16>,
}

impl ProbeResult {
    /// A probe that timed out.
    pub const STAR: ProbeResult = ProbeResult {
        addr: None,
        rtt: None,
        kind: None,
        probe_ttl: None,
        response_ttl: None,
        ip_id: None,
    };

    /// Whether this probe got no answer.
    pub fn is_star(&self) -> bool {
        self.addr.is_none()
    }
}

/// All probes sent at one TTL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hop {
    /// The TTL probed.
    pub ttl: u8,
    /// One entry per probe (the study sends one probe per hop; classic
    /// traceroute defaults to three).
    pub probes: Vec<ProbeResult>,
}

impl Hop {
    /// The address reported for the hop in the `(r1, ..., rℓ)` view: the
    /// first responding probe, if any.
    pub fn first_addr(&self) -> Option<Ipv4Addr> {
        self.probes.iter().find_map(|p| p.addr)
    }

    /// All distinct responding addresses at this hop.
    ///
    /// Allocates a `Vec` per call — diagnostics and tests only. Hot
    /// loops (the campaign accumulators, diamond ingest) iterate
    /// `probes` in place instead; don't reintroduce this there.
    pub fn addrs(&self) -> Vec<Ipv4Addr> {
        let mut out: Vec<Ipv4Addr> = Vec::new();
        for p in &self.probes {
            if let Some(a) = p.addr {
                if !out.contains(&a) {
                    out.push(a);
                }
            }
        }
        out
    }

    /// Whether every probe at this hop timed out.
    pub fn all_stars(&self) -> bool {
        self.probes.iter().all(ProbeResult::is_star)
    }
}

/// Why a trace stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaltReason {
    /// A terminal response arrived (destination reached, or any
    /// Destination Unreachable).
    Terminal,
    /// Too many consecutive fully-star hops (8 in the study).
    StarLimit,
    /// The 39-hop ceiling.
    MaxTtl,
    /// A watchdog budget ([`crate::tracer::TraceConfig::probe_budget`]
    /// or [`crate::tracer::TraceConfig::time_budget`]) tripped before
    /// the trace halted on its own. The route is a valid prefix of what
    /// an unbudgeted trace would have measured, but it is *degraded*:
    /// consumers must not read its tail as the end of the path.
    Budget,
}

/// One traceroute's output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasuredRoute {
    /// The tool that produced the route.
    pub strategy: StrategyId,
    /// Source address (`r0`).
    pub source: Ipv4Addr,
    /// Destination probed.
    pub destination: Ipv4Addr,
    /// First TTL probed (the study sets 2 to skip university routers).
    pub min_ttl: u8,
    /// Per-TTL results, `hops[0]` at `min_ttl`.
    pub hops: Vec<Hop>,
    /// Why the trace ended.
    pub halt: HaltReason,
}

impl MeasuredRoute {
    /// §4's measured-route view: `ri` per probed TTL (first probe's
    /// address or star), excluding `r0`.
    pub fn addresses(&self) -> Vec<Option<Ipv4Addr>> {
        self.hops.iter().map(Hop::first_addr).collect()
    }

    /// Whether a watchdog budget cut this trace short
    /// ([`HaltReason::Budget`]).
    pub fn degraded(&self) -> bool {
        self.halt == HaltReason::Budget
    }

    /// Whether the destination itself answered.
    pub fn reached_destination(&self) -> bool {
        self.hops.iter().flat_map(|h| &h.probes).any(|p| {
            p.addr == Some(self.destination)
                && matches!(
                    p.kind,
                    Some(
                        ResponseKind::EchoReply
                            | ResponseKind::TcpReply
                            | ResponseKind::Unreachable(UnreachableCode::Port)
                    )
                )
        })
    }

    /// Total probes sent.
    pub fn probes_sent(&self) -> usize {
        self.hops.iter().map(|h| h.probes.len()).sum()
    }

    /// Total stars observed.
    pub fn stars(&self) -> usize {
        self.hops.iter().flat_map(|h| &h.probes).filter(|p| p.is_star()).count()
    }

    /// Stars that appear *before* the last responding hop — the §3
    /// "stars in the midst of responses" statistic.
    pub fn mid_route_stars(&self) -> usize {
        let last_responding = self.hops.iter().rposition(|h| !h.all_stars()).unwrap_or(0);
        self.hops[..last_responding].iter().flat_map(|h| &h.probes).filter(|p| p.is_star()).count()
    }

    /// The hop index (not TTL) where the destination answered, if any.
    pub fn destination_hop(&self) -> Option<usize> {
        self.hops.iter().position(|h| h.probes.iter().any(|p| p.addr == Some(self.destination)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(x: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, x)
    }

    fn reply(a: u8) -> ProbeResult {
        ProbeResult {
            addr: Some(addr(a)),
            rtt: Some(SimDuration::from_millis(5)),
            kind: Some(ResponseKind::TimeExceeded),
            probe_ttl: Some(1),
            response_ttl: Some(250),
            ip_id: Some(7),
        }
    }

    fn route(hops: Vec<Hop>) -> MeasuredRoute {
        MeasuredRoute {
            strategy: StrategyId::ParisUdp,
            source: addr(1),
            destination: addr(99),
            min_ttl: 1,
            hops,
            halt: HaltReason::MaxTtl,
        }
    }

    #[test]
    fn addresses_view_uses_first_responding_probe() {
        let hops = vec![
            Hop { ttl: 1, probes: vec![reply(2)] },
            Hop { ttl: 2, probes: vec![ProbeResult::STAR, reply(3)] },
            Hop { ttl: 3, probes: vec![ProbeResult::STAR] },
        ];
        let r = route(hops);
        assert_eq!(r.addresses(), vec![Some(addr(2)), Some(addr(3)), None]);
    }

    #[test]
    fn star_accounting_distinguishes_mid_route_from_trailing() {
        let hops = vec![
            Hop { ttl: 1, probes: vec![reply(2)] },
            Hop { ttl: 2, probes: vec![ProbeResult::STAR] },
            Hop { ttl: 3, probes: vec![reply(4)] },
            Hop { ttl: 4, probes: vec![ProbeResult::STAR] },
            Hop { ttl: 5, probes: vec![ProbeResult::STAR] },
        ];
        let r = route(hops);
        assert_eq!(r.stars(), 3);
        assert_eq!(r.mid_route_stars(), 1, "only the hop-2 star is mid-route");
    }

    #[test]
    fn reached_destination_requires_terminal_kind() {
        let mut term = reply(99);
        term.kind = Some(ResponseKind::Unreachable(UnreachableCode::Port));
        let r = route(vec![Hop { ttl: 1, probes: vec![term] }]);
        assert!(r.reached_destination());
        assert_eq!(r.destination_hop(), Some(0));
        // A Time Exceeded from the destination address does not count.
        let r2 = route(vec![Hop { ttl: 1, probes: vec![reply(99)] }]);
        assert!(!r2.reached_destination());
    }

    #[test]
    fn response_kind_semantics() {
        assert!(!ResponseKind::TimeExceeded.terminates());
        assert!(ResponseKind::EchoReply.terminates());
        assert!(ResponseKind::Unreachable(UnreachableCode::Port).terminates());
        assert_eq!(
            ResponseKind::Unreachable(UnreachableCode::Host).unreachable_flag(),
            Some(UnreachableCode::Host)
        );
        assert_eq!(ResponseKind::Unreachable(UnreachableCode::Port).unreachable_flag(), None);
        assert_eq!(ResponseKind::TimeExceeded.unreachable_flag(), None);
    }

    #[test]
    fn hop_addrs_dedup_preserving_order() {
        let h = Hop { ttl: 3, probes: vec![reply(5), reply(6), reply(5)] };
        assert_eq!(h.addrs(), vec![addr(5), addr(6)]);
        assert!(!h.all_stars());
        assert!(Hop { ttl: 1, probes: vec![ProbeResult::STAR] }.all_stars());
    }
}
