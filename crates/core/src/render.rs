//! Classic traceroute-style text rendering of measured routes, flags
//! (`!H`, `!N`) included — what a user of the tool actually sees.

use core::fmt::Write;

use pt_wire::UnreachableCode;

use crate::route::{MeasuredRoute, ProbeResult, ResponseKind};

/// Options for rendering a measured route.
#[derive(Debug, Clone, Copy)]
pub struct RenderOptions {
    /// Print RTTs (on by default, like the real tool).
    pub rtt: bool,
    /// Print the Paris side information (probe TTL, response TTL, IP ID).
    pub side_info: bool,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions { rtt: true, side_info: false }
    }
}

fn flag_of(p: &ProbeResult) -> &'static str {
    match p.kind {
        Some(ResponseKind::Unreachable(UnreachableCode::Host)) => " !H",
        Some(ResponseKind::Unreachable(UnreachableCode::Network)) => " !N",
        _ => "",
    }
}

/// Render one probe result like traceroute does: `address  time ms` with
/// repeated-address elision handled by the caller.
fn render_probe(out: &mut String, p: &ProbeResult, opts: RenderOptions) {
    match p.addr {
        None => out.push_str("  *"),
        Some(a) => {
            let _ = write!(out, "  {a}");
            if opts.rtt {
                if let Some(rtt) = p.rtt {
                    let _ = write!(out, "  {:.3} ms", rtt.as_millis_f64());
                }
            }
            out.push_str(flag_of(p));
            if opts.side_info {
                let _ = write!(
                    out,
                    "  [pttl {} rttl {} ipid {}]",
                    p.probe_ttl.map_or("-".into(), |v| v.to_string()),
                    p.response_ttl.map_or("-".into(), |v| v.to_string()),
                    p.ip_id.map_or("-".into(), |v| v.to_string()),
                );
            }
        }
    }
}

/// Render a whole measured route in traceroute's output format.
pub fn render(route: &MeasuredRoute, opts: RenderOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} to {}, {} hops max",
        route.strategy.name(),
        route.destination,
        route.hops.last().map_or(0, |h| h.ttl)
    );
    for hop in &route.hops {
        let _ = write!(out, "{:>3} ", hop.ttl);
        let mut last_addr = None;
        for p in &hop.probes {
            // Elide a repeated address within the hop, as traceroute does
            // for its three probes.
            if p.addr.is_some() && p.addr == last_addr {
                if opts.rtt {
                    if let Some(rtt) = p.rtt {
                        let _ = write!(out, "  {:.3} ms", rtt.as_millis_f64());
                    }
                }
            } else {
                render_probe(&mut out, p, opts);
            }
            last_addr = p.addr;
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::StrategyId;
    use crate::route::{HaltReason, Hop};
    use pt_netsim::time::SimDuration;
    use std::net::Ipv4Addr;

    fn addr(x: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, x)
    }

    fn probe(a: Option<u8>, kind: ResponseKind) -> ProbeResult {
        match a {
            None => ProbeResult::STAR,
            Some(x) => ProbeResult {
                addr: Some(addr(x)),
                rtt: Some(SimDuration::from_micros(12_345)),
                kind: Some(kind),
                probe_ttl: Some(1),
                response_ttl: Some(250),
                ip_id: Some(77),
            },
        }
    }

    fn route(hops: Vec<Hop>) -> MeasuredRoute {
        MeasuredRoute {
            strategy: StrategyId::ParisUdp,
            source: addr(1),
            destination: addr(200),
            min_ttl: 1,
            hops,
            halt: HaltReason::Terminal,
        }
    }

    #[test]
    fn renders_hops_stars_and_rtt() {
        let r = route(vec![
            Hop { ttl: 1, probes: vec![probe(Some(2), ResponseKind::TimeExceeded)] },
            Hop { ttl: 2, probes: vec![ProbeResult::STAR] },
        ]);
        let text = render(&r, RenderOptions::default());
        assert!(text.contains("paris-udp to 10.0.0.200"));
        assert!(text.contains("  1   10.0.0.2  12.345 ms"));
        assert!(text.contains("  2   *"));
    }

    #[test]
    fn renders_unreachable_flags() {
        let r = route(vec![Hop {
            ttl: 1,
            probes: vec![probe(Some(3), ResponseKind::Unreachable(pt_wire::UnreachableCode::Host))],
        }]);
        let text = render(&r, RenderOptions::default());
        assert!(text.contains("!H"), "{text}");
        let r = route(vec![Hop {
            ttl: 1,
            probes: vec![probe(
                Some(3),
                ResponseKind::Unreachable(pt_wire::UnreachableCode::Network),
            )],
        }]);
        assert!(render(&r, RenderOptions::default()).contains("!N"));
    }

    #[test]
    fn elides_repeated_addresses_within_a_hop() {
        let r = route(vec![Hop {
            ttl: 4,
            probes: vec![
                probe(Some(9), ResponseKind::TimeExceeded),
                probe(Some(9), ResponseKind::TimeExceeded),
                probe(Some(8), ResponseKind::TimeExceeded),
            ],
        }]);
        let text = render(&r, RenderOptions::default());
        let hop_line = text.lines().nth(1).unwrap();
        assert_eq!(hop_line.matches("10.0.0.9").count(), 1, "{hop_line}");
        assert_eq!(hop_line.matches("10.0.0.8").count(), 1);
        assert_eq!(hop_line.matches("ms").count(), 3, "RTTs always shown");
    }

    #[test]
    fn side_info_mode_prints_paris_extras() {
        let r =
            route(vec![Hop { ttl: 1, probes: vec![probe(Some(2), ResponseKind::TimeExceeded)] }]);
        let text = render(&r, RenderOptions { rtt: false, side_info: true });
        assert!(text.contains("[pttl 1 rttl 250 ipid 77]"), "{text}");
        assert!(!text.contains("ms"));
    }

    #[test]
    fn renders_real_simulated_routes() {
        use crate::paris::ParisUdp;
        use crate::tracer::{trace, TraceConfig};
        let sc = pt_netsim::scenarios::linear(4);
        let mut tx = pt_netsim::SimTransport::new(
            pt_netsim::Simulator::new(sc.topology.clone(), 1),
            sc.source,
        );
        let mut s = ParisUdp::new(40_000, 50_000);
        let r = trace(&mut tx, &mut s, sc.destination, TraceConfig::default());
        let text = render(&r, RenderOptions::default());
        assert_eq!(text.lines().count(), 1 + r.hops.len());
        assert!(text.contains(&sc.destination.to_string()));
    }
}
