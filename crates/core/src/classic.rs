//! Classic traceroute strategies — the tools whose anomalies the paper
//! catalogues.

use std::net::Ipv4Addr;

use pt_wire::ipv4::{protocol, Ipv4Header};
use pt_wire::{IcmpMessage, Packet, Transport as Wire, UdpDatagram};

use crate::probe::{prefix_u16, quotation_for, ProbeStrategy, StrategyId};

/// NetBSD traceroute 1.4a5 with UDP probes (§3):
/// Source Port = PID + 32768 (constant), initial Destination Port 33435,
/// **incremented with each probe** — which changes the five-tuple, so
/// per-flow load balancers may send every probe down a different path.
#[derive(Debug, Clone)]
pub struct ClassicUdp {
    /// Emulated process id.
    pub pid: u16,
    /// First Destination Port (NetBSD's default + the paper's setup).
    pub base_port: u16,
    /// Probe payload length in octets.
    pub payload_len: usize,
}

impl ClassicUdp {
    /// The paper's configuration for a given process id.
    pub fn new(pid: u16) -> Self {
        ClassicUdp { pid, base_port: 33435, payload_len: 12 }
    }

    fn src_port(&self) -> u16 {
        self.pid.wrapping_add(32768) | 0x8000
    }

    fn dst_port(&self, probe_idx: u64) -> u16 {
        self.base_port.wrapping_add(probe_idx as u16)
    }
}

impl ProbeStrategy for ClassicUdp {
    fn id(&self) -> StrategyId {
        StrategyId::ClassicUdp
    }

    fn build_probe_with(
        &mut self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        ttl: u8,
        probe_idx: u64,
        mut payload: Vec<u8>,
    ) -> Packet {
        let ip = Ipv4Header::new(src, dst, protocol::UDP, ttl);
        payload.clear();
        payload.resize(self.payload_len, 0);
        let udp = UdpDatagram::new(self.src_port(), self.dst_port(probe_idx), payload);
        Packet::new(ip, Wire::Udp(udp))
    }

    fn match_response(&self, dst: Ipv4Addr, response: &Packet) -> Option<u64> {
        let q = quotation_for(dst, response)?;
        if q.ip.protocol != protocol::UDP {
            return None;
        }
        if prefix_u16(&q.transport_prefix, 0) != self.src_port() {
            return None;
        }
        let port = prefix_u16(&q.transport_prefix, 2);
        Some(u64::from(port.wrapping_sub(self.base_port)))
    }
}

/// Classic ICMP Echo traceroute: fixed Identifier (the PID), Sequence
/// Number incremented per probe. Varying the sequence number varies the
/// ICMP Checksum — which sits in the first four transport octets that
/// per-flow load balancers hash.
#[derive(Debug, Clone)]
pub struct ClassicIcmp {
    /// Emulated process id → Echo Identifier.
    pub pid: u16,
}

impl ClassicIcmp {
    /// Standard configuration.
    pub fn new(pid: u16) -> Self {
        ClassicIcmp { pid }
    }
}

impl ProbeStrategy for ClassicIcmp {
    fn id(&self) -> StrategyId {
        StrategyId::ClassicIcmp
    }

    fn build_probe_with(
        &mut self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        ttl: u8,
        probe_idx: u64,
        payload: Vec<u8>,
    ) -> Packet {
        let ip = Ipv4Header::new(src, dst, protocol::ICMP, ttl);
        let msg = IcmpMessage::echo_probe_classic_in(self.pid, probe_idx as u16, payload);
        Packet::new(ip, Wire::Icmp(msg))
    }

    fn match_response(&self, dst: Ipv4Addr, response: &Packet) -> Option<u64> {
        // Terminal response: the destination's Echo Reply.
        if let Wire::Icmp(IcmpMessage::EchoReply { identifier, seq, .. }) = &response.transport {
            if response.ip.src == dst && *identifier == self.pid {
                return Some(u64::from(*seq));
            }
            return None;
        }
        // Mid-path: quoted Echo Request. The quotation carries the ICMP
        // header: Type(1) Code(1) Checksum(2) Identifier(2) Seq(2).
        let q = quotation_for(dst, response)?;
        if q.ip.protocol != protocol::ICMP || q.transport_prefix[0] != 8 {
            return None;
        }
        if prefix_u16(&q.transport_prefix, 4) != self.pid {
            return None;
        }
        Some(u64::from(prefix_u16(&q.transport_prefix, 6)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_wire::icmp::Quotation;
    use pt_wire::FlowPolicy;

    fn addrs() -> (Ipv4Addr, Ipv4Addr) {
        (Ipv4Addr::new(10, 0, 1, 1), Ipv4Addr::new(192, 0, 2, 9))
    }

    fn time_exceeded_for(probe: &Packet, from: Ipv4Addr) -> Packet {
        let q = Quotation::from_probe(probe.ip, &probe.transport_bytes());
        let ip = Ipv4Header::new(from, probe.ip.src, protocol::ICMP, 250);
        Packet::new(ip, Wire::Icmp(IcmpMessage::TimeExceeded { quotation: q }))
    }

    #[test]
    fn classic_udp_round_trips_probe_identity() {
        let (src, dst) = addrs();
        let mut s = ClassicUdp::new(1234);
        for idx in [0u64, 1, 7, 200] {
            let probe = s.build_probe(src, dst, 5, idx);
            let resp = time_exceeded_for(&probe, Ipv4Addr::new(10, 9, 9, 9));
            assert_eq!(s.match_response(dst, &resp), Some(idx));
        }
    }

    #[test]
    fn classic_udp_varies_the_flow_identifier() {
        let (src, dst) = addrs();
        let mut s = ClassicUdp::new(1234);
        let a = s.build_probe(src, dst, 5, 0);
        let b = s.build_probe(src, dst, 6, 1);
        assert!(!FlowPolicy::FiveTuple.same_flow(&a, &b), "the classic bug");
        assert!(!FlowPolicy::FirstFourOctets.same_flow(&a, &b));
    }

    #[test]
    fn classic_udp_rejects_foreign_responses() {
        let (src, dst) = addrs();
        let mut s = ClassicUdp::new(1234);
        let mut other = ClassicUdp::new(4321);
        let probe = other.build_probe(src, dst, 5, 3);
        let resp = time_exceeded_for(&probe, Ipv4Addr::new(10, 9, 9, 9));
        assert_eq!(s.match_response(dst, &resp), None, "different PID, different src port");
        // And a quotation for a different destination is ignored.
        let mine = s.build_probe(src, Ipv4Addr::new(198, 51, 100, 1), 5, 0);
        let resp = time_exceeded_for(&mine, Ipv4Addr::new(10, 9, 9, 9));
        assert_eq!(s.match_response(dst, &resp), None);
    }

    #[test]
    fn classic_icmp_round_trips_probe_identity() {
        let (src, dst) = addrs();
        let mut s = ClassicIcmp::new(77);
        for idx in [0u64, 3, 90] {
            let probe = s.build_probe(src, dst, 5, idx);
            let resp = time_exceeded_for(&probe, Ipv4Addr::new(10, 9, 9, 9));
            assert_eq!(s.match_response(dst, &resp), Some(idx));
        }
    }

    #[test]
    fn classic_icmp_matches_echo_reply_from_destination() {
        let (src, dst) = addrs();
        let mut s = ClassicIcmp::new(77);
        let probe = s.build_probe(src, dst, 30, 9);
        // Destination echoes identifier and seq back.
        let reply = Packet::new(
            Ipv4Header::new(dst, probe.ip.src, protocol::ICMP, 60),
            Wire::Icmp(IcmpMessage::EchoReply { identifier: 77, seq: 9, payload: vec![] }),
        );
        assert_eq!(s.match_response(dst, &reply), Some(9));
        // A reply from elsewhere does not match.
        let stray = Packet::new(
            Ipv4Header::new(Ipv4Addr::new(1, 2, 3, 4), probe.ip.src, protocol::ICMP, 60),
            Wire::Icmp(IcmpMessage::EchoReply { identifier: 77, seq: 9, payload: vec![] }),
        );
        assert_eq!(s.match_response(dst, &stray), None);
    }

    #[test]
    fn classic_icmp_varies_the_flow_identifier() {
        let (src, dst) = addrs();
        let mut s = ClassicIcmp::new(77);
        let a = s.build_probe(src, dst, 5, 0);
        let b = s.build_probe(src, dst, 6, 1);
        assert!(!FlowPolicy::FirstFourOctets.same_flow(&a, &b), "checksum drift");
    }
}
