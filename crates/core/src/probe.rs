//! The probing-strategy interface: build tagged probes, recognize their
//! responses.
//!
//! A strategy owns the header arithmetic that distinguishes the tools the
//! paper compares. The driver hands it a monotonically increasing probe
//! index; the strategy encodes that index into whatever header field it
//! uses as its per-probe identifier and must be able to recover it from a
//! response — either from the ICMP quotation (Time Exceeded / Destination
//! Unreachable quote the probe's IP header plus eight transport octets)
//! or from a terminal response (Echo Reply, TCP SYN-ACK/RST).

use std::net::Ipv4Addr;

use pt_wire::icmp::Quotation;
use pt_wire::{IcmpMessage, Packet, Transport as Wire};

/// Which tool a strategy models — used in reports and comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyId {
    /// NetBSD-style UDP traceroute (varying Destination Port).
    ClassicUdp,
    /// Classic ICMP Echo traceroute (varying Sequence Number).
    ClassicIcmp,
    /// Paris traceroute, UDP mode (pinned flow, Checksum identifier).
    ParisUdp,
    /// Paris traceroute, ICMP Echo mode (pinned checksum).
    ParisIcmp,
    /// Paris traceroute, TCP mode (Sequence Number identifier).
    ParisTcp,
    /// Toren's tcptraceroute (port 80, IP Identification identifier).
    TcpTraceroute,
}

impl StrategyId {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            StrategyId::ClassicUdp => "classic-udp",
            StrategyId::ClassicIcmp => "classic-icmp",
            StrategyId::ParisUdp => "paris-udp",
            StrategyId::ParisIcmp => "paris-icmp",
            StrategyId::ParisTcp => "paris-tcp",
            StrategyId::TcpTraceroute => "tcptraceroute",
        }
    }

    /// Inverse of [`StrategyId::name`] — what the campaign snapshot
    /// loader uses to parse a tool id back out of a checkpoint file.
    pub fn from_name(s: &str) -> Option<StrategyId> {
        Some(match s {
            "classic-udp" => StrategyId::ClassicUdp,
            "classic-icmp" => StrategyId::ClassicIcmp,
            "paris-udp" => StrategyId::ParisUdp,
            "paris-icmp" => StrategyId::ParisIcmp,
            "paris-tcp" => StrategyId::ParisTcp,
            "tcptraceroute" => StrategyId::TcpTraceroute,
            _ => return None,
        })
    }

    /// Whether the tool keeps the flow identifier constant across probes
    /// of one trace (the paper's criterion).
    pub fn keeps_flow_constant(self) -> bool {
        !matches!(self, StrategyId::ClassicUdp | StrategyId::ClassicIcmp)
    }
}

impl core::fmt::Display for StrategyId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// One entry of a probe batch: the TTL to probe at and the strategy's
/// monotone probe index, in launch order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeSpec {
    /// IP TTL for this probe.
    pub ttl: u8,
    /// The strategy's per-trace probe index (encodes the identifier).
    pub probe_idx: u64,
}

/// A probing strategy: stateless header arithmetic keyed by probe index.
pub trait ProbeStrategy {
    /// Which tool this is.
    fn id(&self) -> StrategyId;

    /// Build the probe for `probe_idx` with the given TTL, threading
    /// `payload` — a cleared, possibly warm buffer (the tracer hands in
    /// `Transport::grab_payload`) — into the packet. Strategies that
    /// need payload bytes build them in place; strategies that send
    /// empty payloads still carry the buffer so its allocation returns
    /// to the transport's pool when the packet is consumed. This is
    /// what makes steady-state probe construction allocation-free.
    fn build_probe_with(
        &mut self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        ttl: u8,
        probe_idx: u64,
        payload: Vec<u8>,
    ) -> Packet;

    /// [`ProbeStrategy::build_probe_with`] with a fresh buffer — the
    /// convenience form for tests and one-off probes.
    fn build_probe(&mut self, src: Ipv4Addr, dst: Ipv4Addr, ttl: u8, probe_idx: u64) -> Packet {
        self.build_probe_with(src, dst, ttl, probe_idx, Vec::new())
    }

    /// Build one TTL window's probes in a single pass, appending the
    /// packets to `out` in `specs` order. `payloads` yields one cleared
    /// (possibly warm) buffer per probe — the windowed tracer threads
    /// `Transport::grab_payload` through it so batch construction stays
    /// allocation-free.
    ///
    /// The default implementation loops [`ProbeStrategy::build_probe_with`].
    /// Strategies whose per-probe header arithmetic shares an invariant
    /// part — Paris UDP's pinned-checksum pseudo-header sum, which does
    /// not depend on the TTL — override this to compute the invariant
    /// once per batch. Every override must produce packets byte-identical
    /// to the default loop (pinned by the batched-vs-sequential equality
    /// tests), which is what lets the driver switch freely between paths
    /// without perturbing campaign digests.
    fn build_probe_batch(
        &mut self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        specs: &[ProbeSpec],
        payloads: &mut dyn FnMut() -> Vec<u8>,
        out: &mut Vec<Packet>,
    ) {
        for spec in specs {
            let payload = payloads();
            out.push(self.build_probe_with(src, dst, spec.ttl, spec.probe_idx, payload));
        }
    }

    /// If `response` answers one of our probes, return that probe's
    /// index — the *real* index, recovered from the response itself.
    /// The driver keeps several probes outstanding at once and
    /// attributes each response through its registry by this id, so a
    /// strategy may never answer "whichever probe is current": a
    /// sentinel would mis-credit every late, reordered or duplicate
    /// reply the moment two probes are in flight. Responses that cannot
    /// name their probe are `None` (the driver drops them as strays).
    fn match_response(&self, dst: Ipv4Addr, response: &Packet) -> Option<u64>;
}

/// Pull the quotation out of an ICMP error response, if the response is
/// one and the quoted packet was ours (same destination).
///
/// Shared probe-attribution helper: every strategy in this crate — and
/// external probing engines such as `pt-mda`'s multipath walker — uses
/// this to recover the header fields of the probe a Time Exceeded /
/// Destination Unreachable is answering.
pub fn quotation_for(dst: Ipv4Addr, response: &Packet) -> Option<&Quotation> {
    let q = match &response.transport {
        Wire::Icmp(IcmpMessage::TimeExceeded { quotation }) => quotation,
        Wire::Icmp(IcmpMessage::DestUnreachable { quotation, .. }) => quotation,
        _ => return None,
    };
    (q.ip.dst == dst).then_some(q)
}

/// Read a big-endian u16 out of a quoted transport prefix.
pub fn prefix_u16(prefix: &[u8; 8], offset: usize) -> u16 {
    u16::from_be_bytes([prefix[offset], prefix[offset + 1]])
}

/// Read a big-endian u32 out of a quoted transport prefix.
pub fn prefix_u32(prefix: &[u8; 8], offset: usize) -> u32 {
    u32::from_be_bytes([prefix[offset], prefix[offset + 1], prefix[offset + 2], prefix[offset + 3]])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_have_names_and_flow_constancy() {
        let all = [
            StrategyId::ClassicUdp,
            StrategyId::ClassicIcmp,
            StrategyId::ParisUdp,
            StrategyId::ParisIcmp,
            StrategyId::ParisTcp,
            StrategyId::TcpTraceroute,
        ];
        let mut names = std::collections::HashSet::new();
        for id in all {
            assert!(names.insert(id.name()), "duplicate name {}", id.name());
        }
        assert!(!StrategyId::ClassicUdp.keeps_flow_constant());
        assert!(!StrategyId::ClassicIcmp.keeps_flow_constant());
        assert!(StrategyId::ParisUdp.keeps_flow_constant());
        assert!(StrategyId::ParisIcmp.keeps_flow_constant());
        assert!(StrategyId::ParisTcp.keeps_flow_constant());
        assert!(StrategyId::TcpTraceroute.keeps_flow_constant());
    }

    #[test]
    fn prefix_readers() {
        let prefix = [0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0];
        assert_eq!(prefix_u16(&prefix, 0), 0x1234);
        assert_eq!(prefix_u16(&prefix, 6), 0xdef0);
        assert_eq!(prefix_u32(&prefix, 4), 0x9abc_def0);
    }

    #[test]
    fn batched_construction_matches_sequential_for_every_strategy() {
        // `build_probe_batch` — default loop or strategy override — must
        // produce packets byte-identical to one-at-a-time construction:
        // the windowed tracer switches to the batch path on the strength
        // of this equality, and any divergence would silently change
        // campaign digests.
        use crate::{ClassicIcmp, ClassicUdp, ParisIcmp, ParisTcp, ParisUdp, TcpTraceroute};
        let src = Ipv4Addr::new(10, 0, 1, 1);
        let dst = Ipv4Addr::new(192, 0, 2, 9);
        let specs: Vec<ProbeSpec> =
            (0u64..9).map(|i| ProbeSpec { ttl: 1 + (i as u8 % 5), probe_idx: i * 7 + 3 }).collect();
        let strategies: Vec<Box<dyn ProbeStrategy>> = vec![
            Box::new(ClassicUdp::new(1234)),
            Box::new(ClassicIcmp::new(77)),
            Box::new(ParisUdp::new(41000, 52000)),
            Box::new(ParisIcmp::new(0xb00b)),
            Box::new(ParisTcp::new(55555)),
            Box::new(TcpTraceroute::new(40123)),
        ];
        for mut strategy in strategies {
            let id = strategy.id();
            let sequential: Vec<Packet> = specs
                .iter()
                .map(|s| strategy.build_probe_with(src, dst, s.ttl, s.probe_idx, Vec::new()))
                .collect();
            let mut batched = Vec::new();
            strategy.build_probe_batch(src, dst, &specs, &mut Vec::new, &mut batched);
            assert_eq!(batched.len(), sequential.len(), "{id}: batch size");
            for (i, (b, s)) in batched.iter().zip(sequential.iter()).enumerate() {
                assert_eq!(b, s, "{id}: probe {i} diverged");
                assert_eq!(b.emit(), s.emit(), "{id}: probe {i} wire bytes diverged");
            }
        }
    }
}
