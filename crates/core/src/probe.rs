//! The probing-strategy interface: build tagged probes, recognize their
//! responses.
//!
//! A strategy owns the header arithmetic that distinguishes the tools the
//! paper compares. The driver hands it a monotonically increasing probe
//! index; the strategy encodes that index into whatever header field it
//! uses as its per-probe identifier and must be able to recover it from a
//! response — either from the ICMP quotation (Time Exceeded / Destination
//! Unreachable quote the probe's IP header plus eight transport octets)
//! or from a terminal response (Echo Reply, TCP SYN-ACK/RST).

use std::net::Ipv4Addr;

use pt_wire::icmp::Quotation;
use pt_wire::{IcmpMessage, Packet, Transport as Wire};

/// Which tool a strategy models — used in reports and comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyId {
    /// NetBSD-style UDP traceroute (varying Destination Port).
    ClassicUdp,
    /// Classic ICMP Echo traceroute (varying Sequence Number).
    ClassicIcmp,
    /// Paris traceroute, UDP mode (pinned flow, Checksum identifier).
    ParisUdp,
    /// Paris traceroute, ICMP Echo mode (pinned checksum).
    ParisIcmp,
    /// Paris traceroute, TCP mode (Sequence Number identifier).
    ParisTcp,
    /// Toren's tcptraceroute (port 80, IP Identification identifier).
    TcpTraceroute,
}

impl StrategyId {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            StrategyId::ClassicUdp => "classic-udp",
            StrategyId::ClassicIcmp => "classic-icmp",
            StrategyId::ParisUdp => "paris-udp",
            StrategyId::ParisIcmp => "paris-icmp",
            StrategyId::ParisTcp => "paris-tcp",
            StrategyId::TcpTraceroute => "tcptraceroute",
        }
    }

    /// Inverse of [`StrategyId::name`] — what the campaign snapshot
    /// loader uses to parse a tool id back out of a checkpoint file.
    pub fn from_name(s: &str) -> Option<StrategyId> {
        Some(match s {
            "classic-udp" => StrategyId::ClassicUdp,
            "classic-icmp" => StrategyId::ClassicIcmp,
            "paris-udp" => StrategyId::ParisUdp,
            "paris-icmp" => StrategyId::ParisIcmp,
            "paris-tcp" => StrategyId::ParisTcp,
            "tcptraceroute" => StrategyId::TcpTraceroute,
            _ => return None,
        })
    }

    /// Whether the tool keeps the flow identifier constant across probes
    /// of one trace (the paper's criterion).
    pub fn keeps_flow_constant(self) -> bool {
        !matches!(self, StrategyId::ClassicUdp | StrategyId::ClassicIcmp)
    }
}

impl core::fmt::Display for StrategyId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// A probing strategy: stateless header arithmetic keyed by probe index.
pub trait ProbeStrategy {
    /// Which tool this is.
    fn id(&self) -> StrategyId;

    /// Build the probe for `probe_idx` with the given TTL, threading
    /// `payload` — a cleared, possibly warm buffer (the tracer hands in
    /// `Transport::grab_payload`) — into the packet. Strategies that
    /// need payload bytes build them in place; strategies that send
    /// empty payloads still carry the buffer so its allocation returns
    /// to the transport's pool when the packet is consumed. This is
    /// what makes steady-state probe construction allocation-free.
    fn build_probe_with(
        &mut self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        ttl: u8,
        probe_idx: u64,
        payload: Vec<u8>,
    ) -> Packet;

    /// [`ProbeStrategy::build_probe_with`] with a fresh buffer — the
    /// convenience form for tests and one-off probes.
    fn build_probe(&mut self, src: Ipv4Addr, dst: Ipv4Addr, ttl: u8, probe_idx: u64) -> Packet {
        self.build_probe_with(src, dst, ttl, probe_idx, Vec::new())
    }

    /// If `response` answers one of our probes, return that probe's
    /// index — the *real* index, recovered from the response itself.
    /// The driver keeps several probes outstanding at once and
    /// attributes each response through its registry by this id, so a
    /// strategy may never answer "whichever probe is current": a
    /// sentinel would mis-credit every late, reordered or duplicate
    /// reply the moment two probes are in flight. Responses that cannot
    /// name their probe are `None` (the driver drops them as strays).
    fn match_response(&self, dst: Ipv4Addr, response: &Packet) -> Option<u64>;
}

/// Pull the quotation out of an ICMP error response, if the response is
/// one and the quoted packet was ours (same destination).
///
/// Shared probe-attribution helper: every strategy in this crate — and
/// external probing engines such as `pt-mda`'s multipath walker — uses
/// this to recover the header fields of the probe a Time Exceeded /
/// Destination Unreachable is answering.
pub fn quotation_for(dst: Ipv4Addr, response: &Packet) -> Option<&Quotation> {
    let q = match &response.transport {
        Wire::Icmp(IcmpMessage::TimeExceeded { quotation }) => quotation,
        Wire::Icmp(IcmpMessage::DestUnreachable { quotation, .. }) => quotation,
        _ => return None,
    };
    (q.ip.dst == dst).then_some(q)
}

/// Read a big-endian u16 out of a quoted transport prefix.
pub fn prefix_u16(prefix: &[u8; 8], offset: usize) -> u16 {
    u16::from_be_bytes([prefix[offset], prefix[offset + 1]])
}

/// Read a big-endian u32 out of a quoted transport prefix.
pub fn prefix_u32(prefix: &[u8; 8], offset: usize) -> u32 {
    u32::from_be_bytes([prefix[offset], prefix[offset + 1], prefix[offset + 2], prefix[offset + 3]])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_have_names_and_flow_constancy() {
        let all = [
            StrategyId::ClassicUdp,
            StrategyId::ClassicIcmp,
            StrategyId::ParisUdp,
            StrategyId::ParisIcmp,
            StrategyId::ParisTcp,
            StrategyId::TcpTraceroute,
        ];
        let mut names = std::collections::HashSet::new();
        for id in all {
            assert!(names.insert(id.name()), "duplicate name {}", id.name());
        }
        assert!(!StrategyId::ClassicUdp.keeps_flow_constant());
        assert!(!StrategyId::ClassicIcmp.keeps_flow_constant());
        assert!(StrategyId::ParisUdp.keeps_flow_constant());
        assert!(StrategyId::ParisIcmp.keeps_flow_constant());
        assert!(StrategyId::ParisTcp.keeps_flow_constant());
        assert!(StrategyId::TcpTraceroute.keeps_flow_constant());
    }

    #[test]
    fn prefix_readers() {
        let prefix = [0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0];
        assert_eq!(prefix_u16(&prefix, 0), 0x1234);
        assert_eq!(prefix_u16(&prefix, 6), 0xdef0);
        assert_eq!(prefix_u32(&prefix, 4), 0x9abc_def0);
    }
}
