//! Adaptive single-path tracing for hostile networks.
//!
//! [`trace_adaptive`] wraps the windowed [`trace_with`] driver in the
//! recovery discipline PR 6 adds to the multipath walker, applied to a
//! plain traceroute:
//!
//! 1. **Initial pass** — ordinary Paris UDP, exactly [`trace_with`].
//! 2. **Starred-hop retries** — hops that recorded stars get a bounded
//!    number of re-probes, each pass separated by an exponentially
//!    growing backoff with seed-derived jitter. Against token-bucket
//!    ICMP rate limiters (which answer the first probe of every quiet
//!    period) the waiting itself is the repair: a retry that arrives
//!    after the bucket refills gets the answer the original burst did
//!    not.
//! 3. **Protocol fallback** — if the route still ends in a trailing
//!    star run (a UDP-dropping firewall looks exactly like this), the
//!    tail is re-traced with Paris TCP from the first trailing-star
//!    TTL (`TraceConfig::min_ttl` makes mid-trace resume free), and if
//!    TCP also learns nothing, with Paris ICMP. A tail that made
//!    progress is spliced onto the UDP prefix.
//!
//! The spliced route keeps the initial pass's `strategy` id
//! ([`StrategyId::ParisUdp`]): per-hop provenance for a mixed-protocol
//! route is out of scope here, and every consumer keys on the hop
//! records, not the id. All bookkeeping lives in the caller's
//! [`TraceScratch`]; retry probes draw payload buffers from the
//! transport's pool, so a warm loop stays allocation-free like the
//! underlying driver.

use std::net::Ipv4Addr;

use pt_netsim::time::{SimDuration, SimTime};

use crate::paris::{ParisIcmp, ParisTcp, ParisUdp};
use crate::probe::ProbeStrategy;
use crate::route::{HaltReason, MeasuredRoute, ProbeResult};
use crate::tracer::{classify, trace_with, TraceConfig, TraceScratch, Transport};

/// Policy knobs for [`trace_adaptive`], wrapping a base [`TraceConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveTraceConfig {
    /// The underlying windowed-trace parameters.
    pub base: TraceConfig,
    /// Starred-hop retry passes after the initial trace (0 disables).
    pub retry_passes: u8,
    /// Backoff before the first retry pass; doubles each pass. Jitter
    /// of up to half the pass's backoff is added on top.
    pub retry_backoff: SimDuration,
    /// Seed for the backoff jitter; derive it from the campaign unit so
    /// replicated workers idle identically.
    pub jitter_seed: u64,
    /// Fall back to TCP (then ICMP) when the route ends in at least
    /// this many all-star hops and never reached the destination.
    pub fallback_after_stars: u8,
}

impl Default for AdaptiveTraceConfig {
    fn default() -> Self {
        AdaptiveTraceConfig {
            base: TraceConfig::default(),
            retry_passes: 2,
            retry_backoff: SimDuration::from_millis(750),
            jitter_seed: 0,
            fallback_after_stars: 3,
        }
    }
}

/// Probe indices for retry passes start here: far above anything the
/// initial pass (≤ 39 hops × probes per hop) can reach, so a late
/// answer to an original probe can never be credited to a retry.
const RETRY_IDX_BASE: u64 = 0x1000;

/// splitmix64 — the repo's standard seed-chain hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Backoff before retry pass `pass`: `retry_backoff · 2^pass` plus
/// deterministic jitter in `[0, base/2]`.
fn pass_backoff(config: &AdaptiveTraceConfig, pass: u8) -> SimDuration {
    let base = config.retry_backoff.nanos() << u32::from(pass).min(6);
    let span = base / 2 + 1;
    SimDuration::from_nanos(base + splitmix64(config.jitter_seed ^ u64::from(pass)) % span)
}

/// Let virtual time advance to `until`, releasing any strays that land.
fn idle<T: Transport>(transport: &mut T, until: SimTime) {
    while let Some((_, stray)) = transport.recv_until(until) {
        transport.release(stray);
    }
}

/// Count trailing hops that are entirely stars.
fn trailing_stars(route: &MeasuredRoute) -> usize {
    route.hops.iter().rev().take_while(|h| h.all_stars()).count()
}

/// Send one retry probe at `ttl` and wait out its timeout. On an answer
/// attributed to this probe (by id — strays and late answers to other
/// probes are released), fill `slot` of `route.hops[hop]` and report
/// whether the response was terminal.
#[allow(clippy::too_many_arguments)]
fn retry_slot<T: Transport>(
    transport: &mut T,
    strategy: &mut dyn ProbeStrategy,
    route: &mut MeasuredRoute,
    hop: usize,
    slot: usize,
    idx: u64,
    timeout: SimDuration,
) -> bool {
    let source = transport.source_addr();
    let ttl = route.hops[hop].ttl;
    let payload = transport.grab_payload();
    let packet = strategy.build_probe_with(source, route.destination, ttl, idx, payload);
    let sent = transport.now();
    transport.send(packet);
    let deadline = sent + timeout;
    while let Some((at, resp)) = transport.recv_until(deadline) {
        if strategy.match_response(route.destination, &resp) != Some(idx) {
            transport.release(resp);
            continue;
        }
        let (kind, probe_ttl) = classify(&resp);
        route.hops[hop].probes[slot] = ProbeResult {
            addr: Some(resp.ip.src),
            rtt: Some(at.since(sent)),
            kind: Some(kind),
            probe_ttl,
            response_ttl: Some(resp.ip.ttl),
            ip_id: Some(resp.ip.identification),
        };
        transport.release(resp);
        return kind.terminates();
    }
    false
}

/// Re-probe every starred slot, pass by pass, each pass preceded by its
/// backoff. A terminal answer truncates the route there and stops.
fn run_retry_passes<T: Transport>(
    transport: &mut T,
    strategy: &mut dyn ProbeStrategy,
    route: &mut MeasuredRoute,
    config: &AdaptiveTraceConfig,
    scratch: &mut TraceScratch,
) {
    let mut idx = RETRY_IDX_BASE;
    for pass in 0..config.retry_passes {
        if route.stars() == 0 {
            return;
        }
        idle(transport, transport.now() + pass_backoff(config, pass));
        for hop in 0..route.hops.len() {
            for slot in 0..route.hops[hop].probes.len() {
                if !route.hops[hop].probes[slot].is_star() {
                    continue;
                }
                let i = idx;
                idx += 1;
                if retry_slot(transport, strategy, route, hop, slot, i, config.base.timeout) {
                    scratch.truncate_route(route, hop + 1);
                    route.halt = HaltReason::Terminal;
                    return;
                }
            }
        }
    }
}

/// Re-trace the trailing-star tail with `strategy`, resuming at the
/// first starred TTL. Splices the tail onto the prefix when it learned
/// anything (any non-star probe); otherwise leaves `route` untouched.
/// Reports whether the splice happened.
fn fallback_tail<T: Transport>(
    transport: &mut T,
    strategy: &mut dyn ProbeStrategy,
    route: &mut MeasuredRoute,
    config: &AdaptiveTraceConfig,
    scratch: &mut TraceScratch,
) -> bool {
    let trailing = trailing_stars(route);
    let prefix = route.hops.len() - trailing;
    let resume_ttl = route.hops[prefix].ttl;
    let tail_config = TraceConfig { min_ttl: resume_ttl, ..config.base };
    let tail = trace_with(transport, strategy, route.destination, tail_config, scratch);
    if tail.hops.iter().all(|h| h.all_stars()) {
        scratch.recycle(tail);
        return false;
    }
    scratch.truncate_route(route, prefix);
    let halt = tail.halt;
    let mut tail_hops = tail.hops;
    route.hops.append(&mut tail_hops);
    scratch.stash_hops(tail_hops);
    route.halt = halt;
    true
}

/// Run one adaptive traceroute toward `destination`: a Paris UDP trace
/// hardened by starred-hop retries (exponential backoff, seeded
/// jitter) and a TCP-then-ICMP fallback for trailing-star tails. See
/// the module docs for the exact discipline.
///
/// `src_port`/`dst_port` fix the UDP five-tuple (the TCP fallback
/// reuses `src_port` toward port 80; the ICMP fallback derives its tag
/// family from `jitter_seed`).
pub fn trace_adaptive<T: Transport>(
    transport: &mut T,
    destination: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    config: &AdaptiveTraceConfig,
    scratch: &mut TraceScratch,
) -> MeasuredRoute {
    let mut udp = ParisUdp::new(src_port, dst_port);
    let mut route = trace_with(transport, &mut udp, destination, config.base, scratch);

    if config.retry_passes > 0 && route.stars() > 0 {
        run_retry_passes(transport, &mut udp, &mut route, config, scratch);
    }

    if !route.reached_destination()
        && config.fallback_after_stars > 0
        && trailing_stars(&route) >= usize::from(config.fallback_after_stars)
    {
        let mut tcp = ParisTcp::new(src_port);
        if !fallback_tail(transport, &mut tcp, &mut route, config, scratch) {
            let tag = (splitmix64(config.jitter_seed ^ 0x1c3) & 0xffff) as u16;
            let mut icmp = ParisIcmp::new(tag);
            fallback_tail(transport, &mut icmp, &mut route, config, scratch);
        }
    }

    route
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::ResponseKind;
    use crate::tracer::trace;
    use pt_netsim::time::SimDuration;
    use pt_netsim::{
        scenarios, HostConfig, RouterConfig, SimTransport, Simulator, TopologyBuilder,
    };

    fn transport(sc: &scenarios::Scenario, seed: u64) -> SimTransport {
        SimTransport::new(Simulator::new(sc.topology.clone(), seed), sc.source)
    }

    #[test]
    fn matches_plain_trace_on_a_healthy_chain() {
        // No faults → the adaptive machinery never engages and the
        // route is byte-identical to the plain Paris UDP trace.
        let sc = scenarios::linear(6);
        let mut tx = transport(&sc, 1);
        let mut strat = ParisUdp::new(41000, 52000);
        let plain = trace(&mut tx, &mut strat, sc.destination, TraceConfig::default());

        let mut tx = transport(&sc, 1);
        let mut scratch = TraceScratch::new();
        let config = AdaptiveTraceConfig::default();
        let adaptive = trace_adaptive(&mut tx, sc.destination, 41000, 52000, &config, &mut scratch);
        assert_eq!(adaptive, plain);
    }

    /// Source → r1 → filter → r3 → destination, with `filter` dropping
    /// UDP toward the destination's side.
    fn udp_filtered() -> (SimTransport, Ipv4Addr) {
        let mut b = TopologyBuilder::new();
        let s = b.host("S", HostConfig::default());
        let r1 = b.router("r1", RouterConfig::default());
        let f = b.router("f", RouterConfig::udp_filter());
        let r3 = b.router("r3", RouterConfig::default());
        let d = b.host("D", HostConfig::default());
        let ms = SimDuration::from_millis(1);
        b.link(s, r1, ms, 0.0);
        b.link(r1, f, ms, 0.0);
        b.link(f, r3, ms, 0.0);
        b.link(r3, d, ms, 0.0);
        b.default_via(s, r1);
        b.default_via(r1, f);
        b.default_via(f, r3);
        b.default_via(r3, d);
        b.default_via(d, r3);
        let s_pfx = b.subnet_of(s);
        b.route_via(r1, s_pfx, s);
        b.route_via(f, s_pfx, r1);
        b.route_via(r3, s_pfx, f);
        let dst = b.addr_of(d);
        let topo = std::sync::Arc::new(b.build());
        (SimTransport::new(Simulator::new(topo, 7), s), dst)
    }

    #[test]
    fn tcp_fallback_crosses_a_udp_filter() {
        // The plain UDP trace dies at the filter (trailing stars, star
        // limit); the adaptive trace switches to TCP and reaches the
        // destination.
        let (mut tx, dst) = udp_filtered();
        let mut strat = ParisUdp::new(41000, 52000);
        let plain = trace(&mut tx, &mut strat, dst, TraceConfig::default());
        assert_eq!(plain.halt, HaltReason::StarLimit);
        assert!(!plain.reached_destination());

        let (mut tx, dst) = udp_filtered();
        let mut scratch = TraceScratch::new();
        let config = AdaptiveTraceConfig::default();
        let route = trace_adaptive(&mut tx, dst, 41000, 52000, &config, &mut scratch);
        assert_eq!(route.halt, HaltReason::Terminal, "{route:?}");
        assert!(route.reached_destination());
        // The UDP prefix survived (hop 1 = r1, hop 2 = the filter,
        // which still answers Time Exceeded for the UDP probe that
        // expired *at* it) and the TCP tail filled in the rest.
        assert_eq!(route.hops.len(), 4, "{route:?}");
        assert!(route.hops.iter().all(|h| !h.all_stars()), "{route:?}");
        assert_eq!(
            route.hops.last().unwrap().probes[0].kind,
            Some(ResponseKind::TcpReply),
            "the terminal answer came over TCP"
        );
    }

    #[test]
    fn retries_fill_rate_limited_stars() {
        // Three probes per hop against a one-token bucket: the initial
        // pass gets one answer and two stars at the limited router. The
        // retry passes wait out the refill interval and fill both.
        let mut b = TopologyBuilder::new();
        let s = b.host("S", HostConfig::default());
        let rl = b.router("rl", RouterConfig::rate_limited(SimDuration::from_millis(400), 1));
        let d = b.host("D", HostConfig::default());
        let ms = SimDuration::from_millis(1);
        b.link(s, rl, ms, 0.0);
        b.link(rl, d, ms, 0.0);
        b.default_via(s, rl);
        b.default_via(rl, d);
        b.default_via(d, rl);
        let s_pfx = b.subnet_of(s);
        b.route_via(rl, s_pfx, s);
        let dst = b.addr_of(d);
        let topo = std::sync::Arc::new(b.build());

        let base = TraceConfig { probes_per_hop: 3, ..TraceConfig::default() };
        let mut tx = SimTransport::new(Simulator::new(topo.clone(), 3), s);
        let mut strat = ParisUdp::new(41000, 52000);
        let plain = trace(&mut tx, &mut strat, dst, base);
        assert!(plain.hops[0].probes.iter().any(ProbeResult::is_star), "{plain:?}");

        let mut tx = SimTransport::new(Simulator::new(topo, 3), s);
        let mut scratch = TraceScratch::new();
        let config = AdaptiveTraceConfig { base, ..AdaptiveTraceConfig::default() };
        let route = trace_adaptive(&mut tx, dst, 41000, 52000, &config, &mut scratch);
        assert!(
            route.hops[0].probes.iter().all(|p| !p.is_star()),
            "retries must fill the rate-limited stars: {route:?}"
        );
        assert!(route.reached_destination());
    }

    #[test]
    fn backoff_grows_and_jitter_is_deterministic() {
        let config = AdaptiveTraceConfig { jitter_seed: 99, ..AdaptiveTraceConfig::default() };
        let b0 = pass_backoff(&config, 0);
        let b1 = pass_backoff(&config, 1);
        assert!(b0 >= config.retry_backoff);
        assert!(b0.nanos() <= config.retry_backoff.nanos() * 3 / 2 + 1);
        assert!(b1 > b0, "backoff must grow between passes");
        assert_eq!(b0, pass_backoff(&config, 0), "jitter is a pure function of (seed, pass)");
        let other = AdaptiveTraceConfig { jitter_seed: 100, ..config };
        assert_ne!(pass_backoff(&other, 0), b0, "different seeds idle differently");
    }
}
