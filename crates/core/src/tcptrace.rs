//! Toren's tcptraceroute (§2.2, §5): TCP SYN probes to port 80 with the
//! **IP Identification** field as the per-probe identifier.
//!
//! Not innovative in the Paris sense — it already keeps a constant flow
//! identifier as a side effect of fixing both ports — but the paper notes
//! nobody had examined that property's effect on load balancing before.

use std::net::Ipv4Addr;

use pt_wire::ipv4::{protocol, Ipv4Header};
use pt_wire::tcp::flags as tcp_flags;
use pt_wire::{Packet, TcpSegment, Transport as Wire};

use crate::probe::{prefix_u16, quotation_for, ProbeStrategy, StrategyId};

/// tcptraceroute: SYN to port 80, varying IP Identification.
#[derive(Debug, Clone)]
pub struct TcpTraceroute {
    /// Fixed source port.
    pub src_port: u16,
    /// Fixed destination port (80 by default).
    pub dst_port: u16,
    /// Fixed TCP sequence number (tcptraceroute does not vary it).
    pub seq: u32,
    /// Base for the IP Identification identifier.
    pub base_ident: u16,
}

impl TcpTraceroute {
    /// Defaults emulating the real tool.
    pub fn new(src_port: u16) -> Self {
        TcpTraceroute { src_port, dst_port: 80, seq: 0xdead_0000, base_ident: 0x4000 }
    }
}

impl ProbeStrategy for TcpTraceroute {
    fn id(&self) -> StrategyId {
        StrategyId::TcpTraceroute
    }

    fn build_probe_with(
        &mut self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        ttl: u8,
        probe_idx: u64,
        mut payload: Vec<u8>,
    ) -> Packet {
        let mut ip = Ipv4Header::new(src, dst, protocol::TCP, ttl);
        ip.identification = self.base_ident.wrapping_add(probe_idx as u16);
        let mut seg = TcpSegment::syn_probe(self.src_port, self.dst_port, self.seq);
        // As with Paris TCP: no data, but keep the buffer circulating.
        payload.clear();
        seg.payload = payload;
        Packet::new(ip, Wire::Tcp(seg))
    }

    fn match_response(&self, dst: Ipv4Addr, response: &Packet) -> Option<u64> {
        // Terminal SYN-ACK / RST from the destination. The IP ID of *our
        // probe* is gone here; tcptraceroute matches on the port pair and
        // ack. We cannot recover the probe index, so attribute it to the
        // ack relation (seq is constant → ack = seq + 1 for every probe);
        // return a sentinel the driver resolves to "current probe".
        if let Wire::Tcp(seg) = &response.transport {
            if response.ip.src == dst
                && seg.src_port == self.dst_port
                && seg.dst_port == self.src_port
                && seg.control & (tcp_flags::SYN | tcp_flags::RST) != 0
                && seg.ack == self.seq.wrapping_add(1)
            {
                return Some(CURRENT_PROBE);
            }
            return None;
        }
        let q = quotation_for(dst, response)?;
        if q.ip.protocol != protocol::TCP {
            return None;
        }
        if prefix_u16(&q.transport_prefix, 0) != self.src_port
            || prefix_u16(&q.transport_prefix, 2) != self.dst_port
        {
            return None;
        }
        // The identifier lives in the quoted IP header, not the transport
        // prefix — the reason tcptraceroute must inspect quoted IP bytes.
        Some(u64::from(q.ip.identification.wrapping_sub(self.base_ident)))
    }
}

/// Sentinel index meaning "whatever probe is currently outstanding" —
/// used when the response genuinely cannot identify the probe (terminal
/// TCP responses echo no probe-unique field when `seq` is constant).
pub const CURRENT_PROBE: u64 = u64::MAX;

#[cfg(test)]
mod tests {
    use super::*;
    use pt_wire::icmp::{IcmpMessage, Quotation};

    fn addrs() -> (Ipv4Addr, Ipv4Addr) {
        (Ipv4Addr::new(10, 0, 1, 1), Ipv4Addr::new(192, 0, 2, 9))
    }

    fn time_exceeded_for(probe: &Packet, from: Ipv4Addr) -> Packet {
        let q = Quotation::from_probe(probe.ip, &probe.transport_bytes());
        let ip = Ipv4Header::new(from, probe.ip.src, protocol::ICMP, 250);
        Packet::new(ip, Wire::Icmp(IcmpMessage::TimeExceeded { quotation: q }))
    }

    #[test]
    fn identifies_probes_by_quoted_ip_identification() {
        let (src, dst) = addrs();
        let mut s = TcpTraceroute::new(50123);
        for idx in [0u64, 5, 31] {
            let probe = s.build_probe(src, dst, 6, idx);
            assert_eq!(probe.ip.identification, s.base_ident.wrapping_add(idx as u16));
            let resp = time_exceeded_for(&probe, Ipv4Addr::new(10, 7, 7, 7));
            assert_eq!(s.match_response(dst, &resp), Some(idx));
        }
    }

    #[test]
    fn terminal_response_yields_current_probe_sentinel() {
        let (src, dst) = addrs();
        let s = TcpTraceroute::new(50123);
        let mut synack = TcpSegment::syn_probe(80, 50123, 0);
        synack.ack = s.seq.wrapping_add(1);
        synack.control = tcp_flags::SYN | tcp_flags::ACK;
        let reply = Packet::new(Ipv4Header::new(dst, src, protocol::TCP, 60), Wire::Tcp(synack));
        assert_eq!(s.match_response(dst, &reply), Some(CURRENT_PROBE));
    }

    #[test]
    fn keeps_flow_constant() {
        use pt_wire::FlowPolicy;
        let (src, dst) = addrs();
        let mut s = TcpTraceroute::new(50123);
        let a = s.build_probe(src, dst, 5, 0);
        let b = s.build_probe(src, dst, 9, 17);
        for policy in FlowPolicy::ALL {
            assert!(policy.same_flow(&a, &b), "{policy:?}");
        }
    }

    #[test]
    fn rejects_wrong_ports() {
        let (src, dst) = addrs();
        let s = TcpTraceroute::new(50123);
        let mut other = TcpTraceroute::new(50999);
        let probe = other.build_probe(src, dst, 5, 2);
        let resp = time_exceeded_for(&probe, Ipv4Addr::new(10, 7, 7, 7));
        assert_eq!(s.match_response(dst, &resp), None);
    }
}
