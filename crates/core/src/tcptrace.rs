//! Toren's tcptraceroute (§2.2, §5): TCP SYN probes to port 80 with the
//! **IP Identification** field as the per-probe identifier.
//!
//! Not innovative in the Paris sense — it already keeps a constant flow
//! identifier as a side effect of fixing both ports — but the paper notes
//! nobody had examined that property's effect on load balancing before.
//!
//! Mid-path ICMP errors identify the probe by the quoted IP
//! Identification (the tool's signature move). Terminal SYN-ACK / RST
//! responses quote neither the IP header nor our Identification, so the
//! per-probe index also rides in the SYN's Sequence Number: the
//! destination acknowledges `seq + 1`, and the index comes back out of
//! the Acknowledgment — a *real* probe id, which is what lets the
//! windowed tracer attribute a terminal reply correctly with several
//! probes in flight (the old `CURRENT_PROBE` sentinel credited whatever
//! probe happened to be current). The Sequence Number sits outside
//! every flow-hash policy, so the tool's constant-flow property is
//! untouched.

use std::net::Ipv4Addr;

use pt_wire::ipv4::{protocol, Ipv4Header};
use pt_wire::tcp::flags as tcp_flags;
use pt_wire::{Packet, TcpSegment, Transport as Wire};

use crate::probe::{prefix_u16, quotation_for, ProbeStrategy, StrategyId};

/// tcptraceroute: SYN to port 80, varying IP Identification.
#[derive(Debug, Clone)]
pub struct TcpTraceroute {
    /// Fixed source port.
    pub src_port: u16,
    /// Fixed destination port (80 by default).
    pub dst_port: u16,
    /// Base TCP sequence number; probe `idx` sends `base_seq + idx`, so
    /// the destination's `ack - 1` identifies the probe.
    pub base_seq: u32,
    /// Base for the IP Identification identifier.
    pub base_ident: u16,
}

impl TcpTraceroute {
    /// Defaults emulating the real tool.
    pub fn new(src_port: u16) -> Self {
        TcpTraceroute { src_port, dst_port: 80, base_seq: 0xdead_0000, base_ident: 0x4000 }
    }

    fn seq(&self, probe_idx: u64) -> u32 {
        self.base_seq.wrapping_add(probe_idx as u32)
    }
}

impl ProbeStrategy for TcpTraceroute {
    fn id(&self) -> StrategyId {
        StrategyId::TcpTraceroute
    }

    fn build_probe_with(
        &mut self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        ttl: u8,
        probe_idx: u64,
        mut payload: Vec<u8>,
    ) -> Packet {
        let mut ip = Ipv4Header::new(src, dst, protocol::TCP, ttl);
        ip.identification = self.base_ident.wrapping_add(probe_idx as u16);
        let mut seg = TcpSegment::syn_probe(self.src_port, self.dst_port, self.seq(probe_idx));
        // As with Paris TCP: no data, but keep the buffer circulating.
        payload.clear();
        seg.payload = payload;
        Packet::new(ip, Wire::Tcp(seg))
    }

    fn match_response(&self, dst: Ipv4Addr, response: &Packet) -> Option<u64> {
        // Terminal SYN-ACK / RST from the destination. The IP ID of *our
        // probe* is gone here, but the destination acknowledges our
        // Sequence + 1, and the sequence carries the probe index.
        if let Wire::Tcp(seg) = &response.transport {
            if response.ip.src == dst
                && seg.src_port == self.dst_port
                && seg.dst_port == self.src_port
                && seg.control & (tcp_flags::SYN | tcp_flags::RST) != 0
            {
                return Some(u64::from(seg.ack.wrapping_sub(1).wrapping_sub(self.base_seq)));
            }
            return None;
        }
        let q = quotation_for(dst, response)?;
        if q.ip.protocol != protocol::TCP {
            return None;
        }
        if prefix_u16(&q.transport_prefix, 0) != self.src_port
            || prefix_u16(&q.transport_prefix, 2) != self.dst_port
        {
            return None;
        }
        // The identifier lives in the quoted IP header, not the transport
        // prefix — the reason tcptraceroute must inspect quoted IP bytes.
        Some(u64::from(q.ip.identification.wrapping_sub(self.base_ident)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_wire::icmp::{IcmpMessage, Quotation};

    fn addrs() -> (Ipv4Addr, Ipv4Addr) {
        (Ipv4Addr::new(10, 0, 1, 1), Ipv4Addr::new(192, 0, 2, 9))
    }

    fn time_exceeded_for(probe: &Packet, from: Ipv4Addr) -> Packet {
        let q = Quotation::from_probe(probe.ip, &probe.transport_bytes());
        let ip = Ipv4Header::new(from, probe.ip.src, protocol::ICMP, 250);
        Packet::new(ip, Wire::Icmp(IcmpMessage::TimeExceeded { quotation: q }))
    }

    #[test]
    fn identifies_probes_by_quoted_ip_identification() {
        let (src, dst) = addrs();
        let mut s = TcpTraceroute::new(50123);
        for idx in [0u64, 5, 31] {
            let probe = s.build_probe(src, dst, 6, idx);
            assert_eq!(probe.ip.identification, s.base_ident.wrapping_add(idx as u16));
            let resp = time_exceeded_for(&probe, Ipv4Addr::new(10, 7, 7, 7));
            assert_eq!(s.match_response(dst, &resp), Some(idx));
        }
    }

    #[test]
    fn terminal_response_recovers_probe_index_from_ack() {
        let (src, dst) = addrs();
        let mut s = TcpTraceroute::new(50123);
        for idx in [0u64, 7, 38] {
            let probe = s.build_probe(src, dst, 30, idx);
            let seq = match &probe.transport {
                Wire::Tcp(t) => t.seq,
                other => panic!("wrong transport {other:?}"),
            };
            // The responder acks whatever sequence the probe carried.
            let mut synack = TcpSegment::syn_probe(80, 50123, 0);
            synack.ack = seq.wrapping_add(1);
            synack.control = tcp_flags::SYN | tcp_flags::ACK;
            let reply =
                Packet::new(Ipv4Header::new(dst, src, protocol::TCP, 60), Wire::Tcp(synack));
            assert_eq!(
                s.match_response(dst, &reply),
                Some(idx),
                "terminal reply must name its own probe, not \"the current one\""
            );
        }
    }

    #[test]
    fn keeps_flow_constant() {
        use pt_wire::FlowPolicy;
        let (src, dst) = addrs();
        let mut s = TcpTraceroute::new(50123);
        let a = s.build_probe(src, dst, 5, 0);
        let b = s.build_probe(src, dst, 9, 17);
        for policy in FlowPolicy::ALL {
            assert!(policy.same_flow(&a, &b), "{policy:?}");
        }
    }

    #[test]
    fn rejects_wrong_ports() {
        let (src, dst) = addrs();
        let s = TcpTraceroute::new(50123);
        let mut other = TcpTraceroute::new(50999);
        let probe = other.build_probe(src, dst, 5, 2);
        let resp = time_exceeded_for(&probe, Ipv4Addr::new(10, 7, 7, 7));
        assert_eq!(s.match_response(dst, &resp), None);
    }
}
