//! IPv4 header representation, emit and parse.
//!
//! A 20-byte header without options — traceroute probes and ICMP responses
//! never carry IP options in the paper's study, and per-flow load balancers
//! that we model never inspect them.

use std::net::Ipv4Addr;

use crate::checksum::internet_checksum;
use crate::ParseError;

/// Length of the fixed IPv4 header (no options), in octets.
pub const HEADER_LEN: usize = 20;

/// IP protocol numbers used in this stack.
pub mod protocol {
    /// ICMPv4.
    pub const ICMP: u8 = 1;
    /// TCP.
    pub const TCP: u8 = 6;
    /// UDP.
    pub const UDP: u8 = 17;
}

/// A parsed (or to-be-emitted) IPv4 header.
///
/// `total_length` counts header plus payload; `checksum` is recomputed on
/// emit, so builders may leave it zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ipv4Header {
    /// Type of Service. One of the fields the paper found some load
    /// balancers hash on.
    pub tos: u8,
    /// Header + payload length in octets.
    pub total_length: u16,
    /// The Identification field. tcptraceroute varies this per probe; the
    /// replying router sets it from an internal 16-bit counter, which is
    /// what makes Bellovin-style router disambiguation possible.
    pub identification: u16,
    /// Flags (3 bits) and fragment offset (13 bits), packed as on the wire.
    pub flags_fragment: u16,
    /// Time to live — the field traceroute exists to abuse.
    pub ttl: u8,
    /// Transport protocol number (see [`protocol`]).
    pub protocol: u8,
    /// Header checksum as read off the wire (recomputed on emit).
    pub checksum: u16,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
}

impl Ipv4Header {
    /// A fresh header with sensible defaults for a probe packet.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, ttl: u8) -> Self {
        Ipv4Header {
            tos: 0,
            total_length: HEADER_LEN as u16,
            identification: 0,
            flags_fragment: 0,
            ttl,
            protocol,
            checksum: 0,
            src,
            dst,
        }
    }

    /// Serialize into `buf`, recomputing the header checksum.
    /// `buf` must be at least [`HEADER_LEN`] bytes.
    pub fn emit(&self, buf: &mut [u8]) {
        assert!(buf.len() >= HEADER_LEN, "ipv4 emit buffer too short");
        buf[0] = 0x45; // version 4, IHL 5
        buf[1] = self.tos;
        buf[2..4].copy_from_slice(&self.total_length.to_be_bytes());
        buf[4..6].copy_from_slice(&self.identification.to_be_bytes());
        buf[6..8].copy_from_slice(&self.flags_fragment.to_be_bytes());
        buf[8] = self.ttl;
        buf[9] = self.protocol;
        buf[10..12].copy_from_slice(&[0, 0]);
        buf[12..16].copy_from_slice(&self.src.octets());
        buf[16..20].copy_from_slice(&self.dst.octets());
        let ck = internet_checksum(&buf[..HEADER_LEN]);
        buf[10..12].copy_from_slice(&ck.to_be_bytes());
    }

    /// Parse a header from the front of `buf`, verifying version, IHL and
    /// the header checksum.
    pub fn parse(buf: &[u8]) -> Result<Self, ParseError> {
        if buf.len() < HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        if buf[0] != 0x45 {
            // We only speak IPv4 without options.
            return Err(ParseError::Unsupported);
        }
        if internet_checksum(&buf[..HEADER_LEN]) != 0 {
            return Err(ParseError::BadChecksum);
        }
        let total_length = u16::from_be_bytes([buf[2], buf[3]]);
        if usize::from(total_length) < HEADER_LEN {
            return Err(ParseError::BadLength);
        }
        Ok(Ipv4Header {
            tos: buf[1],
            total_length,
            identification: u16::from_be_bytes([buf[4], buf[5]]),
            flags_fragment: u16::from_be_bytes([buf[6], buf[7]]),
            ttl: buf[8],
            protocol: buf[9],
            checksum: u16::from_be_bytes([buf[10], buf[11]]),
            src: Ipv4Addr::new(buf[12], buf[13], buf[14], buf[15]),
            dst: Ipv4Addr::new(buf[16], buf[17], buf[18], buf[19]),
        })
    }

    /// The pseudo-header one's-complement sum used by UDP and TCP
    /// checksums, covering src, dst, protocol and transport length.
    pub fn pseudo_header_sum(&self, transport_len: u16) -> crate::checksum::Checksum {
        let mut c = crate::checksum::Checksum::new();
        c.add_bytes(&self.src.octets());
        c.add_bytes(&self.dst.octets());
        c.add_word(u16::from(self.protocol));
        c.add_word(transport_len);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Header {
        let mut h = Ipv4Header::new(
            Ipv4Addr::new(132, 227, 1, 10),
            Ipv4Addr::new(192, 0, 2, 55),
            protocol::UDP,
            7,
        );
        h.tos = 0x10;
        h.identification = 0xbeef;
        h.total_length = 48;
        h
    }

    #[test]
    fn emit_parse_round_trip() {
        let h = sample();
        let mut buf = [0u8; HEADER_LEN];
        h.emit(&mut buf);
        let parsed = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(parsed.src, h.src);
        assert_eq!(parsed.dst, h.dst);
        assert_eq!(parsed.ttl, 7);
        assert_eq!(parsed.tos, 0x10);
        assert_eq!(parsed.identification, 0xbeef);
        assert_eq!(parsed.total_length, 48);
        assert_eq!(parsed.protocol, protocol::UDP);
    }

    #[test]
    fn emitted_header_checksum_verifies() {
        let h = sample();
        let mut buf = [0u8; HEADER_LEN];
        h.emit(&mut buf);
        assert_eq!(internet_checksum(&buf), 0);
    }

    #[test]
    fn corrupt_byte_fails_checksum() {
        let h = sample();
        let mut buf = [0u8; HEADER_LEN];
        h.emit(&mut buf);
        buf[8] ^= 0xff; // flip the TTL
        assert_eq!(Ipv4Header::parse(&buf), Err(ParseError::BadChecksum));
    }

    #[test]
    fn truncated_buffer_rejected() {
        assert_eq!(Ipv4Header::parse(&[0x45; 10]), Err(ParseError::Truncated));
    }

    #[test]
    fn options_rejected() {
        let mut buf = [0u8; 24];
        buf[0] = 0x46; // IHL 6 → options present
        assert_eq!(Ipv4Header::parse(&buf), Err(ParseError::Unsupported));
    }

    #[test]
    fn bad_total_length_rejected() {
        let h = sample();
        let mut buf = [0u8; HEADER_LEN];
        let mut short = h;
        short.total_length = 10; // less than the header itself
        short.emit(&mut buf);
        assert_eq!(Ipv4Header::parse(&buf), Err(ParseError::BadLength));
    }
}
