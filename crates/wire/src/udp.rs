//! UDP datagram representation with the Paris checksum-pinning trick.
//!
//! Classic traceroute tags each UDP probe by incrementing the Destination
//! Port — which sits in the first four transport octets that per-flow load
//! balancers hash. Paris traceroute instead tags probes through the
//! *Checksum* field (octets 7–8 of the UDP header, outside the hashed
//! region) and manipulates the payload so the pinned checksum still
//! verifies; see [`UdpDatagram::with_pinned_checksum`].

use crate::checksum::{ones_add, solve_payload_word};
use crate::ipv4::Ipv4Header;
use crate::ParseError;

/// Length of the UDP header in octets.
pub const HEADER_LEN: usize = 8;

/// A UDP datagram: header fields plus owned payload.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct UdpDatagram {
    /// Source port. Classic traceroute sets this to PID + 32768.
    pub src_port: u16,
    /// Destination port. Classic traceroute starts at 33435 and increments
    /// per probe — the root cause of its per-flow load-balancing anomalies.
    pub dst_port: u16,
    /// Checksum as read off the wire; [`UdpDatagram::emit`] recomputes it
    /// unless the datagram was built with a pinned checksum.
    pub checksum: u16,
    /// Whether `checksum` is pinned (Paris mode): emit writes it verbatim
    /// and trusts the payload to compensate.
    pub checksum_pinned: bool,
    /// Payload octets.
    pub payload: Vec<u8>,
}

impl UdpDatagram {
    /// A datagram whose checksum will be computed normally on emit.
    pub fn new(src_port: u16, dst_port: u16, payload: Vec<u8>) -> Self {
        UdpDatagram { src_port, dst_port, checksum: 0, checksum_pinned: false, payload }
    }

    /// Build a datagram whose *Checksum field equals `target`*, Paris
    /// traceroute's probe identifier. The first two payload octets are
    /// solved so the packet verifies; remaining payload is zero padding to
    /// `payload_len` (minimum 2).
    ///
    /// # Panics
    /// Panics if `target == 0`: a transmitted zero checksum means
    /// "no checksum" in UDP and cannot be pinned.
    pub fn with_pinned_checksum(
        src_port: u16,
        dst_port: u16,
        target: u16,
        payload_len: usize,
        ip: &Ipv4Header,
    ) -> Self {
        Self::with_pinned_checksum_in(src_port, dst_port, target, payload_len, ip, Vec::new())
    }

    /// [`UdpDatagram::with_pinned_checksum`], but building the payload
    /// into `payload` (cleared first) so a recycled buffer's allocation
    /// is reused — the zero-allocation probe-construction path.
    ///
    /// # Panics
    /// Panics if `target == 0`, as for `with_pinned_checksum`.
    pub fn with_pinned_checksum_in(
        src_port: u16,
        dst_port: u16,
        target: u16,
        payload_len: usize,
        ip: &Ipv4Header,
        payload: Vec<u8>,
    ) -> Self {
        let invariant = Self::pinned_checksum_invariant(src_port, dst_port, payload_len, ip);
        Self::with_pinned_checksum_from_invariant(
            invariant,
            src_port,
            dst_port,
            target,
            payload_len,
            payload,
        )
    }

    /// The probe-invariant part of the pinned-checksum arithmetic: the
    /// one's-complement sum of the pseudo-header, ports, and UDP length —
    /// everything in the verification sum except the per-probe pinned
    /// `target` and the free payload word that compensates for it.
    ///
    /// For a Paris UDP probe batch, none of these inputs vary across
    /// probes (the IP TTL is not in the pseudo-header), so this sum can
    /// be computed once per batch and each probe solved from it with
    /// [`UdpDatagram::with_pinned_checksum_from_invariant`] — two
    /// one's-complement adds per probe instead of a fresh pseudo-header
    /// walk.
    pub fn pinned_checksum_invariant(
        src_port: u16,
        dst_port: u16,
        payload_len: usize,
        ip: &Ipv4Header,
    ) -> u16 {
        let payload_len = payload_len.max(2);
        let udp_len = (HEADER_LEN + payload_len) as u16;
        let mut c = ip.pseudo_header_sum(udp_len);
        c.add_word(src_port);
        c.add_word(dst_port);
        c.add_word(udp_len);
        c.raw()
    }

    /// [`UdpDatagram::with_pinned_checksum_in`] with the invariant sum
    /// precomputed by [`UdpDatagram::pinned_checksum_invariant`] — the
    /// batched probe-construction path. Byte-identical to the unbatched
    /// constructor (which is implemented on top of this).
    ///
    /// # Panics
    /// Panics if `target == 0`, as for `with_pinned_checksum`.
    pub fn with_pinned_checksum_from_invariant(
        invariant: u16,
        src_port: u16,
        dst_port: u16,
        target: u16,
        payload_len: usize,
        mut payload: Vec<u8>,
    ) -> Self {
        assert!(target != 0, "UDP checksum 0 means 'absent' and cannot be pinned");
        let payload_len = payload_len.max(2);
        // The free word sits at payload offset 0 — always a full,
        // even-offset 16-bit word slot since payload_len >= 2. Zero
        // padding beyond it contributes nothing to the sum, including
        // the high-order-padded trailing byte of an odd payload_len.
        let word = solve_payload_word(ones_add(invariant, target));
        payload.clear();
        payload.resize(payload_len, 0);
        payload[..2].copy_from_slice(&word.to_be_bytes());
        UdpDatagram { src_port, dst_port, checksum: target, checksum_pinned: true, payload }
    }

    /// Total length (header + payload) in octets.
    pub fn len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }

    /// True when there is no payload.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// Serialize into `buf` (which must hold [`UdpDatagram::len`] bytes),
    /// computing the checksum over the pseudo-header unless pinned.
    pub fn emit(&self, buf: &mut [u8], ip: &Ipv4Header) {
        let len = self.len();
        assert!(buf.len() >= len, "udp emit buffer too short");
        let udp_len = len as u16;
        buf[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[4..6].copy_from_slice(&udp_len.to_be_bytes());
        buf[6..8].copy_from_slice(&[0, 0]);
        buf[8..len].copy_from_slice(&self.payload);
        let ck = if self.checksum_pinned {
            self.checksum
        } else {
            let mut c = ip.pseudo_header_sum(udp_len);
            c.add_bytes(&buf[..len]);
            match c.finish() {
                // A computed zero is transmitted as 0xffff (RFC 768).
                0 => 0xffff,
                other => other,
            }
        };
        buf[6..8].copy_from_slice(&ck.to_be_bytes());
    }

    /// Parse from `buf`, verifying the length field and (when non-zero)
    /// the checksum against the given IP pseudo-header.
    pub fn parse(buf: &[u8], ip: &Ipv4Header) -> Result<Self, ParseError> {
        if buf.len() < HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        let udp_len = usize::from(u16::from_be_bytes([buf[4], buf[5]]));
        if udp_len < HEADER_LEN || udp_len > buf.len() {
            return Err(ParseError::BadLength);
        }
        let checksum = u16::from_be_bytes([buf[6], buf[7]]);
        if checksum != 0 {
            let mut c = ip.pseudo_header_sum(udp_len as u16);
            c.add_bytes(&buf[..udp_len]);
            if c.raw() != 0xffff {
                return Err(ParseError::BadChecksum);
            }
        }
        Ok(UdpDatagram {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            checksum,
            checksum_pinned: false,
            payload: buf[HEADER_LEN..udp_len].to_vec(),
        })
    }

    /// The first four octets of the header — the region the paper believes
    /// routers blindly hash for per-flow load balancing.
    pub fn first_four_octets(&self) -> [u8; 4] {
        let s = self.src_port.to_be_bytes();
        let d = self.dst_port.to_be_bytes();
        [s[0], s[1], d[0], d[1]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::protocol;
    use std::net::Ipv4Addr;

    fn ip_for(len: usize) -> Ipv4Header {
        let mut ip = Ipv4Header::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            protocol::UDP,
            64,
        );
        ip.total_length = (crate::ipv4::HEADER_LEN + len) as u16;
        ip
    }

    #[test]
    fn emit_parse_round_trip() {
        let udp = UdpDatagram::new(33000, 33435, vec![1, 2, 3, 4, 5]);
        let ip = ip_for(udp.len());
        let mut buf = vec![0u8; udp.len()];
        udp.emit(&mut buf, &ip);
        let parsed = UdpDatagram::parse(&buf, &ip).unwrap();
        assert_eq!(parsed.src_port, 33000);
        assert_eq!(parsed.dst_port, 33435);
        assert_eq!(parsed.payload, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn computed_checksum_verifies() {
        let udp = UdpDatagram::new(1, 2, vec![0xde, 0xad]);
        let ip = ip_for(udp.len());
        let mut buf = vec![0u8; udp.len()];
        udp.emit(&mut buf, &ip);
        assert!(UdpDatagram::parse(&buf, &ip).is_ok());
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let udp = UdpDatagram::new(1, 2, vec![0xde, 0xad, 0xbe, 0xef]);
        let ip = ip_for(udp.len());
        let mut buf = vec![0u8; udp.len()];
        udp.emit(&mut buf, &ip);
        buf[9] ^= 0x01;
        assert_eq!(UdpDatagram::parse(&buf, &ip), Err(ParseError::BadChecksum));
    }

    #[test]
    fn pinned_checksum_lands_on_target_and_verifies() {
        for target in [0x0001u16, 0x1234, 0xfedc, 0xffff] {
            let ip = ip_for(HEADER_LEN + 2);
            let udp = UdpDatagram::with_pinned_checksum(40000, 50000, target, 2, &ip);
            let mut buf = vec![0u8; udp.len()];
            udp.emit(&mut buf, &ip);
            // The wire checksum field is exactly the chosen identifier...
            assert_eq!(u16::from_be_bytes([buf[6], buf[7]]), target);
            // ...and the packet still verifies.
            let parsed = UdpDatagram::parse(&buf, &ip).unwrap();
            assert_eq!(parsed.checksum, target);
        }
    }

    #[test]
    fn pinned_checksum_keeps_first_four_octets_constant() {
        let ip = ip_for(HEADER_LEN + 2);
        let a = UdpDatagram::with_pinned_checksum(40000, 50000, 0x1111, 2, &ip);
        let b = UdpDatagram::with_pinned_checksum(40000, 50000, 0x2222, 2, &ip);
        assert_eq!(a.first_four_octets(), b.first_four_octets());
        assert_ne!(a.checksum, b.checksum);
    }

    #[test]
    fn odd_payload_len_pinned_checksum_verifies() {
        // Regression: RFC 1071 pads an odd trailing byte high-order. The
        // free word lives at payload offset 0 (an even, fully-occupied
        // slot) and the padding byte is zero, so odd payload lengths must
        // pin and verify exactly like even ones.
        for payload_len in [3usize, 5, 7, 13, 31] {
            for target in [0x0001u16, 0x1234, 0xfedc, 0xffff] {
                let ip = ip_for(HEADER_LEN + payload_len);
                let udp = UdpDatagram::with_pinned_checksum(40000, 50000, target, payload_len, &ip);
                assert_eq!(udp.payload.len(), payload_len);
                let mut buf = vec![0u8; udp.len()];
                udp.emit(&mut buf, &ip);
                assert_eq!(u16::from_be_bytes([buf[6], buf[7]]), target);
                let parsed = UdpDatagram::parse(&buf, &ip).unwrap_or_else(|e| {
                    panic!("odd len {payload_len} target {target:#06x}: {e:?}")
                });
                assert_eq!(parsed.checksum, target);
            }
        }
    }

    #[test]
    fn batched_invariant_solve_matches_direct_constructor() {
        for payload_len in [2usize, 3, 12, 17] {
            let ip = ip_for(HEADER_LEN + payload_len);
            let invariant = UdpDatagram::pinned_checksum_invariant(40000, 50000, payload_len, &ip);
            for target in [0x0001u16, 0x8000, 0xffff] {
                let direct =
                    UdpDatagram::with_pinned_checksum(40000, 50000, target, payload_len, &ip);
                let batched = UdpDatagram::with_pinned_checksum_from_invariant(
                    invariant,
                    40000,
                    50000,
                    target,
                    payload_len,
                    Vec::new(),
                );
                assert_eq!(direct, batched);
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot be pinned")]
    fn pinning_zero_checksum_panics() {
        let ip = ip_for(HEADER_LEN + 2);
        let _ = UdpDatagram::with_pinned_checksum(1, 2, 0, 2, &ip);
    }

    #[test]
    fn zero_checksum_skips_verification() {
        let udp = UdpDatagram::new(7, 9, vec![0xaa]);
        let ip = ip_for(udp.len());
        let mut buf = vec![0u8; udp.len()];
        udp.emit(&mut buf, &ip);
        buf[6] = 0;
        buf[7] = 0; // declare "no checksum"
        assert!(UdpDatagram::parse(&buf, &ip).is_ok());
    }

    #[test]
    fn bad_length_field_rejected() {
        let udp = UdpDatagram::new(7, 9, vec![0xaa; 4]);
        let ip = ip_for(udp.len());
        let mut buf = vec![0u8; udp.len()];
        udp.emit(&mut buf, &ip);
        buf[5] = 200; // longer than the buffer
        assert_eq!(UdpDatagram::parse(&buf, &ip), Err(ParseError::BadLength));
    }
}
