//! The paper's Fig. 2 as data: the role every packet header field plays
//! for load balancers and for each traceroute variant.
//!
//! Each entry records where the field lives, whether per-flow load
//! balancers use it, which tools vary it per probe, and whether it is
//! quoted inside an ICMP Time Exceeded response (the IP header and the
//! first eight transport octets are; everything later is not). The
//! `header_fields` bench verifies the load-balancing column *behaviourally*
//! by flipping each field on a simulated balancer and watching the path.

/// The protocol layer a header field belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layer {
    /// IPv4 header.
    Ip,
    /// UDP header.
    Udp,
    /// ICMP Echo header.
    IcmpEcho,
    /// TCP header.
    Tcp,
}

/// The roles a header field can play (Fig. 2's key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FieldRole {
    /// Shaded in Fig. 2: per-flow load balancers hash it.
    pub used_for_load_balancing: bool,
    /// `#` in Fig. 2: classic traceroute varies it per probe (directly or
    /// as an arithmetic consequence, like the ICMP checksum).
    pub varied_by_classic: bool,
    /// `+` in Fig. 2: tcptraceroute varies it per probe.
    pub varied_by_tcptraceroute: bool,
    /// `*` in Fig. 2: Paris traceroute varies it per probe.
    pub varied_by_paris: bool,
    /// Struck through in Fig. 2: NOT quoted in ICMP Time Exceeded
    /// responses (beyond IP header + 8 transport octets), so useless for
    /// matching responses to probes.
    pub not_quoted: bool,
}

/// One row of the Fig. 2 matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeaderField {
    /// Which header the field lives in.
    pub layer: Layer,
    /// Human-readable field name as printed in the paper.
    pub name: &'static str,
    /// Byte offset within its own header.
    pub offset: usize,
    /// Field length in octets.
    pub len: usize,
    /// Roles per Fig. 2.
    pub role: FieldRole,
}

impl HeaderField {
    /// Whether the field sits inside the first four transport octets —
    /// the region the paper conjectures routers blindly hash. (IP-layer
    /// fields are hashed by address/protocol selection instead.)
    pub fn in_first_four_transport_octets(&self) -> bool {
        self.layer != Layer::Ip && self.offset < 4
    }

    /// Whether a Time Exceeded response quotes this field (IP header plus
    /// first eight transport octets).
    pub fn quoted_in_time_exceeded(&self) -> bool {
        match self.layer {
            Layer::Ip => true,
            _ => self.offset + self.len <= 8,
        }
    }
}

const fn role(
    used_for_load_balancing: bool,
    varied_by_classic: bool,
    varied_by_tcptraceroute: bool,
    varied_by_paris: bool,
    not_quoted: bool,
) -> FieldRole {
    FieldRole {
        used_for_load_balancing,
        varied_by_classic,
        varied_by_tcptraceroute,
        varied_by_paris,
        not_quoted,
    }
}

/// Fig. 2 of the paper, row by row.
pub const FIELD_MATRIX: &[HeaderField] = &[
    // ---- IP ----
    HeaderField {
        layer: Layer::Ip,
        name: "Version/IHL",
        offset: 0,
        len: 1,
        role: role(false, false, false, false, false),
    },
    HeaderField {
        layer: Layer::Ip,
        name: "TOS",
        offset: 1,
        len: 1,
        role: role(true, false, false, false, false),
    },
    HeaderField {
        layer: Layer::Ip,
        name: "Total Length",
        offset: 2,
        len: 2,
        role: role(false, false, false, false, false),
    },
    HeaderField {
        layer: Layer::Ip,
        name: "Identification",
        offset: 4,
        len: 2,
        role: role(false, false, true, false, false),
    },
    HeaderField {
        layer: Layer::Ip,
        name: "Flags/Fragment Offset",
        offset: 6,
        len: 2,
        role: role(false, false, false, false, false),
    },
    HeaderField {
        layer: Layer::Ip,
        name: "TTL",
        offset: 8,
        len: 1,
        role: role(false, false, false, false, false),
    },
    HeaderField {
        layer: Layer::Ip,
        name: "Protocol",
        offset: 9,
        len: 1,
        role: role(true, false, false, false, false),
    },
    HeaderField {
        layer: Layer::Ip,
        name: "Header Checksum",
        offset: 10,
        len: 2,
        role: role(false, false, false, false, false),
    },
    HeaderField {
        layer: Layer::Ip,
        name: "Source Address",
        offset: 12,
        len: 4,
        role: role(true, false, false, false, false),
    },
    HeaderField {
        layer: Layer::Ip,
        name: "Destination Address",
        offset: 16,
        len: 4,
        role: role(true, false, false, false, false),
    },
    // ---- UDP ----
    HeaderField {
        layer: Layer::Udp,
        name: "Source Port",
        offset: 0,
        len: 2,
        role: role(true, false, false, false, false),
    },
    HeaderField {
        layer: Layer::Udp,
        name: "Destination Port",
        offset: 2,
        len: 2,
        role: role(true, true, false, false, false),
    },
    HeaderField {
        layer: Layer::Udp,
        name: "Length",
        offset: 4,
        len: 2,
        role: role(false, false, false, false, false),
    },
    HeaderField {
        layer: Layer::Udp,
        name: "Checksum",
        offset: 6,
        len: 2,
        role: role(false, true, false, true, false),
    },
    // ---- ICMP Echo ----
    HeaderField {
        layer: Layer::IcmpEcho,
        name: "Type",
        offset: 0,
        len: 1,
        role: role(false, false, false, false, false),
    },
    HeaderField {
        layer: Layer::IcmpEcho,
        name: "Code",
        offset: 1,
        len: 1,
        role: role(true, false, false, false, false),
    },
    HeaderField {
        layer: Layer::IcmpEcho,
        name: "Checksum",
        offset: 2,
        len: 2,
        role: role(true, true, false, false, false),
    },
    HeaderField {
        layer: Layer::IcmpEcho,
        name: "Identifier",
        offset: 4,
        len: 2,
        role: role(false, false, false, true, false),
    },
    HeaderField {
        layer: Layer::IcmpEcho,
        name: "Sequence Number",
        offset: 6,
        len: 2,
        role: role(false, true, false, true, false),
    },
    // ---- TCP ----
    HeaderField {
        layer: Layer::Tcp,
        name: "Source Port",
        offset: 0,
        len: 2,
        role: role(true, false, false, false, false),
    },
    HeaderField {
        layer: Layer::Tcp,
        name: "Destination Port",
        offset: 2,
        len: 2,
        role: role(true, false, false, false, false),
    },
    HeaderField {
        layer: Layer::Tcp,
        name: "Sequence Number",
        offset: 4,
        len: 4,
        role: role(false, false, false, true, false),
    },
    HeaderField {
        layer: Layer::Tcp,
        name: "Acknowledgment Number",
        offset: 8,
        len: 4,
        role: role(false, false, false, false, true),
    },
    HeaderField {
        layer: Layer::Tcp,
        name: "Data Offset/Resvd/ECN/Control",
        offset: 12,
        len: 2,
        role: role(false, false, false, false, true),
    },
    HeaderField {
        layer: Layer::Tcp,
        name: "Window",
        offset: 14,
        len: 2,
        role: role(false, false, false, false, true),
    },
    HeaderField {
        layer: Layer::Tcp,
        name: "Checksum",
        offset: 16,
        len: 2,
        role: role(false, false, false, false, true),
    },
    HeaderField {
        layer: Layer::Tcp,
        name: "Urgent Pointer",
        offset: 18,
        len: 2,
        role: role(false, false, false, false, true),
    },
];

/// Fields of the matrix belonging to one layer, in offset order.
pub fn fields_of(layer: Layer) -> impl Iterator<Item = &'static HeaderField> {
    FIELD_MATRIX.iter().filter(move |f| f.layer == layer)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_traceroute_always_varies_a_load_balanced_field() {
        // The paper's diagnosis: for UDP and ICMP Echo probing, at least
        // one field classic traceroute varies is hashed by per-flow load
        // balancers — directly or through the checksum.
        for layer in [Layer::Udp, Layer::IcmpEcho] {
            let classic_varied_and_hashed = fields_of(layer).any(|f| {
                f.role.varied_by_classic
                    && (f.role.used_for_load_balancing
                        || fields_of(layer).any(|g| {
                            // Varying f drags g's checksum along when g is
                            // a checksum field covering f.
                            g.name == "Checksum" && g.role.used_for_load_balancing
                        }))
            });
            assert!(classic_varied_and_hashed, "layer {layer:?}");
        }
    }

    #[test]
    fn paris_never_varies_a_field_hashed_by_load_balancers() {
        for f in FIELD_MATRIX {
            if f.role.varied_by_paris {
                assert!(
                    !f.role.used_for_load_balancing
                        || f.layer == Layer::IcmpEcho && f.name == "Checksum",
                    "Paris varies hashed field {} in {:?}",
                    f.name,
                    f.layer
                );
            }
        }
        // The one subtlety: Paris *holds the ICMP checksum constant* while
        // varying Identifier and Sequence Number; Fig. 2 does not star it.
        let icmp_ck = fields_of(Layer::IcmpEcho).find(|f| f.name == "Checksum").unwrap();
        assert!(!icmp_ck.role.varied_by_paris);
    }

    #[test]
    fn paris_identifiers_are_quoted_in_time_exceeded() {
        // Whatever field Paris uses to tag a probe must come back inside
        // the quotation, or matching would be impossible.
        for f in FIELD_MATRIX {
            if f.role.varied_by_paris {
                assert!(
                    f.quoted_in_time_exceeded(),
                    "Paris tag field {} would not be quoted",
                    f.name
                );
                assert!(!f.role.not_quoted);
            }
        }
    }

    #[test]
    fn tcp_fields_beyond_eight_octets_are_marked_unquoted() {
        for f in fields_of(Layer::Tcp) {
            assert_eq!(
                f.role.not_quoted,
                !f.quoted_in_time_exceeded(),
                "field {} quoting flag inconsistent with its offset",
                f.name
            );
        }
    }

    #[test]
    fn udp_checksum_lies_outside_the_hashed_region() {
        let ck = fields_of(Layer::Udp).find(|f| f.name == "Checksum").unwrap();
        assert!(!ck.in_first_four_transport_octets());
        assert!(ck.quoted_in_time_exceeded());
    }

    #[test]
    fn icmp_checksum_lies_inside_the_hashed_region() {
        let ck = fields_of(Layer::IcmpEcho).find(|f| f.name == "Checksum").unwrap();
        assert!(ck.in_first_four_transport_octets());
    }

    #[test]
    fn tcptraceroute_varies_only_ip_identification() {
        let varied: Vec<_> =
            FIELD_MATRIX.iter().filter(|f| f.role.varied_by_tcptraceroute).collect();
        assert_eq!(varied.len(), 1);
        assert_eq!(varied[0].name, "Identification");
        assert_eq!(varied[0].layer, Layer::Ip);
        assert!(!varied[0].role.used_for_load_balancing);
    }

    #[test]
    fn matrix_offsets_do_not_overlap_within_a_layer() {
        for layer in [Layer::Ip, Layer::Udp, Layer::IcmpEcho, Layer::Tcp] {
            let mut last_end = 0;
            for f in fields_of(layer) {
                assert!(f.offset >= last_end, "{:?} field {} overlaps", layer, f.name);
                last_end = f.offset + f.len;
            }
        }
    }
}
