//! A full IPv4 packet: header plus transport payload, with whole-packet
//! emit/parse. This is the unit the simulator forwards and the tracer
//! sends/receives.

use std::net::Ipv4Addr;

use crate::icmp::IcmpMessage;
use crate::ipv4::{protocol, Ipv4Header, HEADER_LEN};
use crate::tcp::TcpSegment;
use crate::udp::UdpDatagram;
use crate::ParseError;

/// Transport-layer content of a packet.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Transport {
    /// UDP datagram.
    Udp(UdpDatagram),
    /// TCP segment.
    Tcp(TcpSegment),
    /// ICMP message.
    Icmp(IcmpMessage),
}

impl Transport {
    /// IP protocol number for this transport.
    pub fn protocol(&self) -> u8 {
        match self {
            Transport::Udp(_) => protocol::UDP,
            Transport::Tcp(_) => protocol::TCP,
            Transport::Icmp(_) => protocol::ICMP,
        }
    }

    /// Emitted length in octets.
    pub fn len(&self) -> usize {
        match self {
            Transport::Udp(u) => u.len(),
            Transport::Tcp(t) => t.len(),
            Transport::Icmp(i) => i.len(),
        }
    }

    /// True when the transport would emit zero octets (never the case).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A complete IPv4 packet.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Packet {
    /// Network header. `total_length`, `protocol` and checksum are fixed up
    /// on emit to match the transport.
    pub ip: Ipv4Header,
    /// Transport content.
    pub transport: Transport,
}

impl Packet {
    /// Assemble a packet, fixing up `total_length` and `protocol`.
    pub fn new(mut ip: Ipv4Header, transport: Transport) -> Self {
        ip.protocol = transport.protocol();
        ip.total_length = (HEADER_LEN + transport.len()) as u16;
        Packet { ip, transport }
    }

    /// Source address shorthand.
    pub fn src(&self) -> Ipv4Addr {
        self.ip.src
    }

    /// Destination address shorthand.
    pub fn dst(&self) -> Ipv4Addr {
        self.ip.dst
    }

    /// Emitted length in octets.
    pub fn len(&self) -> usize {
        HEADER_LEN + self.transport.len()
    }

    /// True when the packet would emit zero octets (never the case).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Serialize the whole packet to fresh bytes. The IP header emitted
    /// reflects the *current* `ip.ttl`, so re-emitting after a TTL
    /// decrement produces the bytes the next hop sees.
    pub fn emit(&self) -> Vec<u8> {
        let mut ip = self.ip;
        ip.protocol = self.transport.protocol();
        ip.total_length = (HEADER_LEN + self.transport.len()) as u16;
        let mut buf = vec![0u8; HEADER_LEN + self.transport.len()];
        ip.emit(&mut buf[..HEADER_LEN]);
        match &self.transport {
            Transport::Udp(u) => u.emit(&mut buf[HEADER_LEN..], &ip),
            Transport::Tcp(t) => t.emit(&mut buf[HEADER_LEN..], &ip),
            Transport::Icmp(i) => i.emit(&mut buf[HEADER_LEN..]),
        }
        buf
    }

    /// Parse a packet from raw bytes, verifying all checksums.
    pub fn parse(buf: &[u8]) -> Result<Self, ParseError> {
        let ip = Ipv4Header::parse(buf)?;
        let end = usize::from(ip.total_length).min(buf.len());
        let body = &buf[HEADER_LEN..end];
        let transport = match ip.protocol {
            protocol::UDP => Transport::Udp(UdpDatagram::parse(body, &ip)?),
            protocol::TCP => Transport::Tcp(TcpSegment::parse(body, &ip)?),
            protocol::ICMP => Transport::Icmp(IcmpMessage::parse(body)?),
            _ => return Err(ParseError::Unsupported),
        };
        Ok(Packet { ip, transport })
    }

    /// The transport bytes as they appear on the wire — what a router
    /// would quote into a Time Exceeded message.
    pub fn transport_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.emit_transport_into(&mut out);
        out
    }

    /// Emit the transport bytes into `scratch`, reusing its allocation.
    /// This is the quoting path routers take for every ICMP they
    /// originate; with a recycled buffer it performs no allocation and
    /// never serializes the IP header.
    pub fn emit_transport_into(&self, scratch: &mut Vec<u8>) {
        let mut ip = self.ip;
        ip.protocol = self.transport.protocol();
        ip.total_length = (HEADER_LEN + self.transport.len()) as u16;
        scratch.clear();
        scratch.resize(self.transport.len(), 0);
        match &self.transport {
            Transport::Udp(u) => u.emit(scratch, &ip),
            Transport::Tcp(t) => t.emit(scratch, &ip),
            Transport::Icmp(i) => i.emit(scratch),
        }
    }

    /// The first eight transport octets (zero-padded), i.e. the region a
    /// router quotes and a tracer matches on.
    pub fn transport_prefix(&self) -> [u8; 8] {
        let bytes = self.transport_bytes();
        let mut out = [0u8; 8];
        let n = bytes.len().min(8);
        out[..n].copy_from_slice(&bytes[..n]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::icmp::Quotation;

    fn addr(a: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, a)
    }

    fn udp_probe(ttl: u8, dst_port: u16) -> Packet {
        let ip = Ipv4Header::new(addr(1), addr(2), protocol::UDP, ttl);
        Packet::new(ip, Transport::Udp(UdpDatagram::new(33768, dst_port, vec![0; 12])))
    }

    #[test]
    fn udp_packet_round_trip() {
        let p = udp_probe(5, 33435);
        let parsed = Packet::parse(&p.emit()).unwrap();
        assert_eq!(parsed.ip.ttl, 5);
        match parsed.transport {
            Transport::Udp(u) => assert_eq!(u.dst_port, 33435),
            other => panic!("wrong transport: {other:?}"),
        }
    }

    #[test]
    fn tcp_packet_round_trip() {
        let ip = Ipv4Header::new(addr(1), addr(2), protocol::TCP, 9);
        let p = Packet::new(ip, Transport::Tcp(TcpSegment::syn_probe(50000, 80, 42)));
        let parsed = Packet::parse(&p.emit()).unwrap();
        match parsed.transport {
            Transport::Tcp(t) => assert_eq!(t.seq, 42),
            other => panic!("wrong transport: {other:?}"),
        }
    }

    #[test]
    fn icmp_time_exceeded_round_trip() {
        let probe = udp_probe(1, 33436);
        let q = Quotation::from_probe(probe.ip, &probe.transport_bytes());
        let ip = Ipv4Header::new(addr(9), addr(1), protocol::ICMP, 255);
        let p = Packet::new(ip, Transport::Icmp(IcmpMessage::TimeExceeded { quotation: q }));
        let parsed = Packet::parse(&p.emit()).unwrap();
        match parsed.transport {
            Transport::Icmp(IcmpMessage::TimeExceeded { quotation }) => {
                assert_eq!(quotation.ip.dst, addr(2));
                assert_eq!(quotation.ip.ttl, 1);
            }
            other => panic!("wrong transport: {other:?}"),
        }
    }

    #[test]
    fn transport_prefix_is_first_eight_octets() {
        let p = udp_probe(3, 34000);
        let prefix = p.transport_prefix();
        let bytes = p.transport_bytes();
        assert_eq!(&prefix[..], &bytes[..8]);
        // For UDP: src port, dst port, length, checksum.
        assert_eq!(u16::from_be_bytes([prefix[0], prefix[1]]), 33768);
        assert_eq!(u16::from_be_bytes([prefix[2], prefix[3]]), 34000);
    }

    #[test]
    fn unknown_protocol_rejected() {
        let mut ip = Ipv4Header::new(addr(1), addr(2), 47, 5); // GRE
        ip.total_length = HEADER_LEN as u16;
        let mut buf = vec![0u8; HEADER_LEN];
        ip.emit(&mut buf);
        assert_eq!(Packet::parse(&buf), Err(ParseError::Unsupported));
    }
}
