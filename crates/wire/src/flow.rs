//! Flow identification as a per-flow load balancer performs it.
//!
//! The paper found that routers hash "various combinations" of the classic
//! five-tuple plus the IP TOS and the ICMP Code and Checksum fields, and
//! conjectures that routers blindly hash the *first four octets of the
//! transport header* along with addresses and protocol. Each variant is a
//! [`FlowPolicy`]; the simulator assigns one to every load balancer, so
//! whether a given traceroute's probes stay on one path is decided by the
//! same header bytes that would decide it on a real router.

use crate::ipv4::protocol;
use crate::packet::{Packet, Transport};

/// A flow identifier: the digest a load balancer reduces a packet to.
/// Packets with equal keys take the same equal-cost path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey(pub u64);

/// Which header fields a load balancer hashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowPolicy {
    /// Source/Destination Address, Protocol, Source/Destination Port (or
    /// for ICMP, following observed router behaviour, Code and Checksum).
    FiveTuple,
    /// Addresses, Protocol, and the first four transport octets, blind to
    /// their meaning — the paper's conjecture about real routers. For UDP
    /// and TCP this equals [`FlowPolicy::FiveTuple`]; for ICMP it covers
    /// Type, Code and Checksum.
    FirstFourOctets,
    /// [`FlowPolicy::FiveTuple`] plus the IP TOS octet.
    FiveTupleTos,
    /// Destination address only. The paper notes this is indistinguishable
    /// from classic routing from a measurement standpoint.
    DestinationOnly,
}

impl FlowPolicy {
    /// All policies, for exhaustive testing.
    pub const ALL: [FlowPolicy; 4] = [
        FlowPolicy::FiveTuple,
        FlowPolicy::FirstFourOctets,
        FlowPolicy::FiveTupleTos,
        FlowPolicy::DestinationOnly,
    ];

    /// Reduce a packet to its flow key under this policy.
    pub fn flow_key(&self, packet: &Packet) -> FlowKey {
        let mut h = Fnv1a::new();
        h.write(&packet.ip.dst.octets());
        match self {
            FlowPolicy::DestinationOnly => {}
            FlowPolicy::FiveTuple | FlowPolicy::FiveTupleTos => {
                h.write(&packet.ip.src.octets());
                h.write(&[packet.ip.protocol]);
                if let FlowPolicy::FiveTupleTos = self {
                    h.write(&[packet.ip.tos]);
                }
                match &packet.transport {
                    Transport::Udp(u) => {
                        h.write(&u.src_port.to_be_bytes());
                        h.write(&u.dst_port.to_be_bytes());
                    }
                    Transport::Tcp(t) => {
                        h.write(&t.src_port.to_be_bytes());
                        h.write(&t.dst_port.to_be_bytes());
                    }
                    Transport::Icmp(i) => {
                        // Routers have no ports to hash for ICMP; the paper
                        // observed Code and Checksum being used.
                        let four = i.first_four_octets();
                        h.write(&four[1..4]);
                    }
                }
            }
            FlowPolicy::FirstFourOctets => {
                h.write(&packet.ip.src.octets());
                h.write(&[packet.ip.protocol]);
                let four = match &packet.transport {
                    Transport::Udp(u) => u.first_four_octets(),
                    Transport::Tcp(t) => t.first_four_octets(),
                    Transport::Icmp(i) => i.first_four_octets(),
                };
                h.write(&four);
            }
        }
        FlowKey(h.finish())
    }

    /// Whether two packets belong to the same flow under this policy.
    pub fn same_flow(&self, a: &Packet, b: &Packet) -> bool {
        self.flow_key(a) == self.flow_key(b)
    }
}

/// FNV-1a, implemented inline so flow keys are stable across processes and
/// platforms (std's `DefaultHasher` is deliberately randomized).
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Convenience: is this packet's protocol subject to flow hashing at all?
pub fn is_hashable_protocol(proto: u8) -> bool {
    matches!(proto, protocol::UDP | protocol::TCP | protocol::ICMP)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::icmp::IcmpMessage;
    use crate::ipv4::Ipv4Header;
    use crate::tcp::TcpSegment;
    use crate::udp::UdpDatagram;
    use std::net::Ipv4Addr;

    fn ip(proto: u8) -> Ipv4Header {
        Ipv4Header::new(Ipv4Addr::new(10, 1, 1, 1), Ipv4Addr::new(192, 0, 2, 9), proto, 12)
    }

    fn udp(src_port: u16, dst_port: u16) -> Packet {
        Packet::new(
            ip(protocol::UDP),
            Transport::Udp(UdpDatagram::new(src_port, dst_port, vec![0; 4])),
        )
    }

    #[test]
    fn varying_dst_port_changes_five_tuple_key() {
        // The classic traceroute failure mode.
        let a = udp(33768, 33435);
        let b = udp(33768, 33436);
        assert_ne!(FlowPolicy::FiveTuple.flow_key(&a), FlowPolicy::FiveTuple.flow_key(&b));
        assert_ne!(
            FlowPolicy::FirstFourOctets.flow_key(&a),
            FlowPolicy::FirstFourOctets.flow_key(&b)
        );
    }

    #[test]
    fn destination_only_ignores_ports() {
        let a = udp(1, 2);
        let b = udp(3, 4);
        assert_eq!(
            FlowPolicy::DestinationOnly.flow_key(&a),
            FlowPolicy::DestinationOnly.flow_key(&b)
        );
    }

    #[test]
    fn paris_udp_probes_share_a_flow_under_every_policy() {
        // Two Paris probes toward the same destination with different
        // pinned checksums (their per-probe identifiers) must hash alike.
        let base = ip(protocol::UDP);
        let mk = |target: u16| {
            let header = {
                let mut h = base;
                h.total_length = (crate::ipv4::HEADER_LEN + 10) as u16;
                h
            };
            Packet::new(
                header,
                Transport::Udp(UdpDatagram::with_pinned_checksum(40000, 50000, target, 2, &header)),
            )
        };
        let a = mk(0x1010);
        let b = mk(0x2020);
        for policy in FlowPolicy::ALL {
            assert_eq!(
                policy.flow_key(&a),
                policy.flow_key(&b),
                "policy {policy:?} split Paris probes"
            );
        }
    }

    #[test]
    fn classic_icmp_probes_split_under_checksum_hashing() {
        let a =
            Packet::new(ip(protocol::ICMP), Transport::Icmp(IcmpMessage::echo_probe_classic(7, 1)));
        let b =
            Packet::new(ip(protocol::ICMP), Transport::Icmp(IcmpMessage::echo_probe_classic(7, 2)));
        assert_ne!(
            FlowPolicy::FirstFourOctets.flow_key(&a),
            FlowPolicy::FirstFourOctets.flow_key(&b)
        );
        assert_ne!(FlowPolicy::FiveTuple.flow_key(&a), FlowPolicy::FiveTuple.flow_key(&b));
    }

    #[test]
    fn paris_icmp_probes_stay_in_one_flow() {
        let a = Packet::new(
            ip(protocol::ICMP),
            Transport::Icmp(IcmpMessage::echo_probe_paris(0xaaaa, 1)),
        );
        let b = Packet::new(
            ip(protocol::ICMP),
            Transport::Icmp(IcmpMessage::echo_probe_paris(0xaaaa, 2)),
        );
        for policy in FlowPolicy::ALL {
            assert_eq!(policy.flow_key(&a), policy.flow_key(&b), "policy {policy:?}");
        }
    }

    #[test]
    fn tcp_seq_variation_stays_in_one_flow() {
        let a = Packet::new(ip(protocol::TCP), Transport::Tcp(TcpSegment::syn_probe(50000, 80, 1)));
        let b =
            Packet::new(ip(protocol::TCP), Transport::Tcp(TcpSegment::syn_probe(50000, 80, 999)));
        for policy in FlowPolicy::ALL {
            assert_eq!(policy.flow_key(&a), policy.flow_key(&b), "policy {policy:?}");
        }
    }

    #[test]
    fn tos_policy_distinguishes_tos() {
        let a = udp(5, 6);
        let mut b = a.clone();
        b.ip.tos = 0x08;
        assert_ne!(FlowPolicy::FiveTupleTos.flow_key(&a), FlowPolicy::FiveTupleTos.flow_key(&b));
        assert_eq!(FlowPolicy::FiveTuple.flow_key(&a), FlowPolicy::FiveTuple.flow_key(&b));
    }

    #[test]
    fn keys_are_stable_across_calls() {
        let p = udp(123, 456);
        assert_eq!(FlowPolicy::FiveTuple.flow_key(&p), FlowPolicy::FiveTuple.flow_key(&p));
    }
}
