//! # pt-wire — packet wire formats for the Paris traceroute reproduction
//!
//! Byte-level representations of the packets that matter to traceroute:
//! IPv4, UDP, TCP and ICMPv4 (Echo, Time Exceeded, Destination Unreachable).
//!
//! The paper's central mechanism lives at this layer: per-flow load
//! balancers hash *actual header bytes* (in the authors' experience, the
//! five-tuple and, more bluntly, the first four octets of the transport
//! header, plus the IP TOS). Classic traceroute varies the UDP Destination
//! Port or the ICMP Sequence Number — both of which perturb those bytes —
//! while Paris traceroute varies the UDP Checksum (compensating through the
//! payload) or the ICMP Identifier (compensating the Checksum) so the flow
//! identifier stays constant. Because this crate implements real emit/parse
//! with real checksums, that distinction is *emergent* in the simulator
//! rather than hard-coded.
//!
//! Layout follows the smoltcp idiom: plain-old-data header structs with
//! `emit` / `parse` methods, explicit checksums, and no I/O.

#![warn(missing_docs)]

pub mod checksum;
pub mod fields;
pub mod flow;
pub mod icmp;
pub mod ipv4;
pub mod packet;
pub mod tcp;
pub mod udp;

pub use checksum::{internet_checksum, Checksum};
pub use fields::{FieldRole, HeaderField, FIELD_MATRIX};
pub use flow::{FlowKey, FlowPolicy};
pub use icmp::{IcmpMessage, IcmpType, Quotation, UnreachableCode};
pub use ipv4::Ipv4Header;
pub use packet::{Packet, Transport};
pub use tcp::TcpSegment;
pub use udp::UdpDatagram;

/// Errors produced while parsing packets off the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// The buffer is shorter than the header demands.
    Truncated,
    /// A version/IHL/type field has a value this stack does not support.
    Unsupported,
    /// A checksum failed verification.
    BadChecksum,
    /// A length field is inconsistent with the buffer.
    BadLength,
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ParseError::Truncated => write!(f, "buffer truncated"),
            ParseError::Unsupported => write!(f, "unsupported header value"),
            ParseError::BadChecksum => write!(f, "checksum verification failed"),
            ParseError::BadLength => write!(f, "inconsistent length field"),
        }
    }
}

impl std::error::Error for ParseError {}
